file(REMOVE_RECURSE
  "CMakeFiles/paxml_runtime.dir/src/runtime/coordinator.cc.o"
  "CMakeFiles/paxml_runtime.dir/src/runtime/coordinator.cc.o.d"
  "CMakeFiles/paxml_runtime.dir/src/runtime/query_scheduler.cc.o"
  "CMakeFiles/paxml_runtime.dir/src/runtime/query_scheduler.cc.o.d"
  "CMakeFiles/paxml_runtime.dir/src/runtime/site_runtime.cc.o"
  "CMakeFiles/paxml_runtime.dir/src/runtime/site_runtime.cc.o.d"
  "CMakeFiles/paxml_runtime.dir/src/runtime/transport.cc.o"
  "CMakeFiles/paxml_runtime.dir/src/runtime/transport.cc.o.d"
  "libpaxml_runtime.a"
  "libpaxml_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
