# Empty dependencies file for paxml_runtime.
# This may be replaced when dependencies are built.
