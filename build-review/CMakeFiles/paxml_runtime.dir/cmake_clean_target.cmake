file(REMOVE_RECURSE
  "libpaxml_runtime.a"
)
