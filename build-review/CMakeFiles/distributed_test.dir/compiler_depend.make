# Empty compiler generated dependencies file for distributed_test.
# This may be replaced when dependencies are built.
