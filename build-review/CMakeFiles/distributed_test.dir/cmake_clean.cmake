file(REMOVE_RECURSE
  "CMakeFiles/distributed_test.dir/tests/distributed_test.cc.o"
  "CMakeFiles/distributed_test.dir/tests/distributed_test.cc.o.d"
  "distributed_test"
  "distributed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
