# Empty compiler generated dependencies file for bench_multiquery.
# This may be replaced when dependencies are built.
