file(REMOVE_RECURSE
  "CMakeFiles/bench_multiquery.dir/bench/bench_multiquery.cc.o"
  "CMakeFiles/bench_multiquery.dir/bench/bench_multiquery.cc.o.d"
  "CMakeFiles/bench_multiquery.dir/bench/harness.cc.o"
  "CMakeFiles/bench_multiquery.dir/bench/harness.cc.o.d"
  "bench/bench_multiquery"
  "bench/bench_multiquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
