file(REMOVE_RECURSE
  "libpaxml_messages.a"
)
