file(REMOVE_RECURSE
  "CMakeFiles/paxml_messages.dir/src/core/messages.cc.o"
  "CMakeFiles/paxml_messages.dir/src/core/messages.cc.o.d"
  "libpaxml_messages.a"
  "libpaxml_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
