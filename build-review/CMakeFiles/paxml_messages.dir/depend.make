# Empty dependencies file for paxml_messages.
# This may be replaced when dependencies are built.
