file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/tests/common_test.cc.o"
  "CMakeFiles/common_test.dir/tests/common_test.cc.o.d"
  "common_test"
  "common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
