file(REMOVE_RECURSE
  "CMakeFiles/boolexpr_test.dir/tests/boolexpr_test.cc.o"
  "CMakeFiles/boolexpr_test.dir/tests/boolexpr_test.cc.o.d"
  "boolexpr_test"
  "boolexpr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
