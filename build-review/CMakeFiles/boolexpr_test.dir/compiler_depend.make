# Empty compiler generated dependencies file for boolexpr_test.
# This may be replaced when dependencies are built.
