# Empty dependencies file for xmark_explorer.
# This may be replaced when dependencies are built.
