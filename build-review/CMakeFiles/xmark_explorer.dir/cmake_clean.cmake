file(REMOVE_RECURSE
  "CMakeFiles/xmark_explorer.dir/examples/xmark_explorer.cpp.o"
  "CMakeFiles/xmark_explorer.dir/examples/xmark_explorer.cpp.o.d"
  "examples/xmark_explorer"
  "examples/xmark_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
