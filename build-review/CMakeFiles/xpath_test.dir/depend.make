# Empty dependencies file for xpath_test.
# This may be replaced when dependencies are built.
