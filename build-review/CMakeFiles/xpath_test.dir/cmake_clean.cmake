file(REMOVE_RECURSE
  "CMakeFiles/xpath_test.dir/tests/xpath_test.cc.o"
  "CMakeFiles/xpath_test.dir/tests/xpath_test.cc.o.d"
  "xpath_test"
  "xpath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
