file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation.dir/bench/bench_ablation.cc.o"
  "CMakeFiles/bench_ablation.dir/bench/bench_ablation.cc.o.d"
  "CMakeFiles/bench_ablation.dir/bench/harness.cc.o"
  "CMakeFiles/bench_ablation.dir/bench/harness.cc.o.d"
  "bench/bench_ablation"
  "bench/bench_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
