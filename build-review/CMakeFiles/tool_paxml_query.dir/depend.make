# Empty dependencies file for tool_paxml_query.
# This may be replaced when dependencies are built.
