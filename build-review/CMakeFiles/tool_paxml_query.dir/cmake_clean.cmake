file(REMOVE_RECURSE
  "CMakeFiles/tool_paxml_query.dir/tools/paxml_query.cc.o"
  "CMakeFiles/tool_paxml_query.dir/tools/paxml_query.cc.o.d"
  "tools/paxml_query"
  "tools/paxml_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_paxml_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
