file(REMOVE_RECURSE
  "CMakeFiles/paxml_boolexpr.dir/src/boolexpr/codec.cc.o"
  "CMakeFiles/paxml_boolexpr.dir/src/boolexpr/codec.cc.o.d"
  "CMakeFiles/paxml_boolexpr.dir/src/boolexpr/formula.cc.o"
  "CMakeFiles/paxml_boolexpr.dir/src/boolexpr/formula.cc.o.d"
  "libpaxml_boolexpr.a"
  "libpaxml_boolexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_boolexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
