# Empty dependencies file for paxml_boolexpr.
# This may be replaced when dependencies are built.
