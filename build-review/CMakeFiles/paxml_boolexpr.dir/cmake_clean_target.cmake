file(REMOVE_RECURSE
  "libpaxml_boolexpr.a"
)
