# Empty dependencies file for paxml_eval.
# This may be replaced when dependencies are built.
