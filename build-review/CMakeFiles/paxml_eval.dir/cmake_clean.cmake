file(REMOVE_RECURSE
  "CMakeFiles/paxml_eval.dir/src/eval/centralized.cc.o"
  "CMakeFiles/paxml_eval.dir/src/eval/centralized.cc.o.d"
  "libpaxml_eval.a"
  "libpaxml_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
