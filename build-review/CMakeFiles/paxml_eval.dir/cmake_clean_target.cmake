file(REMOVE_RECURSE
  "libpaxml_eval.a"
)
