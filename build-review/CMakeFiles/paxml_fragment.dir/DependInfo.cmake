
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fragment/fragment.cc" "CMakeFiles/paxml_fragment.dir/src/fragment/fragment.cc.o" "gcc" "CMakeFiles/paxml_fragment.dir/src/fragment/fragment.cc.o.d"
  "/root/repo/src/fragment/fragmenter.cc" "CMakeFiles/paxml_fragment.dir/src/fragment/fragmenter.cc.o" "gcc" "CMakeFiles/paxml_fragment.dir/src/fragment/fragmenter.cc.o.d"
  "/root/repo/src/fragment/pruning.cc" "CMakeFiles/paxml_fragment.dir/src/fragment/pruning.cc.o" "gcc" "CMakeFiles/paxml_fragment.dir/src/fragment/pruning.cc.o.d"
  "/root/repo/src/fragment/source.cc" "CMakeFiles/paxml_fragment.dir/src/fragment/source.cc.o" "gcc" "CMakeFiles/paxml_fragment.dir/src/fragment/source.cc.o.d"
  "/root/repo/src/fragment/storage.cc" "CMakeFiles/paxml_fragment.dir/src/fragment/storage.cc.o" "gcc" "CMakeFiles/paxml_fragment.dir/src/fragment/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/paxml_xml.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_xpath.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
