file(REMOVE_RECURSE
  "libpaxml_fragment.a"
)
