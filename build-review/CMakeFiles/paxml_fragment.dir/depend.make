# Empty dependencies file for paxml_fragment.
# This may be replaced when dependencies are built.
