file(REMOVE_RECURSE
  "CMakeFiles/paxml_fragment.dir/src/fragment/fragment.cc.o"
  "CMakeFiles/paxml_fragment.dir/src/fragment/fragment.cc.o.d"
  "CMakeFiles/paxml_fragment.dir/src/fragment/fragmenter.cc.o"
  "CMakeFiles/paxml_fragment.dir/src/fragment/fragmenter.cc.o.d"
  "CMakeFiles/paxml_fragment.dir/src/fragment/pruning.cc.o"
  "CMakeFiles/paxml_fragment.dir/src/fragment/pruning.cc.o.d"
  "CMakeFiles/paxml_fragment.dir/src/fragment/source.cc.o"
  "CMakeFiles/paxml_fragment.dir/src/fragment/source.cc.o.d"
  "CMakeFiles/paxml_fragment.dir/src/fragment/storage.cc.o"
  "CMakeFiles/paxml_fragment.dir/src/fragment/storage.cc.o.d"
  "libpaxml_fragment.a"
  "libpaxml_fragment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_fragment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
