# Empty dependencies file for core_extra_test.
# This may be replaced when dependencies are built.
