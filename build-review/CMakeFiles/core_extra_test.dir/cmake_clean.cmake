file(REMOVE_RECURSE
  "CMakeFiles/core_extra_test.dir/tests/core_extra_test.cc.o"
  "CMakeFiles/core_extra_test.dir/tests/core_extra_test.cc.o.d"
  "core_extra_test"
  "core_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
