file(REMOVE_RECURSE
  "CMakeFiles/runtime_test.dir/tests/runtime_test.cc.o"
  "CMakeFiles/runtime_test.dir/tests/runtime_test.cc.o.d"
  "runtime_test"
  "runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
