# Empty dependencies file for runtime_test.
# This may be replaced when dependencies are built.
