file(REMOVE_RECURSE
  "CMakeFiles/paxml_xmark.dir/src/xmark/generator.cc.o"
  "CMakeFiles/paxml_xmark.dir/src/xmark/generator.cc.o.d"
  "libpaxml_xmark.a"
  "libpaxml_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
