file(REMOVE_RECURSE
  "libpaxml_xmark.a"
)
