# Empty dependencies file for paxml_xmark.
# This may be replaced when dependencies are built.
