file(REMOVE_RECURSE
  "libpaxml_core.a"
)
