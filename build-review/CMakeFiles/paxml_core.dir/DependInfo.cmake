
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "CMakeFiles/paxml_core.dir/src/core/engine.cc.o" "gcc" "CMakeFiles/paxml_core.dir/src/core/engine.cc.o.d"
  "/root/repo/src/core/eval_ft.cc" "CMakeFiles/paxml_core.dir/src/core/eval_ft.cc.o" "gcc" "CMakeFiles/paxml_core.dir/src/core/eval_ft.cc.o.d"
  "/root/repo/src/core/naive.cc" "CMakeFiles/paxml_core.dir/src/core/naive.cc.o" "gcc" "CMakeFiles/paxml_core.dir/src/core/naive.cc.o.d"
  "/root/repo/src/core/out_of_core.cc" "CMakeFiles/paxml_core.dir/src/core/out_of_core.cc.o" "gcc" "CMakeFiles/paxml_core.dir/src/core/out_of_core.cc.o.d"
  "/root/repo/src/core/parbox.cc" "CMakeFiles/paxml_core.dir/src/core/parbox.cc.o" "gcc" "CMakeFiles/paxml_core.dir/src/core/parbox.cc.o.d"
  "/root/repo/src/core/pax2.cc" "CMakeFiles/paxml_core.dir/src/core/pax2.cc.o" "gcc" "CMakeFiles/paxml_core.dir/src/core/pax2.cc.o.d"
  "/root/repo/src/core/pax3.cc" "CMakeFiles/paxml_core.dir/src/core/pax3.cc.o" "gcc" "CMakeFiles/paxml_core.dir/src/core/pax3.cc.o.d"
  "/root/repo/src/core/site_eval.cc" "CMakeFiles/paxml_core.dir/src/core/site_eval.cc.o" "gcc" "CMakeFiles/paxml_core.dir/src/core/site_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/paxml_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_messages.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_eval.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_fragment.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_boolexpr.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_pool.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_xpath.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_xml.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
