file(REMOVE_RECURSE
  "CMakeFiles/paxml_core.dir/src/core/engine.cc.o"
  "CMakeFiles/paxml_core.dir/src/core/engine.cc.o.d"
  "CMakeFiles/paxml_core.dir/src/core/eval_ft.cc.o"
  "CMakeFiles/paxml_core.dir/src/core/eval_ft.cc.o.d"
  "CMakeFiles/paxml_core.dir/src/core/naive.cc.o"
  "CMakeFiles/paxml_core.dir/src/core/naive.cc.o.d"
  "CMakeFiles/paxml_core.dir/src/core/out_of_core.cc.o"
  "CMakeFiles/paxml_core.dir/src/core/out_of_core.cc.o.d"
  "CMakeFiles/paxml_core.dir/src/core/parbox.cc.o"
  "CMakeFiles/paxml_core.dir/src/core/parbox.cc.o.d"
  "CMakeFiles/paxml_core.dir/src/core/pax2.cc.o"
  "CMakeFiles/paxml_core.dir/src/core/pax2.cc.o.d"
  "CMakeFiles/paxml_core.dir/src/core/pax3.cc.o"
  "CMakeFiles/paxml_core.dir/src/core/pax3.cc.o.d"
  "CMakeFiles/paxml_core.dir/src/core/site_eval.cc.o"
  "CMakeFiles/paxml_core.dir/src/core/site_eval.cc.o.d"
  "libpaxml_core.a"
  "libpaxml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
