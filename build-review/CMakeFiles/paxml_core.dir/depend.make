# Empty dependencies file for paxml_core.
# This may be replaced when dependencies are built.
