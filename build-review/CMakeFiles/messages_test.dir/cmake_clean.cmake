file(REMOVE_RECURSE
  "CMakeFiles/messages_test.dir/tests/messages_test.cc.o"
  "CMakeFiles/messages_test.dir/tests/messages_test.cc.o.d"
  "messages_test"
  "messages_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
