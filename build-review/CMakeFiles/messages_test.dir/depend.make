# Empty dependencies file for messages_test.
# This may be replaced when dependencies are built.
