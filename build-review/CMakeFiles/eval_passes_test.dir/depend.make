# Empty dependencies file for eval_passes_test.
# This may be replaced when dependencies are built.
