file(REMOVE_RECURSE
  "CMakeFiles/eval_passes_test.dir/tests/eval_passes_test.cc.o"
  "CMakeFiles/eval_passes_test.dir/tests/eval_passes_test.cc.o.d"
  "eval_passes_test"
  "eval_passes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_passes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
