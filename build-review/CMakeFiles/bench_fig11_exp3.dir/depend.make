# Empty dependencies file for bench_fig11_exp3.
# This may be replaced when dependencies are built.
