file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_exp3.dir/bench/bench_fig11_exp3.cc.o"
  "CMakeFiles/bench_fig11_exp3.dir/bench/bench_fig11_exp3.cc.o.d"
  "CMakeFiles/bench_fig11_exp3.dir/bench/harness.cc.o"
  "CMakeFiles/bench_fig11_exp3.dir/bench/harness.cc.o.d"
  "bench/bench_fig11_exp3"
  "bench/bench_fig11_exp3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_exp3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
