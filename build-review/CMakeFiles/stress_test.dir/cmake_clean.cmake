file(REMOVE_RECURSE
  "CMakeFiles/stress_test.dir/tests/stress_test.cc.o"
  "CMakeFiles/stress_test.dir/tests/stress_test.cc.o.d"
  "stress_test"
  "stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
