file(REMOVE_RECURSE
  "CMakeFiles/paxml_pool.dir/src/runtime/worker_pool.cc.o"
  "CMakeFiles/paxml_pool.dir/src/runtime/worker_pool.cc.o.d"
  "libpaxml_pool.a"
  "libpaxml_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
