# Empty dependencies file for paxml_pool.
# This may be replaced when dependencies are built.
