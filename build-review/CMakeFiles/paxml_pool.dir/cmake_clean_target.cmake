file(REMOVE_RECURSE
  "libpaxml_pool.a"
)
