# Empty dependencies file for paxml_sim.
# This may be replaced when dependencies are built.
