file(REMOVE_RECURSE
  "CMakeFiles/paxml_sim.dir/src/sim/cluster.cc.o"
  "CMakeFiles/paxml_sim.dir/src/sim/cluster.cc.o.d"
  "CMakeFiles/paxml_sim.dir/src/sim/stats.cc.o"
  "CMakeFiles/paxml_sim.dir/src/sim/stats.cc.o.d"
  "libpaxml_sim.a"
  "libpaxml_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
