
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "CMakeFiles/paxml_sim.dir/src/sim/cluster.cc.o" "gcc" "CMakeFiles/paxml_sim.dir/src/sim/cluster.cc.o.d"
  "/root/repo/src/sim/stats.cc" "CMakeFiles/paxml_sim.dir/src/sim/stats.cc.o" "gcc" "CMakeFiles/paxml_sim.dir/src/sim/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/paxml_fragment.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_common.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_pool.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_xpath.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
