file(REMOVE_RECURSE
  "libpaxml_sim.a"
)
