file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_test.dir/tests/out_of_core_test.cc.o"
  "CMakeFiles/out_of_core_test.dir/tests/out_of_core_test.cc.o.d"
  "out_of_core_test"
  "out_of_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
