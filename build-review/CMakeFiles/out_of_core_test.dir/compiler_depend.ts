# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for out_of_core_test.
