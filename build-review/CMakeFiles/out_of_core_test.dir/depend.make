# Empty dependencies file for out_of_core_test.
# This may be replaced when dependencies are built.
