file(REMOVE_RECURSE
  "CMakeFiles/reference_eval_test.dir/tests/reference_eval_test.cc.o"
  "CMakeFiles/reference_eval_test.dir/tests/reference_eval_test.cc.o.d"
  "reference_eval_test"
  "reference_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
