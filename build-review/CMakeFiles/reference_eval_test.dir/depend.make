# Empty dependencies file for reference_eval_test.
# This may be replaced when dependencies are built.
