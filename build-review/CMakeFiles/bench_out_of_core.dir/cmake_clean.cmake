file(REMOVE_RECURSE
  "CMakeFiles/bench_out_of_core.dir/bench/bench_out_of_core.cc.o"
  "CMakeFiles/bench_out_of_core.dir/bench/bench_out_of_core.cc.o.d"
  "CMakeFiles/bench_out_of_core.dir/bench/harness.cc.o"
  "CMakeFiles/bench_out_of_core.dir/bench/harness.cc.o.d"
  "bench/bench_out_of_core"
  "bench/bench_out_of_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_out_of_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
