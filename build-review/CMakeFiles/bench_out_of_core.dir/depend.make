# Empty dependencies file for bench_out_of_core.
# This may be replaced when dependencies are built.
