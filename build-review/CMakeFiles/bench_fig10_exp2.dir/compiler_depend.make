# Empty compiler generated dependencies file for bench_fig10_exp2.
# This may be replaced when dependencies are built.
