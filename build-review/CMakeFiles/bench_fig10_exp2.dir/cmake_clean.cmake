file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_exp2.dir/bench/bench_fig10_exp2.cc.o"
  "CMakeFiles/bench_fig10_exp2.dir/bench/bench_fig10_exp2.cc.o.d"
  "CMakeFiles/bench_fig10_exp2.dir/bench/harness.cc.o"
  "CMakeFiles/bench_fig10_exp2.dir/bench/harness.cc.o.d"
  "bench/bench_fig10_exp2"
  "bench/bench_fig10_exp2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_exp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
