file(REMOVE_RECURSE
  "CMakeFiles/eval_centralized_test.dir/tests/eval_centralized_test.cc.o"
  "CMakeFiles/eval_centralized_test.dir/tests/eval_centralized_test.cc.o.d"
  "eval_centralized_test"
  "eval_centralized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
