# Empty dependencies file for bench_communication.
# This may be replaced when dependencies are built.
