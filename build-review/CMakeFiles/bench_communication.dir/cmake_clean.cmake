file(REMOVE_RECURSE
  "CMakeFiles/bench_communication.dir/bench/bench_communication.cc.o"
  "CMakeFiles/bench_communication.dir/bench/bench_communication.cc.o.d"
  "CMakeFiles/bench_communication.dir/bench/harness.cc.o"
  "CMakeFiles/bench_communication.dir/bench/harness.cc.o.d"
  "bench/bench_communication"
  "bench/bench_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
