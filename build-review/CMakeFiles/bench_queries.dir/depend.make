# Empty dependencies file for bench_queries.
# This may be replaced when dependencies are built.
