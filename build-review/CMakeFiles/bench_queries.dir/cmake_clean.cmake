file(REMOVE_RECURSE
  "CMakeFiles/bench_queries.dir/bench/bench_queries.cc.o"
  "CMakeFiles/bench_queries.dir/bench/bench_queries.cc.o.d"
  "CMakeFiles/bench_queries.dir/bench/harness.cc.o"
  "CMakeFiles/bench_queries.dir/bench/harness.cc.o.d"
  "bench/bench_queries"
  "bench/bench_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
