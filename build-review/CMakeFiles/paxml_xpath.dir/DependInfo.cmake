
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpath/ast.cc" "CMakeFiles/paxml_xpath.dir/src/xpath/ast.cc.o" "gcc" "CMakeFiles/paxml_xpath.dir/src/xpath/ast.cc.o.d"
  "/root/repo/src/xpath/lexer.cc" "CMakeFiles/paxml_xpath.dir/src/xpath/lexer.cc.o" "gcc" "CMakeFiles/paxml_xpath.dir/src/xpath/lexer.cc.o.d"
  "/root/repo/src/xpath/normal_form.cc" "CMakeFiles/paxml_xpath.dir/src/xpath/normal_form.cc.o" "gcc" "CMakeFiles/paxml_xpath.dir/src/xpath/normal_form.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "CMakeFiles/paxml_xpath.dir/src/xpath/parser.cc.o" "gcc" "CMakeFiles/paxml_xpath.dir/src/xpath/parser.cc.o.d"
  "/root/repo/src/xpath/query_plan.cc" "CMakeFiles/paxml_xpath.dir/src/xpath/query_plan.cc.o" "gcc" "CMakeFiles/paxml_xpath.dir/src/xpath/query_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/paxml_xml.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
