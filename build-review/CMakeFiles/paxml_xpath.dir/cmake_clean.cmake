file(REMOVE_RECURSE
  "CMakeFiles/paxml_xpath.dir/src/xpath/ast.cc.o"
  "CMakeFiles/paxml_xpath.dir/src/xpath/ast.cc.o.d"
  "CMakeFiles/paxml_xpath.dir/src/xpath/lexer.cc.o"
  "CMakeFiles/paxml_xpath.dir/src/xpath/lexer.cc.o.d"
  "CMakeFiles/paxml_xpath.dir/src/xpath/normal_form.cc.o"
  "CMakeFiles/paxml_xpath.dir/src/xpath/normal_form.cc.o.d"
  "CMakeFiles/paxml_xpath.dir/src/xpath/parser.cc.o"
  "CMakeFiles/paxml_xpath.dir/src/xpath/parser.cc.o.d"
  "CMakeFiles/paxml_xpath.dir/src/xpath/query_plan.cc.o"
  "CMakeFiles/paxml_xpath.dir/src/xpath/query_plan.cc.o.d"
  "libpaxml_xpath.a"
  "libpaxml_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
