file(REMOVE_RECURSE
  "libpaxml_xpath.a"
)
