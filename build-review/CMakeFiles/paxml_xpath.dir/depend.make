# Empty dependencies file for paxml_xpath.
# This may be replaced when dependencies are built.
