# Empty dependencies file for paxml_xml.
# This may be replaced when dependencies are built.
