file(REMOVE_RECURSE
  "libpaxml_xml.a"
)
