
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/builder.cc" "CMakeFiles/paxml_xml.dir/src/xml/builder.cc.o" "gcc" "CMakeFiles/paxml_xml.dir/src/xml/builder.cc.o.d"
  "/root/repo/src/xml/parser.cc" "CMakeFiles/paxml_xml.dir/src/xml/parser.cc.o" "gcc" "CMakeFiles/paxml_xml.dir/src/xml/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "CMakeFiles/paxml_xml.dir/src/xml/serializer.cc.o" "gcc" "CMakeFiles/paxml_xml.dir/src/xml/serializer.cc.o.d"
  "/root/repo/src/xml/symbol_table.cc" "CMakeFiles/paxml_xml.dir/src/xml/symbol_table.cc.o" "gcc" "CMakeFiles/paxml_xml.dir/src/xml/symbol_table.cc.o.d"
  "/root/repo/src/xml/tree.cc" "CMakeFiles/paxml_xml.dir/src/xml/tree.cc.o" "gcc" "CMakeFiles/paxml_xml.dir/src/xml/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/paxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
