file(REMOVE_RECURSE
  "CMakeFiles/paxml_xml.dir/src/xml/builder.cc.o"
  "CMakeFiles/paxml_xml.dir/src/xml/builder.cc.o.d"
  "CMakeFiles/paxml_xml.dir/src/xml/parser.cc.o"
  "CMakeFiles/paxml_xml.dir/src/xml/parser.cc.o.d"
  "CMakeFiles/paxml_xml.dir/src/xml/serializer.cc.o"
  "CMakeFiles/paxml_xml.dir/src/xml/serializer.cc.o.d"
  "CMakeFiles/paxml_xml.dir/src/xml/symbol_table.cc.o"
  "CMakeFiles/paxml_xml.dir/src/xml/symbol_table.cc.o.d"
  "CMakeFiles/paxml_xml.dir/src/xml/tree.cc.o"
  "CMakeFiles/paxml_xml.dir/src/xml/tree.cc.o.d"
  "libpaxml_xml.a"
  "libpaxml_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
