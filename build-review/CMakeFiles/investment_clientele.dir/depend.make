# Empty dependencies file for investment_clientele.
# This may be replaced when dependencies are built.
