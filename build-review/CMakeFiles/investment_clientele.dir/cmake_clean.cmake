file(REMOVE_RECURSE
  "CMakeFiles/investment_clientele.dir/examples/investment_clientele.cpp.o"
  "CMakeFiles/investment_clientele.dir/examples/investment_clientele.cpp.o.d"
  "examples/investment_clientele"
  "examples/investment_clientele.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investment_clientele.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
