file(REMOVE_RECURSE
  "CMakeFiles/async_sessions.dir/examples/async_sessions.cpp.o"
  "CMakeFiles/async_sessions.dir/examples/async_sessions.cpp.o.d"
  "examples/async_sessions"
  "examples/async_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
