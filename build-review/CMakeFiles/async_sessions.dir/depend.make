# Empty dependencies file for async_sessions.
# This may be replaced when dependencies are built.
