
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/annotations_pruning.cpp" "CMakeFiles/annotations_pruning.dir/examples/annotations_pruning.cpp.o" "gcc" "CMakeFiles/annotations_pruning.dir/examples/annotations_pruning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/paxml_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_messages.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_pool.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_fragment.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_xmark.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_eval.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_boolexpr.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_xpath.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_xml.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/paxml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
