# Empty compiler generated dependencies file for annotations_pruning.
# This may be replaced when dependencies are built.
