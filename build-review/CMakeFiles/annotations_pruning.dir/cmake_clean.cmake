file(REMOVE_RECURSE
  "CMakeFiles/annotations_pruning.dir/examples/annotations_pruning.cpp.o"
  "CMakeFiles/annotations_pruning.dir/examples/annotations_pruning.cpp.o.d"
  "examples/annotations_pruning"
  "examples/annotations_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotations_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
