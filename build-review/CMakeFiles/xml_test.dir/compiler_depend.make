# Empty compiler generated dependencies file for xml_test.
# This may be replaced when dependencies are built.
