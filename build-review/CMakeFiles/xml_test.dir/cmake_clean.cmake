file(REMOVE_RECURSE
  "CMakeFiles/xml_test.dir/tests/xml_test.cc.o"
  "CMakeFiles/xml_test.dir/tests/xml_test.cc.o.d"
  "xml_test"
  "xml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
