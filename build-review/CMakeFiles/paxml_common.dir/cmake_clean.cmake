file(REMOVE_RECURSE
  "CMakeFiles/paxml_common.dir/src/common/rng.cc.o"
  "CMakeFiles/paxml_common.dir/src/common/rng.cc.o.d"
  "CMakeFiles/paxml_common.dir/src/common/status.cc.o"
  "CMakeFiles/paxml_common.dir/src/common/status.cc.o.d"
  "CMakeFiles/paxml_common.dir/src/common/string_util.cc.o"
  "CMakeFiles/paxml_common.dir/src/common/string_util.cc.o.d"
  "libpaxml_common.a"
  "libpaxml_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxml_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
