file(REMOVE_RECURSE
  "libpaxml_common.a"
)
