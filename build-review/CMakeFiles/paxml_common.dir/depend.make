# Empty dependencies file for paxml_common.
# This may be replaced when dependencies are built.
