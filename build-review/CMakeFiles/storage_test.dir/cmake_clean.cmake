file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/tests/storage_test.cc.o"
  "CMakeFiles/storage_test.dir/tests/storage_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
