# Empty dependencies file for storage_test.
# This may be replaced when dependencies are built.
