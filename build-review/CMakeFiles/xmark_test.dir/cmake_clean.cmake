file(REMOVE_RECURSE
  "CMakeFiles/xmark_test.dir/tests/xmark_test.cc.o"
  "CMakeFiles/xmark_test.dir/tests/xmark_test.cc.o.d"
  "xmark_test"
  "xmark_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
