# Empty compiler generated dependencies file for xmark_test.
# This may be replaced when dependencies are built.
