# Empty compiler generated dependencies file for bench_fig9_exp1.
# This may be replaced when dependencies are built.
