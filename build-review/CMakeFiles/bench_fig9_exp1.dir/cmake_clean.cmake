file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_exp1.dir/bench/bench_fig9_exp1.cc.o"
  "CMakeFiles/bench_fig9_exp1.dir/bench/bench_fig9_exp1.cc.o.d"
  "CMakeFiles/bench_fig9_exp1.dir/bench/harness.cc.o"
  "CMakeFiles/bench_fig9_exp1.dir/bench/harness.cc.o.d"
  "bench/bench_fig9_exp1"
  "bench/bench_fig9_exp1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_exp1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
