# Empty compiler generated dependencies file for tool_paxml_fragment.
# This may be replaced when dependencies are built.
