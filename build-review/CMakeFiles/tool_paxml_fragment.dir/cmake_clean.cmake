file(REMOVE_RECURSE
  "CMakeFiles/tool_paxml_fragment.dir/tools/paxml_fragment.cc.o"
  "CMakeFiles/tool_paxml_fragment.dir/tools/paxml_fragment.cc.o.d"
  "tools/paxml_fragment"
  "tools/paxml_fragment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_paxml_fragment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
