file(REMOVE_RECURSE
  "CMakeFiles/tool_paxml_generate.dir/tools/paxml_generate.cc.o"
  "CMakeFiles/tool_paxml_generate.dir/tools/paxml_generate.cc.o.d"
  "tools/paxml_generate"
  "tools/paxml_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_paxml_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
