# Empty dependencies file for tool_paxml_generate.
# This may be replaced when dependencies are built.
