# Empty compiler generated dependencies file for fragment_test.
# This may be replaced when dependencies are built.
