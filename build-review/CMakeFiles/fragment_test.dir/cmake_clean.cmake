file(REMOVE_RECURSE
  "CMakeFiles/fragment_test.dir/tests/fragment_test.cc.o"
  "CMakeFiles/fragment_test.dir/tests/fragment_test.cc.o.d"
  "fragment_test"
  "fragment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
