#include "graph/digraph.h"

#include <algorithm>
#include <deque>

#include "common/rng.h"

namespace paxml {

Digraph RandomDigraph(int32_t vertex_count, double avg_out_degree,
                      uint64_t seed) {
  Digraph g;
  g.vertex_count = vertex_count;
  g.out.resize(static_cast<size_t>(vertex_count));
  if (vertex_count < 2) return g;
  Rng rng(seed);
  const uint64_t n = static_cast<uint64_t>(vertex_count);
  const uint64_t target_edges =
      static_cast<uint64_t>(avg_out_degree * static_cast<double>(n));
  for (uint64_t e = 0; e < target_edges; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u != v) g.out[static_cast<size_t>(u)].push_back(v);
  }
  for (auto& heads : g.out) {
    std::sort(heads.begin(), heads.end());
    heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
  }
  return g;
}

bool ReachesBFS(const Digraph& graph, NodeId source, NodeId target) {
  if (source < 0 || source >= graph.vertex_count) return false;
  if (target < 0 || target >= graph.vertex_count) return false;
  if (source == target) return true;
  std::vector<bool> visited(static_cast<size_t>(graph.vertex_count), false);
  std::deque<NodeId> queue;
  visited[static_cast<size_t>(source)] = true;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.out[static_cast<size_t>(u)]) {
      if (visited[static_cast<size_t>(v)]) continue;
      if (v == target) return true;
      visited[static_cast<size_t>(v)] = true;
      queue.push_back(v);
    }
  }
  return false;
}

}  // namespace paxml
