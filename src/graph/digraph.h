// Whole-graph directed graphs: the graph family's analogue of xml/tree.h.
//
// A Digraph is the pre-partitioning artifact — the single-site view that
// generators produce and ground-truth evaluation runs against. The
// distributed representation (graph/store.h) partitions one of these into
// per-site fragments the same way fragment/fragmenter.cc partitions a Tree.

#ifndef PAXML_GRAPH_DIGRAPH_H_
#define PAXML_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace paxml {

/// A directed graph over vertices [0, vertex_count). Out-adjacency lists
/// are sorted and duplicate-free, so equal graphs have equal
/// representations.
struct Digraph {
  int32_t vertex_count = 0;
  std::vector<std::vector<NodeId>> out;  ///< indexed by tail vertex

  uint64_t edge_count() const {
    uint64_t n = 0;
    for (const auto& heads : out) n += heads.size();
    return n;
  }
};

/// A pseudo-random digraph with `vertex_count` vertices and roughly
/// `avg_out_degree` out-edges per vertex (self-loops and duplicates
/// dropped). Deterministic in `seed`.
Digraph RandomDigraph(int32_t vertex_count, double avg_out_degree,
                      uint64_t seed);

/// Single-site ground truth: true iff `target` is reachable from `source`
/// (every vertex reaches itself). Out-of-range ids are unreachable.
bool ReachesBFS(const Digraph& graph, NodeId source, NodeId target);

}  // namespace paxml

#endif  // PAXML_GRAPH_DIGRAPH_H_
