#include "graph/store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "common/string_util.h"

namespace paxml {
namespace {

namespace fs = std::filesystem;

constexpr const char* kStoreName = "graph.paxg";
constexpr const char* kMagic = "paxml-graph";
constexpr int kVersion = 1;

}  // namespace

int32_t GraphFragment::LocalIndex(NodeId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return -1;
  return static_cast<int32_t>(it - vertices.begin());
}

Result<std::shared_ptr<const GraphFragmentStore>> BuildGraphStore(
    int32_t vertex_count, std::vector<FragmentId> owner,
    std::vector<std::pair<NodeId, NodeId>> edges) {
  if (vertex_count < 0) {
    return Status::InvalidArgument("graph store: negative vertex count");
  }
  if (owner.size() != static_cast<size_t>(vertex_count)) {
    return Status::InvalidArgument(
        "graph store: ownership map size does not match vertex count");
  }
  FragmentId max_fragment = kNullFragment;
  for (FragmentId f : owner) {
    if (f < 0) return Status::InvalidArgument("graph store: negative owner");
    max_fragment = std::max(max_fragment, f);
  }
  const size_t fragment_count =
      max_fragment == kNullFragment ? 0 : static_cast<size_t>(max_fragment) + 1;
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= vertex_count || v < 0 || v >= vertex_count) {
      return Status::InvalidArgument("graph store: edge endpoint out of range");
    }
  }
  // Canonical edge order: the store's identity is (owner, sorted deduped
  // edges), no matter which construction path supplied them.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  auto store = std::make_shared<GraphFragmentStore>();
  store->vertex_count_ = vertex_count;
  store->edge_count_ = edges.size();
  store->owner_ = std::move(owner);
  store->fragments_.resize(fragment_count);

  // Vertex lists first (global ids ascending), then adjacency in local
  // indices against them.
  for (NodeId v = 0; v < vertex_count; ++v) {
    store->fragments_[static_cast<size_t>(store->owner_[static_cast<size_t>(v)])]
        .vertices.push_back(v);
  }
  for (GraphFragment& frag : store->fragments_) {
    frag.local_out.resize(frag.vertices.size());
    frag.cut_out.resize(frag.vertices.size());
  }
  for (const auto& [u, v] : edges) {
    const FragmentId fu = store->owner_[static_cast<size_t>(u)];
    const FragmentId fv = store->owner_[static_cast<size_t>(v)];
    GraphFragment& tail = store->fragments_[static_cast<size_t>(fu)];
    const int32_t lu = tail.LocalIndex(u);
    if (fu == fv) {
      tail.local_out[static_cast<size_t>(lu)].push_back(
          store->fragments_[static_cast<size_t>(fv)].LocalIndex(v));
    } else {
      tail.cut_out[static_cast<size_t>(lu)].push_back(v);
      GraphFragment& head = store->fragments_[static_cast<size_t>(fv)];
      head.in_boundary.push_back(head.LocalIndex(v));
    }
  }
  // Sorted edge input gives sorted adjacency rows for free; the in-boundary
  // collects duplicates (one per incoming cut edge) that must go.
  for (GraphFragment& frag : store->fragments_) {
    std::sort(frag.in_boundary.begin(), frag.in_boundary.end());
    frag.in_boundary.erase(
        std::unique(frag.in_boundary.begin(), frag.in_boundary.end()),
        frag.in_boundary.end());
  }
  store->edges_ = std::move(edges);
  return std::shared_ptr<const GraphFragmentStore>(std::move(store));
}

Result<std::shared_ptr<const GraphFragmentStore>> PartitionDigraph(
    const Digraph& graph, size_t fragment_count, uint64_t seed) {
  if (fragment_count == 0) {
    return Status::InvalidArgument("partition: zero fragments");
  }
  Rng rng(seed);
  std::vector<FragmentId> owner(static_cast<size_t>(graph.vertex_count));
  for (auto& f : owner) {
    f = static_cast<FragmentId>(rng.NextBounded(fragment_count));
  }
  // Fragment ids must be dense (placement maps them to sites), and a
  // random draw can leave a fragment empty; pinning the first
  // fragment_count vertices one-per-fragment guarantees every id exists
  // whenever there are enough vertices.
  if (static_cast<size_t>(graph.vertex_count) >= fragment_count) {
    for (size_t f = 0; f < fragment_count; ++f) {
      owner[f] = static_cast<FragmentId>(f);
    }
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(graph.edge_count());
  for (NodeId u = 0; u < graph.vertex_count; ++u) {
    for (NodeId v : graph.out[static_cast<size_t>(u)]) {
      edges.emplace_back(u, v);
    }
  }
  return BuildGraphStore(graph.vertex_count, std::move(owner),
                         std::move(edges));
}

Status SaveGraph(const GraphFragmentStore& store,
                 const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory: " + directory +
                                   ": " + ec.message());
  }
  std::string text;
  text += StringFormat("%s %d\n", kMagic, kVersion);
  text += StringFormat("vertices %d\n", store.vertex_count());
  text += StringFormat("fragments %zu\n", store.fragment_count());
  text += "owners";
  for (FragmentId f : store.owners()) text += StringFormat(" %d", f);
  text += "\n";
  text += StringFormat("edges %zu\n", store.edges().size());
  for (const auto& [u, v] : store.edges()) {
    text += StringFormat("%d %d\n", u, v);
  }
  const fs::path path = fs::path(directory) / kStoreName;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path.string());
  }
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::Internal("short write: " + path.string());
  return Status::OK();
}

Result<std::shared_ptr<const GraphFragmentStore>> LoadGraph(
    const std::string& directory) {
  const fs::path path = fs::path(directory) / kStoreName;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path.string());

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion) {
    return Status::ParseError("graph store: bad header: " + path.string());
  }
  std::string keyword;
  int32_t vertex_count = 0;
  size_t fragment_count = 0;
  if (!(in >> keyword >> vertex_count) || keyword != "vertices" ||
      vertex_count < 0) {
    return Status::ParseError("graph store: bad vertex count");
  }
  if (!(in >> keyword >> fragment_count) || keyword != "fragments") {
    return Status::ParseError("graph store: bad fragment count");
  }
  if (!(in >> keyword) || keyword != "owners") {
    return Status::ParseError("graph store: missing owners");
  }
  std::vector<FragmentId> owner(static_cast<size_t>(vertex_count));
  for (auto& f : owner) {
    if (!(in >> f) || f < 0 || static_cast<size_t>(f) >= fragment_count) {
      return Status::ParseError("graph store: bad owner entry");
    }
  }
  size_t edge_count = 0;
  if (!(in >> keyword >> edge_count) || keyword != "edges") {
    return Status::ParseError("graph store: bad edge count");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(edge_count);
  for (size_t e = 0; e < edge_count; ++e) {
    NodeId u, v;
    if (!(in >> u >> v)) {
      return Status::ParseError("graph store: truncated edge list");
    }
    edges.emplace_back(u, v);
  }
  PAXML_ASSIGN_OR_RETURN(
      std::shared_ptr<const GraphFragmentStore> store,
      BuildGraphStore(vertex_count, std::move(owner), std::move(edges)));
  // The owner map defines the fragment count; a declared count it cannot
  // reproduce (trailing ownerless fragments) is a corrupt file, not a
  // store the canonical builder can express.
  if (store->fragment_count() != fragment_count) {
    return Status::ParseError("graph store: fragment count does not match owners");
  }
  return store;
}

bool IsGraphStoreDir(const std::string& directory) {
  std::error_code ec;
  return fs::exists(fs::path(directory) / kStoreName, ec);
}

}  // namespace paxml
