// Partitioned digraph fragments: the graph family's analogue of
// fragment/fragment.h + fragment/storage.h.
//
// A GraphFragmentStore splits one Digraph into fragments by a vertex ->
// fragment ownership map. Each fragment keeps its local sub-adjacency in
// local indices, its *cut edges* (tail local, head owned elsewhere) and its
// *in-boundary* (local vertices some other fragment's cut edge points at).
// Those two tables are exactly the coupling interface of the paper's
// partial-evaluation scheme carried over to reachability (Fan et al.): a
// site can evaluate everything about its fragment except which boundary
// entries are reachable from outside, and the per-entry dependencies it
// reports are O(cut edges) in total.
//
// Every construction path funnels through BuildGraphStore, so a store
// built by the in-process partitioner and one loaded from disk at a peer
// are bit-identical — the determinism the socket deployment's exact
// RunStats reproduction rests on.

#ifndef PAXML_GRAPH_STORE_H_
#define PAXML_GRAPH_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/workload_data.h"
#include "graph/digraph.h"

namespace paxml {

/// One site's piece of the graph. Vertices are kept as sorted global ids;
/// adjacency is in local indices so traversal never touches the ownership
/// map.
struct GraphFragment {
  std::vector<NodeId> vertices;  ///< sorted global ids

  /// Local out-edges: local tail index -> sorted local head indices.
  std::vector<std::vector<int32_t>> local_out;

  /// Cut out-edges: local tail index -> sorted global ids owned elsewhere.
  std::vector<std::vector<NodeId>> cut_out;

  /// Local indices (sorted) of vertices some other fragment's cut edge
  /// enters — the fragment's boolean variables in the reachability scheme.
  std::vector<int32_t> in_boundary;

  /// Local index of global vertex `v`, or -1 when `v` is owned elsewhere.
  int32_t LocalIndex(NodeId v) const;

  uint64_t cut_edge_count() const {
    uint64_t n = 0;
    for (const auto& heads : cut_out) n += heads.size();
    return n;
  }
};

/// The partitioned digraph a graph cluster evaluates over.
class GraphFragmentStore : public WorkloadData {
 public:
  std::string_view family() const override { return kGraphWorkloadFamily; }
  size_t fragment_count() const override { return fragments_.size(); }

  int32_t vertex_count() const { return vertex_count_; }
  uint64_t edge_count() const { return edge_count_; }

  FragmentId fragment_of(NodeId v) const {
    return owner_[static_cast<size_t>(v)];
  }
  const std::vector<FragmentId>& owners() const { return owner_; }

  const GraphFragment& fragment(FragmentId f) const {
    return fragments_[static_cast<size_t>(f)];
  }

  /// The original edge list, sorted by (tail, head) — what SaveGraph
  /// persists.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edges_;
  }

 private:
  friend Result<std::shared_ptr<const GraphFragmentStore>> BuildGraphStore(
      int32_t vertex_count, std::vector<FragmentId> owner,
      std::vector<std::pair<NodeId, NodeId>> edges);

  int32_t vertex_count_ = 0;
  uint64_t edge_count_ = 0;
  std::vector<FragmentId> owner_;  ///< vertex -> owning fragment
  std::vector<GraphFragment> fragments_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// The canonical constructor: validates ids, sorts and dedupes the edge
/// list, and derives every fragment table from (owner, edges) alone.
/// `owner` maps each vertex to a fragment in [0, max(owner)+1); fragments
/// with no vertices are legal (they hold empty tables).
Result<std::shared_ptr<const GraphFragmentStore>> BuildGraphStore(
    int32_t vertex_count, std::vector<FragmentId> owner,
    std::vector<std::pair<NodeId, NodeId>> edges);

/// Random vertex partitioning of `graph` into `fragment_count` fragments,
/// deterministic in `seed`.
Result<std::shared_ptr<const GraphFragmentStore>> PartitionDigraph(
    const Digraph& graph, size_t fragment_count, uint64_t seed);

/// Writes `store` under `directory` as a single `graph.paxg` text file
/// (created if absent; an existing store file is overwritten).
Status SaveGraph(const GraphFragmentStore& store, const std::string& directory);

/// Loads a store previously written by SaveGraph.
Result<std::shared_ptr<const GraphFragmentStore>> LoadGraph(
    const std::string& directory);

/// True iff `directory` holds a saved graph store — how tools/paxml_site
/// decides which workload a data directory is.
bool IsGraphStoreDir(const std::string& directory);

}  // namespace paxml

#endif  // PAXML_GRAPH_STORE_H_
