#include "boolexpr/codec.h"

#include <unordered_map>

#include "common/logging.h"

namespace paxml {

// ---- ByteWriter -----------------------------------------------------------

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.append(s);
}

void ByteWriter::PutBytes(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

// ---- ByteReader -----------------------------------------------------------

Result<uint8_t> ByteReader::GetU8() {
  if (pos_ >= bytes_.size()) return Status::OutOfRange("read past end of buffer");
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<uint32_t> ByteReader::GetU32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    PAXML_ASSIGN_OR_RETURN(uint8_t b, GetU8());
    v |= static_cast<uint32_t>(b) << (8 * i);
  }
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    PAXML_ASSIGN_OR_RETURN(uint8_t b, GetU8());
    v |= static_cast<uint64_t>(b) << (8 * i);
  }
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    PAXML_ASSIGN_OR_RETURN(uint8_t b, GetU8());
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    if (shift > 63) return Status::ParseError("varint too long");
  }
}

Result<std::string> ByteReader::GetString() {
  PAXML_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  if (n > remaining()) return Status::OutOfRange("string length past buffer end");
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

// ---- Formula codec --------------------------------------------------------

namespace {

/// Emits nodes reachable from the roots in topological (operands-first)
/// order; returns local index per formula handle.
void TopoEncode(const FormulaArena& arena, const std::vector<Formula>& roots,
                ByteWriter* out) {
  std::vector<Formula> order;
  std::unordered_map<Formula, uint32_t> local;
  // Iterative post-order.
  struct Item {
    Formula f;
    bool expanded;
  };
  std::vector<Item> stack;
  for (Formula r : roots) stack.push_back({r, false});
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (local.count(item.f)) continue;
    const FormulaKind k = arena.kind(item.f);
    const bool leaf = (k == FormulaKind::kFalse || k == FormulaKind::kTrue ||
                       k == FormulaKind::kVar);
    if (leaf || item.expanded) {
      local.emplace(item.f, static_cast<uint32_t>(order.size()));
      order.push_back(item.f);
      continue;
    }
    stack.push_back({item.f, true});
    stack.push_back({arena.lhs(item.f), false});
    if (k != FormulaKind::kNot) stack.push_back({arena.rhs(item.f), false});
  }

  out->PutVarint(order.size());
  for (Formula f : order) {
    const FormulaKind k = arena.kind(f);
    out->PutU8(static_cast<uint8_t>(k));
    switch (k) {
      case FormulaKind::kFalse:
      case FormulaKind::kTrue:
        break;
      case FormulaKind::kVar:
        out->PutVarint(arena.var(f));
        break;
      case FormulaKind::kNot:
        out->PutVarint(local.at(arena.lhs(f)));
        break;
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        out->PutVarint(local.at(arena.lhs(f)));
        out->PutVarint(local.at(arena.rhs(f)));
        break;
    }
  }
  out->PutVarint(roots.size());
  for (Formula r : roots) out->PutVarint(local.at(r));
}

Result<std::vector<Formula>> TopoDecode(FormulaArena* arena, ByteReader* in) {
  PAXML_ASSIGN_OR_RETURN(uint64_t count, in->GetVarint());
  std::vector<Formula> local;
  local.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PAXML_ASSIGN_OR_RETURN(uint8_t kind_byte, in->GetU8());
    if (kind_byte > static_cast<uint8_t>(FormulaKind::kOr)) {
      return Status::ParseError("bad formula node kind");
    }
    const FormulaKind k = static_cast<FormulaKind>(kind_byte);
    auto operand = [&](uint64_t idx) -> Result<Formula> {
      if (idx >= local.size()) {
        return Status::ParseError("formula operand forward reference");
      }
      return local[static_cast<size_t>(idx)];
    };
    switch (k) {
      case FormulaKind::kFalse:
        local.push_back(kFalseFormula);
        break;
      case FormulaKind::kTrue:
        local.push_back(kTrueFormula);
        break;
      case FormulaKind::kVar: {
        PAXML_ASSIGN_OR_RETURN(uint64_t v, in->GetVarint());
        local.push_back(arena->Var(static_cast<VarId>(v)));
        break;
      }
      case FormulaKind::kNot: {
        PAXML_ASSIGN_OR_RETURN(uint64_t a, in->GetVarint());
        PAXML_ASSIGN_OR_RETURN(Formula fa, operand(a));
        local.push_back(arena->Not(fa));
        break;
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        PAXML_ASSIGN_OR_RETURN(uint64_t a, in->GetVarint());
        PAXML_ASSIGN_OR_RETURN(uint64_t b, in->GetVarint());
        PAXML_ASSIGN_OR_RETURN(Formula fa, operand(a));
        PAXML_ASSIGN_OR_RETURN(Formula fb, operand(b));
        local.push_back(k == FormulaKind::kAnd ? arena->And(fa, fb)
                                               : arena->Or(fa, fb));
        break;
      }
    }
  }
  PAXML_ASSIGN_OR_RETURN(uint64_t root_count, in->GetVarint());
  std::vector<Formula> roots;
  roots.reserve(root_count);
  for (uint64_t i = 0; i < root_count; ++i) {
    PAXML_ASSIGN_OR_RETURN(uint64_t idx, in->GetVarint());
    if (idx >= local.size()) return Status::ParseError("bad formula root index");
    roots.push_back(local[static_cast<size_t>(idx)]);
  }
  return roots;
}

}  // namespace

void EncodeFormula(const FormulaArena& arena, Formula f, ByteWriter* out) {
  TopoEncode(arena, {f}, out);
}

Result<Formula> DecodeFormula(FormulaArena* arena, ByteReader* in) {
  PAXML_ASSIGN_OR_RETURN(std::vector<Formula> roots, TopoDecode(arena, in));
  if (roots.size() != 1) return Status::ParseError("expected single formula root");
  return roots[0];
}

void EncodeFormulaVector(const FormulaArena& arena,
                         const std::vector<Formula>& fs, ByteWriter* out) {
  TopoEncode(arena, fs, out);
}

Result<std::vector<Formula>> DecodeFormulaVector(FormulaArena* arena,
                                                 ByteReader* in) {
  return TopoDecode(arena, in);
}

}  // namespace paxml
