// Variable bindings (substitution environments) used during unification.
//
// Procedure evalFT of the paper unifies variables introduced by partial
// evaluation with values (or formulas) computed by other fragments. A
// Binding records VarId -> Formula mappings and applies them to formulas.

#ifndef PAXML_BOOLEXPR_ENV_H_
#define PAXML_BOOLEXPR_ENV_H_

#include <optional>
#include <unordered_map>

#include "boolexpr/formula.h"

namespace paxml {

/// A substitution environment: maps variables to replacement formulas
/// (constants included). Bindings whose replacement mentions other bound
/// variables are supported via ApplyFixpoint.
class Binding {
 public:
  /// Binds v := f (formula handle in the arena that Apply will be given).
  /// Rebinding an already-bound variable overwrites.
  void Bind(VarId v, Formula f) { map_[v] = f; }
  void BindConst(VarId v, bool b) {
    map_[v] = b ? kTrueFormula : kFalseFormula;
  }

  std::optional<Formula> Lookup(VarId v) const {
    auto it = map_.find(v);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(VarId v) const { return map_.count(v) != 0; }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// One substitution pass over `f`.
  Formula Apply(FormulaArena* arena, Formula f) const {
    return arena->Substitute(
        f, [this](VarId v) { return this->Lookup(v); });
  }

  /// Substitutes until no bound variable remains in the result (chained
  /// bindings). Guards against cycles by bounding iterations.
  Formula ApplyFixpoint(FormulaArena* arena, Formula f) const {
    for (size_t round = 0; round <= map_.size(); ++round) {
      Formula next = Apply(arena, f);
      if (next == f) return f;
      f = next;
    }
    return f;  // cyclic binding: return best effort (tests forbid cycles)
  }

  /// Merges `other` into this binding (other wins on conflicts).
  void Merge(const Binding& other) {
    for (const auto& [v, f] : other.map_) map_[v] = f;
  }

  const std::unordered_map<VarId, Formula>& map() const { return map_; }

 private:
  std::unordered_map<VarId, Formula> map_;
};

}  // namespace paxml

#endif  // PAXML_BOOLEXPR_ENV_H_
