// Boolean formulas over variables: the paper's partial-answer representation.
//
// Partial evaluation of an XPath query over a fragment cannot resolve truth
// values that depend on missing parts of the tree (subtrees behind virtual
// nodes, ancestors above the fragment root). Those unknowns become variables;
// qualifier and selection vectors then hold *formulas* instead of booleans —
// the "residual functions" of partial evaluation. The coordinator later
// substitutes variables with values received from other fragments
// (unification, Procedure evalFT).
//
// Formulas live in a FormulaArena: hash-consed DAG nodes addressed by a
// 32-bit handle. Constants kFalse/kTrue are handles 0/1 in every arena.
// Construction applies cheap local simplifications (constant folding,
// idempotence, double negation, direct complements), which keeps residual
// formulas near the sizes the paper's analysis assumes (linear in |Q| per
// vector entry in practice).

#ifndef PAXML_BOOLEXPR_FORMULA_H_
#define PAXML_BOOLEXPR_FORMULA_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace paxml {

/// Global identifier of a Boolean variable within one query evaluation.
using VarId = uint32_t;

/// Handle to a formula node within a FormulaArena.
using Formula = int32_t;

inline constexpr Formula kFalseFormula = 0;
inline constexpr Formula kTrueFormula = 1;

enum class FormulaKind : uint8_t {
  kFalse = 0,
  kTrue = 1,
  kVar = 2,
  kNot = 3,
  kAnd = 4,
  kOr = 5,
};

/// Arena of hash-consed formula nodes.
///
/// Not thread-safe; each site/evaluation owns its arena. Handles are only
/// meaningful relative to their arena; use Export/Import (serializer) or
/// Transfer to move formulas between arenas.
class FormulaArena {
 public:
  FormulaArena();

  FormulaArena(const FormulaArena&) = delete;
  FormulaArena& operator=(const FormulaArena&) = delete;
  FormulaArena(FormulaArena&&) = default;
  FormulaArena& operator=(FormulaArena&&) = default;

  // ---- Construction ------------------------------------------------------

  Formula False() const { return kFalseFormula; }
  Formula True() const { return kTrueFormula; }
  Formula Const(bool b) const { return b ? kTrueFormula : kFalseFormula; }

  /// The variable `v` as a formula.
  Formula Var(VarId v);

  Formula Not(Formula f);
  Formula And(Formula a, Formula b);
  Formula Or(Formula a, Formula b);

  /// Folds And/Or over a list (empty list -> identity element).
  Formula AndAll(const std::vector<Formula>& fs);
  Formula OrAll(const std::vector<Formula>& fs);

  // ---- Inspection --------------------------------------------------------

  FormulaKind kind(Formula f) const { return nodes_[static_cast<size_t>(f)].kind; }
  bool IsConst(Formula f) const { return f == kFalseFormula || f == kTrueFormula; }
  bool IsTrue(Formula f) const { return f == kTrueFormula; }
  bool IsFalse(Formula f) const { return f == kFalseFormula; }

  /// Constant value if the formula is constant.
  std::optional<bool> ConstValue(Formula f) const;

  /// Variable id of a kVar node.
  VarId var(Formula f) const;

  /// Operands (Not: lhs only).
  Formula lhs(Formula f) const { return nodes_[static_cast<size_t>(f)].lhs; }
  Formula rhs(Formula f) const { return nodes_[static_cast<size_t>(f)].rhs; }

  /// All distinct variables appearing in `f`.
  std::vector<VarId> CollectVars(Formula f) const;

  /// True iff variable `v` occurs in `f`.
  bool ContainsVar(Formula f, VarId v) const;

  /// Number of DAG nodes reachable from `f` (size of the residual function).
  size_t DagSize(Formula f) const;

  /// Total nodes allocated in this arena.
  size_t size() const { return nodes_.size(); }

  // ---- Evaluation & substitution ----------------------------------------

  /// Evaluates under a total assignment. Unbound variables are an error.
  Result<bool> Evaluate(Formula f,
                        const std::function<std::optional<bool>(VarId)>& assignment) const;

  /// Replaces variables by formulas per `binding` (unbound vars stay).
  /// Memoized over the DAG; runs in O(reachable nodes).
  Formula Substitute(Formula f,
                     const std::function<std::optional<Formula>(VarId)>& binding);

  /// Pretty-prints with a variable namer (default "v<N>").
  std::string ToString(Formula f,
                       const std::function<std::string(VarId)>& namer = {}) const;

  /// Copies `f` (and its reachable DAG) from `src` into this arena.
  Formula Transfer(const FormulaArena& src, Formula f);

 private:
  struct FNode {
    FormulaKind kind;
    VarId var = 0;
    Formula lhs = -1;
    Formula rhs = -1;
  };

  struct NodeKey {
    FormulaKind kind;
    uint32_t a;
    uint32_t b;
    bool operator==(const NodeKey& o) const {
      return kind == o.kind && a == o.a && b == o.b;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.kind);
      h = h * 0x9e3779b97f4a7c15ULL + k.a;
      h = h * 0x9e3779b97f4a7c15ULL + k.b;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  Formula Intern(FormulaKind kind, uint32_t a, uint32_t b);

  /// True iff a == ¬b or b == ¬a (cheap structural complement check).
  bool AreComplements(Formula a, Formula b) const;

  std::vector<FNode> nodes_;
  std::unordered_map<NodeKey, Formula, NodeKeyHash> interned_;
};

}  // namespace paxml

#endif  // PAXML_BOOLEXPR_FORMULA_H_
