// Binary encoding of formulas and formula vectors.
//
// Partial answers cross the (simulated) network as serialized bytes so that
// communication costs are measured in the same unit the paper's bounds use.
// The encoding is a topologically ordered node list, so shared subterms of
// the residual DAG are shipped once.

#ifndef PAXML_BOOLEXPR_CODEC_H_
#define PAXML_BOOLEXPR_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "boolexpr/formula.h"
#include "common/result.h"

namespace paxml {

/// Append-only byte sink with little-endian primitive writers.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutString(std::string_view s);
  void PutBytes(const void* data, size_t n);

  const std::string& bytes() const { return buf_; }
  std::string Take() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Cursor over immutable bytes with checked readers.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  Result<std::string> GetString();

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  /// The unread suffix, without consuming it.
  std::string_view rest() const { return bytes_.substr(pos_); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Encoded size of `v` as a varint, without writing it — the unit the
/// accounting layers use to price id lists before/after delta transcoding.
inline size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Serializes one formula (with its reachable DAG) from `arena`.
void EncodeFormula(const FormulaArena& arena, Formula f, ByteWriter* out);

/// Deserializes a formula into `arena` (handles re-interned locally).
Result<Formula> DecodeFormula(FormulaArena* arena, ByteReader* in);

/// Serializes a vector of formulas, sharing DAG structure across entries.
void EncodeFormulaVector(const FormulaArena& arena,
                         const std::vector<Formula>& fs, ByteWriter* out);

Result<std::vector<Formula>> DecodeFormulaVector(FormulaArena* arena,
                                                 ByteReader* in);

}  // namespace paxml

#endif  // PAXML_BOOLEXPR_CODEC_H_
