#include "boolexpr/formula.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {

FormulaArena::FormulaArena() {
  // Handles 0 and 1 are the constants in every arena.
  nodes_.push_back(FNode{FormulaKind::kFalse});
  nodes_.push_back(FNode{FormulaKind::kTrue});
}

Formula FormulaArena::Intern(FormulaKind kind, uint32_t a, uint32_t b) {
  NodeKey key{kind, a, b};
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  const Formula f = static_cast<Formula>(nodes_.size());
  FNode n;
  n.kind = kind;
  if (kind == FormulaKind::kVar) {
    n.var = a;
  } else {
    n.lhs = static_cast<Formula>(a);
    n.rhs = static_cast<Formula>(b);
  }
  nodes_.push_back(n);
  interned_.emplace(key, f);
  return f;
}

Formula FormulaArena::Var(VarId v) {
  return Intern(FormulaKind::kVar, v, 0);
}

bool FormulaArena::AreComplements(Formula a, Formula b) const {
  const FNode& na = nodes_[static_cast<size_t>(a)];
  const FNode& nb = nodes_[static_cast<size_t>(b)];
  return (na.kind == FormulaKind::kNot && na.lhs == b) ||
         (nb.kind == FormulaKind::kNot && nb.lhs == a);
}

Formula FormulaArena::Not(Formula f) {
  if (f == kFalseFormula) return kTrueFormula;
  if (f == kTrueFormula) return kFalseFormula;
  const FNode& n = nodes_[static_cast<size_t>(f)];
  if (n.kind == FormulaKind::kNot) return n.lhs;  // ¬¬f = f
  return Intern(FormulaKind::kNot, static_cast<uint32_t>(f), 0);
}

Formula FormulaArena::And(Formula a, Formula b) {
  if (a == kFalseFormula || b == kFalseFormula) return kFalseFormula;
  if (a == kTrueFormula) return b;
  if (b == kTrueFormula) return a;
  if (a == b) return a;
  if (AreComplements(a, b)) return kFalseFormula;
  // Canonical operand order makes hash-consing commutative.
  if (a > b) std::swap(a, b);
  return Intern(FormulaKind::kAnd, static_cast<uint32_t>(a),
                static_cast<uint32_t>(b));
}

Formula FormulaArena::Or(Formula a, Formula b) {
  if (a == kTrueFormula || b == kTrueFormula) return kTrueFormula;
  if (a == kFalseFormula) return b;
  if (b == kFalseFormula) return a;
  if (a == b) return a;
  if (AreComplements(a, b)) return kTrueFormula;
  if (a > b) std::swap(a, b);
  return Intern(FormulaKind::kOr, static_cast<uint32_t>(a),
                static_cast<uint32_t>(b));
}

Formula FormulaArena::AndAll(const std::vector<Formula>& fs) {
  Formula acc = kTrueFormula;
  for (Formula f : fs) acc = And(acc, f);
  return acc;
}

Formula FormulaArena::OrAll(const std::vector<Formula>& fs) {
  Formula acc = kFalseFormula;
  for (Formula f : fs) acc = Or(acc, f);
  return acc;
}

std::optional<bool> FormulaArena::ConstValue(Formula f) const {
  if (f == kFalseFormula) return false;
  if (f == kTrueFormula) return true;
  return std::nullopt;
}

VarId FormulaArena::var(Formula f) const {
  PAXML_CHECK(kind(f) == FormulaKind::kVar);
  return nodes_[static_cast<size_t>(f)].var;
}

std::vector<VarId> FormulaArena::CollectVars(Formula f) const {
  std::vector<VarId> out;
  std::vector<Formula> stack = {f};
  std::unordered_map<Formula, bool> seen;
  while (!stack.empty()) {
    Formula cur = stack.back();
    stack.pop_back();
    if (seen.count(cur)) continue;
    seen[cur] = true;
    const FNode& n = nodes_[static_cast<size_t>(cur)];
    switch (n.kind) {
      case FormulaKind::kVar:
        out.push_back(n.var);
        break;
      case FormulaKind::kNot:
        stack.push_back(n.lhs);
        break;
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        stack.push_back(n.lhs);
        stack.push_back(n.rhs);
        break;
      default:
        break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool FormulaArena::ContainsVar(Formula f, VarId v) const {
  std::vector<Formula> stack = {f};
  std::unordered_map<Formula, bool> seen;
  while (!stack.empty()) {
    Formula cur = stack.back();
    stack.pop_back();
    if (seen.count(cur)) continue;
    seen[cur] = true;
    const FNode& n = nodes_[static_cast<size_t>(cur)];
    if (n.kind == FormulaKind::kVar && n.var == v) return true;
    if (n.kind == FormulaKind::kNot) stack.push_back(n.lhs);
    if (n.kind == FormulaKind::kAnd || n.kind == FormulaKind::kOr) {
      stack.push_back(n.lhs);
      stack.push_back(n.rhs);
    }
  }
  return false;
}

size_t FormulaArena::DagSize(Formula f) const {
  std::vector<Formula> stack = {f};
  std::unordered_map<Formula, bool> seen;
  size_t count = 0;
  while (!stack.empty()) {
    Formula cur = stack.back();
    stack.pop_back();
    if (seen.count(cur)) continue;
    seen[cur] = true;
    ++count;
    const FNode& n = nodes_[static_cast<size_t>(cur)];
    if (n.kind == FormulaKind::kNot) stack.push_back(n.lhs);
    if (n.kind == FormulaKind::kAnd || n.kind == FormulaKind::kOr) {
      stack.push_back(n.lhs);
      stack.push_back(n.rhs);
    }
  }
  return count;
}

Result<bool> FormulaArena::Evaluate(
    Formula f,
    const std::function<std::optional<bool>(VarId)>& assignment) const {
  std::unordered_map<Formula, bool> memo;
  // Explicit stack with post-order evaluation to avoid recursion depth limits.
  struct Item {
    Formula f;
    bool expanded;
  };
  std::vector<Item> stack = {{f, false}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (memo.count(item.f)) continue;
    const FNode& n = nodes_[static_cast<size_t>(item.f)];
    switch (n.kind) {
      case FormulaKind::kFalse:
        memo[item.f] = false;
        break;
      case FormulaKind::kTrue:
        memo[item.f] = true;
        break;
      case FormulaKind::kVar: {
        std::optional<bool> v = assignment(n.var);
        if (!v) {
          return Status::InvalidArgument(
              StringFormat("unbound variable v%u in Evaluate", n.var));
        }
        memo[item.f] = *v;
        break;
      }
      case FormulaKind::kNot:
        if (!item.expanded) {
          stack.push_back({item.f, true});
          stack.push_back({n.lhs, false});
        } else {
          memo[item.f] = !memo.at(n.lhs);
        }
        break;
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        if (!item.expanded) {
          stack.push_back({item.f, true});
          stack.push_back({n.lhs, false});
          stack.push_back({n.rhs, false});
        } else {
          const bool l = memo.at(n.lhs);
          const bool r = memo.at(n.rhs);
          memo[item.f] = (n.kind == FormulaKind::kAnd) ? (l && r) : (l || r);
        }
        break;
    }
  }
  return memo.at(f);
}

Formula FormulaArena::Substitute(
    Formula f, const std::function<std::optional<Formula>(VarId)>& binding) {
  std::unordered_map<Formula, Formula> memo;
  struct Item {
    Formula f;
    bool expanded;
  };
  std::vector<Item> stack = {{f, false}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (memo.count(item.f)) continue;
    // Note: reading kind/operands via accessors because nodes_ may grow
    // (reallocate) as substitution interns new nodes.
    const FormulaKind k = kind(item.f);
    switch (k) {
      case FormulaKind::kFalse:
      case FormulaKind::kTrue:
        memo[item.f] = item.f;
        break;
      case FormulaKind::kVar: {
        const VarId v = nodes_[static_cast<size_t>(item.f)].var;
        std::optional<Formula> b = binding(v);
        memo[item.f] = b ? *b : item.f;
        break;
      }
      case FormulaKind::kNot: {
        const Formula child = lhs(item.f);
        if (!item.expanded) {
          stack.push_back({item.f, true});
          stack.push_back({child, false});
        } else {
          memo[item.f] = Not(memo.at(child));
        }
        break;
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        const Formula l = lhs(item.f);
        const Formula r = rhs(item.f);
        if (!item.expanded) {
          stack.push_back({item.f, true});
          stack.push_back({l, false});
          stack.push_back({r, false});
        } else {
          memo[item.f] = (k == FormulaKind::kAnd) ? And(memo.at(l), memo.at(r))
                                                  : Or(memo.at(l), memo.at(r));
        }
        break;
      }
    }
  }
  return memo.at(f);
}

std::string FormulaArena::ToString(
    Formula f, const std::function<std::string(VarId)>& namer) const {
  auto name = [&](VarId v) {
    return namer ? namer(v) : StringFormat("v%u", v);
  };
  std::function<std::string(Formula, int)> render = [&](Formula g,
                                                        int parent_prec) {
    const FNode& n = nodes_[static_cast<size_t>(g)];
    switch (n.kind) {
      case FormulaKind::kFalse:
        return std::string("F");
      case FormulaKind::kTrue:
        return std::string("T");
      case FormulaKind::kVar:
        return name(n.var);
      case FormulaKind::kNot:
        return "!" + render(n.lhs, 3);
      case FormulaKind::kAnd: {
        std::string s = render(n.lhs, 2) + " & " + render(n.rhs, 2);
        return parent_prec > 2 ? "(" + s + ")" : s;
      }
      case FormulaKind::kOr: {
        std::string s = render(n.lhs, 1) + " | " + render(n.rhs, 1);
        return parent_prec > 1 ? "(" + s + ")" : s;
      }
    }
    return std::string("?");
  };
  return render(f, 0);
}

Formula FormulaArena::Transfer(const FormulaArena& src, Formula f) {
  std::unordered_map<Formula, Formula> memo;
  struct Item {
    Formula f;
    bool expanded;
  };
  std::vector<Item> stack = {{f, false}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (memo.count(item.f)) continue;
    const FormulaKind k = src.kind(item.f);
    switch (k) {
      case FormulaKind::kFalse:
        memo[item.f] = kFalseFormula;
        break;
      case FormulaKind::kTrue:
        memo[item.f] = kTrueFormula;
        break;
      case FormulaKind::kVar:
        memo[item.f] = Var(src.nodes_[static_cast<size_t>(item.f)].var);
        break;
      case FormulaKind::kNot: {
        const Formula child = src.lhs(item.f);
        if (!item.expanded) {
          stack.push_back({item.f, true});
          stack.push_back({child, false});
        } else {
          memo[item.f] = Not(memo.at(child));
        }
        break;
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        const Formula l = src.lhs(item.f);
        const Formula r = src.rhs(item.f);
        if (!item.expanded) {
          stack.push_back({item.f, true});
          stack.push_back({l, false});
          stack.push_back({r, false});
        } else {
          memo[item.f] = (k == FormulaKind::kAnd) ? And(memo.at(l), memo.at(r))
                                                  : Or(memo.at(l), memo.at(r));
        }
        break;
      }
    }
  }
  return memo.at(f);
}

}  // namespace paxml
