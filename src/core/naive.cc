#include "core/naive.h"

#include <algorithm>

#include "eval/centralized.h"
#include "xml/serializer.h"

namespace paxml {

Result<DistributedResult> EvaluateNaiveCentralized(const Cluster& cluster,
                                                   const CompiledQuery& query) {
  const FragmentedDocument& doc = cluster.doc();
  QueryRun run(&cluster);
  const SiteId sq = cluster.query_site();

  std::vector<SiteId> sites = run.AllSites();
  for (SiteId s : sites) run.Send(sq, s, query.source().size());

  // One visit per site: serialize and ship every fragment to S_Q.
  run.Round("naive-ship-fragments", sites, [&](SiteId site) {
    for (FragmentId f : cluster.fragments_at(site)) {
      run.ShipData(site, sq, SerializedSize(doc.fragment(f).tree));
    }
  });

  // Assemble and evaluate at the coordinator.
  DistributedResult result;
  run.Coordinator([&] {
    std::vector<GlobalNodeId> mapping;
    Tree assembled = doc.Assemble(&mapping);
    CentralizedResult r = EvaluateCentralized(assembled, query);
    result.answers.reserve(r.answers.size());
    for (NodeId v : r.answers) {
      result.answers.push_back(mapping[static_cast<size_t>(v)]);
    }
    std::sort(result.answers.begin(), result.answers.end());
  });

  result.stats = run.TakeStats();
  return result;
}

}  // namespace paxml
