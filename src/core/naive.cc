#include "core/naive.h"

#include <algorithm>

#include "core/answer_stream.h"
#include "core/site_program.h"
#include "core/xml_handlers.h"
#include "eval/centralized.h"
#include "runtime/coordinator.h"
#include "xml/serializer.h"

namespace paxml {
namespace {

/// The shipping baseline as runtime handlers: every site answers one
/// kDataRequest per fragment with a kDataShip envelope whose phantom bytes
/// are the fragment's serialized size; the coordinator just tracks arrival
/// (the simulation evaluates over the shared document instead of actually
/// re-parsing the shipped XML).
class NaiveProgram : public XmlMessageHandlers {
 public:
  explicit NaiveProgram(const FragmentedDocument* doc)
      : doc_(doc), received_(doc->size(), false) {}

  Status OnDataRequest(SiteContext& ctx, FragmentId f) override {
    // Streamed: the modeled fragment bytes append to the open frame in
    // bounded chunks instead of one monolithic shipment.
    ShipDataStreamed(ctx, f, SerializedSize(doc_->fragment(f).tree));
    return Status::OK();
  }

  Status OnDataShip(SiteContext&, FragmentId f, uint64_t) override {
    received_[static_cast<size_t>(f)] = true;
    return Status::OK();
  }

  bool AllReceived() const {
    return std::all_of(received_.begin(), received_.end(),
                       [](bool b) { return b; });
  }

 private:
  const FragmentedDocument* doc_;
  std::vector<bool> received_;
};

}  // namespace

std::unique_ptr<MessageHandlers> MakeNaiveSiteHandlers(
    const FragmentedDocument* doc) {
  return std::make_unique<NaiveProgram>(doc);
}

Result<DistributedResult> EvaluateNaiveCentralized(const Cluster& cluster,
                                                   const CompiledQuery& query,
                                                   Transport* transport,
                                                   RunControl* control) {
  const FragmentedDocument& doc = cluster.doc();
  std::unique_ptr<Transport> owned_transport;
  transport = EnsureTransport(transport, cluster, &owned_transport);
  NaiveProgram program(&doc);
  const RunSpec spec = MakeNaiveRunSpec(query);
  Coordinator coord(&cluster, transport, &program, control, &spec);

  std::vector<SiteId> sites = coord.AllSites();
  for (SiteId s : sites) {
    coord.Post(MakeQueryShipEnvelope(s, query.source().size()));
  }
  for (size_t f = 0; f < doc.size(); ++f) {
    const FragmentId fragment = static_cast<FragmentId>(f);
    coord.Post(MakeRequestEnvelope(MessageKind::kDataRequest,
                                   cluster.site_of(fragment), fragment));
  }

  // One visit per site: serialize and ship every fragment to S_Q.
  PAXML_RETURN_NOT_OK(coord.RunRound("naive-ship-fragments", sites));
  if (!program.AllReceived()) {
    return Status::Internal("naive: not every fragment was shipped");
  }

  // Assemble and evaluate at the coordinator.
  DistributedResult result;
  coord.RunLocal([&] {
    std::vector<GlobalNodeId> mapping;
    Tree assembled = doc.Assemble(&mapping);
    CentralizedResult r = EvaluateCentralized(assembled, query);
    result.answers.reserve(r.answers.size());
    for (NodeId v : r.answers) {
      result.answers.push_back(mapping[static_cast<size_t>(v)]);
    }
    std::sort(result.answers.begin(), result.answers.end());
  });

  result.stats = coord.TakeStats();
  return result;
}

}  // namespace paxml
