#include "core/reach.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "boolexpr/codec.h"
#include "common/string_util.h"
#include "core/messages.h"
#include "runtime/coordinator.h"

namespace paxml {
namespace {

/// One partially evaluated entry vertex, as decoded at the coordinator.
struct ReachRow {
  NodeId vertex = kNullNode;  ///< global id; the row's boolean variable
  bool direct = false;        ///< target reached without leaving the fragment
  std::vector<NodeId> deps;   ///< sorted global heads of crossed cut edges
};

/// The per-entry traversal of one fragment's kReachRequest: local BFS from
/// `entry` over the fragment-internal edges, then the row's (direct, deps)
/// result. Shared by the serial handler and the split task — one entry's
/// traversal never reads another's state, which is exactly why the request
/// splits cleanly (Fan, Wang & Wu: per-site parallelism must go *inside*
/// the fragment's local traversal).
struct ReachRowResult {
  bool direct = false;
  std::vector<NodeId> deps;
};

ReachRowResult TraverseEntry(const GraphFragment& frag, int32_t entry,
                             int32_t local_target, std::vector<bool>* visited,
                             std::vector<int32_t>* visited_scratch) {
  visited_scratch->clear();
  std::deque<int32_t> queue;
  (*visited)[static_cast<size_t>(entry)] = true;
  visited_scratch->push_back(entry);
  queue.push_back(entry);
  while (!queue.empty()) {
    const int32_t u = queue.front();
    queue.pop_front();
    for (int32_t v : frag.local_out[static_cast<size_t>(u)]) {
      if ((*visited)[static_cast<size_t>(v)]) continue;
      (*visited)[static_cast<size_t>(v)] = true;
      visited_scratch->push_back(v);
      queue.push_back(v);
    }
  }
  ReachRowResult result;
  result.direct = local_target >= 0 &&
                  (*visited)[static_cast<size_t>(local_target)];
  for (int32_t u : *visited_scratch) {
    const auto& heads = frag.cut_out[static_cast<size_t>(u)];
    result.deps.insert(result.deps.end(), heads.begin(), heads.end());
  }
  std::sort(result.deps.begin(), result.deps.end());
  result.deps.erase(std::unique(result.deps.begin(), result.deps.end()),
                    result.deps.end());
  for (int32_t u : *visited_scratch) (*visited)[static_cast<size_t>(u)] = false;
  return result;
}

/// Entry vertices of fragment f under `query`: the in-boundary, plus the
/// source when it lives here (nothing enters the source "from outside" but
/// the query does). Sorted ascending local index == ascending global id.
std::vector<int32_t> EntryVertices(const GraphFragmentStore& store,
                                   const ReachQuery& query, FragmentId f) {
  const GraphFragment& frag = store.fragment(f);
  std::vector<int32_t> entries = frag.in_boundary;
  if (query.source >= 0 && query.source < store.vertex_count() &&
      store.fragment_of(query.source) == f) {
    entries.push_back(frag.LocalIndex(query.source));
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  }
  return entries;
}

int32_t LocalTarget(const GraphFragmentStore& store, const ReachQuery& query,
                    FragmentId f) {
  return (query.target >= 0 && query.target < store.vertex_count() &&
          store.fragment_of(query.target) == f)
             ? store.fragment(f).LocalIndex(query.target)
             : -1;
}

/// One row's encoding, detached from the report stream: `bytes` starts
/// with the row's *cross-row* vertex delta — computable per item because
/// the delta base is simply the previous entry's global id, known up
/// front. Concatenating the rows after the varint(count) header reproduces
/// the serial encoding byte for byte.
struct EncodedReachRow {
  std::string bytes;
  uint64_t logical = 0;
};

EncodedReachRow EncodeReachRow(uint64_t vertex, uint64_t prev_vertex,
                               const ReachRowResult& row) {
  ByteWriter writer;
  writer.PutVarint(vertex - prev_vertex);  // wraps, as DeltaIdEncoder does
  EncodedReachRow out;
  out.logical = VarintSize(vertex);
  writer.PutU8(row.direct ? 1 : 0);
  writer.PutVarint(row.deps.size());
  out.logical += 1 + VarintSize(row.deps.size());
  DeltaIdEncoder dep_delta;  // deps restart per row (each list is sorted)
  for (NodeId d : row.deps) {
    dep_delta.Append(static_cast<uint64_t>(d), &writer);
    out.logical += VarintSize(static_cast<uint64_t>(d));
  }
  out.bytes = std::move(writer).Take();
  return out;
}

/// The split form of one fragment's kReachRequest: items are the entries,
/// each traversed into a privately encoded row; Finish concatenates the
/// rows under the count header and ships the one kReachUp the serial
/// handler would have.
class ReachSplitTask : public SplitTask {
 public:
  ReachSplitTask(const GraphFragmentStore* store, FragmentId f,
                 std::vector<int32_t> entries, int32_t local_target)
      : store_(store),
        f_(f),
        entries_(std::move(entries)),
        local_target_(local_target),
        rows_(entries_.size()) {}

  size_t item_count() const override { return entries_.size(); }

  void RunItem(size_t item) override {
    const GraphFragment& frag = store_->fragment(f_);
    std::vector<bool> visited(frag.vertices.size(), false);
    std::vector<int32_t> scratch;
    const int32_t entry = entries_[item];
    const ReachRowResult row =
        TraverseEntry(frag, entry, local_target_, &visited, &scratch);
    const uint64_t vertex =
        static_cast<uint64_t>(frag.vertices[static_cast<size_t>(entry)]);
    const uint64_t prev =
        item == 0 ? 0
                  : static_cast<uint64_t>(frag.vertices[static_cast<size_t>(
                        entries_[item - 1])]);
    rows_[item] = EncodeReachRow(vertex, prev, row);
  }

  Status Finish(SiteContext& ctx) override {
    ByteWriter writer;
    writer.PutVarint(entries_.size());
    uint64_t logical = VarintSize(entries_.size());
    for (const EncodedReachRow& row : rows_) {
      writer.PutBytes(row.bytes.data(), row.bytes.size());
      logical += row.logical;
    }
    Envelope env;
    env.to = ctx.query_site();
    env.parts.push_back(
        {MessageKind::kReachUp, f_, std::move(writer).Take(), true, logical});
    ctx.Send(std::move(env));
    return Status::OK();
  }

 private:
  const GraphFragmentStore* store_;
  const FragmentId f_;
  const std::vector<int32_t> entries_;
  const int32_t local_target_;
  std::vector<EncodedReachRow> rows_;  ///< one slot per item
};

/// Reachability as runtime handlers. Site side (kReachRequest) is
/// stateless — it reads the const store and query only, so per-fragment
/// lanes (site_threads > 1) need no per-fragment state slots at all.
/// Coordinator side (kReachUp) accumulates rows single-threaded on the
/// driver thread.
class ReachProgram : public MessageHandlers {
 public:
  ReachProgram(const GraphFragmentStore* store, const ReachQuery& query)
      : store_(store),
        query_(query),
        reported_(store->fragment_count(), false) {}

  Status OnPart(SiteContext& ctx, const Envelope& env,
                const WirePart& part) override {
    switch (part.kind) {
      case MessageKind::kQueryShip:
        return Status::OK();  // cost-model event; the query is constructed in
      case MessageKind::kReachRequest:
        return OnReachRequest(ctx, part.fragment);
      case MessageKind::kReachUp:
        return OnReachUp(env.from, part);
      default:
        return Status::InvalidArgument(
            StringFormat("%s message delivered to a graph-workload run",
                         MessageKindName(part.kind)));
    }
  }

  std::unique_ptr<SplitTask> MakeSplitTask(const Envelope&,
                                           const WirePart& part) override {
    if (part.kind != MessageKind::kReachRequest) return nullptr;
    const FragmentId f = part.fragment;
    if (f < 0 || static_cast<size_t>(f) >= store_->fragment_count()) {
      return nullptr;
    }
    std::vector<int32_t> entries = EntryVertices(*store_, query_, f);
    if (entries.size() < 2) return nullptr;  // nothing to fan out
    return std::make_unique<ReachSplitTask>(store_, f, std::move(entries),
                                            LocalTarget(*store_, query_, f));
  }

  bool AllReported() const {
    return std::all_of(reported_.begin(), reported_.end(),
                       [](bool b) { return b; });
  }

  /// Least fixpoint of the collected boolean system; runs at the
  /// coordinator after the delivery round.
  Result<bool> Solve() const;

 private:
  Status OnReachRequest(SiteContext& ctx, FragmentId f);
  Status OnReachUp(SiteId from, const WirePart& part);

  const GraphFragmentStore* store_;
  const ReachQuery query_;

  // Coordinator-side accumulation (driver thread only).
  std::vector<bool> reported_;  ///< fragment -> row payload arrived
  std::vector<ReachRow> rows_;
};

Status ReachProgram::OnReachRequest(SiteContext& ctx, FragmentId f) {
  const GraphFragment& frag = store_->fragment(f);

  const std::vector<int32_t> entries = EntryVertices(*store_, query_, f);
  const int32_t local_target = LocalTarget(*store_, query_, f);

  // One local traversal per entry; rows encode in entry order (ascending
  // global id), deps sorted — canonical bytes, so remote peers reproduce
  // the in-process wire exactly. Ids are delta+varint coded (vertices
  // across rows, deps within a row); `logical` tracks what the absolute
  // coding would cost, which is what the paper-model counters keep
  // pricing (the frame ships the delta bytes).
  ByteWriter writer;
  writer.PutVarint(entries.size());
  uint64_t logical = VarintSize(entries.size());
  uint64_t prev_vertex = 0;
  std::vector<int32_t> visited_scratch;
  std::vector<bool> visited(frag.vertices.size(), false);
  for (int32_t entry : entries) {
    const ReachRowResult row =
        TraverseEntry(frag, entry, local_target, &visited, &visited_scratch);
    const uint64_t vertex =
        static_cast<uint64_t>(frag.vertices[static_cast<size_t>(entry)]);
    const EncodedReachRow encoded = EncodeReachRow(vertex, prev_vertex, row);
    prev_vertex = vertex;
    writer.PutBytes(encoded.bytes.data(), encoded.bytes.size());
    logical += encoded.logical;
  }

  Envelope env;
  env.to = ctx.query_site();
  env.parts.push_back(
      {MessageKind::kReachUp, f, std::move(writer).Take(), true, logical});
  ctx.Send(std::move(env));
  return Status::OK();
}

Status ReachProgram::OnReachUp(SiteId, const WirePart& part) {
  const FragmentId f = part.fragment;
  if (f < 0 || static_cast<size_t>(f) >= store_->fragment_count()) {
    return Status::ParseError("reach-up: fragment out of range");
  }
  if (reported_[static_cast<size_t>(f)]) {
    return Status::ParseError("reach-up: duplicate fragment report");
  }
  reported_[static_cast<size_t>(f)] = true;

  ByteReader reader(part.bytes);
  PAXML_ASSIGN_OR_RETURN(uint64_t row_count, reader.GetVarint());
  // Wire counts are bounded by what the remaining bytes could hold (>= 3
  // bytes per row) before any reserve, as frame.cc does.
  if (row_count > reader.remaining() / 3) {
    return Status::ParseError("reach-up: row count past buffer end");
  }
  DeltaIdDecoder vertex_delta;
  for (uint64_t i = 0; i < row_count; ++i) {
    ReachRow row;
    PAXML_ASSIGN_OR_RETURN(uint64_t vertex, vertex_delta.Next(&reader));
    if (vertex >= static_cast<uint64_t>(store_->vertex_count())) {
      return Status::ParseError("reach-up: vertex out of range");
    }
    row.vertex = static_cast<NodeId>(vertex);
    if (store_->fragment_of(row.vertex) != f) {
      return Status::ParseError("reach-up: row vertex owned elsewhere");
    }
    PAXML_ASSIGN_OR_RETURN(uint8_t direct, reader.GetU8());
    if (direct > 1) return Status::ParseError("reach-up: bad direct flag");
    row.direct = direct != 0;
    PAXML_ASSIGN_OR_RETURN(uint64_t dep_count, reader.GetVarint());
    if (dep_count > reader.remaining()) {
      return Status::ParseError("reach-up: dep count past buffer end");
    }
    row.deps.reserve(dep_count);
    DeltaIdDecoder dep_delta;
    for (uint64_t d = 0; d < dep_count; ++d) {
      PAXML_ASSIGN_OR_RETURN(uint64_t dep, dep_delta.Next(&reader));
      if (dep >= static_cast<uint64_t>(store_->vertex_count())) {
        return Status::ParseError("reach-up: dep out of range");
      }
      row.deps.push_back(static_cast<NodeId>(dep));
    }
    rows_.push_back(std::move(row));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("reach-up: trailing bytes");
  }
  return Status::OK();
}

Result<bool> ReachProgram::Solve() const {
  if (query_.source == query_.target) return true;

  std::unordered_map<NodeId, size_t> var_of;
  var_of.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!var_of.emplace(rows_[i].vertex, i).second) {
      return Status::Internal("reach: duplicate entry variable");
    }
  }
  // Reverse dependencies: solving the least fixpoint means propagating
  // true from the direct rows backwards along X_v = ... ∨ X_w edges.
  std::vector<std::vector<size_t>> rev(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (NodeId dep : rows_[i].deps) {
      auto it = var_of.find(dep);
      if (it == var_of.end()) {
        // Every dep is the head of a cut edge, hence in-boundary of its
        // owner, hence a row of that fragment's report.
        return Status::Internal("reach: dependency on an unreported entry");
      }
      rev[it->second].push_back(i);
    }
  }
  std::vector<bool> value(rows_.size(), false);
  std::deque<size_t> worklist;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].direct) {
      value[i] = true;
      worklist.push_back(i);
    }
  }
  while (!worklist.empty()) {
    const size_t i = worklist.front();
    worklist.pop_front();
    for (size_t j : rev[i]) {
      if (value[j]) continue;
      value[j] = true;
      worklist.push_back(j);
    }
  }
  auto source_var = var_of.find(query_.source);
  if (source_var == var_of.end()) {
    return Status::Internal("reach: source row missing");
  }
  return static_cast<bool>(value[source_var->second]);
}

}  // namespace

std::string FormatReachQuery(const ReachQuery& query) {
  return StringFormat("reach %d %d", query.source, query.target);
}

Result<ReachQuery> ParseReachQuery(const std::string& text) {
  ReachQuery query;
  char trailing;
  if (std::sscanf(text.c_str(), "reach %d %d %c", &query.source, &query.target,
                  &trailing) != 2) {
    return Status::ParseError("reach query: expected \"reach <source> <target>\", got \"" +
                              text + "\"");
  }
  return query;
}

Result<const GraphFragmentStore*> GraphOf(const Cluster& cluster) {
  if (cluster.data().family() != kGraphWorkloadFamily) {
    return Status::InvalidArgument(
        "reach: cluster holds \"" + std::string(cluster.data().family()) +
        "\" data, not a graph");
  }
  return static_cast<const GraphFragmentStore*>(&cluster.data());
}

RunSpec MakeReachRunSpec(const ReachQuery& query) {
  RunSpec spec;
  spec.algorithm = "Reach";
  spec.query = FormatReachQuery(query);
  spec.family = std::string(kGraphWorkloadFamily);
  return spec;
}

std::unique_ptr<MessageHandlers> MakeReachSiteHandlers(
    const GraphFragmentStore* store, const ReachQuery& query) {
  return std::make_unique<ReachProgram>(store, query);
}

namespace {

/// Owns the handlers a peer serves for one graph run (the store is the
/// cluster's, borrowed).
class ReachSiteProgram : public SiteProgram {
 public:
  explicit ReachSiteProgram(std::unique_ptr<MessageHandlers> handlers)
      : handlers_(std::move(handlers)) {}
  MessageHandlers* handlers() override { return handlers_.get(); }

 private:
  std::unique_ptr<MessageHandlers> handlers_;
};

Status ValidateQuery(const GraphFragmentStore& store, const ReachQuery& query) {
  if (query.source < 0 || query.source >= store.vertex_count() ||
      query.target < 0 || query.target >= store.vertex_count()) {
    return Status::InvalidArgument(
        StringFormat("reach query: vertex out of range (graph has %d vertices)",
                     store.vertex_count()));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<SiteProgram>> MakeReachSiteProgram(
    const Cluster& cluster, const RunSpec& spec) {
  PAXML_ASSIGN_OR_RETURN(const GraphFragmentStore* store, GraphOf(cluster));
  if (spec.algorithm != "Reach") {
    return Status::InvalidArgument("run spec: unknown algorithm \"" +
                                   spec.algorithm + "\"");
  }
  PAXML_ASSIGN_OR_RETURN(ReachQuery query, ParseReachQuery(spec.query));
  PAXML_RETURN_NOT_OK(ValidateQuery(*store, query));
  return std::unique_ptr<SiteProgram>(
      std::make_unique<ReachSiteProgram>(MakeReachSiteHandlers(store, query)));
}

Result<DistributedResult> EvaluateReachability(const Cluster& cluster,
                                               const ReachQuery& query,
                                               Transport* transport,
                                               RunControl* control) {
  PAXML_ASSIGN_OR_RETURN(const GraphFragmentStore* store, GraphOf(cluster));
  PAXML_RETURN_NOT_OK(ValidateQuery(*store, query));
  std::unique_ptr<Transport> owned_transport;
  transport = EnsureTransport(transport, cluster, &owned_transport);
  ReachProgram program(store, query);
  const RunSpec spec = MakeReachRunSpec(query);
  Coordinator coord(&cluster, transport, &program, control, &spec);

  std::vector<SiteId> sites = coord.AllSites();
  for (SiteId s : sites) {
    coord.Post(MakeQueryShipEnvelope(s, FormatReachQuery(query).size()));
  }
  for (size_t f = 0; f < store->fragment_count(); ++f) {
    const FragmentId fragment = static_cast<FragmentId>(f);
    coord.Post(MakeRequestEnvelope(MessageKind::kReachRequest,
                                   cluster.site_of(fragment), fragment));
  }

  // One visit per site: every fragment partially evaluates and reports its
  // boolean rows. Rounds stay 1 however many fragments there are.
  PAXML_RETURN_NOT_OK(coord.RunRound("reach-partial-eval", sites));
  if (!program.AllReported()) {
    return Status::Internal("reach: not every fragment reported");
  }

  Result<bool> reachable = false;
  coord.RunLocal([&] { reachable = program.Solve(); });
  PAXML_RETURN_NOT_OK(reachable.status());

  DistributedResult result;
  if (*reachable) {
    result.answers.push_back(
        GlobalNodeId{store->fragment_of(query.target), query.target});
  }
  result.stats = coord.TakeStats();
  return result;
}

}  // namespace paxml
