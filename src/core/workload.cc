#include "core/workload.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "core/reach.h"
#include "core/site_program.h"
#include "xpath/query_plan.h"

namespace paxml {
namespace {

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, WorkloadFamily>& Registry() {
  static std::map<std::string, WorkloadFamily> families;
  return families;
}

Status RegisterLocked(WorkloadFamily family) {
  if (family.name.empty()) {
    return Status::InvalidArgument("workload family: empty name");
  }
  const std::string name = family.name;
  if (!Registry().emplace(name, std::move(family)).second) {
    return Status::InvalidArgument("workload family \"" + name +
                                   "\" is already registered");
  }
  return Status::OK();
}

/// The built-in families register once, on first registry access, so a
/// paxml_site binary serves both without any caller naming either.
void EnsureBuiltins() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::lock_guard<std::mutex> lock(RegistryMutex());

    WorkloadFamily xml;
    xml.name = std::string(kXmlWorkloadFamily);
    xml.make_site_program = MakeXmlSiteProgram;
    xml.evaluate = [](const Cluster& cluster, const std::string& query,
                      const EngineOptions& options, Transport* transport,
                      RunControl* control) -> Result<DistributedResult> {
      PAXML_ASSIGN_OR_RETURN(CompiledQuery compiled,
                             CompileXPath(query, cluster.doc().symbols()));
      return EvaluateDistributed(cluster, compiled, options, transport,
                                 control);
    };
    PAXML_CHECK(RegisterLocked(std::move(xml)).ok());

    WorkloadFamily graph;
    graph.name = std::string(kGraphWorkloadFamily);
    graph.make_site_program = MakeReachSiteProgram;
    graph.evaluate = [](const Cluster& cluster, const std::string& query,
                        const EngineOptions&, Transport* transport,
                        RunControl* control) -> Result<DistributedResult> {
      PAXML_ASSIGN_OR_RETURN(ReachQuery parsed, ParseReachQuery(query));
      return EvaluateReachability(cluster, parsed, transport, control);
    };
    PAXML_CHECK(RegisterLocked(std::move(graph)).ok());
  });
}

std::string EnumerateFamilies() {
  std::string out;
  for (const auto& [name, family] : Registry()) {
    if (!out.empty()) out += ", ";
    out += "\"" + name + "\"";
  }
  return out;
}

Result<const WorkloadFamily*> FindFamily(const std::string& name) {
  auto it = Registry().find(name);
  if (it == Registry().end()) {
    return Status::InvalidArgument("unknown workload family \"" + name +
                                   "\" (registered: " + EnumerateFamilies() +
                                   ")");
  }
  return &it->second;
}

}  // namespace

Status RegisterWorkloadFamily(WorkloadFamily family) {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return RegisterLocked(std::move(family));
}

std::vector<std::string> RegisteredWorkloadFamilies() {
  EnsureBuiltins();
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, family] : Registry()) names.push_back(name);
  return names;
}

Result<std::unique_ptr<SiteProgram>> MakeSiteProgram(const Cluster& cluster,
                                                     const RunSpec& spec) {
  EnsureBuiltins();
  // Copy the entry point out of the registry: builders compile queries and
  // evaluators run whole protocols, neither under the registry lock.
  WorkloadFamily family;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    PAXML_ASSIGN_OR_RETURN(const WorkloadFamily* found,
                           FindFamily(spec.family));
    family = *found;
  }
  if (spec.family != cluster.data().family()) {
    return Status::InvalidArgument(
        "workload mismatch: run is \"" + spec.family +
        "\" but the cluster holds \"" + std::string(cluster.data().family()) +
        "\" data");
  }
  return family.make_site_program(cluster, spec);
}

SiteProgramFactory MakeSiteProgramFactory(const Cluster* cluster) {
  return [cluster](const RunSpec& spec) {
    return MakeSiteProgram(*cluster, spec);
  };
}

Result<DistributedResult> EvaluateWorkload(const Cluster& cluster,
                                           const std::string& query,
                                           const EngineOptions& options,
                                           Transport* transport,
                                           RunControl* control) {
  EnsureBuiltins();
  WorkloadFamily family;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    PAXML_ASSIGN_OR_RETURN(const WorkloadFamily* found,
                           FindFamily(std::string(cluster.data().family())));
    family = *found;
  }
  return family.evaluate(cluster, query, options, transport, control);
}

}  // namespace paxml
