// The workload registry: where a RunSpec's family name resolves to code.
//
// The runtime layer (transport, coordinator, socket server) moves opaque
// frames for a `RunSpec::family` string it never interprets; this registry
// is the single point where that string picks a data model and its
// algorithms. Each family contributes two entry points: a site-program
// builder (what a paxml_site peer runs for an announced RunSpec) and a
// query evaluator (what Engine::Submit drives for a query string). The
// built-in families — "xml" (core/site_program.h, the PaX/ParBoX/naive
// algorithms) and "graph" (core/reach.h, distributed reachability) —
// register lazily on first use; tests may register extra families.
//
// This is the seam that makes the engine workload-agnostic: no caller of
// MakeSiteProgramFactory or EvaluateWorkload names a data model, and a
// cluster built over any WorkloadData evaluates through the same Engine,
// scheduler and transports (DESIGN.md §11).

#ifndef PAXML_CORE_WORKLOAD_H_
#define PAXML_CORE_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "runtime/socket_server.h"
#include "sim/cluster.h"

namespace paxml {

/// One registered algorithm family over one data model.
struct WorkloadFamily {
  /// The RunSpec::family / WorkloadData::family() string.
  std::string name;

  /// Builds the site-side program for a RunSpec announced over the wire.
  /// The cluster is guaranteed to hold this family's data.
  std::function<Result<std::unique_ptr<SiteProgram>>(const Cluster&,
                                                     const RunSpec&)>
      make_site_program;

  /// Evaluates one query string over the cluster (the family owns the
  /// query syntax: XPath for "xml", "reach <s> <t>" for "graph"). A null
  /// transport evaluates in-process.
  std::function<Result<DistributedResult>(const Cluster&, const std::string&,
                                          const EngineOptions&, Transport*,
                                          RunControl*)>
      evaluate;
};

/// Registers `family`; an already registered name is an error.
Status RegisterWorkloadFamily(WorkloadFamily family);

/// Registered family names, sorted — error messages enumerate these.
std::vector<std::string> RegisteredWorkloadFamilies();

/// Builds the site-side program for `spec` over `cluster`, routed by
/// `spec.family`. An unknown family's error enumerates the registered
/// ones; a family that does not match the cluster's data is rejected
/// before the family's builder runs.
Result<std::unique_ptr<SiteProgram>> MakeSiteProgram(const Cluster& cluster,
                                                     const RunSpec& spec);

/// MakeSiteProgram bound to `cluster` — what a paxml_site server runs on,
/// whichever workload its data directory held.
SiteProgramFactory MakeSiteProgramFactory(const Cluster* cluster);

/// Evaluates `query` over the cluster, routed by the *data's* family (a
/// query string carries no family of its own). This is what
/// Engine::Submit(std::string) drives.
Result<DistributedResult> EvaluateWorkload(const Cluster& cluster,
                                           const std::string& query,
                                           const EngineOptions& options = {},
                                           Transport* transport = nullptr,
                                           RunControl* control = nullptr);

}  // namespace paxml

#endif  // PAXML_CORE_WORKLOAD_H_
