// ParBoX (extended): distributed evaluation of Boolean XPath queries.
//
// The VLDB'06 algorithm the paper builds on, with this paper's extensions
// (arithmetic comparisons in qualifiers, multiple top-level qualifiers).
// One parallel bottom-up pass per fragment computes residual qualifier
// vectors; the coordinator unifies them over the fragment tree; the truth
// value of the query at the global root pops out. Every site is visited
// exactly once; communication is O(|Q| |FT|).
//
// ParBoX is exactly Stage 1 of PaX3 (Section 3.1): PaX3/PaX2 delegate to
// this module for queries with an empty selection path.

#ifndef PAXML_CORE_PARBOX_H_
#define PAXML_CORE_PARBOX_H_

#include <memory>

#include "common/result.h"
#include "core/distributed_result.h"
#include "sim/cluster.h"
#include "xpath/query_plan.h"

namespace paxml {

class Transport;
class RunControl;
class MessageHandlers;

/// ParBoX's handler set alone, for a remote peer evaluating its share of
/// the cluster (core/site_program.h). `doc` and `query` must outlive it.
std::unique_ptr<MessageHandlers> MakeParBoXSiteHandlers(
    const FragmentedDocument* doc, const CompiledQuery* query);

struct ParBoXResult {
  bool value = false;
  RunStats stats;
};

/// Evaluates a Boolean query (empty selection path, e.g. ".[//a/b]") over
/// the cluster's fragmented document. Returns kInvalidArgument for
/// data-selecting queries — use PaX3/PaX2 for those. `transport` selects
/// the message backend; nullptr uses the cluster's default (a pooled
/// backend shares the cluster's WorkerPool). The transport may be carrying
/// other concurrent evaluations — this call opens and closes its own run.
/// A non-null `control` makes the run cancellable at round boundaries.
Result<ParBoXResult> EvaluateParBoX(const Cluster& cluster,
                                    const CompiledQuery& query,
                                    Transport* transport = nullptr,
                                    RunControl* control = nullptr);

}  // namespace paxml

#endif  // PAXML_CORE_PARBOX_H_
