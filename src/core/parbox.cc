#include "core/parbox.h"

#include <mutex>

#include "core/eval_ft.h"
#include "core/site_eval.h"
#include "core/vars.h"

namespace paxml {

Result<ParBoXResult> EvaluateParBoX(const Cluster& cluster,
                                    const CompiledQuery& query) {
  if (!query.IsBooleanQuery()) {
    return Status::InvalidArgument(
        "ParBoX evaluates Boolean queries; use PaX3/PaX2 for data-selecting "
        "queries");
  }
  const FragmentedDocument& doc = cluster.doc();
  QueryRun run(&cluster);
  const SiteId sq = cluster.query_site();

  FragmentTreeUnifier unifier(&doc, &query);
  std::mutex unifier_mu;
  Status site_status = Status::OK();

  std::vector<SiteId> sites = run.AllSites();
  // The query itself is shipped to every participating site: the O(|Q||FT|)
  // component of the communication bound.
  for (SiteId s : sites) run.Send(sq, s, query.source().size());

  run.Round("parbox-qualifiers", sites, [&](SiteId site) {
    for (FragmentId f : cluster.fragments_at(site)) {
      const Fragment& frag = doc.fragment(f);
      FragmentQualEval eval = RunFragmentQualifierStage(frag, query);
      QualUpMessage reply = BuildQualUp(frag, query, eval);
      ByteWriter bytes;
      reply.Encode(*eval.arena, &bytes);
      run.Send(site, sq, bytes.size());
      // Decode at the coordinator (into its arena).
      std::lock_guard<std::mutex> lock(unifier_mu);
      ByteReader reader(bytes.bytes());
      auto decoded = QualUpMessage::Decode(unifier.arena(), &reader);
      if (!decoded.ok()) {
        site_status = decoded.status();
        return;
      }
      unifier.AddQualReport(std::move(decoded).ValueOrDie());
    }
  });
  PAXML_RETURN_NOT_OK(site_status);

  ParBoXResult result;
  Status unify_status = Status::OK();
  run.Coordinator([&] {
    std::vector<bool> participating(doc.size(), true);
    unify_status = unifier.UnifyQualifiers(participating);
    if (!unify_status.ok()) return;
    // The root fragment attached the root-qualifier residual; with every
    // variable bound, it collapses to the query's truth value.
    Formula root_qual = unifier.ResolveRootQual();
    auto value = unifier.arena()->ConstValue(root_qual);
    if (!value) {
      unify_status = Status::Internal("root qualifier did not resolve");
      return;
    }
    result.value = *value;
  });
  PAXML_RETURN_NOT_OK(unify_status);

  result.stats = run.TakeStats();
  return result;
}

}  // namespace paxml
