#include "core/parbox.h"

#include "core/eval_ft.h"
#include "core/site_eval.h"
#include "core/site_program.h"
#include "core/xml_handlers.h"
#include "core/vars.h"
#include "runtime/coordinator.h"

namespace paxml {
namespace {

/// ParBoX as runtime handlers: every site answers one kQualRequest per
/// fragment with a QualUpMessage; the coordinator feeds the reports into
/// the fragment-tree unifier. ParBoX ships no answers (its result is one
/// truth value), so it has no streamed shipment — but under the framed
/// message plane a site holding k fragments sends its k replies as one
/// frame, exactly the O(|Q||FT|) coalescing the batching layer exists for.
class ParBoXProgram : public XmlMessageHandlers {
 public:
  ParBoXProgram(const FragmentedDocument* doc, const CompiledQuery* query)
      : doc_(doc), query_(query), unifier_(doc, query) {}

  FormulaArena* DecodeArena() override { return unifier_.arena(); }

  Status OnQualRequest(SiteContext& ctx, FragmentId f) override {
    const Fragment& frag = doc_->fragment(f);
    FragmentQualEval eval = RunFragmentQualifierStage(frag, *query_);
    QualUpMessage reply = BuildQualUp(frag, *query_, eval);
    ByteWriter bytes;
    reply.Encode(*eval.arena, &bytes);
    Envelope env;
    env.to = ctx.query_site();
    env.parts.push_back(
        {MessageKind::kQualUp, f, std::move(bytes).Take(), true});
    ctx.Send(std::move(env));
    return Status::OK();
  }

  Status OnQualUp(SiteContext&, QualUpMessage message) override {
    unifier_.AddQualReport(std::move(message));
    return Status::OK();
  }

  FragmentTreeUnifier& unifier() { return unifier_; }

 private:
  const FragmentedDocument* doc_;
  const CompiledQuery* query_;
  FragmentTreeUnifier unifier_;
};

}  // namespace

std::unique_ptr<MessageHandlers> MakeParBoXSiteHandlers(
    const FragmentedDocument* doc, const CompiledQuery* query) {
  return std::make_unique<ParBoXProgram>(doc, query);
}

Result<ParBoXResult> EvaluateParBoX(const Cluster& cluster,
                                    const CompiledQuery& query,
                                    Transport* transport, RunControl* control) {
  if (!query.IsBooleanQuery()) {
    return Status::InvalidArgument(
        "ParBoX evaluates Boolean queries; use PaX3/PaX2 for data-selecting "
        "queries");
  }
  const FragmentedDocument& doc = cluster.doc();
  std::unique_ptr<Transport> owned_transport;
  transport = EnsureTransport(transport, cluster, &owned_transport);
  ParBoXProgram program(&doc, &query);
  const RunSpec spec = MakeParBoXRunSpec(query);
  Coordinator coord(&cluster, transport, &program, control, &spec);

  std::vector<SiteId> sites = coord.AllSites();
  // The query itself is shipped to every participating site: the O(|Q||FT|)
  // component of the communication bound.
  for (SiteId s : sites) {
    coord.Post(MakeQueryShipEnvelope(s, query.source().size()));
  }
  for (size_t f = 0; f < doc.size(); ++f) {
    const FragmentId fragment = static_cast<FragmentId>(f);
    coord.Post(MakeRequestEnvelope(MessageKind::kQualRequest,
                                   cluster.site_of(fragment), fragment));
  }
  PAXML_RETURN_NOT_OK(coord.RunRound("parbox-qualifiers", sites));

  ParBoXResult result;
  Status unify_status = Status::OK();
  coord.RunLocal([&] {
    std::vector<bool> participating(doc.size(), true);
    unify_status = program.unifier().UnifyQualifiers(participating);
    if (!unify_status.ok()) return;
    // The root fragment attached the root-qualifier residual; with every
    // variable bound, it collapses to the query's truth value.
    Formula root_qual = program.unifier().ResolveRootQual();
    auto value = program.unifier().arena()->ConstValue(root_qual);
    if (!value) {
      unify_status = Status::Internal("root qualifier did not resolve");
      return;
    }
    result.value = *value;
  });
  PAXML_RETURN_NOT_OK(unify_status);

  result.stats = coord.TakeStats();
  return result;
}

}  // namespace paxml
