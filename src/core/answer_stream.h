// Streamed answer and data shipment: the O(|ans|) term of the paper's
// communication bound, emitted incrementally.
//
// Every algorithm used to ship a fragment's answers as one monolithic
// AnswerUpMessage envelope per round. These helpers emit the same payload
// as bounded chunks appended to the transport's open frame
// (runtime/site_runtime.h EnvelopeStream): the header chunk carries the
// AnswerUpMessage prefix (fragment id, total count) and each id chunk
// appends varint-encoded node ids, so the concatenation is byte-identical
// to the monolithic encoding — accounting, decoding and the receiving
// handlers are unchanged, while no site materializes an unbounded answer
// shipment. The modeled answer payload (AnswerBytes phantom bytes) is
// accounted additively per chunk.

#ifndef PAXML_CORE_ANSWER_STREAM_H_
#define PAXML_CORE_ANSWER_STREAM_H_

#include <vector>

#include "core/site_eval.h"
#include "runtime/site_runtime.h"
#include "xml/tree.h"

namespace paxml {

/// Ships `fragment`'s settled answers from `ctx`'s site to the
/// coordinator as a streamed AnswerUpMessage: chunk size comes from the
/// transport's options (answer_chunk_ids). `account_ids` mirrors the old
/// per-algorithm flag — false when the id list merely indexes answers
/// that already travel as self-describing phantom XML (the concrete-init
/// single-visit paths), so only AnswerBytes is accounted.
void ShipAnswersStreamed(SiteContext& ctx, const Tree& tree,
                         FragmentId fragment,
                         const std::vector<NodeId>& answers,
                         AnswerShipMode mode, bool account_ids);

/// Ships one fragment's raw serialized data (the naive baseline) as a
/// streamed kDataShip envelope: `total_bytes` modeled phantom bytes are
/// appended in transport-configured chunks (data_chunk_bytes) instead of
/// one monolithic shipment.
void ShipDataStreamed(SiteContext& ctx, FragmentId fragment,
                      uint64_t total_bytes);

}  // namespace paxml

#endif  // PAXML_CORE_ANSWER_STREAM_H_
