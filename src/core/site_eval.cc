#include "core/site_eval.h"

#include "common/string_util.h"
#include "xml/serializer.h"

namespace paxml {

FragmentQualEval RunFragmentQualifierStage(const Fragment& frag,
                                           const CompiledQuery& query) {
  FragmentQualEval out;
  out.arena = std::make_unique<FormulaArena>();
  FormulaDomain domain(out.arena.get());
  const Tree& tree = frag.tree;
  VirtualQualHook<Formula> hook = [&](NodeId v, int entry) {
    const FragmentId child = tree.fragment_ref(v);
    return std::make_pair(out.arena->Var(MakeQVVar(child, entry)),
                          out.arena->Var(MakeQDVVar(child, entry)));
  };
  out.vectors = RunQualifierPass(tree, query, &domain, hook, &out.ops);
  return out;
}

QualUpMessage BuildQualUp(const Fragment& frag, const CompiledQuery& query,
                          const FragmentQualEval& eval) {
  QualUpMessage m;
  m.fragment = frag.id;
  const size_t ec = query.entries().size();
  const NodeId root = frag.tree.root();
  m.root_qv.assign(eval.vectors.QVRow(root), eval.vectors.QVRow(root) + ec);
  m.root_qdv.assign(eval.vectors.QDVRow(root), eval.vectors.QDVRow(root) + ec);
  if (frag.id == 0 && query.selection()[0].qual >= 0) {
    FormulaDomain domain(eval.arena.get());
    m.root_qual = EvalQualAtNode(frag.tree, query, &domain, eval.vectors, root,
                                 query.selection()[0].qual);
  }
  return m;
}

bool RootQualifierValue(const Fragment& root_fragment,
                        const CompiledQuery& query,
                        const QualVectors<BoolDomain>& vectors) {
  const int qual = query.selection()[0].qual;
  if (qual < 0) return true;
  BoolDomain domain;
  return domain.IsTrue(EvalQualAtNode(root_fragment.tree, query, &domain,
                                      vectors, root_fragment.tree.root(),
                                      qual));
}

Result<QualVectors<BoolDomain>> ResolveQualVectors(
    const Fragment& frag, const CompiledQuery& query,
    const FragmentQualEval& eval, const QualDownMessage& resolved) {
  const size_t ec = query.entries().size();

  // Index the resolved child rows.
  std::unordered_map<FragmentId, const QualDownMessage::ResolvedChild*> rows;
  for (const auto& c : resolved.children) {
    if (c.qv.size() != ec || c.qdv.size() != ec) {
      return Status::Internal("resolved child row size mismatch");
    }
    rows[c.child] = &c;
  }

  auto assignment = [&](VarId v) -> std::optional<bool> {
    const FragmentId child = FragmentOfVar(v);
    auto it = rows.find(child);
    if (it == rows.end()) return std::nullopt;
    const uint32_t e = IndexOfVar(v);
    switch (KindOfVar(v)) {
      case VarKind::kQV:
        return it->second->qv[e] != 0;
      case VarKind::kQDV:
        return it->second->qdv[e] != 0;
      default:
        return std::nullopt;
    }
  };

  QualVectors<BoolDomain> out;
  out.entry_count = ec;
  const size_t n = frag.tree.size() * ec;
  out.qv.resize(n);
  out.qdv.resize(n);
  // Residuals are constants at every node not above a virtual placeholder;
  // only the variable-carrying minority pays for a real evaluation.
  for (size_t i = 0; i < n; ++i) {
    const Formula qv_f = eval.vectors.qv[i];
    if (qv_f == kFalseFormula || qv_f == kTrueFormula) {
      out.qv[i] = qv_f == kTrueFormula ? 1 : 0;
    } else {
      PAXML_ASSIGN_OR_RETURN(bool qv, eval.arena->Evaluate(qv_f, assignment));
      out.qv[i] = qv ? 1 : 0;
    }
    const Formula qdv_f = eval.vectors.qdv[i];
    if (qdv_f == kFalseFormula || qdv_f == kTrueFormula) {
      out.qdv[i] = qdv_f == kTrueFormula ? 1 : 0;
    } else {
      PAXML_ASSIGN_OR_RETURN(bool qdv, eval.arena->Evaluate(qdv_f, assignment));
      out.qdv[i] = qdv ? 1 : 0;
    }
  }
  return out;
}

std::vector<Formula> VariableStackInit(const CompiledQuery& query,
                                       FragmentId fragment,
                                       FormulaArena* arena) {
  const size_t m = query.selection().size();
  std::vector<Formula> init(m, kFalseFormula);
  for (size_t i = 1; i < m; ++i) {
    init[i] = arena->Var(MakeSVVar(fragment, static_cast<int>(i)));
  }
  return init;
}

std::vector<Formula> ConstStackInit(const std::vector<uint8_t>& values) {
  std::vector<Formula> init(values.size(), kFalseFormula);
  for (size_t i = 0; i < values.size(); ++i) {
    init[i] = values[i] ? kTrueFormula : kFalseFormula;
  }
  return init;
}

uint64_t AnswerBytes(const Tree& tree, const std::vector<NodeId>& answers,
                     AnswerShipMode mode) {
  return AnswerBytes(tree, answers.data(), answers.size(), mode);
}

uint64_t AnswerBytes(const Tree& tree, const NodeId* answers, size_t count,
                     AnswerShipMode mode) {
  if (mode == AnswerShipMode::kReferences) {
    return static_cast<uint64_t>(count) * 8;
  }
  uint64_t bytes = 0;
  for (size_t i = 0; i < count; ++i) {
    const NodeId v = answers[i];
    bytes += tree.IsText(v) ? tree.text(v).size() : SerializedSize(tree, v);
  }
  return bytes;
}

}  // namespace paxml
