#include "core/xml_handlers.h"

#include <utility>

#include "common/string_util.h"

namespace paxml {

namespace {

Status Unhandled(const char* what) {
  return Status::NotImplemented(
      StringFormat("algorithm installed no handler for %s messages", what));
}

}  // namespace

Status XmlMessageHandlers::OnQueryShip(SiteContext&) { return Status::OK(); }
Status XmlMessageHandlers::OnQualRequest(SiteContext&, FragmentId) {
  return Unhandled("qual-request");
}
Status XmlMessageHandlers::OnSelRequest(SiteContext&, FragmentId) {
  return Unhandled("sel-request");
}
Status XmlMessageHandlers::OnAnswerRequest(SiteContext&, FragmentId) {
  return Unhandled("answer-request");
}
Status XmlMessageHandlers::OnDataRequest(SiteContext&, FragmentId) {
  return Unhandled("data-request");
}
Status XmlMessageHandlers::OnQualDown(SiteContext&, QualDownMessage) {
  return Unhandled("qual-down");
}
Status XmlMessageHandlers::OnSelDown(SiteContext&, SelDownMessage) {
  return Unhandled("sel-down");
}
Status XmlMessageHandlers::OnQualUp(SiteContext&, QualUpMessage) {
  return Unhandled("qual-up");
}
Status XmlMessageHandlers::OnSelUp(SiteContext&, SelUpMessage) {
  return Unhandled("sel-up");
}
Status XmlMessageHandlers::OnAnswerUp(SiteContext&, AnswerUpMessage) {
  return Unhandled("answer-up");
}
Status XmlMessageHandlers::OnDataShip(SiteContext&, FragmentId, uint64_t) {
  return Unhandled("data-ship");
}

Status XmlMessageHandlers::OnPart(SiteContext& ctx, const Envelope& env,
                                  const WirePart& part) {
  switch (part.kind) {
    case MessageKind::kQueryShip:
      return OnQueryShip(ctx);
    case MessageKind::kQualRequest:
      return OnQualRequest(ctx, part.fragment);
    case MessageKind::kSelRequest:
      return OnSelRequest(ctx, part.fragment);
    case MessageKind::kAnswerRequest:
      return OnAnswerRequest(ctx, part.fragment);
    case MessageKind::kDataRequest:
      return OnDataRequest(ctx, part.fragment);
    case MessageKind::kQualDown: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(QualDownMessage m, QualDownMessage::Decode(&reader));
      return OnQualDown(ctx, std::move(m));
    }
    case MessageKind::kSelDown: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(SelDownMessage m, SelDownMessage::Decode(&reader));
      return OnSelDown(ctx, std::move(m));
    }
    case MessageKind::kQualUp: {
      FormulaArena* arena = DecodeArena();
      if (arena == nullptr) {
        return Status::Internal("qual-up delivered but no decode arena");
      }
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(QualUpMessage m,
                             QualUpMessage::Decode(arena, &reader));
      return OnQualUp(ctx, std::move(m));
    }
    case MessageKind::kSelUp: {
      FormulaArena* arena = DecodeArena();
      if (arena == nullptr) {
        return Status::Internal("sel-up delivered but no decode arena");
      }
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(SelUpMessage m, SelUpMessage::Decode(arena, &reader));
      return OnSelUp(ctx, std::move(m));
    }
    case MessageKind::kAnswerUp: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(AnswerUpMessage m,
                             AnswerUpMessage::Decode(&reader));
      return OnAnswerUp(ctx, std::move(m));
    }
    case MessageKind::kDataShip:
      return OnDataShip(ctx, part.fragment, env.phantom_bytes);
    case MessageKind::kReachRequest:
    case MessageKind::kReachUp:
      return Status::InvalidArgument(StringFormat(
          "%s message delivered to an xml-workload run",
          MessageKindName(part.kind)));
  }
  return Status::Internal("unknown message kind");
}

}  // namespace paxml
