#include "core/messages.h"

namespace paxml {
namespace {

void EncodeBoolVector(const std::vector<uint8_t>& v, ByteWriter* out) {
  // Bit-packed: residual truth vectors are the dominant payload of the
  // resolution rounds, so encode them densely.
  out->PutVarint(v.size());
  uint8_t acc = 0;
  int nbits = 0;
  for (uint8_t b : v) {
    acc |= static_cast<uint8_t>((b ? 1 : 0) << nbits);
    if (++nbits == 8) {
      out->PutU8(acc);
      acc = 0;
      nbits = 0;
    }
  }
  if (nbits > 0) out->PutU8(acc);
}

Result<std::vector<uint8_t>> DecodeBoolVector(ByteReader* in) {
  PAXML_ASSIGN_OR_RETURN(uint64_t n, in->GetVarint());
  std::vector<uint8_t> out;
  out.reserve(n);
  uint8_t acc = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      PAXML_ASSIGN_OR_RETURN(acc, in->GetU8());
    }
    out.push_back((acc >> (i % 8)) & 1);
  }
  return out;
}

}  // namespace

// ---- QualUpMessage ----------------------------------------------------------

void QualUpMessage::Encode(const FormulaArena& arena, ByteWriter* out) const {
  out->PutVarint(static_cast<uint64_t>(fragment));
  EncodeFormulaVector(arena, root_qv, out);
  EncodeFormulaVector(arena, root_qdv, out);
  EncodeFormula(arena, root_qual, out);
}

Result<QualUpMessage> QualUpMessage::Decode(FormulaArena* arena,
                                            ByteReader* in) {
  QualUpMessage m;
  PAXML_ASSIGN_OR_RETURN(uint64_t f, in->GetVarint());
  m.fragment = static_cast<FragmentId>(f);
  PAXML_ASSIGN_OR_RETURN(m.root_qv, DecodeFormulaVector(arena, in));
  PAXML_ASSIGN_OR_RETURN(m.root_qdv, DecodeFormulaVector(arena, in));
  PAXML_ASSIGN_OR_RETURN(m.root_qual, DecodeFormula(arena, in));
  return m;
}

// ---- SelUpMessage -----------------------------------------------------------

void SelUpMessage::Encode(const FormulaArena& arena, ByteWriter* out) const {
  out->PutVarint(static_cast<uint64_t>(fragment));
  out->PutVarint(virtual_tops.size());
  for (const VirtualTop& t : virtual_tops) {
    out->PutVarint(static_cast<uint64_t>(t.child));
    EncodeFormulaVector(arena, t.stack_top, out);
  }
  out->PutVarint(answer_count);
  out->PutVarint(candidate_count);
}

Result<SelUpMessage> SelUpMessage::Decode(FormulaArena* arena, ByteReader* in) {
  SelUpMessage m;
  PAXML_ASSIGN_OR_RETURN(uint64_t f, in->GetVarint());
  m.fragment = static_cast<FragmentId>(f);
  PAXML_ASSIGN_OR_RETURN(uint64_t count, in->GetVarint());
  m.virtual_tops.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    VirtualTop t;
    PAXML_ASSIGN_OR_RETURN(uint64_t child, in->GetVarint());
    t.child = static_cast<FragmentId>(child);
    PAXML_ASSIGN_OR_RETURN(t.stack_top, DecodeFormulaVector(arena, in));
    m.virtual_tops.push_back(std::move(t));
  }
  PAXML_ASSIGN_OR_RETURN(uint64_t ac, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(uint64_t cc, in->GetVarint());
  m.answer_count = static_cast<uint32_t>(ac);
  m.candidate_count = static_cast<uint32_t>(cc);
  return m;
}

// ---- QualDownMessage --------------------------------------------------------

void QualDownMessage::Encode(ByteWriter* out) const {
  out->PutVarint(static_cast<uint64_t>(fragment));
  out->PutVarint(children.size());
  for (const ResolvedChild& c : children) {
    out->PutVarint(static_cast<uint64_t>(c.child));
    EncodeBoolVector(c.qv, out);
    EncodeBoolVector(c.qdv, out);
  }
}

Result<QualDownMessage> QualDownMessage::Decode(ByteReader* in) {
  QualDownMessage m;
  PAXML_ASSIGN_OR_RETURN(uint64_t f, in->GetVarint());
  m.fragment = static_cast<FragmentId>(f);
  PAXML_ASSIGN_OR_RETURN(uint64_t count, in->GetVarint());
  m.children.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ResolvedChild c;
    PAXML_ASSIGN_OR_RETURN(uint64_t child, in->GetVarint());
    c.child = static_cast<FragmentId>(child);
    PAXML_ASSIGN_OR_RETURN(c.qv, DecodeBoolVector(in));
    PAXML_ASSIGN_OR_RETURN(c.qdv, DecodeBoolVector(in));
    m.children.push_back(std::move(c));
  }
  return m;
}

// ---- SelDownMessage ---------------------------------------------------------

void SelDownMessage::Encode(ByteWriter* out) const {
  out->PutVarint(static_cast<uint64_t>(fragment));
  EncodeBoolVector(stack_init, out);
}

Result<SelDownMessage> SelDownMessage::Decode(ByteReader* in) {
  SelDownMessage m;
  PAXML_ASSIGN_OR_RETURN(uint64_t f, in->GetVarint());
  m.fragment = static_cast<FragmentId>(f);
  PAXML_ASSIGN_OR_RETURN(m.stack_init, DecodeBoolVector(in));
  return m;
}

// ---- AnswerUpMessage --------------------------------------------------------

void AnswerUpMessage::Encode(ByteWriter* out) const {
  out->PutVarint(static_cast<uint64_t>(fragment));
  out->PutVarint(answers.size());
  DeltaIdEncoder delta;
  for (NodeId v : answers) delta.Append(static_cast<uint64_t>(v), out);
}

Result<AnswerUpMessage> AnswerUpMessage::Decode(ByteReader* in) {
  AnswerUpMessage m;
  PAXML_ASSIGN_OR_RETURN(uint64_t f, in->GetVarint());
  m.fragment = static_cast<FragmentId>(f);
  PAXML_ASSIGN_OR_RETURN(uint64_t count, in->GetVarint());
  m.answers.reserve(count);
  DeltaIdDecoder delta;
  for (uint64_t i = 0; i < count; ++i) {
    PAXML_ASSIGN_OR_RETURN(uint64_t v, delta.Next(in));
    m.answers.push_back(static_cast<NodeId>(v));
  }
  return m;
}

}  // namespace paxml
