// Out-of-core XPath evaluation (the paper's second future-work topic).
//
// "When the whole tree does not fit in main memory, through fragmentation we
//  are able to load each time from secondary storage a different fragment of
//  the tree into main memory. Our partial evaluation techniques help reduce
//  at least the cost of swapping the fragments."     — Section 1
//
// EvaluateOutOfCore realizes that: fragments are loaded one at a time from a
// FragmentSource (e.g. a SaveDocument directory), partially evaluated, and
// dropped; only O(|Q|)-sized residuals persist between loads. The number of
// times each fragment is read is bounded exactly like the site visits of the
// distributed algorithms:
//
//   * no qualifiers: 1 load per fragment,
//   * with qualifiers: 2 loads (qualifier pass; then recompute-and-select —
//     the second load recomputes the qualifier vectors instead of storing
//     O(|F| |Q|) state between loads, trading bounded recomputation for
//     bounded memory).
//
// Peak residency is a single fragment plus the per-fragment residuals.

#ifndef PAXML_CORE_OUT_OF_CORE_H_
#define PAXML_CORE_OUT_OF_CORE_H_

#include <vector>

#include "common/result.h"
#include "core/distributed_result.h"
#include "fragment/source.h"
#include "xpath/query_plan.h"

namespace paxml {

struct OutOfCoreOptions {
  /// Use XPath annotations to skip irrelevant fragments entirely (their
  /// files are never read).
  bool use_annotations = true;
};

struct OutOfCoreResult {
  /// Answer nodes as (fragment, node) pairs, sorted.
  std::vector<GlobalNodeId> answers;

  /// Fragment reads performed (<= 2 * fragment count).
  size_t fragment_loads = 0;

  /// Largest single resident fragment, in serialized bytes — the memory
  /// high-water mark driver (residuals are negligible next to it).
  size_t peak_fragment_bytes = 0;
};

/// Evaluates `query` over the fragments served by `source`, loading one
/// fragment at a time.
Result<OutOfCoreResult> EvaluateOutOfCore(FragmentSource* source,
                                          const CompiledQuery& query,
                                          const OutOfCoreOptions& options = {});

}  // namespace paxml

#endif  // PAXML_CORE_OUT_OF_CORE_H_
