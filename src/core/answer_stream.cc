#include "core/answer_stream.h"

#include <algorithm>

#include "boolexpr/codec.h"
#include "core/messages.h"

namespace paxml {

void ShipAnswersStreamed(SiteContext& ctx, const Tree& tree,
                         FragmentId fragment,
                         const std::vector<NodeId>& answers,
                         AnswerShipMode mode, bool account_ids) {
  const size_t chunk_ids =
      std::max<size_t>(1, ctx.transport().options().answer_chunk_ids);

  // Header chunk: the AnswerUpMessage prefix. The receiver decodes the
  // merged part as one ordinary AnswerUpMessage (core/messages.h).
  Envelope head;
  head.to = ctx.query_site();
  head.category = PayloadCategory::kAnswer;
  ByteWriter header;
  header.PutVarint(static_cast<uint64_t>(fragment));
  header.PutVarint(answers.size());
  WirePart head_part{MessageKind::kAnswerUp, fragment,
                     std::move(header).Take(), account_ids};
  // Pin the logical size explicitly (header bytes are identical in both
  // codings) so every delta-coded answer part carries a non-sentinel
  // logical size — the raw-vs-wire split in RunStats counts whole parts.
  head_part.logical_bytes = head_part.bytes.size();
  head.parts.push_back(std::move(head_part));

  // One delta encoder across all chunks: the chunk boundaries are
  // invisible on the wire, so the merged part still decodes as one
  // ordinary AnswerUpMessage. The *logical* size of each chunk is what
  // the absolute-varint coding would have cost — the paper-model counters
  // (per-edge bytes, visits) price that, bit-identical to the pre-delta
  // wire, while the frame ships the smaller delta bytes.
  EnvelopeStream stream(ctx, std::move(head));
  DeltaIdEncoder delta;
  for (size_t i = 0; i < answers.size(); i += chunk_ids) {
    const size_t n = std::min(chunk_ids, answers.size() - i);
    ByteWriter ids;
    uint64_t logical = 0;
    for (size_t j = 0; j < n; ++j) {
      const uint64_t id = static_cast<uint64_t>(answers[i + j]);
      delta.Append(id, &ids);
      logical += VarintSize(id);
    }
    stream.AppendRecoded(ids.bytes(), logical,
                         AnswerBytes(tree, &answers[i], n, mode));
  }
  stream.Close();
}

void ShipDataStreamed(SiteContext& ctx, FragmentId fragment,
                      uint64_t total_bytes) {
  const uint64_t chunk_bytes =
      std::max<uint64_t>(1, ctx.transport().options().data_chunk_bytes);

  Envelope head;
  head.to = ctx.query_site();
  head.category = PayloadCategory::kData;
  head.parts.push_back({MessageKind::kDataShip, fragment, {}, false});

  EnvelopeStream stream(ctx, std::move(head));
  for (uint64_t shipped = 0; shipped < total_bytes; shipped += chunk_bytes) {
    stream.Append({}, std::min(chunk_bytes, total_bytes - shipped));
  }
  stream.Close();
}

}  // namespace paxml
