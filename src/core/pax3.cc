#include "core/pax3.h"

#include <algorithm>
#include <optional>

#include "core/answer_stream.h"
#include "core/eval_ft.h"
#include "core/parbox.h"
#include "core/site_eval.h"
#include "core/site_program.h"
#include "core/xml_handlers.h"
#include "fragment/pruning.h"
#include "runtime/coordinator.h"

namespace paxml {
namespace {

/// Per-fragment state living at its site across the three visits.
struct Pax3FragmentState {
  FragmentQualEval qual;                    // stage 1 residuals
  QualVectors<BoolDomain> resolved_qual;    // stage 2: concrete values
  std::unique_ptr<FormulaArena> sel_arena;  // stage 2 arena (z variables)
  std::vector<std::pair<NodeId, Formula>> candidates;
  std::vector<NodeId> answers;

  // Resolved values received from the coordinator (same-site, same-round
  // delivery order guarantees they precede the request that consumes them).
  std::optional<QualDownMessage> qual_down;
  std::optional<SelDownMessage> sel_down;
};

/// Boolean queries: ParBoX, then wrap the truth value as {root} / {}.
Result<DistributedResult> EvaluateBooleanViaParBoX(const Cluster& cluster,
                                                   const CompiledQuery& query,
                                                   Transport* transport,
                                                   RunControl* control) {
  PAXML_ASSIGN_OR_RETURN(ParBoXResult r,
                         EvaluateParBoX(cluster, query, transport, control));
  DistributedResult out;
  if (r.value) {
    out.answers.push_back(GlobalNodeId{0, cluster.doc().fragment(0).tree.root()});
  }
  out.stats = std::move(r.stats);
  return out;
}

/// PaX3's three stages as runtime handlers. Site-side handlers only touch
/// the state of fragments placed at the handling site; coordinator-side
/// handlers only touch the unifier and the collected answers.
class Pax3Program : public XmlMessageHandlers {
 public:
  /// Owns its options and prune state (by value) so the same program type
  /// serves both roles: borrowed by EvaluatePaX3's stack frame and owned by
  /// a remote peer's SiteProgram (core/site_program.h).
  Pax3Program(const Cluster& cluster, const CompiledQuery& query,
              const PaxOptions& options, PruneResult prune,
              bool concrete_init)
      : doc_(cluster.doc()),
        query_(query),
        options_(options),
        prune_(std::move(prune)),
        concrete_init_(concrete_init),
        unifier_(&doc_, &query),
        state_(doc_.size()) {
    for (auto& s : state_) s = std::make_unique<Pax3FragmentState>();
  }

  FormulaArena* DecodeArena() override { return unifier_.arena(); }

  // ---- Stage 1 (site): qualifier pass over one fragment -------------------

  Status OnQualRequest(SiteContext& ctx, FragmentId f) override {
    const Fragment& frag = doc_.fragment(f);
    Pax3FragmentState& st = *state_[static_cast<size_t>(f)];
    st.qual = RunFragmentQualifierStage(frag, query_);
    QualUpMessage reply = BuildQualUp(frag, query_, st.qual);
    ByteWriter bytes;
    reply.Encode(*st.qual.arena, &bytes);
    Envelope env;
    env.to = ctx.query_site();
    env.parts.push_back(
        {MessageKind::kQualUp, f, std::move(bytes).Take(), true});
    ctx.Send(std::move(env));
    return Status::OK();
  }

  Status OnQualDown(SiteContext&, QualDownMessage message) override {
    state_[static_cast<size_t>(message.fragment)]->qual_down =
        std::move(message);
    return Status::OK();
  }

  // ---- Stage 2 (site): selection pass with resolved qualifiers ------------

  Status OnSelRequest(SiteContext& ctx, FragmentId f) override {
    const Fragment& frag = doc_.fragment(f);
    Pax3FragmentState& st = *state_[static_cast<size_t>(f)];

    // Qualifier values are fully known at this point.
    if (query_.has_qualifiers()) {
      if (!st.qual_down.has_value()) {
        return Status::Internal("pax3: sel-request before qual-down");
      }
      PAXML_ASSIGN_OR_RETURN(
          st.resolved_qual,
          ResolveQualVectors(frag, query_, st.qual, *st.qual_down));
    }

    st.sel_arena = std::make_unique<FormulaArena>();
    FormulaDomain domain(st.sel_arena.get());

    BoolDomain bool_domain;
    QualAtHook<Formula> qual_at;
    if (query_.has_qualifiers()) {
      qual_at = [&, fptr = &frag, stptr = &st](NodeId v, int qual_id) {
        return domain.FromBool(bool_domain.IsTrue(
            EvalQualAtNode(fptr->tree, query_, &bool_domain,
                           stptr->resolved_qual, v, qual_id)));
      };
    }

    std::vector<Formula> init;
    if (f == 0) {
      Formula root_qual = kTrueFormula;
      if (query_.selection()[0].qual >= 0) {
        root_qual = domain.FromBool(
            RootQualifierValue(frag, query_, st.resolved_qual));
      }
      auto qual_at_doc = [&](int qual_id) {
        return domain.FromBool(bool_domain.IsTrue(EvalQualAtDoc(
            query_, &bool_domain, st.resolved_qual, frag.tree.root(),
            qual_id)));
      };
      init = MakeDocVector(query_, &domain, root_qual,
                           query_.has_qualifiers()
                               ? std::function<Formula(int)>(qual_at_doc)
                               : std::function<Formula(int)>());
    } else if (concrete_init_) {
      init = ConstStackInit(prune_.parent_vector[static_cast<size_t>(f)]);
    } else {
      init = VariableStackInit(query_, f, st.sel_arena.get());
    }

    SelectionOutput<FormulaDomain> out = RunSelectionPass(
        frag.tree, query_, &domain, std::move(init), qual_at);
    st.answers = std::move(out.answers);
    st.candidates = std::move(out.candidates);

    SelUpMessage reply;
    reply.fragment = f;
    reply.answer_count = static_cast<uint32_t>(st.answers.size());
    reply.candidate_count = static_cast<uint32_t>(st.candidates.size());
    for (auto& [vnode, top] : out.virtual_stack_tops) {
      reply.virtual_tops.push_back(SelUpMessage::VirtualTop{
          frag.tree.fragment_ref(vnode), std::move(top)});
    }
    ByteWriter bytes;
    reply.Encode(*st.sel_arena, &bytes);
    Envelope env;
    env.to = ctx.query_site();
    env.parts.push_back(
        {MessageKind::kSelUp, f, std::move(bytes).Take(), true});
    ctx.Send(std::move(env));

    if (concrete_init_) {
      // Certain answers ship with this reply; stage 3 is skipped. The id
      // list rides unaccounted: the answers travel as self-describing XML
      // whose modeled size is the phantom byte count.
      SendAnswers(ctx, f, st.answers);
    }
    return Status::OK();
  }

  Status OnSelDown(SiteContext&, SelDownMessage message) override {
    state_[static_cast<size_t>(message.fragment)]->sel_down =
        std::move(message);
    return Status::OK();
  }

  // ---- Stage 3 (site): settle candidates, ship answers --------------------

  Status OnAnswerRequest(SiteContext& ctx, FragmentId f) override {
    Pax3FragmentState& st = *state_[static_cast<size_t>(f)];

    if (!st.candidates.empty()) {
      if (!st.sel_down.has_value()) {
        return Status::Internal("pax3: answer-request before sel-down");
      }
      const std::vector<uint8_t>& z = st.sel_down->stack_init;
      auto assignment = [&](VarId v) -> std::optional<bool> {
        if (KindOfVar(v) != VarKind::kSV || FragmentOfVar(v) != f) {
          return std::nullopt;
        }
        return z[IndexOfVar(v)] != 0;
      };
      for (const auto& [node, formula] : st.candidates) {
        PAXML_ASSIGN_OR_RETURN(bool value,
                               st.sel_arena->Evaluate(formula, assignment));
        if (value) st.answers.push_back(node);
      }
      std::sort(st.answers.begin(), st.answers.end());
    }

    SendAnswers(ctx, f, st.answers);
    return Status::OK();
  }

  // ---- Coordinator side ----------------------------------------------------

  Status OnQualUp(SiteContext&, QualUpMessage message) override {
    unifier_.AddQualReport(std::move(message));
    return Status::OK();
  }

  Status OnSelUp(SiteContext&, SelUpMessage message) override {
    unifier_.AddSelReport(std::move(message));
    return Status::OK();
  }

  Status OnAnswerUp(SiteContext&, AnswerUpMessage message) override {
    for (NodeId v : message.answers) {
      answers_.push_back(GlobalNodeId{message.fragment, v});
    }
    return Status::OK();
  }

  FragmentTreeUnifier& unifier() { return unifier_; }
  std::vector<GlobalNodeId> TakeAnswers() { return std::move(answers_); }

 private:
  /// One streamed answer shipment: id list chunks appended to the open
  /// frame, the answer payload (subtrees or references) as phantom bytes —
  /// the O(|ans|) term. In the concrete-init path the id list duplicates
  /// the shipped XML, so only the phantom payload is accounted (matching
  /// the paper's model); stage-3 replies account the id list as today.
  void SendAnswers(SiteContext& ctx, FragmentId f,
                   const std::vector<NodeId>& answers) {
    ShipAnswersStreamed(ctx, doc_.fragment(f).tree, f, answers,
                        options_.ship_mode, /*account_ids=*/!concrete_init_);
  }

  const FragmentedDocument& doc_;
  const CompiledQuery& query_;
  const PaxOptions options_;
  const PruneResult prune_;
  const bool concrete_init_;
  FragmentTreeUnifier unifier_;
  std::vector<std::unique_ptr<Pax3FragmentState>> state_;
  std::vector<GlobalNodeId> answers_;
};

}  // namespace

PruneResult ComputePaxPrune(const FragmentedDocument& doc,
                            const CompiledQuery& query,
                            const PaxOptions& options) {
  if (options.use_annotations) return PruneFragments(doc, query);
  PruneResult prune;
  prune.selection_relevant.assign(doc.size(), true);
  prune.required.assign(doc.size(), true);
  return prune;
}

std::unique_ptr<MessageHandlers> MakePax3SiteHandlers(
    const Cluster& cluster, const CompiledQuery& query,
    const PaxOptions& options) {
  return std::make_unique<Pax3Program>(
      cluster, query, options, ComputePaxPrune(cluster.doc(), query, options),
      options.use_annotations && !query.has_qualifiers());
}

Result<DistributedResult> EvaluatePaX3(const Cluster& cluster,
                                       const CompiledQuery& query,
                                       const PaxOptions& options,
                                       Transport* transport,
                                       RunControl* control) {
  if (query.IsBooleanQuery()) {
    return EvaluateBooleanViaParBoX(cluster, query, transport, control);
  }

  const FragmentedDocument& doc = cluster.doc();
  const size_t fragment_count = doc.size();
  std::unique_ptr<Transport> owned_transport;
  transport = EnsureTransport(transport, cluster, &owned_transport);

  PruneResult prune = ComputePaxPrune(doc, query, options);

  // Stage 2's participant set depends only on the prune result; fix it
  // here, before the program takes ownership of the prune state.
  std::vector<FragmentId> stage2_frags;
  std::vector<bool> stage2_participants(fragment_count, false);
  for (size_t f = 0; f < fragment_count; ++f) {
    if (prune.selection_relevant[f]) {
      stage2_frags.push_back(static_cast<FragmentId>(f));
      stage2_participants[f] = true;
    }
  }

  // Whether this run can finish at stage 2 (Section 5: annotations give
  // concrete stack initializations for qualifier-free queries, so candidates
  // never arise and the answers ship with the stage-2 reply).
  const bool concrete_init =
      options.use_annotations && !query.has_qualifiers();

  Pax3Program program(cluster, query, options, std::move(prune),
                      concrete_init);
  const RunSpec spec = MakePaxRunSpec("PaX3", query, options);
  Coordinator coord(&cluster, transport, &program, control, &spec);
  FragmentTreeUnifier& unifier = program.unifier();

  // Sites learn the query on their first visit.
  std::vector<bool> query_shipped(cluster.site_count(), false);
  auto ship_query = [&](const std::vector<SiteId>& sites) {
    for (SiteId s : sites) {
      if (!query_shipped[static_cast<size_t>(s)]) {
        query_shipped[static_cast<size_t>(s)] = true;
        coord.Post(MakeQueryShipEnvelope(s, query.source().size()));
      }
    }
  };

  // ---- Stage 1: qualifiers over every fragment -----------------------------
  // (XPath annotations cannot skip this stage: qualifier values flow across
  // fragment boundaries regardless of where the answers are.)
  std::vector<bool> stage1_participants(fragment_count, false);
  if (query.has_qualifiers()) {
    std::vector<FragmentId> all;
    for (size_t f = 0; f < fragment_count; ++f) {
      all.push_back(static_cast<FragmentId>(f));
      stage1_participants[f] = true;
    }
    std::vector<SiteId> sites = coord.SitesOf(all);
    ship_query(sites);
    for (FragmentId f : all) {
      coord.Post(MakeRequestEnvelope(MessageKind::kQualRequest,
                                     cluster.site_of(f), f));
    }
    PAXML_RETURN_NOT_OK(coord.RunRound("pax3-stage1-qualifiers", sites));

    Status unify_status = Status::OK();
    coord.RunLocal([&] {
      unify_status = unifier.UnifyQualifiers(stage1_participants);
    });
    PAXML_RETURN_NOT_OK(unify_status);
  }

  // ---- Stage 2: selection over relevant fragments ---------------------------
  std::vector<SiteId> stage2_sites = coord.SitesOf(stage2_frags);
  ship_query(stage2_sites);

  // Resolved qualifier values travel with the stage-2 request.
  for (FragmentId f : stage2_frags) {
    Envelope env;
    env.to = cluster.site_of(f);
    env.accounted = query.has_qualifiers();
    if (query.has_qualifiers()) {
      QualDownMessage m = unifier.MakeQualDown(f);
      ByteWriter bytes;
      m.Encode(&bytes);
      env.parts.push_back(
          {MessageKind::kQualDown, f, std::move(bytes).Take(), true});
    }
    env.parts.push_back({MessageKind::kSelRequest, f, {}, false});
    coord.Post(std::move(env));
  }
  PAXML_RETURN_NOT_OK(coord.RunRound("pax3-stage2-selection", stage2_sites));

  DistributedResult result;
  if (concrete_init) {
    result.answers = program.TakeAnswers();
    std::sort(result.answers.begin(), result.answers.end());
    result.stats = coord.TakeStats();
    return result;
  }

  // ---- evalFT: resolve the z variables top-down ------------------------------
  Status unify_status = Status::OK();
  coord.RunLocal([&] {
    unify_status = unifier.UnifySelection(stage2_participants);
  });
  PAXML_RETURN_NOT_OK(unify_status);

  // ---- Stage 3: settle candidates, ship answers ------------------------------
  std::vector<FragmentId> stage3_frags;
  for (FragmentId f : stage2_frags) {
    if (unifier.HasAnswerWork(f)) stage3_frags.push_back(f);
  }
  std::vector<SiteId> stage3_sites = coord.SitesOf(stage3_frags);

  for (FragmentId f : stage3_frags) {
    Envelope env;
    env.to = cluster.site_of(f);
    // The root fragment's stack was concrete: nothing to resolve, so its
    // request carries (and costs) no bytes.
    env.accounted = (f != 0);
    if (f != 0) {
      SelDownMessage m = unifier.MakeSelDown(f);
      ByteWriter bytes;
      m.Encode(&bytes);
      env.parts.push_back(
          {MessageKind::kSelDown, f, std::move(bytes).Take(), true});
    }
    env.parts.push_back({MessageKind::kAnswerRequest, f, {}, false});
    coord.Post(std::move(env));
  }
  PAXML_RETURN_NOT_OK(coord.RunRound("pax3-stage3-answers", stage3_sites));

  result.answers = program.TakeAnswers();
  std::sort(result.answers.begin(), result.answers.end());
  result.stats = coord.TakeStats();
  return result;
}

}  // namespace paxml
