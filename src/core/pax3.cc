#include "core/pax3.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "core/eval_ft.h"
#include "core/parbox.h"
#include "core/site_eval.h"
#include "fragment/pruning.h"

namespace paxml {
namespace {

/// Per-fragment state living at its site across the three visits.
struct Pax3FragmentState {
  FragmentQualEval qual;                    // stage 1 residuals
  QualVectors<BoolDomain> resolved_qual;    // stage 2: concrete values
  std::unique_ptr<FormulaArena> sel_arena;  // stage 2 arena (z variables)
  std::vector<std::pair<NodeId, Formula>> candidates;
  std::vector<NodeId> answers;
};

/// Boolean queries: ParBoX, then wrap the truth value as {root} / {}.
Result<DistributedResult> EvaluateBooleanViaParBoX(const Cluster& cluster,
                                                   const CompiledQuery& query) {
  PAXML_ASSIGN_OR_RETURN(ParBoXResult r, EvaluateParBoX(cluster, query));
  DistributedResult out;
  if (r.value) {
    out.answers.push_back(GlobalNodeId{0, cluster.doc().fragment(0).tree.root()});
  }
  out.stats = std::move(r.stats);
  return out;
}

}  // namespace

Result<DistributedResult> EvaluatePaX3(const Cluster& cluster,
                                       const CompiledQuery& query,
                                       const PaxOptions& options) {
  if (query.IsBooleanQuery()) return EvaluateBooleanViaParBoX(cluster, query);

  const FragmentedDocument& doc = cluster.doc();
  const size_t fragment_count = doc.size();
  QueryRun run(&cluster);
  const SiteId sq = cluster.query_site();

  PruneResult prune;
  if (options.use_annotations) {
    prune = PruneFragments(doc, query);
  } else {
    prune.selection_relevant.assign(fragment_count, true);
    prune.required.assign(fragment_count, true);
  }

  std::vector<std::unique_ptr<Pax3FragmentState>> state(fragment_count);
  for (auto& s : state) s = std::make_unique<Pax3FragmentState>();

  FragmentTreeUnifier unifier(&doc, &query);
  std::mutex mu;  // guards unifier + status during parallel rounds
  Status site_status = Status::OK();

  // Sites learn the query on their first visit.
  std::vector<bool> query_shipped(cluster.site_count(), false);
  auto ship_query = [&](const std::vector<SiteId>& sites) {
    for (SiteId s : sites) {
      if (!query_shipped[static_cast<size_t>(s)]) {
        query_shipped[static_cast<size_t>(s)] = true;
        run.Send(sq, s, query.source().size());
      }
    }
  };

  // ---- Stage 1: qualifiers over every fragment -----------------------------
  // (XPath annotations cannot skip this stage: qualifier values flow across
  // fragment boundaries regardless of where the answers are.)
  std::vector<bool> stage1_participants(fragment_count, false);
  if (query.has_qualifiers()) {
    std::vector<FragmentId> all;
    for (size_t f = 0; f < fragment_count; ++f) {
      all.push_back(static_cast<FragmentId>(f));
      stage1_participants[f] = true;
    }
    std::vector<SiteId> sites = run.SitesOf(all);
    ship_query(sites);
    run.Round("pax3-stage1-qualifiers", sites, [&](SiteId site) {
      for (FragmentId f : cluster.fragments_at(site)) {
        const Fragment& frag = doc.fragment(f);
        Pax3FragmentState& st = *state[static_cast<size_t>(f)];
        st.qual = RunFragmentQualifierStage(frag, query);
        QualUpMessage reply = BuildQualUp(frag, query, st.qual);
        ByteWriter bytes;
        reply.Encode(*st.qual.arena, &bytes);
        run.Send(site, sq, bytes.size());
        std::lock_guard<std::mutex> lock(mu);
        ByteReader reader(bytes.bytes());
        auto decoded = QualUpMessage::Decode(unifier.arena(), &reader);
        if (!decoded.ok()) {
          site_status = decoded.status();
          return;
        }
        unifier.AddQualReport(std::move(decoded).ValueOrDie());
      }
    });
    PAXML_RETURN_NOT_OK(site_status);

    Status unify_status = Status::OK();
    run.Coordinator([&] {
      unify_status = unifier.UnifyQualifiers(stage1_participants);
    });
    PAXML_RETURN_NOT_OK(unify_status);
  }

  // ---- Stage 2: selection over relevant fragments ---------------------------
  std::vector<FragmentId> stage2_frags;
  std::vector<bool> stage2_participants(fragment_count, false);
  for (size_t f = 0; f < fragment_count; ++f) {
    if (prune.selection_relevant[f]) {
      stage2_frags.push_back(static_cast<FragmentId>(f));
      stage2_participants[f] = true;
    }
  }
  std::vector<SiteId> stage2_sites = run.SitesOf(stage2_frags);
  ship_query(stage2_sites);

  // Resolved qualifier values travel with the stage-2 request.
  std::unordered_map<FragmentId, QualDownMessage> qual_down;
  if (query.has_qualifiers()) {
    for (FragmentId f : stage2_frags) {
      QualDownMessage m = unifier.MakeQualDown(f);
      ByteWriter bytes;
      m.Encode(&bytes);
      run.Send(sq, cluster.site_of(f), bytes.size());
      // Decode on the receiving side.
      ByteReader reader(bytes.bytes());
      auto decoded = QualDownMessage::Decode(&reader);
      PAXML_RETURN_NOT_OK(decoded.status());
      qual_down.emplace(f, std::move(decoded).ValueOrDie());
    }
  }

  // Whether this run can finish at stage 2 (Section 5: annotations give
  // concrete stack initializations for qualifier-free queries, so candidates
  // never arise and the answers ship with the stage-2 reply).
  const bool concrete_init =
      options.use_annotations && !query.has_qualifiers();

  run.Round("pax3-stage2-selection", stage2_sites, [&](SiteId site) {
    for (FragmentId f : cluster.fragments_at(site)) {
      if (!stage2_participants[static_cast<size_t>(f)]) continue;
      const Fragment& frag = doc.fragment(f);
      Pax3FragmentState& st = *state[static_cast<size_t>(f)];

      // Qualifier values are fully known at this point.
      if (query.has_qualifiers()) {
        auto resolved = ResolveQualVectors(frag, query, st.qual,
                                           qual_down.at(f));
        if (!resolved.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          site_status = resolved.status();
          return;
        }
        st.resolved_qual = std::move(resolved).ValueOrDie();
      }

      st.sel_arena = std::make_unique<FormulaArena>();
      FormulaDomain domain(st.sel_arena.get());

      BoolDomain bool_domain;
      QualAtHook<Formula> qual_at;
      if (query.has_qualifiers()) {
        qual_at = [&, fptr = &frag, stptr = &st](NodeId v, int qual_id) {
          return domain.FromBool(bool_domain.IsTrue(
              EvalQualAtNode(fptr->tree, query, &bool_domain,
                             stptr->resolved_qual, v, qual_id)));
        };
      }

      std::vector<Formula> init;
      if (f == 0) {
        Formula root_qual = kTrueFormula;
        if (query.selection()[0].qual >= 0) {
          root_qual = domain.FromBool(
              RootQualifierValue(frag, query, st.resolved_qual));
        }
        auto qual_at_doc = [&](int qual_id) {
          return domain.FromBool(bool_domain.IsTrue(EvalQualAtDoc(
              query, &bool_domain, st.resolved_qual, frag.tree.root(),
              qual_id)));
        };
        init = MakeDocVector(query, &domain, root_qual,
                             query.has_qualifiers()
                                 ? std::function<Formula(int)>(qual_at_doc)
                                 : std::function<Formula(int)>());
      } else if (concrete_init) {
        init = ConstStackInit(prune.parent_vector[static_cast<size_t>(f)]);
      } else {
        init = VariableStackInit(query, f, st.sel_arena.get());
      }

      SelectionOutput<FormulaDomain> out = RunSelectionPass(
          frag.tree, query, &domain, std::move(init), qual_at);
      st.answers = std::move(out.answers);
      st.candidates = std::move(out.candidates);

      SelUpMessage reply;
      reply.fragment = f;
      reply.answer_count = static_cast<uint32_t>(st.answers.size());
      reply.candidate_count = static_cast<uint32_t>(st.candidates.size());
      for (auto& [vnode, top] : out.virtual_stack_tops) {
        reply.virtual_tops.push_back(SelUpMessage::VirtualTop{
            frag.tree.fragment_ref(vnode), std::move(top)});
      }
      ByteWriter bytes;
      reply.Encode(*st.sel_arena, &bytes);
      run.Send(site, sq, bytes.size());

      if (concrete_init) {
        // Certain answers ship with this reply; stage 3 is skipped.
        run.SendAnswer(site, sq,
                       AnswerBytes(frag.tree, st.answers, options.ship_mode));
      }

      std::lock_guard<std::mutex> lock(mu);
      ByteReader reader(bytes.bytes());
      auto decoded = SelUpMessage::Decode(unifier.arena(), &reader);
      if (!decoded.ok()) {
        site_status = decoded.status();
        return;
      }
      unifier.AddSelReport(std::move(decoded).ValueOrDie());
    }
  });
  PAXML_RETURN_NOT_OK(site_status);

  DistributedResult result;
  auto collect_answers = [&](FragmentId f) {
    for (NodeId v : state[static_cast<size_t>(f)]->answers) {
      result.answers.push_back(GlobalNodeId{f, v});
    }
  };

  if (concrete_init) {
    for (FragmentId f : stage2_frags) collect_answers(f);
    std::sort(result.answers.begin(), result.answers.end());
    result.stats = run.TakeStats();
    return result;
  }

  // ---- evalFT: resolve the z variables top-down ------------------------------
  Status unify_status = Status::OK();
  run.Coordinator([&] {
    unify_status = unifier.UnifySelection(stage2_participants);
  });
  PAXML_RETURN_NOT_OK(unify_status);

  // ---- Stage 3: settle candidates, ship answers ------------------------------
  std::vector<FragmentId> stage3_frags;
  for (FragmentId f : stage2_frags) {
    if (unifier.HasAnswerWork(f)) stage3_frags.push_back(f);
  }
  std::vector<SiteId> stage3_sites = run.SitesOf(stage3_frags);

  std::unordered_map<FragmentId, SelDownMessage> sel_down;
  for (FragmentId f : stage3_frags) {
    if (f == 0) continue;  // the root fragment's stack was concrete
    SelDownMessage m = unifier.MakeSelDown(f);
    ByteWriter bytes;
    m.Encode(&bytes);
    run.Send(sq, cluster.site_of(f), bytes.size());
    ByteReader reader(bytes.bytes());
    auto decoded = SelDownMessage::Decode(&reader);
    PAXML_RETURN_NOT_OK(decoded.status());
    sel_down.emplace(f, std::move(decoded).ValueOrDie());
  }

  run.Round("pax3-stage3-answers", stage3_sites, [&](SiteId site) {
    for (FragmentId f : cluster.fragments_at(site)) {
      if (std::find(stage3_frags.begin(), stage3_frags.end(), f) ==
          stage3_frags.end()) {
        continue;
      }
      const Fragment& frag = doc.fragment(f);
      Pax3FragmentState& st = *state[static_cast<size_t>(f)];

      if (!st.candidates.empty()) {
        const std::vector<uint8_t>& z = sel_down.at(f).stack_init;
        auto assignment = [&](VarId v) -> std::optional<bool> {
          if (KindOfVar(v) != VarKind::kSV || FragmentOfVar(v) != f) {
            return std::nullopt;
          }
          return z[IndexOfVar(v)] != 0;
        };
        for (const auto& [node, formula] : st.candidates) {
          auto value = st.sel_arena->Evaluate(formula, assignment);
          if (!value.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            site_status = value.status();
            return;
          }
          if (*value) st.answers.push_back(node);
        }
        std::sort(st.answers.begin(), st.answers.end());
      }

      AnswerUpMessage reply;
      reply.fragment = f;
      reply.answers = st.answers;
      ByteWriter bytes;
      reply.Encode(&bytes);
      // The id list and the payload are both part of the O(|ans|) term.
      run.SendAnswer(site, sq,
                     bytes.size() +
                         AnswerBytes(frag.tree, st.answers, options.ship_mode));
    }
  });
  PAXML_RETURN_NOT_OK(site_status);

  for (FragmentId f : stage3_frags) collect_answers(f);
  std::sort(result.answers.begin(), result.answers.end());
  result.stats = run.TakeStats();
  return result;
}

}  // namespace paxml
