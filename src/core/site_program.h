// Turning a wired RunSpec back into the XML family's site-side program.
//
// The runtime's SiteServer (runtime/socket_server.h) is workload-agnostic:
// it asks a SiteProgramFactory for the MessageHandlers of each run a client
// announces. This is the XML family's builder behind that factory (the
// registry in core/workload.h routes "xml" RunSpecs here) — it compiles
// the spec's query against the peer's copy of the document and builds the
// same handler set the in-process entry point would (the
// Make*SiteHandlers exports of pax2/pax3/naive/parbox), owning everything
// the handlers borrow. Determinism is the contract: given a bit-identical
// cluster, the peer's handlers produce byte-identical wire frames, so the
// client's accounting reproduces SyncTransport's exactly
// (tests/socket_transport_test.cc).

#ifndef PAXML_CORE_SITE_PROGRAM_H_
#define PAXML_CORE_SITE_PROGRAM_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/pax3.h"
#include "runtime/socket_server.h"
#include "sim/cluster.h"
#include "xpath/query_plan.h"

namespace paxml {

/// Builds the site-side program named by `spec.algorithm` ("PaX2", "PaX3",
/// "NaiveCentralized", "ParBoX" — exactly AlgorithmName()'s strings) over
/// `cluster`, which must hold XML data. Unknown algorithms and compile
/// failures return an error the server wires back to the client.
Result<std::unique_ptr<SiteProgram>> MakeXmlSiteProgram(const Cluster& cluster,
                                                        const RunSpec& spec);

/// RunSpec builders used by the algorithm entry points when they open their
/// Coordinator, so client and peer agree on one encoding of the options.
RunSpec MakePaxRunSpec(std::string algorithm, const CompiledQuery& query,
                       const PaxOptions& options);
RunSpec MakeNaiveRunSpec(const CompiledQuery& query);
RunSpec MakeParBoXRunSpec(const CompiledQuery& query);

}  // namespace paxml

#endif  // PAXML_CORE_SITE_PROGRAM_H_
