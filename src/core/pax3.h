// PaX3: three-stage partial evaluation of data-selecting XPath queries
// (Section 3 of the paper).
//
//   Stage 1 — every site partially evaluates the qualifiers (QVect) of Q
//             bottom-up over its fragments, in parallel; residual (QV, QDV)
//             root vectors go to the coordinator, which unifies them over
//             the fragment tree (Procedure evalFT).
//   Stage 2 — resolved qualifier values return to the sites; every site
//             partially evaluates the selection path (SVect) top-down.
//             Certain answers (`ans`) and candidate answers (`cans`, whose
//             last entry is a residual over the z stack-variables) stay
//             local; the stack tops recorded at virtual nodes go up and are
//             unified top-down.
//   Stage 3 — resolved stack vectors return; candidates settle; all answer
//             nodes ship to the query site.
//
// Guarantees (Section 3.4): <= 3 visits per site; total communication
// O(|Q| |FT| + |ans|); total computation O(|Q| |T|); parallel computation
// O(|Q| max_site |F_site|) per stage.
//
// With XPath annotations (Section 5):
//   * qualifier-free queries get concrete stack initializations, so no
//     candidates arise, stage 1 and stage 3 both disappear, and every site
//     is visited once;
//   * queries with qualifiers still run stage 1 everywhere (qualifier
//     values cross fragment boundaries), but stages 2 and 3 skip fragments
//     that cannot contain answers.

#ifndef PAXML_CORE_PAX3_H_
#define PAXML_CORE_PAX3_H_

#include <memory>

#include "common/result.h"
#include "core/distributed_result.h"
#include "fragment/pruning.h"
#include "sim/cluster.h"
#include "xpath/query_plan.h"

namespace paxml {

class Transport;
class RunControl;
class MessageHandlers;

struct PaxOptions {
  /// Use the XPath-annotated fragment tree (Section 5): prune irrelevant
  /// fragments and, for qualifier-free queries, initialize stacks concretely.
  bool use_annotations = false;

  /// How answers are shipped to the query site (byte accounting).
  AnswerShipMode ship_mode = AnswerShipMode::kSubtrees;
};

/// The fragments a PaX run may touch, shared by PaX2 and PaX3 and — the
/// reason it is ONE function — identically derived on the client and on
/// every remote peer (deterministic in doc + query): PruneFragments under
/// annotations, everything-required otherwise. The socket equality
/// guarantee (DESIGN.md §9) rests on this determinism.
PruneResult ComputePaxPrune(const FragmentedDocument& doc,
                            const CompiledQuery& query,
                            const PaxOptions& options);

/// PaX3's handler set alone, for a remote peer evaluating its share of the
/// cluster (core/site_program.h): owns the prune state the handlers use;
/// `cluster`, `query` and the returned object's lifetime are the caller's.
std::unique_ptr<MessageHandlers> MakePax3SiteHandlers(
    const Cluster& cluster, const CompiledQuery& query,
    const PaxOptions& options);

/// Evaluates `query` over the cluster's fragmented document with PaX3.
/// Boolean queries (empty selection path) delegate to the ParBoX stage and
/// finish in one visit. `transport` selects the message backend; nullptr
/// uses the cluster's default (a pooled backend shares the cluster's
/// WorkerPool). The transport may be carrying other concurrent evaluations
/// — this call opens and closes its own run on it. A non-null `control`
/// makes the run cancellable at round boundaries.
Result<DistributedResult> EvaluatePaX3(const Cluster& cluster,
                                       const CompiledQuery& query,
                                       const PaxOptions& options = {},
                                       Transport* transport = nullptr,
                                       RunControl* control = nullptr);

}  // namespace paxml

#endif  // PAXML_CORE_PAX3_H_
