// XmlMessageHandlers: the XML workload family's typed handler surface.
//
// The runtime's MessageHandlers seam (runtime/site_runtime.h) hands an
// algorithm raw wire parts; this base class decodes the XML message kinds
// of core/messages.h — requests, qual/sel down- and up-messages, answer
// ships — into the typed callbacks the PaX/ParBoX/naive algorithms
// override. It is exactly the dispatch switch that used to live inside
// SiteRuntime, moved behind the workload seam so the runtime never names a
// data model (DESIGN.md §11). The graph family (core/reach.h) implements
// its own MessageHandlers subclass the same way.

#ifndef PAXML_CORE_XML_HANDLERS_H_
#define PAXML_CORE_XML_HANDLERS_H_

#include <cstdint>

#include "common/result.h"
#include "core/messages.h"
#include "runtime/site_runtime.h"

namespace paxml {

/// Typed XML message handlers. Overriding algorithms keep the threading
/// contract documented on MessageHandlers: site-side callbacks confine
/// mutable state to per-fragment slots; coordinator-side callbacks run
/// single-threaded on the driver thread.
class XmlMessageHandlers : public MessageHandlers {
 public:
  /// Arena that decoded QualUp/SelUp formulas are interned into. Must be
  /// overridden by algorithms whose coordinator receives formula-bearing
  /// messages.
  virtual FormulaArena* DecodeArena() { return nullptr; }

  /// The query text arrived. Purely a cost-model event in the simulator
  /// (every handler object already knows its CompiledQuery), hence a no-op
  /// default.
  virtual Status OnQueryShip(SiteContext& ctx);

  // Control plane, coordinator -> site.
  virtual Status OnQualRequest(SiteContext& ctx, FragmentId fragment);
  virtual Status OnSelRequest(SiteContext& ctx, FragmentId fragment);
  virtual Status OnAnswerRequest(SiteContext& ctx, FragmentId fragment);
  virtual Status OnDataRequest(SiteContext& ctx, FragmentId fragment);

  // Resolved values, coordinator -> site.
  virtual Status OnQualDown(SiteContext& ctx, QualDownMessage message);
  virtual Status OnSelDown(SiteContext& ctx, SelDownMessage message);

  // Partial answers, site -> coordinator.
  virtual Status OnQualUp(SiteContext& ctx, QualUpMessage message);
  virtual Status OnSelUp(SiteContext& ctx, SelUpMessage message);
  virtual Status OnAnswerUp(SiteContext& ctx, AnswerUpMessage message);

  /// Raw tree data arrived (naive baseline; `bytes` is the modeled size).
  virtual Status OnDataShip(SiteContext& ctx, FragmentId fragment,
                            uint64_t bytes);

  /// Decodes `part` into the typed callback for its kind. Final: the XML
  /// family's wire surface is closed; algorithms extend the typed
  /// callbacks, not the decode switch.
  Status OnPart(SiteContext& ctx, const Envelope& env,
                const WirePart& part) final;
};

}  // namespace paxml

#endif  // PAXML_CORE_XML_HANDLERS_H_
