// Result type shared by the distributed evaluation algorithms.

#ifndef PAXML_CORE_DISTRIBUTED_RESULT_H_
#define PAXML_CORE_DISTRIBUTED_RESULT_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "fragment/fragment.h"
#include "sim/stats.h"

namespace paxml {

/// How answers are shipped to the query site (affects only byte accounting
/// and reflects two deployment styles).
enum class AnswerShipMode : uint8_t {
  /// Serialized XML subtree of each answer node (sub-fragments remain
  /// virtual placeholders). What a real client-facing engine returns.
  kSubtrees,
  /// (fragment, node) references only — e.g. when the client fetches bodies
  /// lazily. Makes |ans| in the O(|Q||FT| + |ans|) bound literal node counts.
  kReferences,
};

/// Answers plus the run's accounting.
struct DistributedResult {
  std::vector<GlobalNodeId> answers;  ///< sorted
  RunStats stats;

  /// Maps answers back to node ids of the original (pre-fragmentation) tree,
  /// sorted. For comparing against centralized evaluation.
  std::vector<NodeId> ToSourceIds(const FragmentedDocument& doc) const {
    std::vector<NodeId> out;
    out.reserve(answers.size());
    for (const GlobalNodeId& g : answers) {
      out.push_back(
          doc.fragment(g.fragment).source_ids[static_cast<size_t>(g.node)]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

}  // namespace paxml

#endif  // PAXML_CORE_DISTRIBUTED_RESULT_H_
