#include "core/site_program.h"

#include <utility>

#include "core/distributed_result.h"
#include "core/naive.h"
#include "core/parbox.h"
#include "core/pax2.h"

namespace paxml {

namespace {

/// Owns the compiled query and options the handler set borrows; members
/// are declared before `handlers_` so the handlers die first.
class OwningSiteProgram : public SiteProgram {
 public:
  OwningSiteProgram(CompiledQuery query, PaxOptions options)
      : query_(std::move(query)), options_(options) {}

  MessageHandlers* handlers() override { return handlers_.get(); }

  const CompiledQuery& query() const { return query_; }
  const PaxOptions& options() const { return options_; }
  void set_handlers(std::unique_ptr<MessageHandlers> handlers) {
    handlers_ = std::move(handlers);
  }

 private:
  CompiledQuery query_;
  PaxOptions options_;
  std::unique_ptr<MessageHandlers> handlers_;
};

}  // namespace

Result<std::unique_ptr<SiteProgram>> MakeXmlSiteProgram(const Cluster& cluster,
                                                        const RunSpec& spec) {
  PAXML_ASSIGN_OR_RETURN(
      CompiledQuery compiled,
      CompileXPath(spec.query, cluster.doc().symbols()));
  if (spec.ship_mode > static_cast<uint8_t>(AnswerShipMode::kReferences)) {
    return Status::InvalidArgument("run spec: bad answer ship mode");
  }
  PaxOptions options;
  options.use_annotations = spec.use_annotations;
  options.ship_mode = static_cast<AnswerShipMode>(spec.ship_mode);

  auto program =
      std::make_unique<OwningSiteProgram>(std::move(compiled), options);
  if (spec.algorithm == "PaX2") {
    program->set_handlers(
        MakePax2SiteHandlers(cluster, program->query(), program->options()));
  } else if (spec.algorithm == "PaX3") {
    program->set_handlers(
        MakePax3SiteHandlers(cluster, program->query(), program->options()));
  } else if (spec.algorithm == "NaiveCentralized") {
    program->set_handlers(MakeNaiveSiteHandlers(&cluster.doc()));
  } else if (spec.algorithm == "ParBoX") {
    program->set_handlers(
        MakeParBoXSiteHandlers(&cluster.doc(), &program->query()));
  } else {
    return Status::InvalidArgument("run spec: unknown algorithm \"" +
                                   spec.algorithm + "\"");
  }
  return std::unique_ptr<SiteProgram>(std::move(program));
}

RunSpec MakePaxRunSpec(std::string algorithm, const CompiledQuery& query,
                       const PaxOptions& options) {
  RunSpec spec;
  spec.algorithm = std::move(algorithm);
  spec.query = query.source();
  spec.use_annotations = options.use_annotations;
  spec.ship_mode = static_cast<uint8_t>(options.ship_mode);
  return spec;
}

RunSpec MakeNaiveRunSpec(const CompiledQuery& query) {
  RunSpec spec;
  spec.algorithm = "NaiveCentralized";
  spec.query = query.source();
  return spec;
}

RunSpec MakeParBoXRunSpec(const CompiledQuery& query) {
  RunSpec spec;
  spec.algorithm = "ParBoX";
  spec.query = query.source();
  return spec;
}

}  // namespace paxml
