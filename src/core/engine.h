// Unified entry point for distributed query evaluation.
//
// Typical use:
//
//   auto doc = std::make_shared<FragmentedDocument>(
//       FragmentByCuts(tree, cuts).ValueOrDie());
//   Cluster cluster(doc, /*site_count=*/4);
//   cluster.PlaceRootAndSpread();
//   auto query = CompileXPath("//broker[//stock/code = \"GOOG\"]/name",
//                             tree.symbols()).ValueOrDie();
//   auto result = EvaluateDistributed(
//       cluster, query, {.algorithm = DistributedAlgorithm::kPaX2,
//                        .pax = {.use_annotations = true}});

#ifndef PAXML_CORE_ENGINE_H_
#define PAXML_CORE_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/distributed_result.h"
#include "core/naive.h"
#include "core/pax2.h"
#include "core/pax3.h"
#include "runtime/transport.h"
#include "sim/cluster.h"

namespace paxml {

enum class DistributedAlgorithm : uint8_t {
  kPaX3,
  kPaX2,
  kNaiveCentralized,
};

const char* AlgorithmName(DistributedAlgorithm a);

struct EngineOptions {
  DistributedAlgorithm algorithm = DistributedAlgorithm::kPaX2;
  PaxOptions pax;

  /// Message backend override. Unset: the cluster's default (pooled iff
  /// parallel_execution). Answers, visit counts and per-edge byte totals
  /// are identical across backends (tested property).
  std::optional<TransportKind> transport;
};

/// Dispatches to the selected algorithm. All algorithms return identical
/// answer sets (tested property); they differ in visits, traffic and time.
/// A pooled backend shares the cluster's WorkerPool, so a stream of calls
/// pays no per-run thread spawns.
Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options = {});

/// Convenience overload: compiles `query` against the document's symbols.
Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              std::string_view query,
                                              const EngineOptions& options = {});

/// Evaluates over an explicit transport, which may be carrying other
/// concurrent evaluations — each call opens (and closes) its own run on it.
/// Thread-safe for concurrent calls on one transport; that is how EvalBatch
/// shares one message plane across a query stream.
Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options,
                                              Transport* transport);

/// Evaluates a stream of queries concurrently: up to `stream_depth`
/// evaluations in flight at a time (a QueryScheduler), all sharing one
/// transport and — for the pooled backend — the cluster's WorkerPool.
/// Results are positionally aligned with `queries`; a query that fails to
/// compile or evaluate yields its error without disturbing the others.
/// Answers, visit counts and per-edge byte totals are identical to running
/// the same queries sequentially (tested property). If `latency_seconds`
/// is non-null it receives each query's wall-clock latency, aligned with
/// `queries`.
std::vector<Result<DistributedResult>> EvalBatch(
    const Cluster& cluster, const std::vector<std::string>& queries,
    const EngineOptions& options = {}, size_t stream_depth = 8,
    std::vector<double>* latency_seconds = nullptr);

}  // namespace paxml

#endif  // PAXML_CORE_ENGINE_H_
