// The session-based evaluation engine: the public entry point for driving
// distributed query evaluation.
//
// A long-lived Engine owns the binding to one Cluster — one shared
// Transport (so every evaluation's bytes flow through one accounted message
// plane) and one QueryScheduler (priority-aware admission control over the
// cluster's WorkerPool). Submitting a query returns a QueryHandle to the
// in-flight evaluation:
//
//   auto doc = std::make_shared<FragmentedDocument>(
//       FragmentByCuts(tree, cuts).ValueOrDie());
//   Cluster cluster(doc, /*site_count=*/4);
//   cluster.PlaceRootAndSpread();
//
//   Engine engine(cluster, {.depth = 8});
//   QueryHandle urgent = engine.Submit(
//       "//broker[//stock/code = \"GOOG\"]/name",
//       {.priority = 10, .deadline = std::chrono::milliseconds(50)});
//   QueryHandle background = engine.Submit("//stock/code");
//   background.Cancel();                    // cooperative, round-granular
//   const QueryReport& report = urgent.Wait();
//   if (report.result.ok()) Use(report.result->answers);
//
// Lifecycle of a submission (DESIGN.md §7): Submit enqueues the query and
// never blocks; the scheduler admits queued work by descending priority
// (ties in submission order) up to a depth that adapts to WorkerPool
// saturation; each admitted evaluation runs as its own transport run, so
// concurrent queries share the message plane without touching each other's
// mailboxes or accounting (invariant 5, DESIGN.md §6). Cancel() and
// deadline expiry reject queued work at admission and unwind running work
// at the next Coordinator round boundary; either way the handle's
// QueryReport carries a distinct error status (kCancelled /
// kDeadlineExceeded) plus the RunStats the aborted run accumulated.
//
// The synchronous free functions below — EvaluateDistributed, EvalBatch —
// are thin wrappers that submit to an Engine and wait; existing callers
// stay source-compatible.
//
// Serving layer (DESIGN.md §12): with EngineConfig::serving.answer_cache
// on, Submit(query) consults an answer cache keyed by (canonical query
// fingerprint — family, algorithm, options, query text — and the cluster's
// data epoch) before admitting the run. A repeated query is served
// entirely from the cache:
//
//   Engine engine(cluster, {.serving = {.answer_cache = true}});
//   engine.Submit("//broker/name").Wait();          // evaluates: N rounds
//   const QueryReport& hit =
//       engine.Submit("//broker/name").Wait();      // cache hit
//   // hit.served_from_cache == true, hit.rounds == 0,
//   // hit.stats.total_bytes == 0, hit.stats.wire_bytes == 0 — and
//   // hit.result->answers bit-identical to the first run's.
//
// N concurrent identical submissions coalesce into a single flight: one
// evaluates (the leader), the rest wait on its result. Cluster mutations
// must call Cluster::AdvanceDataEpoch(), which invalidates every cached
// answer (the epoch is part of the key). Submit(CompiledQuery) bypasses
// the cache — a pre-compiled plan has no canonical text to key by.

#ifndef PAXML_CORE_ENGINE_H_
#define PAXML_CORE_ENGINE_H_

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/distributed_result.h"
#include "core/naive.h"
#include "core/pax2.h"
#include "core/pax3.h"
#include "runtime/query_scheduler.h"
#include "runtime/run_control.h"
#include "runtime/transport.h"
#include "serving/answer_cache.h"
#include "serving/fragment_memo.h"
#include "sim/cluster.h"
#include "xpath/query_plan.h"

namespace paxml {

enum class DistributedAlgorithm : uint8_t {
  kPaX3,
  kPaX2,
  kNaiveCentralized,
};

const char* AlgorithmName(DistributedAlgorithm a);

struct EngineOptions {
  DistributedAlgorithm algorithm = DistributedAlgorithm::kPaX2;
  PaxOptions pax;

  /// Message backend override. Unset: the cluster's default (pooled iff
  /// parallel_execution). Answers, visit counts and per-edge byte totals
  /// are identical across backends (tested property).
  std::optional<TransportKind> transport;

  /// Message-plane knobs (frame batching, streaming chunk sizes) for the
  /// transport the evaluation creates. Batching changes message counts
  /// only — never byte totals, visits or answers (tested property).
  TransportOptions transport_options;
};

/// The engine's serving layer (DESIGN.md §12): what makes repeated, skewed
/// traffic cheap.
struct ServingOptions {
  /// Answer cache at Submit admission (see the header comment). A hit
  /// returns a completed handle with the cached answers in zero rounds and
  /// zero wire bytes; concurrent identical submissions single-flight.
  bool answer_cache = false;
  size_t answer_cache_capacity = 1024;

  /// Share one cache across engines (wins over the two knobs above when
  /// set). Safe across workloads — the key's family/fingerprint isolate
  /// entries — but only across engines over the *same* cluster: the data
  /// epoch in the key is that cluster's.
  std::shared_ptr<AnswerCache> shared_answer_cache;

  /// Fragment-stage memo for the engine's transport (in-process sites
  /// only; paxml_site peers bring their own via --memo). Lets repeated
  /// queries reuse per-fragment partial answers even when the full answer
  /// is not cached; savings show up in RunStats::memo_*
  /// (serving/fragment_memo.h).
  std::shared_ptr<FragmentMemo> fragment_memo;
};

/// How an Engine is wired to its cluster.
struct EngineConfig {
  /// Maximum evaluations in flight (the stream depth); at least 1. The
  /// effective depth shrinks while the shared WorkerPool is saturated
  /// (see runtime/query_scheduler.h).
  size_t depth = 8;

  /// Message backend for the engine's shared transport. Unset: the
  /// cluster's default (pooled iff parallel_execution), or the socket
  /// backend when remote_endpoints is non-empty.
  std::optional<TransportKind> transport;

  /// Message-plane knobs of the engine's shared transport (frame batching
  /// on by default; see runtime/transport.h).
  TransportOptions transport_options;

  /// Multi-process deployment: site -> "host:port" of the paxml_site
  /// process serving it (merged into transport_options). Sites absent from
  /// the map — the query site must be one — run in-process. Submit()
  /// behaves identically either way; answers, visits and per-edge traffic
  /// reproduce the in-process run exactly (tested property).
  std::map<SiteId, std::string> remote_endpoints = {};

  /// Per-query options used when a submission does not override them.
  EngineOptions defaults;

  /// The serving layer: answer cache and fragment memo (both off by
  /// default — an engine without them behaves exactly as before).
  ServingOptions serving = {};
};

/// Everything the engine reports about one submitted query.
struct QueryReport {
  /// The evaluation's outcome. Distinct error codes for the session
  /// lifecycle: kCancelled (Cancel() before or during evaluation),
  /// kDeadlineExceeded (deadline passed while queued or between rounds).
  Result<DistributedResult> result = Status::Internal("query was not evaluated");

  /// Submission to completion, wall clock — what a client observes,
  /// including time spent queued.
  double latency_seconds = 0;

  /// Submission to admission (== latency_seconds for work rejected while
  /// queued). latency - queue is the evaluation's own wall time.
  double queue_seconds = 0;

  /// Coordinator rounds the run executed (also for aborted runs).
  int rounds = 0;

  /// RunStats snapshot of the run. For successful queries this equals
  /// result->stats; for cancelled / expired / failed ones it holds the
  /// accounting of the partial run (zeroes if rejected while queued).
  RunStats stats;

  /// True when the answer came from the serving layer's answer cache (or a
  /// coalesced flight another submission evaluated): no run was opened, so
  /// rounds and every traffic counter are zero.
  bool served_from_cache = false;
};

namespace internal {
struct QueryState;
}  // namespace internal

/// Caller's end of one submitted query. Cheap to copy (shared state with
/// the engine); all methods are thread-safe. A default-constructed handle
/// is empty — using it is a programming error guarded by PAXML_CHECK.
/// Handles outlive their Engine safely: the shared state survives, and the
/// engine drains in-flight work before destruction.
class QueryHandle {
 public:
  QueryHandle();
  ~QueryHandle();
  QueryHandle(const QueryHandle&);
  QueryHandle& operator=(const QueryHandle&);
  QueryHandle(QueryHandle&&) noexcept;
  QueryHandle& operator=(QueryHandle&&) noexcept;

  bool valid() const;

  /// Blocks until the evaluation completes (or is rejected) and returns its
  /// report. The reference stays valid while any handle to this query lives.
  const QueryReport& Wait() const;

  /// Non-blocking: the report if the query has completed, else nullptr.
  const QueryReport* TryGet() const;

  /// Non-blocking live view of the in-flight evaluation: rounds completed
  /// and traffic accounted so far, published at every Coordinator round
  /// boundary — available *before* Wait() resolves (all zeroes while the
  /// query is still queued; for a finished query it matches the report's
  /// RunStats). Monotone across calls.
  RunProgress Progress() const;

  /// Requests cooperative cancellation: a queued query is rejected at
  /// admission, a running one unwinds at its next round boundary (without
  /// disturbing concurrent runs). Returns false if the query had already
  /// completed, true if the request was registered in time to matter
  /// (the evaluation may still complete if it was past its last round).
  bool Cancel() const;

  /// Moves the report out (e.g. to avoid copying a large answer set).
  /// Blocks like Wait(); the handle's report is left moved-from. Requires
  /// exclusive access to the query: no other thread may concurrently read
  /// the report through Wait()/TryGet() references on another copy of the
  /// handle (those are read without the lock once settled).
  QueryReport TakeReport();

 private:
  friend class Engine;
  explicit QueryHandle(std::shared_ptr<internal::QueryState> state);

  std::shared_ptr<internal::QueryState> state_;
};

/// What a query submission may override (see EngineConfig::defaults).
struct SubmitOptions {
  /// Higher-priority submissions are admitted first; within a priority
  /// band the earliest deadline runs first (EDF), remaining ties in
  /// submission order. In-flight evaluations are never preempted.
  int priority = 0;

  /// Relative deadline, measured from submission. Expiry rejects the query
  /// while queued and unwinds it at the next round boundary while running;
  /// either way the report carries kDeadlineExceeded. Within a priority
  /// band, a nearer deadline also wins admission (EDF).
  std::optional<std::chrono::steady_clock::duration> deadline;

  /// Per-query engine options (algorithm, pax options); unset uses the
  /// engine's defaults. The `transport` field is ignored here: every
  /// submission runs over the engine's shared transport, chosen at
  /// EngineConfig time.
  std::optional<EngineOptions> engine_options;
};

/// A long-lived evaluation session over one cluster: one shared transport,
/// one scheduler, any number of submitted queries. Thread-safe: any thread
/// may Submit or use handles concurrently. Destruction drains in-flight
/// and queued work first.
class Engine {
 public:
  explicit Engine(const Cluster& cluster, EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enqueues a query for evaluation; never blocks. The query string is
  /// routed by the cluster's workload family (core/workload.h): XPath over
  /// XML data, "reach <s> <t>" over graph data. It is parsed/compiled on
  /// the driver thread, overlapping other queries' evaluation; compile
  /// errors surface in the handle's report. With the answer cache on, a
  /// repeated query returns an already-completed handle and concurrent
  /// identical queries coalesce into one evaluation (see the header
  /// comment).
  QueryHandle Submit(std::string query, SubmitOptions options = {});

  /// Same, for a pre-compiled XPath query (XML clusters only). Bypasses
  /// the answer cache: a compiled plan has no canonical text to key by.
  QueryHandle Submit(CompiledQuery query, SubmitOptions options = {});

  /// Blocks until every query submitted so far has completed.
  void Drain();

  const Cluster& cluster() const { return *cluster_; }

  /// Read-only view of the engine's message plane (open_run_count() etc.).
  const Transport& transport() const { return *transport_; }

  /// The engine's answer cache (null when the serving layer is off); its
  /// Stats expose hit/miss/coalesced counts.
  const std::shared_ptr<AnswerCache>& answer_cache() const { return cache_; }

  /// Maximum evaluations in flight.
  size_t depth() const { return scheduler_.depth(); }

  /// Current adaptive admission limit (<= depth()). Introspection.
  size_t admission_limit() { return scheduler_.admission_limit(); }

  /// Submissions not yet admitted or rejected. Introspection.
  size_t queued_count() { return scheduler_.queued_count(); }

 private:
  /// One admitted evaluation: everything family-specific (parsing,
  /// compiling, the protocol itself) lives behind this closure, so the
  /// engine's scheduling machinery never names a workload.
  using EvaluateFn = std::function<Result<DistributedResult>(
      const EngineOptions& options, Transport* transport,
      RunControl* control)>;

  /// Invoked with the evaluation's outcome before the handle settles (and
  /// with the rejection status if the job never ran) — the answer cache's
  /// publish hook: a leader's followers observe the entry no later than
  /// the leader's own Wait() returning.
  using CompleteFn = std::function<void(const Result<DistributedResult>&)>;

  void Execute(const std::shared_ptr<internal::QueryState>& state,
               double queue_seconds, const EvaluateFn& evaluate,
               const EngineOptions& options, const CompleteFn& on_complete);
  QueryHandle SubmitJob(EvaluateFn evaluate, SubmitOptions options,
                        CompleteFn on_complete = nullptr);

  /// An already-completed handle serving `cached` (answer-cache hit).
  QueryHandle CachedHandle(const std::shared_ptr<const DistributedResult>& cached);

  /// A handle that settles when `flight` (another submission's in-flight
  /// evaluation of the same key) completes.
  QueryHandle FollowerHandle(const std::shared_ptr<AnswerCache::Flight>& flight);

  const Cluster* cluster_;
  EngineConfig config_;
  std::shared_ptr<AnswerCache> cache_;
  std::unique_ptr<Transport> transport_;
  QueryScheduler scheduler_;
};

/// Dispatches to the selected algorithm. All algorithms return identical
/// answer sets (tested property); they differ in visits, traffic and time.
/// A pooled backend shares the cluster's WorkerPool, so a stream of calls
/// pays no per-run thread spawns.
Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options = {});

/// Convenience overload: compiles `query` against the document's symbols.
Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              std::string_view query,
                                              const EngineOptions& options = {});

/// Evaluates over an explicit transport, which may be carrying other
/// concurrent evaluations — each call opens (and closes) its own run on it.
/// Thread-safe for concurrent calls on one transport; this is the primitive
/// the Engine drives. A non-null `control` makes the run cancellable at
/// round boundaries (runtime/run_control.h).
Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options,
                                              Transport* transport,
                                              RunControl* control = nullptr);

/// Evaluates a stream of queries concurrently: up to `stream_depth`
/// evaluations in flight at a time over one Engine (one transport and —
/// for the pooled backend — the cluster's WorkerPool). Results are
/// positionally aligned with `queries`; a query that fails to compile or
/// evaluate yields its error without disturbing the others. Answers, visit
/// counts and per-edge byte totals are identical to running the same
/// queries sequentially (tested property). If `latency_seconds` is
/// non-null it receives each query's evaluation wall time (excluding queue
/// wait), aligned with `queries`.
std::vector<Result<DistributedResult>> EvalBatch(
    const Cluster& cluster, const std::vector<std::string>& queries,
    const EngineOptions& options = {}, size_t stream_depth = 8,
    std::vector<double>* latency_seconds = nullptr);

}  // namespace paxml

#endif  // PAXML_CORE_ENGINE_H_
