// Unified entry point for distributed query evaluation.
//
// Typical use:
//
//   auto doc = std::make_shared<FragmentedDocument>(
//       FragmentByCuts(tree, cuts).ValueOrDie());
//   Cluster cluster(doc, /*site_count=*/4);
//   cluster.PlaceRootAndSpread();
//   auto query = CompileXPath("//broker[//stock/code = \"GOOG\"]/name",
//                             tree.symbols()).ValueOrDie();
//   auto result = EvaluateDistributed(
//       cluster, query, {.algorithm = DistributedAlgorithm::kPaX2,
//                        .pax = {.use_annotations = true}});

#ifndef PAXML_CORE_ENGINE_H_
#define PAXML_CORE_ENGINE_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "core/distributed_result.h"
#include "core/naive.h"
#include "core/pax2.h"
#include "core/pax3.h"
#include "runtime/transport.h"
#include "sim/cluster.h"

namespace paxml {

enum class DistributedAlgorithm : uint8_t {
  kPaX3,
  kPaX2,
  kNaiveCentralized,
};

const char* AlgorithmName(DistributedAlgorithm a);

struct EngineOptions {
  DistributedAlgorithm algorithm = DistributedAlgorithm::kPaX2;
  PaxOptions pax;

  /// Message backend override. Unset: the cluster's default (pooled iff
  /// parallel_execution). Answers, visit counts and per-edge byte totals
  /// are identical across backends (tested property).
  std::optional<TransportKind> transport;
};

/// Dispatches to the selected algorithm. All algorithms return identical
/// answer sets (tested property); they differ in visits, traffic and time.
Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options = {});

/// Convenience overload: compiles `query` against the document's symbols.
Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              std::string_view query,
                                              const EngineOptions& options = {});

}  // namespace paxml

#endif  // PAXML_CORE_ENGINE_H_
