// Site-side building blocks shared by ParBoX, PaX3 and PaX2.
//
// Each fragment evaluation owns a FormulaArena; unknowns are introduced as
// the provenance-encoded variables of core/vars.h. These helpers wire the
// generic passes of src/eval to the fragmented setting: variables for
// virtual nodes, z-variable (or concrete) stack initializations, resolution
// of residual vectors against values received from the coordinator, and
// answer-shipping byte accounting.

#ifndef PAXML_CORE_SITE_EVAL_H_
#define PAXML_CORE_SITE_EVAL_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "boolexpr/formula.h"
#include "core/distributed_result.h"
#include "core/messages.h"
#include "core/vars.h"
#include "eval/domain.h"
#include "eval/qualifier_pass.h"
#include "eval/selection_pass.h"
#include "fragment/fragment.h"
#include "xpath/query_plan.h"

namespace paxml {

/// Result of the qualifier stage over one fragment: residual vectors over
/// the fragment's virtual-child variables. Lives at the site between visits.
struct FragmentQualEval {
  std::unique_ptr<FormulaArena> arena;
  QualVectors<FormulaDomain> vectors;
  uint64_t ops = 0;
};

/// Runs the bottom-up qualifier pass over `frag` with fresh variables for
/// every virtual node (Stage 1 of PaX3 / the ParBoX stage).
FragmentQualEval RunFragmentQualifierStage(const Fragment& frag,
                                           const CompiledQuery& query);

/// Builds the stage-1 reply: the fragment root's (QV, QDV) residual rows.
/// When `include_root_qual` is set (root fragment of a Boolean query), the
/// query's root qualifier at the fragment root is attached.
QualUpMessage BuildQualUp(const Fragment& frag, const CompiledQuery& query,
                          const FragmentQualEval& eval);

/// Resolved boolean truth of the root qualifier at the (global) root
/// element, from resolved vectors.
bool RootQualifierValue(const Fragment& root_fragment,
                        const CompiledQuery& query,
                        const QualVectors<BoolDomain>& vectors);

/// Turns the residual qualifier vectors into concrete boolean vectors using
/// the resolved child rows received from the coordinator (Stage 2 of PaX3).
Result<QualVectors<BoolDomain>> ResolveQualVectors(
    const Fragment& frag, const CompiledQuery& query,
    const FragmentQualEval& eval, const QualDownMessage& resolved);

/// Stack initialization of fresh z variables for a non-root fragment
/// (entry 0, the document-node entry, is constant false at any real node).
std::vector<Formula> VariableStackInit(const CompiledQuery& query,
                                       FragmentId fragment,
                                       FormulaArena* arena);

/// Lifts a concrete boolean vector into constant formulas.
std::vector<Formula> ConstStackInit(const std::vector<uint8_t>& values);

/// Bytes needed to ship the given answer nodes of `tree` (see
/// AnswerShipMode). Additive per answer, so a chunked shipment
/// (core/answer_stream.h) accounts the same total as a monolithic one —
/// the subrange overload is what the chunks use.
uint64_t AnswerBytes(const Tree& tree, const std::vector<NodeId>& answers,
                     AnswerShipMode mode);
uint64_t AnswerBytes(const Tree& tree, const NodeId* answers, size_t count,
                     AnswerShipMode mode);

}  // namespace paxml

#endif  // PAXML_CORE_SITE_EVAL_H_
