#include "core/engine.h"

#include "xpath/query_plan.h"

namespace paxml {

const char* AlgorithmName(DistributedAlgorithm a) {
  switch (a) {
    case DistributedAlgorithm::kPaX3:
      return "PaX3";
    case DistributedAlgorithm::kPaX2:
      return "PaX2";
    case DistributedAlgorithm::kNaiveCentralized:
      return "NaiveCentralized";
  }
  return "?";
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options) {
  std::unique_ptr<Transport> transport = MakeTransport(
      options.transport.value_or(DefaultTransportKind(cluster)));
  switch (options.algorithm) {
    case DistributedAlgorithm::kPaX3:
      return EvaluatePaX3(cluster, query, options.pax, transport.get());
    case DistributedAlgorithm::kPaX2:
      return EvaluatePaX2(cluster, query, options.pax, transport.get());
    case DistributedAlgorithm::kNaiveCentralized:
      return EvaluateNaiveCentralized(cluster, query, transport.get());
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              std::string_view query,
                                              const EngineOptions& options) {
  PAXML_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileXPath(query, cluster.doc().symbols()));
  return EvaluateDistributed(cluster, compiled, options);
}

}  // namespace paxml
