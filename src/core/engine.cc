#include "core/engine.h"

#include <algorithm>
#include <chrono>

#include "runtime/query_scheduler.h"
#include "xpath/query_plan.h"

namespace paxml {

const char* AlgorithmName(DistributedAlgorithm a) {
  switch (a) {
    case DistributedAlgorithm::kPaX3:
      return "PaX3";
    case DistributedAlgorithm::kPaX2:
      return "PaX2";
    case DistributedAlgorithm::kNaiveCentralized:
      return "NaiveCentralized";
  }
  return "?";
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options,
                                              Transport* transport) {
  switch (options.algorithm) {
    case DistributedAlgorithm::kPaX3:
      return EvaluatePaX3(cluster, query, options.pax, transport);
    case DistributedAlgorithm::kPaX2:
      return EvaluatePaX2(cluster, query, options.pax, transport);
    case DistributedAlgorithm::kNaiveCentralized:
      return EvaluateNaiveCentralized(cluster, query, transport);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options) {
  std::unique_ptr<Transport> transport =
      MakeTransportFor(cluster, options.transport);
  return EvaluateDistributed(cluster, query, options, transport.get());
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              std::string_view query,
                                              const EngineOptions& options) {
  PAXML_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileXPath(query, cluster.doc().symbols()));
  return EvaluateDistributed(cluster, compiled, options);
}

std::vector<Result<DistributedResult>> EvalBatch(
    const Cluster& cluster, const std::vector<std::string>& queries,
    const EngineOptions& options, size_t stream_depth,
    std::vector<double>* latency_seconds) {
  std::vector<Result<DistributedResult>> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results.emplace_back(Status::Internal("query was not evaluated"));
  }
  if (latency_seconds != nullptr) {
    latency_seconds->assign(queries.size(), 0);
  }
  if (queries.empty()) return results;

  // One message plane for the whole stream: every evaluation opens its own
  // run on it, so mailboxes and accounting never cross queries.
  std::unique_ptr<Transport> transport =
      MakeTransportFor(cluster, options.transport);

  // No point spawning more drivers than there are queries to drive.
  QueryScheduler scheduler(std::min(stream_depth, queries.size()));
  for (size_t i = 0; i < queries.size(); ++i) {
    // Each job writes only its own slot; the vectors are pre-sized, so
    // concurrent jobs never touch the same element.
    scheduler.Submit([&, i] {
      const auto start = std::chrono::steady_clock::now();
      // Compilation interns into the document's SymbolTable, which is
      // thread-safe; compiling inside the job overlaps it with other
      // queries' evaluation.
      auto compiled = CompileXPath(queries[i], cluster.doc().symbols());
      if (!compiled.ok()) {
        results[i] = compiled.status();
      } else {
        results[i] =
            EvaluateDistributed(cluster, *compiled, options, transport.get());
      }
      if (latency_seconds != nullptr) {
        (*latency_seconds)[i] = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
      }
    });
  }
  scheduler.Wait();
  return results;
}

}  // namespace paxml
