#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "core/workload.h"
#include "runtime/run_control.h"
#include "runtime/worker_pool.h"
#include "xpath/query_plan.h"

namespace paxml {

const char* AlgorithmName(DistributedAlgorithm a) {
  switch (a) {
    case DistributedAlgorithm::kPaX3:
      return "PaX3";
    case DistributedAlgorithm::kPaX2:
      return "PaX2";
    case DistributedAlgorithm::kNaiveCentralized:
      return "NaiveCentralized";
  }
  return "?";
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options,
                                              Transport* transport,
                                              RunControl* control) {
  switch (options.algorithm) {
    case DistributedAlgorithm::kPaX3:
      return EvaluatePaX3(cluster, query, options.pax, transport, control);
    case DistributedAlgorithm::kPaX2:
      return EvaluatePaX2(cluster, query, options.pax, transport, control);
    case DistributedAlgorithm::kNaiveCentralized:
      return EvaluateNaiveCentralized(cluster, query, transport, control);
  }
  return Status::InvalidArgument("unknown algorithm");
}

// ---- Session state ----------------------------------------------------------

namespace internal {

/// Shared between the Engine's driver and every QueryHandle to the query.
struct QueryState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  QueryReport report;
  RunControl control;
  std::chrono::steady_clock::time_point submit_time;
};

}  // namespace internal

namespace {

using internal::QueryState;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pool whose saturation should throttle admission: whatever pool the
/// engine's own transport delivers rounds on (nullptr for sync backends).
std::shared_ptr<WorkerPool> SchedulerPoolOf(Transport* transport) {
  auto* pooled = dynamic_cast<PooledTransport*>(transport);
  return pooled != nullptr ? pooled->pool() : nullptr;
}

}  // namespace

// ---- QueryHandle ------------------------------------------------------------

QueryHandle::QueryHandle() = default;
QueryHandle::~QueryHandle() = default;
QueryHandle::QueryHandle(const QueryHandle&) = default;
QueryHandle& QueryHandle::operator=(const QueryHandle&) = default;
QueryHandle::QueryHandle(QueryHandle&&) noexcept = default;
QueryHandle& QueryHandle::operator=(QueryHandle&&) noexcept = default;

QueryHandle::QueryHandle(std::shared_ptr<internal::QueryState> state)
    : state_(std::move(state)) {}

bool QueryHandle::valid() const { return state_ != nullptr; }

const QueryReport& QueryHandle::Wait() const {
  PAXML_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->report;
}

const QueryReport* QueryHandle::TryGet() const {
  PAXML_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done ? &state_->report : nullptr;
}

RunProgress QueryHandle::Progress() const {
  PAXML_CHECK(state_ != nullptr);
  return state_->control.progress();
}

bool QueryHandle::Cancel() const {
  PAXML_CHECK(state_ != nullptr);
  // Flag first, then observe: if the query completes concurrently the flag
  // is a harmless no-op, and a false return guarantees it was already done.
  state_->control.RequestCancel();
  std::lock_guard<std::mutex> lock(state_->mu);
  return !state_->done;
}

QueryReport QueryHandle::TakeReport() {
  PAXML_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return std::move(state_->report);
}

// ---- Engine -----------------------------------------------------------------

namespace {

/// EngineConfig::remote_endpoints is sugar for the transport option; merge
/// it before the transport is built. The dedicated field wins on a
/// per-site conflict — it is the documented deployment surface.
TransportOptions MergedTransportOptions(const EngineConfig& config) {
  TransportOptions options = config.transport_options;
  for (const auto& [site, endpoint] : config.remote_endpoints) {
    options.remote_endpoints.insert_or_assign(site, endpoint);
  }
  return options;
}

}  // namespace

Engine::Engine(const Cluster& cluster, EngineConfig config)
    : cluster_(&cluster),
      config_(std::move(config)),
      transport_(MakeTransportFor(cluster, config_.transport,
                                  MergedTransportOptions(config_))),
      scheduler_(config_.depth, SchedulerPoolOf(transport_.get())) {}

// The scheduler (declared last) is destroyed first, draining every
// in-flight and queued job before the shared transport goes away.
Engine::~Engine() = default;

void Engine::Drain() { scheduler_.Wait(); }

QueryHandle Engine::Submit(std::string query, SubmitOptions options) {
  // Routed by the cluster's data family; parsing/compiling happens inside
  // the evaluator, on the job's thread, overlapping other queries'
  // evaluation.
  return SubmitJob(
      [cluster = cluster_, query = std::move(query)](
          const EngineOptions& opts, Transport* transport,
          RunControl* control) {
        return EvaluateWorkload(*cluster, query, opts, transport, control);
      },
      std::move(options));
}

QueryHandle Engine::Submit(CompiledQuery query, SubmitOptions options) {
  // XML convenience: the plan moves into the closure and is evaluated
  // directly, skipping the family dispatch.
  return SubmitJob(
      [cluster = cluster_, query = std::move(query)](
          const EngineOptions& opts, Transport* transport,
          RunControl* control) {
        return EvaluateDistributed(*cluster, query, opts, transport, control);
      },
      std::move(options));
}

QueryHandle Engine::SubmitJob(EvaluateFn evaluate, SubmitOptions options) {
  auto state = std::make_shared<QueryState>();
  state->submit_time = std::chrono::steady_clock::now();
  if (options.deadline.has_value()) {
    state->control.set_deadline(state->submit_time + *options.deadline);
  }

  QueryScheduler::Job job;
  job.priority = options.priority;
  if (options.deadline.has_value()) {
    job.deadline = state->submit_time + *options.deadline;
  }
  job.cancelled = [state] { return state->control.cancel_requested(); };
  job.reject = [state](const Status& status) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->report.result = status;
    state->report.latency_seconds = SecondsSince(state->submit_time);
    state->report.queue_seconds = state->report.latency_seconds;
    state->done = true;
    state->cv.notify_all();
  };
  job.run = [this, state, evaluate = std::move(evaluate),
             engine_options =
                 options.engine_options.value_or(config_.defaults)] {
    // Queue time ends at admission — before parsing/compiling, which is
    // part of the evaluation's own wall time.
    const double queue_seconds = SecondsSince(state->submit_time);
    Execute(state, queue_seconds, evaluate, engine_options);
  };
  scheduler_.Submit(std::move(job));
  return QueryHandle(std::move(state));
}

void Engine::Execute(const std::shared_ptr<internal::QueryState>& state,
                     double queue_seconds, const EvaluateFn& evaluate,
                     const EngineOptions& options) {
  Result<DistributedResult> result =
      evaluate(options, transport_.get(), &state->control);

  std::lock_guard<std::mutex> lock(state->mu);
  state->report.queue_seconds = queue_seconds;
  state->report.latency_seconds = SecondsSince(state->submit_time);
  // Aborted or failed runs report through the Coordinator's published
  // snapshot (runtime/run_control.h); successful ones carry their stats in
  // the result itself.
  state->report.stats =
      result.ok() ? result->stats : state->control.TakeStats();
  state->report.rounds = state->report.stats.rounds;
  state->report.result = std::move(result);
  state->done = true;
  state->cv.notify_all();
}

// ---- Synchronous wrappers ---------------------------------------------------

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options) {
  Engine engine(cluster, EngineConfig{.depth = 1,
                                      .transport = options.transport,
                                      .transport_options = options.transport_options,
                                      .defaults = options});
  return engine.Submit(query).TakeReport().result;
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              std::string_view query,
                                              const EngineOptions& options) {
  Engine engine(cluster, EngineConfig{.depth = 1,
                                      .transport = options.transport,
                                      .transport_options = options.transport_options,
                                      .defaults = options});
  return engine.Submit(std::string(query)).TakeReport().result;
}

std::vector<Result<DistributedResult>> EvalBatch(
    const Cluster& cluster, const std::vector<std::string>& queries,
    const EngineOptions& options, size_t stream_depth,
    std::vector<double>* latency_seconds) {
  std::vector<Result<DistributedResult>> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results.emplace_back(Status::Internal("query was not evaluated"));
  }
  if (latency_seconds != nullptr) {
    latency_seconds->assign(queries.size(), 0);
  }
  if (queries.empty()) return results;

  // One session for the whole stream: every evaluation opens its own run
  // on the engine's shared transport, so mailboxes and accounting never
  // cross queries. No point in more depth than there are queries.
  Engine engine(cluster,
                EngineConfig{.depth = std::min(stream_depth, queries.size()),
                             .transport = options.transport,
                             .transport_options = options.transport_options,
                             .defaults = options});
  std::vector<QueryHandle> handles;
  handles.reserve(queries.size());
  for (const std::string& q : queries) {
    handles.push_back(engine.Submit(q));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryReport report = handles[i].TakeReport();
    results[i] = std::move(report.result);
    if (latency_seconds != nullptr) {
      // The evaluation's own wall time, excluding queue wait — comparable
      // across stream depths.
      (*latency_seconds)[i] =
          report.latency_seconds - report.queue_seconds;
    }
  }
  return results;
}

}  // namespace paxml
