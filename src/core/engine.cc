#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "core/workload.h"
#include "runtime/run_control.h"
#include "runtime/worker_pool.h"
#include "serving/fingerprint.h"
#include "xpath/query_plan.h"

namespace paxml {

const char* AlgorithmName(DistributedAlgorithm a) {
  switch (a) {
    case DistributedAlgorithm::kPaX3:
      return "PaX3";
    case DistributedAlgorithm::kPaX2:
      return "PaX2";
    case DistributedAlgorithm::kNaiveCentralized:
      return "NaiveCentralized";
  }
  return "?";
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options,
                                              Transport* transport,
                                              RunControl* control) {
  switch (options.algorithm) {
    case DistributedAlgorithm::kPaX3:
      return EvaluatePaX3(cluster, query, options.pax, transport, control);
    case DistributedAlgorithm::kPaX2:
      return EvaluatePaX2(cluster, query, options.pax, transport, control);
    case DistributedAlgorithm::kNaiveCentralized:
      return EvaluateNaiveCentralized(cluster, query, transport, control);
  }
  return Status::InvalidArgument("unknown algorithm");
}

// ---- Session state ----------------------------------------------------------

namespace internal {

/// Shared between the Engine's driver and every QueryHandle to the query.
struct QueryState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  QueryReport report;
  RunControl control;
  std::chrono::steady_clock::time_point submit_time;
};

}  // namespace internal

namespace {

using internal::QueryState;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pool whose saturation should throttle admission: whatever pool the
/// engine's own transport delivers rounds on (nullptr for sync backends).
std::shared_ptr<WorkerPool> SchedulerPoolOf(Transport* transport) {
  auto* pooled = dynamic_cast<PooledTransport*>(transport);
  return pooled != nullptr ? pooled->pool() : nullptr;
}

}  // namespace

// ---- QueryHandle ------------------------------------------------------------

QueryHandle::QueryHandle() = default;
QueryHandle::~QueryHandle() = default;
QueryHandle::QueryHandle(const QueryHandle&) = default;
QueryHandle& QueryHandle::operator=(const QueryHandle&) = default;
QueryHandle::QueryHandle(QueryHandle&&) noexcept = default;
QueryHandle& QueryHandle::operator=(QueryHandle&&) noexcept = default;

QueryHandle::QueryHandle(std::shared_ptr<internal::QueryState> state)
    : state_(std::move(state)) {}

bool QueryHandle::valid() const { return state_ != nullptr; }

const QueryReport& QueryHandle::Wait() const {
  PAXML_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->report;
}

const QueryReport* QueryHandle::TryGet() const {
  PAXML_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done ? &state_->report : nullptr;
}

RunProgress QueryHandle::Progress() const {
  PAXML_CHECK(state_ != nullptr);
  return state_->control.progress();
}

bool QueryHandle::Cancel() const {
  PAXML_CHECK(state_ != nullptr);
  // Flag first, then observe: if the query completes concurrently the flag
  // is a harmless no-op, and a false return guarantees it was already done.
  state_->control.RequestCancel();
  std::lock_guard<std::mutex> lock(state_->mu);
  return !state_->done;
}

QueryReport QueryHandle::TakeReport() {
  PAXML_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return std::move(state_->report);
}

// ---- Engine -----------------------------------------------------------------

namespace {

/// EngineConfig::remote_endpoints is sugar for the transport option; merge
/// it before the transport is built. The dedicated field wins on a
/// per-site conflict — it is the documented deployment surface.
TransportOptions MergedTransportOptions(const EngineConfig& config) {
  TransportOptions options = config.transport_options;
  for (const auto& [site, endpoint] : config.remote_endpoints) {
    options.remote_endpoints.insert_or_assign(site, endpoint);
  }
  if (config.serving.fragment_memo != nullptr) {
    options.fragment_memo = config.serving.fragment_memo;
  }
  return options;
}

std::shared_ptr<AnswerCache> MakeAnswerCache(const ServingOptions& serving) {
  if (serving.shared_answer_cache != nullptr) return serving.shared_answer_cache;
  if (serving.answer_cache) {
    return std::make_shared<AnswerCache>(serving.answer_cache_capacity);
  }
  return nullptr;
}

/// The zero-cost stats of a serving-layer hit: no rounds, no bytes, no
/// messages — only the per_site shape matches the cluster so hit and miss
/// reports stay structurally comparable.
RunStats CacheHitStats(size_t site_count) {
  RunStats stats;
  stats.per_site.resize(site_count);
  return stats;
}

}  // namespace

Engine::Engine(const Cluster& cluster, EngineConfig config)
    : cluster_(&cluster),
      config_(std::move(config)),
      cache_(MakeAnswerCache(config_.serving)),
      transport_(MakeTransportFor(cluster, config_.transport,
                                  MergedTransportOptions(config_))),
      scheduler_(config_.depth, SchedulerPoolOf(transport_.get())) {}

// The scheduler (declared last) is destroyed first, draining every
// in-flight and queued job before the shared transport goes away.
Engine::~Engine() = default;

void Engine::Drain() { scheduler_.Wait(); }

QueryHandle Engine::Submit(std::string query, SubmitOptions options) {
  // Routed by the cluster's data family; parsing/compiling happens inside
  // the evaluator, on the job's thread, overlapping other queries'
  // evaluation.
  EvaluateFn evaluate = [cluster = cluster_, query](
                            const EngineOptions& opts, Transport* transport,
                            RunControl* control) {
    return EvaluateWorkload(*cluster, query, opts, transport, control);
  };
  if (cache_ == nullptr) return SubmitJob(std::move(evaluate), std::move(options));

  // Serving-layer admission. The key is the run's full serving identity
  // (serving/fingerprint.h) plus the cluster's data epoch (re-placement can
  // never serve a stale answer) plus the workload data's identity (a cache
  // shared across engines — the multi-front-end deployment — must never
  // collide across documents; answers depend on the data, not the
  // placement, so clusters sharing one store share entries).
  const EngineOptions& opts = options.engine_options.has_value()
                                  ? *options.engine_options
                                  : config_.defaults;
  RunSpec spec;
  spec.algorithm = AlgorithmName(opts.algorithm);
  spec.query = std::move(query);
  spec.use_annotations = opts.pax.use_annotations;
  spec.ship_mode = static_cast<uint8_t>(opts.pax.ship_mode);
  spec.family = std::string(cluster_->data().family());
  const std::string key =
      RunFingerprint(spec) + "@" + std::to_string(cluster_->data_epoch()) +
      "#" +
      std::to_string(reinterpret_cast<uintptr_t>(
          static_cast<const void*>(&cluster_->data())));

  AnswerCache::Ticket ticket = cache_->Begin(key);
  switch (ticket.role) {
    case AnswerCache::Role::kHit:
      return CachedHandle(ticket.cached);
    case AnswerCache::Role::kFollower:
      return FollowerHandle(ticket.flight);
    case AnswerCache::Role::kLeader:
      break;
  }
  // Leader: run the evaluation and settle the flight either way — including
  // queue rejection (SubmitJob's reject path also invokes on_complete), so
  // followers can never wait on a flight nobody is flying.
  return SubmitJob(
      std::move(evaluate), std::move(options),
      [cache = cache_, flight = ticket.flight,
       key](const Result<DistributedResult>& result) {
        if (result.ok()) {
          cache->Publish(flight, key,
                         std::make_shared<const DistributedResult>(*result));
        } else {
          cache->Abort(flight, key, result.status());
        }
      });
}

QueryHandle Engine::CachedHandle(
    const std::shared_ptr<const DistributedResult>& cached) {
  auto state = std::make_shared<QueryState>();
  state->submit_time = std::chrono::steady_clock::now();
  // Deep-copy the answers but report a zero-cost run: the hit opened no run,
  // moved no bytes, visited no site.
  DistributedResult copy;
  copy.answers = cached->answers;
  copy.stats = CacheHitStats(cluster_->site_count());
  std::lock_guard<std::mutex> lock(state->mu);
  state->report.stats = copy.stats;
  state->report.result = std::move(copy);
  state->report.served_from_cache = true;
  state->report.rounds = 0;
  state->report.latency_seconds = SecondsSince(state->submit_time);
  state->report.queue_seconds = 0;
  state->done = true;
  return QueryHandle(std::move(state));
}

QueryHandle Engine::FollowerHandle(
    const std::shared_ptr<AnswerCache::Flight>& flight) {
  auto state = std::make_shared<QueryState>();
  state->submit_time = std::chrono::steady_clock::now();
  flight->AddWaiter([state, flight, site_count = cluster_->site_count()] {
    // The flight is done; read its outcome under its lock (Complete wrote it
    // there) so the hand-off is clean under TSan.
    std::shared_ptr<const DistributedResult> result;
    Status failure = Status::OK();
    {
      std::lock_guard<std::mutex> flight_lock(flight->mu);
      result = flight->result;
      failure = flight->failure;
    }
    std::lock_guard<std::mutex> lock(state->mu);
    if (result != nullptr) {
      DistributedResult copy;
      copy.answers = result->answers;
      copy.stats = CacheHitStats(site_count);
      state->report.stats = copy.stats;
      state->report.result = std::move(copy);
      state->report.served_from_cache = true;
    } else {
      state->report.result = failure;
    }
    state->report.rounds = 0;
    state->report.latency_seconds = SecondsSince(state->submit_time);
    // The whole wait rode on the leader's run; the follower itself was
    // never queued.
    state->report.queue_seconds = state->report.latency_seconds;
    state->done = true;
    state->cv.notify_all();
  });
  return QueryHandle(std::move(state));
}

QueryHandle Engine::Submit(CompiledQuery query, SubmitOptions options) {
  // XML convenience: the plan moves into the closure and is evaluated
  // directly, skipping the family dispatch.
  return SubmitJob(
      [cluster = cluster_, query = std::move(query)](
          const EngineOptions& opts, Transport* transport,
          RunControl* control) {
        return EvaluateDistributed(*cluster, query, opts, transport, control);
      },
      std::move(options));
}

QueryHandle Engine::SubmitJob(EvaluateFn evaluate, SubmitOptions options,
                              CompleteFn on_complete) {
  auto state = std::make_shared<QueryState>();
  state->submit_time = std::chrono::steady_clock::now();
  if (options.deadline.has_value()) {
    state->control.set_deadline(state->submit_time + *options.deadline);
  }

  QueryScheduler::Job job;
  job.priority = options.priority;
  if (options.deadline.has_value()) {
    job.deadline = state->submit_time + *options.deadline;
  }
  job.cancelled = [state] { return state->control.cancel_requested(); };
  job.reject = [state, on_complete](const Status& status) {
    // A rejected leader still settles its flight: followers observe the
    // rejection instead of waiting forever.
    if (on_complete != nullptr) on_complete(status);
    std::lock_guard<std::mutex> lock(state->mu);
    state->report.result = status;
    state->report.latency_seconds = SecondsSince(state->submit_time);
    state->report.queue_seconds = state->report.latency_seconds;
    state->done = true;
    state->cv.notify_all();
  };
  job.run = [this, state, evaluate = std::move(evaluate),
             on_complete = std::move(on_complete),
             engine_options =
                 options.engine_options.value_or(config_.defaults)] {
    // Queue time ends at admission — before parsing/compiling, which is
    // part of the evaluation's own wall time.
    const double queue_seconds = SecondsSince(state->submit_time);
    Execute(state, queue_seconds, evaluate, engine_options, on_complete);
  };
  scheduler_.Submit(std::move(job));
  return QueryHandle(std::move(state));
}

void Engine::Execute(const std::shared_ptr<internal::QueryState>& state,
                     double queue_seconds, const EvaluateFn& evaluate,
                     const EngineOptions& options,
                     const CompleteFn& on_complete) {
  Result<DistributedResult> result =
      evaluate(options, transport_.get(), &state->control);

  // Settle the serving layer before the handle: whoever observes this
  // query's completion can already hit its cache entry.
  if (on_complete != nullptr) on_complete(result);

  std::lock_guard<std::mutex> lock(state->mu);
  state->report.queue_seconds = queue_seconds;
  state->report.latency_seconds = SecondsSince(state->submit_time);
  // Aborted or failed runs report through the Coordinator's published
  // snapshot (runtime/run_control.h); successful ones carry their stats in
  // the result itself.
  state->report.stats =
      result.ok() ? result->stats : state->control.TakeStats();
  state->report.rounds = state->report.stats.rounds;
  state->report.result = std::move(result);
  state->done = true;
  state->cv.notify_all();
}

// ---- Synchronous wrappers ---------------------------------------------------

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              const CompiledQuery& query,
                                              const EngineOptions& options) {
  Engine engine(cluster, EngineConfig{.depth = 1,
                                      .transport = options.transport,
                                      .transport_options = options.transport_options,
                                      .defaults = options});
  return engine.Submit(query).TakeReport().result;
}

Result<DistributedResult> EvaluateDistributed(const Cluster& cluster,
                                              std::string_view query,
                                              const EngineOptions& options) {
  Engine engine(cluster, EngineConfig{.depth = 1,
                                      .transport = options.transport,
                                      .transport_options = options.transport_options,
                                      .defaults = options});
  return engine.Submit(std::string(query)).TakeReport().result;
}

std::vector<Result<DistributedResult>> EvalBatch(
    const Cluster& cluster, const std::vector<std::string>& queries,
    const EngineOptions& options, size_t stream_depth,
    std::vector<double>* latency_seconds) {
  std::vector<Result<DistributedResult>> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results.emplace_back(Status::Internal("query was not evaluated"));
  }
  if (latency_seconds != nullptr) {
    latency_seconds->assign(queries.size(), 0);
  }
  if (queries.empty()) return results;

  // One session for the whole stream: every evaluation opens its own run
  // on the engine's shared transport, so mailboxes and accounting never
  // cross queries. No point in more depth than there are queries.
  Engine engine(cluster,
                EngineConfig{.depth = std::min(stream_depth, queries.size()),
                             .transport = options.transport,
                             .transport_options = options.transport_options,
                             .defaults = options});
  std::vector<QueryHandle> handles;
  handles.reserve(queries.size());
  for (const std::string& q : queries) {
    handles.push_back(engine.Submit(q));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryReport report = handles[i].TakeReport();
    results[i] = std::move(report.result);
    if (latency_seconds != nullptr) {
      // The evaluation's own wall time, excluding queue wait — comparable
      // across stream depths.
      (*latency_seconds)[i] =
          report.latency_seconds - report.queue_seconds;
    }
  }
  return results;
}

}  // namespace paxml
