#include "core/eval_ft.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/vars.h"

namespace paxml {

void FragmentTreeUnifier::AddQualReport(QualUpMessage message) {
  qual_reports_[message.fragment] = std::move(message);
}

void FragmentTreeUnifier::AddSelReport(SelUpMessage message) {
  sel_reports_[message.fragment] = std::move(message);
}

std::vector<FragmentId> FragmentTreeUnifier::BottomUpOrder() const {
  std::vector<FragmentId> order;
  std::vector<FragmentId> stack = {0};
  while (!stack.empty()) {
    FragmentId f = stack.back();
    stack.pop_back();
    order.push_back(f);
    for (FragmentId c : doc_->fragment(f).children) stack.push_back(c);
  }
  std::reverse(order.begin(), order.end());  // children before parents
  return order;
}

Status FragmentTreeUnifier::UnifyQualifiers(
    const std::vector<bool>& participating) {
  const size_t ec = query_->entries().size();

  // Variables of non-participating fragments resolve to false (sound: see
  // fragment/pruning.h).
  for (size_t f = 0; f < doc_->size(); ++f) {
    if (participating[f]) continue;
    for (size_t e = 0; e < ec; ++e) {
      binding_.BindConst(MakeQVVar(static_cast<FragmentId>(f), static_cast<int>(e)),
                         false);
      binding_.BindConst(MakeQDVVar(static_cast<FragmentId>(f), static_cast<int>(e)),
                         false);
    }
  }

  for (FragmentId f : BottomUpOrder()) {
    if (!participating[static_cast<size_t>(f)]) continue;
    auto it = qual_reports_.find(f);
    if (it == qual_reports_.end()) {
      return Status::Internal(
          StringFormat("fragment %d participated but sent no qual report", f));
    }
    const QualUpMessage& m = it->second;
    if (m.root_qv.size() != ec || m.root_qdv.size() != ec) {
      return Status::Internal("qual report vector size mismatch");
    }
    auto& resolved = resolved_qual_[f];
    resolved.first.resize(ec);
    resolved.second.resize(ec);
    for (size_t e = 0; e < ec; ++e) {
      // Children were processed first, so substituting the current binding
      // yields constants.
      Formula qv = binding_.Apply(&arena_, m.root_qv[e]);
      Formula qdv = binding_.Apply(&arena_, m.root_qdv[e]);
      auto cqv = arena_.ConstValue(qv);
      auto cqdv = arena_.ConstValue(qdv);
      if (!cqv || !cqdv) {
        return Status::Internal(StringFormat(
            "unresolved qualifier residual at fragment %d entry %zu: %s", f, e,
            arena_.ToString(qv, VarName).c_str()));
      }
      resolved.first[e] = *cqv ? 1 : 0;
      resolved.second[e] = *cqdv ? 1 : 0;
      binding_.BindConst(MakeQVVar(f, static_cast<int>(e)), *cqv);
      binding_.BindConst(MakeQDVVar(f, static_cast<int>(e)), *cqdv);
    }
  }
  return Status::OK();
}

Status FragmentTreeUnifier::UnifySelection(
    const std::vector<bool>& participating) {
  const size_t m = query_->selection().size();

  // Top-down: parents before children.
  std::vector<FragmentId> order = BottomUpOrder();
  std::reverse(order.begin(), order.end());

  for (FragmentId f : order) {
    if (!participating[static_cast<size_t>(f)]) continue;
    auto it = sel_reports_.find(f);
    if (it == sel_reports_.end()) {
      return Status::Internal(
          StringFormat("fragment %d participated but sent no sel report", f));
    }
    for (const SelUpMessage::VirtualTop& top : it->second.virtual_tops) {
      if (top.stack_top.size() != m) {
        return Status::Internal("stack top vector size mismatch");
      }
      auto& resolved = resolved_stack_[top.child];
      resolved.assign(m, 0);
      for (size_t i = 0; i < m; ++i) {
        // Parent fragments resolve before their children (top-down), and
        // qualifier variables are already bound, so this must be constant.
        Formula value = binding_.Apply(&arena_, top.stack_top[i]);
        auto c = arena_.ConstValue(value);
        if (!c) {
          return Status::Internal(StringFormat(
              "unresolved selection residual for fragment %d entry %zu: %s",
              top.child, i, arena_.ToString(value, VarName).c_str()));
        }
        // Entry 0 (document node) can never hold at a fragment parent; z
        // variables exist only for entries >= 1, but record it anyway.
        resolved[i] = *c ? 1 : 0;
        if (i >= 1) binding_.BindConst(MakeSVVar(top.child, static_cast<int>(i)), *c);
      }
    }
  }
  return Status::OK();
}

const std::pair<std::vector<uint8_t>, std::vector<uint8_t>>&
FragmentTreeUnifier::ResolvedQualRow(FragmentId f) const {
  auto it = resolved_qual_.find(f);
  PAXML_CHECK(it != resolved_qual_.end());
  return it->second;
}

const std::vector<uint8_t>& FragmentTreeUnifier::ResolvedStackInit(
    FragmentId f) const {
  auto it = resolved_stack_.find(f);
  PAXML_CHECK(it != resolved_stack_.end());
  return it->second;
}

bool FragmentTreeUnifier::HasAnswerWork(FragmentId f) const {
  auto it = sel_reports_.find(f);
  if (it == sel_reports_.end()) return false;
  return it->second.answer_count > 0 || it->second.candidate_count > 0;
}

QualDownMessage FragmentTreeUnifier::MakeQualDown(FragmentId f) const {
  QualDownMessage m;
  m.fragment = f;
  for (FragmentId c : doc_->fragment(f).children) {
    QualDownMessage::ResolvedChild rc;
    rc.child = c;
    auto it = resolved_qual_.find(c);
    if (it != resolved_qual_.end()) {
      rc.qv = it->second.first;
      rc.qdv = it->second.second;
    } else {
      // Pruned child: all-false rows (what its variables were bound to).
      rc.qv.assign(query_->entries().size(), 0);
      rc.qdv.assign(query_->entries().size(), 0);
    }
    m.children.push_back(std::move(rc));
  }
  return m;
}

SelDownMessage FragmentTreeUnifier::MakeSelDown(FragmentId f) const {
  SelDownMessage m;
  m.fragment = f;
  m.stack_init = ResolvedStackInit(f);
  return m;
}

Formula FragmentTreeUnifier::ResolveRootQual() {
  auto it = qual_reports_.find(0);
  if (it == qual_reports_.end()) return kTrueFormula;
  return binding_.Apply(&arena_, it->second.root_qual);
}

std::string VarName(VarId v) {
  switch (KindOfVar(v)) {
    case VarKind::kQV:
      return StringFormat("qv[F%d].e%u", FragmentOfVar(v), IndexOfVar(v));
    case VarKind::kQDV:
      return StringFormat("qdv[F%d].e%u", FragmentOfVar(v), IndexOfVar(v));
    case VarKind::kSV:
      return StringFormat("sv[F%d].s%u", FragmentOfVar(v), IndexOfVar(v));
    case VarKind::kLocal:
      return StringFormat("local.%u",
                          v & ((1u << (kVarFragmentBits + kVarIndexBits)) - 1));
  }
  return "?";
}

}  // namespace paxml
