// Distributed graph reachability by partial evaluation — the second
// algorithm family (Fan, Wang & Wu's scheme over the same runtime that
// serves the XML algorithms).
//
// Each site partially evaluates its fragment: for every *entry* vertex (an
// in-boundary node, plus the source when it lives here) one local
// traversal settles what can be known locally — whether the target is
// reached without leaving the fragment (`direct`), and which remote
// boundary vertices the traversal escapes to (`deps`, the heads of
// crossed cut edges). Those per-entry rows are boolean equations
//
//   X_v = direct(v) ∨ ⋁_{w ∈ deps(v)} X_w
//
// shipped to the coordinator as one kReachUp payload per fragment, and the
// coordinator solves the system's least fixpoint with a worklist over
// reverse dependencies. The guarantees mirror the paper's XML bounds: one
// delivery round regardless of fragment count (each site is visited once),
// and total shipped data independent of |V| — a fragment ships at most
// |in-boundary| x |cut edges| ids (each entry's deps are cut-edge heads
// its traversal crosses), which is ~O(cut edges) under the locality-aware
// partitionings fragmentation aims for (DESIGN.md §11).

#ifndef PAXML_CORE_REACH_H_
#define PAXML_CORE_REACH_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/distributed_result.h"
#include "graph/store.h"
#include "runtime/run_control.h"
#include "runtime/socket_server.h"
#include "runtime/transport.h"
#include "sim/cluster.h"

namespace paxml {

/// One reachability question over the cluster's graph.
struct ReachQuery {
  NodeId source = kNullNode;
  NodeId target = kNullNode;
};

/// The wire form of a ReachQuery: "reach <source> <target>" — what
/// RunSpec::query carries for the graph family, as XPath text is what it
/// carries for XML.
std::string FormatReachQuery(const ReachQuery& query);
Result<ReachQuery> ParseReachQuery(const std::string& text);

/// The cluster's graph store, or an error when it holds another workload.
Result<const GraphFragmentStore*> GraphOf(const Cluster& cluster);

/// The RunSpec the evaluation announces to remote peers.
RunSpec MakeReachRunSpec(const ReachQuery& query);

/// The reachability handler set over `store` (borrowed) — what a peer
/// serves for a "graph" RunSpec.
std::unique_ptr<MessageHandlers> MakeReachSiteHandlers(
    const GraphFragmentStore* store, const ReachQuery& query);

/// The graph family's SiteProgram builder (registered in core/workload.h).
Result<std::unique_ptr<SiteProgram>> MakeReachSiteProgram(
    const Cluster& cluster, const RunSpec& spec);

/// Evaluates `query` over the cluster's graph. The answer is the target's
/// global id when reachable from the source, empty otherwise. A null
/// transport evaluates synchronously in-process.
Result<DistributedResult> EvaluateReachability(const Cluster& cluster,
                                               const ReachQuery& query,
                                               Transport* transport = nullptr,
                                               RunControl* control = nullptr);

}  // namespace paxml

#endif  // PAXML_CORE_REACH_H_
