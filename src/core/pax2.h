// PaX2: the improved two-visit algorithm (Section 4 of the paper).
//
// PaX2 fuses PaX3's qualifier and selection stages into a single traversal
// per fragment:
//   * the pre-order half computes the selection vectors, conjoining a fresh
//     local variable qz for every not-yet-known qualifier value
//     (Example 4.1: SV_broker = <0, z1 ∧ qz2, 0>);
//   * the post-order half computes the qualifier vectors bottom-up and
//     immediately unifies each qz with the (possibly residual) qualifier
//     formula at that node (Example 4.2: qz2 := y8).
// One reply per fragment carries the root qualifier vectors *and* the stack
// tops recorded at virtual nodes; the coordinator unifies qualifiers
// bottom-up then selection top-down; the second (final) visit resolves
// candidates and ships answers.
//
// Guarantees: <= 2 visits per site, same communication and computation
// bounds as PaX3. With XPath annotations, the combined pass skips fragments
// that neither contain candidate answers nor are visible to any live
// qualifier (see fragment/pruning.h), and qualifier-free queries finish in
// a single visit.

#ifndef PAXML_CORE_PAX2_H_
#define PAXML_CORE_PAX2_H_

#include <memory>

#include "common/result.h"
#include "core/distributed_result.h"
#include "core/pax3.h"
#include "sim/cluster.h"
#include "xpath/query_plan.h"

namespace paxml {

class Transport;
class RunControl;
class MessageHandlers;

/// PaX2's handler set alone, for a remote peer evaluating its share of the
/// cluster (core/site_program.h): owns the prune state the handlers use;
/// `cluster`, `query` and the returned object's lifetime are the caller's.
/// The in-process entry point below and a peer built from the same
/// (query, options) derive identical pruning, stack inits and wire bytes.
std::unique_ptr<MessageHandlers> MakePax2SiteHandlers(
    const Cluster& cluster, const CompiledQuery& query,
    const PaxOptions& options);

/// Evaluates `query` over the cluster's fragmented document with PaX2.
/// `transport` selects the message backend; nullptr uses the cluster's
/// default (a pooled backend shares the cluster's WorkerPool). The
/// transport may be carrying other concurrent evaluations — this call
/// opens and closes its own run on it. A non-null `control` makes the run
/// cancellable at round boundaries (see runtime/run_control.h).
Result<DistributedResult> EvaluatePaX2(const Cluster& cluster,
                                       const CompiledQuery& query,
                                       const PaxOptions& options = {},
                                       Transport* transport = nullptr,
                                       RunControl* control = nullptr);

}  // namespace paxml

#endif  // PAXML_CORE_PAX2_H_
