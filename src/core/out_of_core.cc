#include "core/out_of_core.h"

#include <algorithm>

#include "core/eval_ft.h"
#include "core/site_eval.h"
#include "core/vars.h"
#include "fragment/pruning.h"

namespace paxml {
namespace {

/// Moves a reply into the unifier through the wire codec (keeps the
/// formula-transfer path identical to the distributed algorithms).
Status FeedQualReport(FragmentTreeUnifier* unifier, const FormulaArena& arena,
                      const QualUpMessage& reply) {
  ByteWriter bytes;
  reply.Encode(arena, &bytes);
  ByteReader reader(bytes.bytes());
  PAXML_ASSIGN_OR_RETURN(QualUpMessage decoded,
                         QualUpMessage::Decode(unifier->arena(), &reader));
  unifier->AddQualReport(std::move(decoded));
  return Status::OK();
}

Status FeedSelReport(FragmentTreeUnifier* unifier, const FormulaArena& arena,
                     const SelUpMessage& reply) {
  ByteWriter bytes;
  reply.Encode(arena, &bytes);
  ByteReader reader(bytes.bytes());
  PAXML_ASSIGN_OR_RETURN(SelUpMessage decoded,
                         SelUpMessage::Decode(unifier->arena(), &reader));
  unifier->AddSelReport(std::move(decoded));
  return Status::OK();
}

}  // namespace

Result<OutOfCoreResult> EvaluateOutOfCore(FragmentSource* source,
                                          const CompiledQuery& query,
                                          const OutOfCoreOptions& options) {
  const FragmentedDocument& skeleton = source->skeleton();
  const size_t n = skeleton.size();
  OutOfCoreResult result;

  PruneResult prune;
  if (options.use_annotations) {
    prune = PruneFragments(skeleton, query);
  } else {
    prune.selection_relevant.assign(n, true);
    prune.required.assign(n, true);
  }

  FragmentTreeUnifier unifier(&skeleton, &query);

  auto load = [&](FragmentId f) -> Result<Fragment> {
    PAXML_ASSIGN_OR_RETURN(Fragment frag, source->Load(f));
    ++result.fragment_loads;
    result.peak_fragment_bytes =
        std::max(result.peak_fragment_bytes, source->FragmentBytes(f));
    return frag;
  };

  // ---- Phase A: qualifier residuals, one fragment resident at a time -------
  if (query.has_qualifiers()) {
    for (size_t i = 0; i < n; ++i) {
      if (!prune.required[i]) continue;
      const FragmentId f = static_cast<FragmentId>(i);
      PAXML_ASSIGN_OR_RETURN(Fragment frag, load(f));
      FragmentQualEval eval = RunFragmentQualifierStage(frag, query);
      PAXML_RETURN_NOT_OK(
          FeedQualReport(&unifier, *eval.arena, BuildQualUp(frag, query, eval)));
      // Fragment and its O(|F||Q|) vectors drop here; only the O(|Q|)
      // root rows live on inside the unifier.
    }
    PAXML_RETURN_NOT_OK(unifier.UnifyQualifiers(prune.required));
  }

  // Boolean query: the root qualifier's residual is the whole answer.
  if (query.IsBooleanQuery()) {
    Formula value = unifier.ResolveRootQual();
    auto c = unifier.arena()->ConstValue(value);
    if (!c) return Status::Internal("unresolved Boolean query residual");
    if (*c) result.answers.push_back(GlobalNodeId{0, 0});
    return result;
  }

  // ---- Phase B: selection; recompute qualifiers on reload -------------------
  const bool concrete_init =
      options.use_annotations && !query.has_qualifiers();

  // Per-fragment candidates, transferred into one long-lived arena so the
  // per-fragment state can be dropped.
  FormulaArena candidate_arena;
  std::vector<std::vector<std::pair<NodeId, Formula>>> candidates(n);
  std::vector<std::vector<NodeId>> answers(n);

  for (size_t i = 0; i < n; ++i) {
    if (!prune.selection_relevant[i]) continue;
    const FragmentId f = static_cast<FragmentId>(i);
    PAXML_ASSIGN_OR_RETURN(Fragment frag, load(f));

    // Qualifier values: recomputed rather than stored between loads.
    QualVectors<BoolDomain> qual_values;
    if (query.has_qualifiers()) {
      FragmentQualEval eval = RunFragmentQualifierStage(frag, query);
      PAXML_ASSIGN_OR_RETURN(
          qual_values,
          ResolveQualVectors(frag, query, eval, unifier.MakeQualDown(f)));
    }

    FormulaArena arena;
    FormulaDomain domain(&arena);
    BoolDomain bool_domain;
    QualAtHook<Formula> qual_at;
    if (query.has_qualifiers()) {
      qual_at = [&](NodeId v, int qual_id) {
        return domain.FromBool(bool_domain.IsTrue(EvalQualAtNode(
            frag.tree, query, &bool_domain, qual_values, v, qual_id)));
      };
    }

    std::vector<Formula> init;
    if (f == 0) {
      Formula root_qual = kTrueFormula;
      if (query.selection()[0].qual >= 0) {
        root_qual =
            domain.FromBool(RootQualifierValue(frag, query, qual_values));
      }
      auto qual_at_doc = [&](int qual_id) {
        return domain.FromBool(bool_domain.IsTrue(EvalQualAtDoc(
            query, &bool_domain, qual_values, frag.tree.root(), qual_id)));
      };
      init = MakeDocVector(query, &domain, root_qual,
                           query.has_qualifiers()
                               ? std::function<Formula(int)>(qual_at_doc)
                               : std::function<Formula(int)>());
    } else if (concrete_init) {
      init = ConstStackInit(prune.parent_vector[i]);
    } else {
      init = VariableStackInit(query, f, &arena);
    }

    SelectionOutput<FormulaDomain> out =
        RunSelectionPass(frag.tree, query, &domain, std::move(init), qual_at);

    answers[i] = std::move(out.answers);
    candidates[i].reserve(out.candidates.size());
    for (auto& [node, formula] : out.candidates) {
      candidates[i].emplace_back(node, candidate_arena.Transfer(arena, formula));
    }

    SelUpMessage reply;
    reply.fragment = f;
    reply.answer_count = static_cast<uint32_t>(answers[i].size());
    reply.candidate_count = static_cast<uint32_t>(candidates[i].size());
    for (auto& [vnode, top] : out.virtual_stack_tops) {
      reply.virtual_tops.push_back(
          SelUpMessage::VirtualTop{frag.tree.fragment_ref(vnode), std::move(top)});
    }
    PAXML_RETURN_NOT_OK(FeedSelReport(&unifier, arena, reply));
    // Fragment, vectors and the pass arena drop here.
  }

  if (!concrete_init) {
    PAXML_RETURN_NOT_OK(unifier.UnifySelection(prune.selection_relevant));
    // Settle candidates — formulas over this fragment's z variables only;
    // no tree access needed.
    for (size_t i = 0; i < n; ++i) {
      if (candidates[i].empty()) continue;
      const FragmentId f = static_cast<FragmentId>(i);
      const std::vector<uint8_t>& z = unifier.ResolvedStackInit(f);
      auto assignment = [&](VarId var) -> std::optional<bool> {
        if (KindOfVar(var) != VarKind::kSV || FragmentOfVar(var) != f) {
          return std::nullopt;
        }
        return z[IndexOfVar(var)] != 0;
      };
      for (const auto& [node, formula] : candidates[i]) {
        PAXML_ASSIGN_OR_RETURN(bool value,
                               candidate_arena.Evaluate(formula, assignment));
        if (value) answers[i].push_back(node);
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    for (NodeId v : answers[i]) {
      result.answers.push_back(GlobalNodeId{static_cast<FragmentId>(i), v});
    }
  }
  std::sort(result.answers.begin(), result.answers.end());
  return result;
}

}  // namespace paxml
