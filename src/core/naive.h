// NaiveCentralized: the shipping baseline (Section 3 of the paper).
//
// Every site serializes its fragments and ships them to the query site; the
// coordinator reassembles the original tree and evaluates the query with the
// centralized two-pass engine. One visit per site, but communication is the
// size of the whole document — the cost the paper's partial-evaluation
// algorithms eliminate.

#ifndef PAXML_CORE_NAIVE_H_
#define PAXML_CORE_NAIVE_H_

#include <memory>

#include "common/result.h"
#include "core/distributed_result.h"
#include "sim/cluster.h"
#include "xpath/query_plan.h"

namespace paxml {

class Transport;
class RunControl;
class MessageHandlers;

/// The baseline's handler set alone, for a remote peer serving its share of
/// the shipping protocol (core/site_program.h).
std::unique_ptr<MessageHandlers> MakeNaiveSiteHandlers(
    const FragmentedDocument* doc);

/// Ships all fragments to the query site, assembles, evaluates.
/// Answers are reported against the assembled tree but mapped back to
/// (fragment, node) coordinates so results compare to PaX3/PaX2 directly.
/// `transport` selects the message backend; nullptr uses the cluster's
/// default (a pooled backend shares the cluster's WorkerPool). The
/// transport may be carrying other concurrent evaluations — this call
/// opens and closes its own run on it. A non-null `control` makes the run
/// cancellable at round boundaries.
Result<DistributedResult> EvaluateNaiveCentralized(
    const Cluster& cluster, const CompiledQuery& query,
    Transport* transport = nullptr, RunControl* control = nullptr);

}  // namespace paxml

#endif  // PAXML_CORE_NAIVE_H_
