// Variable provenance for partial evaluation.
//
// Partial answers are Boolean formulas over variables whose *identity*
// encodes what they stand for, so every site and the coordinator agree on
// their meaning without further coordination:
//
//   kQV  f e   — QV_e at the root of fragment f   (the x variables of
//   kQDV f e   — QDV_e at the root of fragment f   Example 3.1)
//   kSV  f i   — SV_i of the *parent* of fragment f's root (the z variables
//                of Example 3.4: the traversal-stack initialization)
//   kLocal n   — site-local temporaries (the qz variables of PaX2's
//                pre-order pass); these never cross the wire unresolved.
//
// Layout: [kind:2][fragment:14][index:16]. Bounds (16383 fragments, 65535
// vector entries) are far beyond any experiment in the paper; checked at
// allocation.

#ifndef PAXML_CORE_VARS_H_
#define PAXML_CORE_VARS_H_

#include <cstdint>
#include <string>

#include "boolexpr/formula.h"
#include "common/logging.h"
#include "xml/tree.h"

namespace paxml {

enum class VarKind : uint8_t { kQV = 0, kQDV = 1, kSV = 2, kLocal = 3 };

inline constexpr uint32_t kVarFragmentBits = 14;
inline constexpr uint32_t kVarIndexBits = 16;

inline VarId MakeVar(VarKind kind, FragmentId fragment, uint32_t index) {
  PAXML_CHECK_GE(fragment, 0);
  PAXML_CHECK_LT(static_cast<uint32_t>(fragment), 1u << kVarFragmentBits);
  PAXML_CHECK_LT(index, 1u << kVarIndexBits);
  return (static_cast<uint32_t>(kind) << (kVarFragmentBits + kVarIndexBits)) |
         (static_cast<uint32_t>(fragment) << kVarIndexBits) | index;
}

inline VarId MakeQVVar(FragmentId f, int entry) {
  return MakeVar(VarKind::kQV, f, static_cast<uint32_t>(entry));
}
inline VarId MakeQDVVar(FragmentId f, int entry) {
  return MakeVar(VarKind::kQDV, f, static_cast<uint32_t>(entry));
}
inline VarId MakeSVVar(FragmentId f, int sel_entry) {
  return MakeVar(VarKind::kSV, f, static_cast<uint32_t>(sel_entry));
}
/// Site-local temporary; `counter` is scoped to one fragment evaluation.
inline VarId MakeLocalVar(uint32_t counter) {
  PAXML_CHECK_LT(counter, 1u << (kVarFragmentBits + kVarIndexBits));
  return (static_cast<uint32_t>(VarKind::kLocal)
          << (kVarFragmentBits + kVarIndexBits)) |
         counter;
}

inline VarKind KindOfVar(VarId v) {
  return static_cast<VarKind>(v >> (kVarFragmentBits + kVarIndexBits));
}
inline FragmentId FragmentOfVar(VarId v) {
  return static_cast<FragmentId>((v >> kVarIndexBits) &
                                 ((1u << kVarFragmentBits) - 1));
}
inline uint32_t IndexOfVar(VarId v) {
  return v & ((1u << kVarIndexBits) - 1);
}

/// "qv[F2].e3", "sv[F1].s2", "local.17" — for debugging residual formulas.
std::string VarName(VarId v);

}  // namespace paxml

#endif  // PAXML_CORE_VARS_H_
