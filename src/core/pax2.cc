#include "core/pax2.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "core/answer_stream.h"
#include "core/eval_ft.h"
#include "core/parbox.h"
#include "core/site_eval.h"
#include "core/site_program.h"
#include "core/xml_handlers.h"
#include "fragment/pruning.h"
#include "runtime/coordinator.h"

namespace paxml {
namespace {

/// Result of the combined (single-traversal) pass over one fragment.
struct Pax2FragmentState {
  std::unique_ptr<FormulaArena> arena;
  QualVectors<FormulaDomain> qual_vectors;  // residuals over x variables

  /// Nodes whose final selection entry did not collapse to false, with their
  /// residuals over x (qualifiers) and z (ancestors) variables; qz locals
  /// are already substituted out.
  std::vector<std::pair<NodeId, Formula>> finals;

  std::vector<SelUpMessage::VirtualTop> virtual_tops;

  /// Settled during the pass / kept for the final visit.
  std::vector<NodeId> answers;
  std::vector<std::pair<NodeId, Formula>> candidates;

  /// Resolved values received for the final visit (delivered before the
  /// answer request in the same envelope).
  std::optional<SelDownMessage> sel_down;
  std::optional<QualDownMessage> qual_down;

  uint64_t ops = 0;
};

/// The combined pre/post-order traversal (Procedure evalXPath of Fig. 5).
Pax2FragmentState RunCombinedPass(const Fragment& frag,
                                  const CompiledQuery& query,
                                  const std::vector<uint8_t>* concrete_init) {
  Pax2FragmentState st;
  st.arena = std::make_unique<FormulaArena>();
  FormulaArena* arena = st.arena.get();
  FormulaDomain domain(arena);
  const Tree& tree = frag.tree;
  const auto& sel = query.selection();
  const size_t m = sel.size();
  const size_t last = m - 1;

  const size_t ec = query.entries().size();
  st.qual_vectors.entry_count = ec;
  st.qual_vectors.qv.assign(tree.size() * ec, kFalseFormula);
  st.qual_vectors.qdv.assign(tree.size() * ec, kFalseFormula);

  VirtualQualHook<Formula> virtual_hook = [&](NodeId v, int entry) {
    const FragmentId child = tree.fragment_ref(v);
    return std::make_pair(arena->Var(MakeQVVar(child, entry)),
                          arena->Var(MakeQDVVar(child, entry)));
  };

  // Local qz variables: fresh per (node, qualifier) use; resolved at the
  // node's post-order step once its subtree's qualifier rows exist.
  uint32_t local_counter = 0;
  Binding qz_bindings;
  // Pending qz resolutions per node: (qual_id, var).
  std::unordered_map<NodeId, std::vector<std::pair<int, VarId>>> pending;

  // Traversal-scoped list of document-node qualifier placeholders (the
  // corner case of a self-filter right after a leading '//'). Lives on this
  // pass's stack frame, so concurrent fragment evaluations on reused pool
  // threads cannot observe each other's entries.
  std::vector<std::pair<int, VarId>> doc_quals;

  auto fresh_qual_var = [&](NodeId v, int qual_id) {
    const VarId var = MakeLocalVar(local_counter++);
    pending[v].emplace_back(qual_id, var);
    return arena->Var(var);
  };

  // ---- Stack initialization -------------------------------------------------
  std::vector<Formula> init;
  if (frag.id == 0) {
    Formula root_qual = kTrueFormula;
    if (sel[0].qual >= 0) {
      // Unknown until the root's post-order step: a local variable, bound
      // against the root element (the paper's convention for leading
      // qualifiers).
      root_qual = fresh_qual_var(tree.root(), sel[0].qual);
    }
    auto qual_at_doc = [&](int qual_id) {
      // Resolved after the traversal via EvalQualAtDoc (bound on the root's
      // pending list so substitution picks it up; axis handling differs from
      // node-anchored qualifiers, so mark with the dedicated list below).
      const VarId var = MakeLocalVar(local_counter++);
      doc_quals.emplace_back(qual_id, var);
      return arena->Var(var);
    };
    init = MakeDocVector(query, &domain, root_qual,
                         query.has_qualifiers()
                             ? std::function<Formula(int)>(qual_at_doc)
                             : std::function<Formula(int)>());
  } else if (concrete_init != nullptr) {
    init = ConstStackInit(*concrete_init);
  } else {
    init = VariableStackInit(query, frag.id, arena);
  }

  // ---- Combined DFS ----------------------------------------------------------
  struct Item {
    NodeId v;
    bool expanded;
  };
  std::vector<Item> work = {{tree.root(), false}};
  std::vector<std::vector<Formula>> stack;
  stack.push_back(std::move(init));

  while (!work.empty()) {
    Item item = work.back();
    work.pop_back();
    const NodeId v = item.v;

    if (item.expanded) {
      // Post-order: qualifier rows, then resolve this node's qz variables.
      ComputeQualRowsAtNode(tree, query, &domain, v, virtual_hook,
                            &st.qual_vectors, &st.ops);
      auto it = pending.find(v);
      if (it != pending.end()) {
        for (auto [qual_id, var] : it->second) {
          qz_bindings.Bind(var, EvalQualAtNode(tree, query, &domain,
                                               st.qual_vectors, v, qual_id));
        }
      }
      if (tree.first_child(v) != kNullNode) stack.pop_back();
      continue;
    }

    const std::vector<Formula>& parent_vec = stack.back();

    if (tree.IsVirtual(v)) {
      st.virtual_tops.push_back(
          SelUpMessage::VirtualTop{tree.fragment_ref(v), parent_vec});
      // Virtual nodes still need their qualifier rows (variables).
      ComputeQualRowsAtNode(tree, query, &domain, v, virtual_hook,
                            &st.qual_vectors, &st.ops);
      continue;
    }

    // Pre-order: selection vector with qz placeholders for qualifiers.
    std::vector<Formula> vec(m, kFalseFormula);
    for (size_t i = 1; i < m; ++i) {
      const CompiledQuery::SelEntry& e = sel[i];
      switch (e.kind) {
        case SelKind::kLabel:
        case SelKind::kWildcard: {
          const bool term =
              tree.IsElement(v) &&
              (e.kind == SelKind::kWildcard || tree.label(v) == e.label);
          Formula val = term ? parent_vec[i - 1] : kFalseFormula;
          if (term && e.qual >= 0 && !domain.IsFalse(val)) {
            val = domain.And(val, fresh_qual_var(v, e.qual));
          }
          vec[i] = val;
          break;
        }
        case SelKind::kDescend:
          vec[i] = domain.Or(vec[i - 1], parent_vec[i]);
          break;
        case SelKind::kSelfFilter: {
          Formula val = vec[i - 1];
          if (e.qual >= 0 && !domain.IsFalse(val)) {
            val = domain.And(val, fresh_qual_var(v, e.qual));
          }
          vec[i] = val;
          break;
        }
        case SelKind::kRoot:
          PAXML_CHECK(false);
          break;
      }
      ++st.ops;
    }

    if (!domain.IsFalse(vec[last])) st.finals.emplace_back(v, vec[last]);

    work.push_back({v, true});
    if (tree.first_child(v) != kNullNode) {
      for (NodeId c : tree.children(v)) work.push_back({c, false});
      stack.push_back(std::move(vec));
    }
  }

  // ---- Resolve document-node qualifiers (leading '//ε[q]' corner) ----------
  for (auto [qual_id, var] : doc_quals) {
    qz_bindings.Bind(var, EvalQualAtDoc(query, &domain, st.qual_vectors,
                                        tree.root(), qual_id));
  }

  // ---- Substitute qz locals; classify finals --------------------------------
  for (auto& [node, formula] : st.finals) {
    formula = qz_bindings.Apply(arena, formula);
    auto c = arena->ConstValue(formula);
    if (!c) {
      st.candidates.emplace_back(node, formula);
    } else if (*c) {
      st.answers.push_back(node);
    }
  }
  st.finals.clear();
  for (auto& top : st.virtual_tops) {
    for (Formula& f : top.stack_top) f = qz_bindings.Apply(arena, f);
  }
  return st;
}

/// One subtree's share of the combined pass, restricted to the
/// concrete-init case (annotations on, qualifier-free): the stack holds
/// only constants, so every selection value constant-folds — the walk
/// never interns a formula, touches no shared arena, and its outputs
/// (answers in traversal order, virtual tops of constants) concatenate to
/// the serial pass's byte for byte. This is the gate that makes the PaX2
/// split sound: with variables in play, And/Or canonicalize operands by
/// arena handle order, so a privately built formula may differ
/// *structurally* from the serial one even when it is equivalent.
struct ConstSubtreeResult {
  std::vector<NodeId> answers;  ///< finals that folded to true, in order
  std::vector<SelUpMessage::VirtualTop> virtual_tops;
  uint64_t ops = 0;
};

/// One node's pre-order selection vector from its parent's, constants
/// only. The gate's invariant is enforced loudly: a non-constant value
/// would mean the split produced different bytes than the serial pass.
std::vector<Formula> ConstSelStep(const Tree& tree, const CompiledQuery& query,
                                  FormulaDomain* domain, NodeId v,
                                  const std::vector<Formula>& parent_vec,
                                  uint64_t* ops) {
  const auto& sel = query.selection();
  const size_t m = sel.size();
  std::vector<Formula> vec(m, kFalseFormula);
  for (size_t i = 1; i < m; ++i) {
    const CompiledQuery::SelEntry& e = sel[i];
    switch (e.kind) {
      case SelKind::kLabel:
      case SelKind::kWildcard: {
        const bool term =
            tree.IsElement(v) &&
            (e.kind == SelKind::kWildcard || tree.label(v) == e.label);
        vec[i] = term ? parent_vec[i - 1] : kFalseFormula;
        break;
      }
      case SelKind::kDescend:
        vec[i] = domain->Or(vec[i - 1], parent_vec[i]);
        break;
      case SelKind::kSelfFilter:
        vec[i] = vec[i - 1];
        break;
      case SelKind::kRoot:
        PAXML_CHECK(false);
        break;
    }
    ++*ops;
  }
  PAXML_CHECK(vec[m - 1] == kFalseFormula || vec[m - 1] == kTrueFormula);
  return vec;
}

void WalkConstSubtree(const Tree& tree, const CompiledQuery& query,
                      NodeId start, const std::vector<Formula>& parent_init,
                      ConstSubtreeResult* out) {
  FormulaArena arena;  // never interns: all values are kFalse/kTrue
  FormulaDomain domain(&arena);
  const size_t last = query.selection().size() - 1;

  struct Item {
    NodeId v;
    bool expanded;
  };
  std::vector<Item> work = {{start, false}};
  std::vector<std::vector<Formula>> stack;
  stack.push_back(parent_init);

  while (!work.empty()) {
    Item item = work.back();
    work.pop_back();
    const NodeId v = item.v;

    if (item.expanded) {
      // Post-order is inert here: no qualifier entries, no qz locals.
      if (tree.first_child(v) != kNullNode) stack.pop_back();
      continue;
    }

    const std::vector<Formula>& parent_vec = stack.back();

    if (tree.IsVirtual(v)) {
      out->virtual_tops.push_back(
          SelUpMessage::VirtualTop{tree.fragment_ref(v), parent_vec});
      continue;
    }

    std::vector<Formula> vec =
        ConstSelStep(tree, query, &domain, v, parent_vec, &out->ops);
    if (vec[last] == kTrueFormula) out->answers.push_back(v);

    work.push_back({v, true});
    if (tree.first_child(v) != kNullNode) {
      for (NodeId c : tree.children(v)) work.push_back({c, false});
      stack.push_back(std::move(vec));
    }
  }
}

/// PaX2's two visits as runtime handlers: kSelRequest runs the combined
/// pass and replies with QualUp + SelUp in one envelope; kAnswerRequest
/// settles candidates against the resolved values delivered just before it
/// and ships the answers.
class Pax2Program : public XmlMessageHandlers {
 public:
  /// Owns its options and prune state (by value) so the same program type
  /// serves both roles: borrowed by EvaluatePaX2's stack frame and owned by
  /// a remote peer's SiteProgram, where nothing outlives the handler set
  /// but the cluster and the query.
  Pax2Program(const Cluster& cluster, const CompiledQuery& query,
              const PaxOptions& options, PruneResult prune,
              bool concrete_init)
      : doc_(cluster.doc()),
        query_(query),
        options_(options),
        prune_(std::move(prune)),
        concrete_init_(concrete_init),
        unifier_(&doc_, &query),
        state_(doc_.size()) {}

  FormulaArena* DecodeArena() override { return unifier_.arena(); }

  // ---- Visit 1 (site): the combined pass -----------------------------------

  Status OnSelRequest(SiteContext& ctx, FragmentId f) override {
    const Fragment& frag = doc_.fragment(f);
    const std::vector<uint8_t>* init =
        (concrete_init_ && f != 0)
            ? &prune_.parent_vector[static_cast<size_t>(f)]
            : nullptr;
    state_[static_cast<size_t>(f)] =
        std::make_unique<Pax2FragmentState>(RunCombinedPass(frag, query_, init));
    return SendCombinedReply(ctx, f);
  }

  /// The split path's join (runtime/site_runtime.h SplitTask::Finish):
  /// adopts the state a Pax2SplitTask assembled from its subtree walks and
  /// sends the exact reply OnSelRequest would have.
  Status CompleteSplit(SiteContext& ctx, FragmentId f,
                       std::unique_ptr<Pax2FragmentState> st) {
    state_[static_cast<size_t>(f)] = std::move(st);
    return SendCombinedReply(ctx, f);
  }

  std::unique_ptr<SplitTask> MakeSplitTask(const Envelope& env,
                                           const WirePart& part) override;

  Status OnSelDown(SiteContext&, SelDownMessage message) override {
    state_[static_cast<size_t>(message.fragment)]->sel_down =
        std::move(message);
    return Status::OK();
  }

  Status OnQualDown(SiteContext&, QualDownMessage message) override {
    state_[static_cast<size_t>(message.fragment)]->qual_down =
        std::move(message);
    return Status::OK();
  }

  // ---- Visit 2 (site): resolve candidates, ship answers ---------------------

  Status OnAnswerRequest(SiteContext& ctx, FragmentId f) override {
    Pax2FragmentState& st = *state_[static_cast<size_t>(f)];

    if (!st.candidates.empty()) {
      // Assignment: z variables of this fragment from the resolved stack;
      // x variables of the virtual children from the resolved rows.
      const std::vector<uint8_t>* z =
          st.sel_down ? &st.sel_down->stack_init : nullptr;
      std::unordered_map<FragmentId, const QualDownMessage::ResolvedChild*>
          rows;
      if (st.qual_down) {
        for (const auto& c : st.qual_down->children) rows[c.child] = &c;
      }
      auto assignment = [&](VarId var) -> std::optional<bool> {
        switch (KindOfVar(var)) {
          case VarKind::kSV:
            if (FragmentOfVar(var) != f || z == nullptr) return std::nullopt;
            return (*z)[IndexOfVar(var)] != 0;
          case VarKind::kQV:
          case VarKind::kQDV: {
            auto it = rows.find(FragmentOfVar(var));
            if (it == rows.end()) return std::nullopt;
            const uint32_t e = IndexOfVar(var);
            return KindOfVar(var) == VarKind::kQV ? it->second->qv[e] != 0
                                                  : it->second->qdv[e] != 0;
          }
          case VarKind::kLocal:
            return std::nullopt;  // substituted out before shipping
        }
        return std::nullopt;
      };
      for (const auto& [node, formula] : st.candidates) {
        PAXML_ASSIGN_OR_RETURN(bool value,
                               st.arena->Evaluate(formula, assignment));
        if (value) st.answers.push_back(node);
      }
      std::sort(st.answers.begin(), st.answers.end());
    }

    SendAnswers(ctx, f, st.answers);
    return Status::OK();
  }

  // ---- Coordinator side ------------------------------------------------------

  Status OnQualUp(SiteContext&, QualUpMessage message) override {
    unifier_.AddQualReport(std::move(message));
    return Status::OK();
  }

  Status OnSelUp(SiteContext&, SelUpMessage message) override {
    unifier_.AddSelReport(std::move(message));
    return Status::OK();
  }

  Status OnAnswerUp(SiteContext&, AnswerUpMessage message) override {
    for (NodeId v : message.answers) {
      answers_.push_back(GlobalNodeId{message.fragment, v});
    }
    return Status::OK();
  }

  FragmentTreeUnifier& unifier() { return unifier_; }
  std::vector<GlobalNodeId> TakeAnswers() { return std::move(answers_); }

 private:
  friend class Pax2SplitTask;

  /// The combined pass's one reply envelope (qualifier roots + selection
  /// stack tops + answer counts), built from state_[f] — shared by the
  /// serial handler and the split join, so the wire bytes cannot drift
  /// between the two paths.
  Status SendCombinedReply(SiteContext& ctx, FragmentId f) {
    const Fragment& frag = doc_.fragment(f);
    Pax2FragmentState& st = *state_[static_cast<size_t>(f)];

    QualUpMessage qual_reply;
    qual_reply.fragment = f;
    const size_t ec = query_.entries().size();
    const NodeId root = frag.tree.root();
    qual_reply.root_qv.assign(st.qual_vectors.QVRow(root),
                              st.qual_vectors.QVRow(root) + ec);
    qual_reply.root_qdv.assign(st.qual_vectors.QDVRow(root),
                               st.qual_vectors.QDVRow(root) + ec);
    SelUpMessage sel_reply;
    sel_reply.fragment = f;
    sel_reply.virtual_tops = st.virtual_tops;
    sel_reply.answer_count = static_cast<uint32_t>(st.answers.size());
    sel_reply.candidate_count = static_cast<uint32_t>(st.candidates.size());

    Envelope env;
    env.to = ctx.query_site();
    ByteWriter qual_bytes;
    qual_reply.Encode(*st.arena, &qual_bytes);
    env.parts.push_back(
        {MessageKind::kQualUp, f, std::move(qual_bytes).Take(), true});
    ByteWriter sel_bytes;
    sel_reply.Encode(*st.arena, &sel_bytes);
    env.parts.push_back(
        {MessageKind::kSelUp, f, std::move(sel_bytes).Take(), true});
    ctx.Send(std::move(env));

    if (concrete_init_) {
      // Single visit: every reported answer is final (no candidates
      // possible); they ship with this reply.
      SendAnswers(ctx, f, st.answers);
    }
    return Status::OK();
  }

  /// One streamed answer shipment: id list chunks appended to the open
  /// frame, answer payload as phantom bytes. In the concrete-init path
  /// only the phantom XML is accounted (the id list duplicates it); the
  /// final visit accounts both, as the O(|ans|) term of the communication
  /// bound.
  void SendAnswers(SiteContext& ctx, FragmentId f,
                   const std::vector<NodeId>& answers) {
    ShipAnswersStreamed(ctx, doc_.fragment(f).tree, f, answers,
                        options_.ship_mode, /*account_ids=*/!concrete_init_);
  }

  const FragmentedDocument& doc_;
  const CompiledQuery& query_;
  const PaxOptions options_;
  const PruneResult prune_;
  const bool concrete_init_;
  FragmentTreeUnifier unifier_;
  std::vector<std::unique_ptr<Pax2FragmentState>> state_;
  std::vector<GlobalNodeId> answers_;
};

/// The split form of one fragment's kSelRequest under the concrete-init
/// gate: items are the fragment root's child subtrees in serial traversal
/// order (the combined DFS pops children last-first, so items hold the
/// children REVERSED), each walked by WalkConstSubtree into a private
/// slot; Finish concatenates [the root's own contributions] + the slots
/// and replies through Pax2Program::CompleteSplit — the same state and
/// send path the serial handler uses.
class Pax2SplitTask : public SplitTask {
 public:
  /// The visitor pass: the init vector and the root's pre-order step,
  /// exactly as RunCombinedPass would compute them. Null when the
  /// fragment has fewer than two root-child subtrees to fan out.
  static std::unique_ptr<Pax2SplitTask> Make(Pax2Program* program,
                                             FragmentId f) {
    const Tree& tree = program->doc_.fragment(f).tree;
    const NodeId root = tree.root();
    if (tree.IsVirtual(root)) return nullptr;  // degenerate fragment
    std::vector<NodeId> items;
    for (NodeId c : tree.children(root)) items.push_back(c);
    if (items.size() < 2) return nullptr;
    std::reverse(items.begin(), items.end());

    auto task = std::unique_ptr<Pax2SplitTask>(new Pax2SplitTask());
    task->program_ = program;
    task->f_ = f;
    task->items_ = std::move(items);
    task->slots_.resize(task->items_.size());

    FormulaArena arena;  // constants only, like WalkConstSubtree's
    FormulaDomain domain(&arena);
    const CompiledQuery& query = program->query_;
    std::vector<Formula> init;
    if (f == 0) {
      // Leading qualifiers are excluded by the gate, so the root qual is
      // constant true and no doc-qualifier hook is needed.
      init = MakeDocVector(query, &domain, kTrueFormula,
                           std::function<Formula(int)>());
    } else {
      init = ConstStackInit(
          program->prune_.parent_vector[static_cast<size_t>(f)]);
    }
    task->vec_root_ =
        ConstSelStep(tree, query, &domain, root, init, &task->root_ops_);
    task->root_answer_ =
        task->vec_root_[query.selection().size() - 1] == kTrueFormula;
    return task;
  }

  size_t item_count() const override { return items_.size(); }

  void RunItem(size_t item) override {
    const Tree& tree = program_->doc_.fragment(f_).tree;
    WalkConstSubtree(tree, program_->query_, items_[item], vec_root_,
                     &slots_[item]);
  }

  Status Finish(SiteContext& ctx) override {
    const Tree& tree = program_->doc_.fragment(f_).tree;
    auto st = std::make_unique<Pax2FragmentState>();
    st->arena = std::make_unique<FormulaArena>();
    const size_t ec = program_->query_.entries().size();  // 0 by the gate
    st->qual_vectors.entry_count = ec;
    st->qual_vectors.qv.assign(tree.size() * ec, kFalseFormula);
    st->qual_vectors.qdv.assign(tree.size() * ec, kFalseFormula);
    st->ops = root_ops_;
    if (root_answer_) st->answers.push_back(tree.root());
    for (ConstSubtreeResult& slot : slots_) {
      st->answers.insert(st->answers.end(), slot.answers.begin(),
                         slot.answers.end());
      st->virtual_tops.insert(
          st->virtual_tops.end(),
          std::make_move_iterator(slot.virtual_tops.begin()),
          std::make_move_iterator(slot.virtual_tops.end()));
      st->ops += slot.ops;
    }
    return program_->CompleteSplit(ctx, f_, std::move(st));
  }

 private:
  Pax2SplitTask() = default;

  Pax2Program* program_ = nullptr;
  FragmentId f_ = kNullFragment;
  std::vector<Formula> vec_root_;  ///< constants: valid in every arena
  bool root_answer_ = false;
  uint64_t root_ops_ = 0;
  std::vector<NodeId> items_;  ///< root children, serial traversal order
  std::vector<ConstSubtreeResult> slots_;  ///< one slot per item
};

std::unique_ptr<SplitTask> Pax2Program::MakeSplitTask(const Envelope&,
                                                      const WirePart& part) {
  if (part.kind != MessageKind::kSelRequest) return nullptr;
  // Only the concrete-init path splits (see WalkConstSubtree): with a
  // constant stack and no qualifiers every selection value constant-folds,
  // so subtree walks share no arena and reproduce the serial bytes
  // exactly. Variable stacks hash-cons into one arena whose operand
  // canonicalization is handle-order dependent — not splittable without
  // changing the shipped encodings.
  if (!concrete_init_ || query_.has_qualifiers() ||
      !query_.entries().empty()) {
    return nullptr;
  }
  const FragmentId f = part.fragment;
  if (f < 0 || static_cast<size_t>(f) >= doc_.size()) return nullptr;
  return Pax2SplitTask::Make(this, f);
}

bool ConcreteInit(const CompiledQuery& query, const PaxOptions& options) {
  return options.use_annotations && !query.has_qualifiers();
}

}  // namespace

std::unique_ptr<MessageHandlers> MakePax2SiteHandlers(
    const Cluster& cluster, const CompiledQuery& query,
    const PaxOptions& options) {
  return std::make_unique<Pax2Program>(
      cluster, query, options,
      ComputePaxPrune(cluster.doc(), query, options),
      ConcreteInit(query, options));
}

Result<DistributedResult> EvaluatePaX2(const Cluster& cluster,
                                       const CompiledQuery& query,
                                       const PaxOptions& options,
                                       Transport* transport,
                                       RunControl* control) {
  if (query.IsBooleanQuery()) {
    PAXML_ASSIGN_OR_RETURN(ParBoXResult r,
                           EvaluateParBoX(cluster, query, transport, control));
    DistributedResult out;
    if (r.value) {
      out.answers.push_back(
          GlobalNodeId{0, cluster.doc().fragment(0).tree.root()});
    }
    out.stats = std::move(r.stats);
    return out;
  }

  const FragmentedDocument& doc = cluster.doc();
  const size_t fragment_count = doc.size();
  std::unique_ptr<Transport> owned_transport;
  transport = EnsureTransport(transport, cluster, &owned_transport);

  PruneResult prune = ComputePaxPrune(doc, query, options);

  // The combined pass must run wherever a qualifier can see (see
  // fragment/pruning.h); for qualifier-free queries that degenerates to the
  // selection-relevant set.
  std::vector<FragmentId> stage1_frags;
  std::vector<bool> participating(fragment_count, false);
  for (size_t f = 0; f < fragment_count; ++f) {
    if (prune.required[f]) {
      stage1_frags.push_back(static_cast<FragmentId>(f));
      participating[f] = true;
    }
  }

  const bool concrete_init = ConcreteInit(query, options);

  Pax2Program program(cluster, query, options, std::move(prune),
                      concrete_init);
  const RunSpec spec = MakePaxRunSpec("PaX2", query, options);
  Coordinator coord(&cluster, transport, &program, control, &spec);
  FragmentTreeUnifier& unifier = program.unifier();

  std::vector<SiteId> stage1_sites = coord.SitesOf(stage1_frags);
  for (SiteId s : stage1_sites) {
    coord.Post(MakeQueryShipEnvelope(s, query.source().size()));
  }
  for (FragmentId f : stage1_frags) {
    coord.Post(MakeRequestEnvelope(MessageKind::kSelRequest,
                                   cluster.site_of(f), f));
  }
  PAXML_RETURN_NOT_OK(coord.RunRound("pax2-combined", stage1_sites));

  DistributedResult result;
  if (concrete_init) {
    // Single visit: the answers arrived with the combined-pass replies.
    result.answers = program.TakeAnswers();
    std::sort(result.answers.begin(), result.answers.end());
    result.stats = coord.TakeStats();
    return result;
  }

  // ---- evalFT: qualifiers bottom-up, then selection top-down ----------------
  Status unify_status = Status::OK();
  coord.RunLocal([&] {
    unify_status = unifier.UnifyQualifiers(participating);
    if (unify_status.ok()) unify_status = unifier.UnifySelection(participating);
  });
  PAXML_RETURN_NOT_OK(unify_status);

  // ---- Final visit: resolve candidates, ship answers -------------------------
  std::vector<FragmentId> stage2_frags;
  for (FragmentId f : stage1_frags) {
    if (unifier.HasAnswerWork(f)) stage2_frags.push_back(f);
  }
  std::vector<SiteId> stage2_sites = coord.SitesOf(stage2_frags);

  for (FragmentId f : stage2_frags) {
    // One down envelope per fragment: resolved stack (non-root fragments)
    // plus resolved qualifier rows, then the answer request.
    Envelope env;
    env.to = cluster.site_of(f);
    if (f != 0) {
      SelDownMessage m = unifier.MakeSelDown(f);
      ByteWriter bytes;
      m.Encode(&bytes);
      env.parts.push_back(
          {MessageKind::kSelDown, f, std::move(bytes).Take(), true});
    }
    if (query.has_qualifiers()) {
      QualDownMessage m = unifier.MakeQualDown(f);
      ByteWriter bytes;
      m.Encode(&bytes);
      env.parts.push_back(
          {MessageKind::kQualDown, f, std::move(bytes).Take(), true});
    }
    env.parts.push_back({MessageKind::kAnswerRequest, f, {}, false});
    coord.Post(std::move(env));
  }
  PAXML_RETURN_NOT_OK(coord.RunRound("pax2-answers", stage2_sites));

  result.answers = program.TakeAnswers();
  std::sort(result.answers.begin(), result.answers.end());
  result.stats = coord.TakeStats();
  return result;
}

}  // namespace paxml
