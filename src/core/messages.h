// Wire payloads exchanged between sites and the coordinator.
//
// Everything that crosses the (simulated) network is actually serialized to
// bytes and decoded on the receiving side, so the communication costs the
// benchmarks report are the true encoded sizes of the paper's partial
// answers — vector triples of residual formulas, resolved truth vectors,
// and shipped answers.

#ifndef PAXML_CORE_MESSAGES_H_
#define PAXML_CORE_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "boolexpr/codec.h"
#include "boolexpr/formula.h"
#include "common/result.h"
#include "xml/tree.h"

namespace paxml {

/// Stage-1 reply, one per fragment: the (QV, QDV) vectors of the fragment
/// root, as residual formulas over the fragment's virtual-child variables.
/// (QCV is derivable and never needed across fragments, so it stays local;
/// this matches the O(|Q|) per-fragment bound.)
struct QualUpMessage {
  FragmentId fragment = kNullFragment;
  std::vector<Formula> root_qv;
  std::vector<Formula> root_qdv;

  /// Root fragment only: the query's root qualifier evaluated at the global
  /// root element, as a residual formula (resolved coordinator-side; this is
  /// how a Boolean query's final truth value is produced).
  Formula root_qual = kTrueFormula;

  void Encode(const FormulaArena& arena, ByteWriter* out) const;
  static Result<QualUpMessage> Decode(FormulaArena* arena, ByteReader* in);

  /// Handle-wise comparison: meaningful for messages whose formulas live in
  /// the same arena (wire-format round-trips compare re-encoded bytes).
  bool operator==(const QualUpMessage&) const = default;
};

/// Selection reply, one per fragment: for each virtual node, the traversal
/// stack top recorded there (the vector the child fragment's z variables
/// denote), plus whether this fragment produced answers or candidates (so
/// the coordinator knows which sites the final round must visit).
struct SelUpMessage {
  FragmentId fragment = kNullFragment;
  struct VirtualTop {
    FragmentId child = kNullFragment;
    std::vector<Formula> stack_top;

    bool operator==(const VirtualTop&) const = default;
  };
  std::vector<VirtualTop> virtual_tops;
  uint32_t answer_count = 0;
  uint32_t candidate_count = 0;

  void Encode(const FormulaArena& arena, ByteWriter* out) const;
  static Result<SelUpMessage> Decode(FormulaArena* arena, ByteReader* in);

  /// Handle-wise comparison: meaningful for messages whose formulas live in
  /// the same arena (wire-format round-trips compare re-encoded bytes).
  bool operator==(const SelUpMessage&) const = default;
};

/// Resolved qualifier values for the virtual children of one fragment:
/// child fragment id -> boolean (QV, QDV) rows of its root.
struct QualDownMessage {
  struct ResolvedChild {
    FragmentId child = kNullFragment;
    std::vector<uint8_t> qv;
    std::vector<uint8_t> qdv;

    bool operator==(const ResolvedChild&) const = default;
  };
  FragmentId fragment = kNullFragment;  ///< the receiving fragment
  std::vector<ResolvedChild> children;

  void Encode(ByteWriter* out) const;
  static Result<QualDownMessage> Decode(ByteReader* in);

  bool operator==(const QualDownMessage&) const = default;
};

/// Resolved stack-initialization vector for one fragment (the z values).
struct SelDownMessage {
  FragmentId fragment = kNullFragment;
  std::vector<uint8_t> stack_init;

  void Encode(ByteWriter* out) const;
  static Result<SelDownMessage> Decode(ByteReader* in);

  bool operator==(const SelDownMessage&) const = default;
};

/// Delta+varint codec for answer-id streams. Ids produced by the
/// evaluators arrive in ascending document/vertex order, so consecutive
/// gaps are small and their varints shrink far below the absolute ids'.
/// The arithmetic is wrapping mod 2^64 on *both* sides (unsigned
/// subtraction here, unsigned addition in the decoder), so an unsorted or
/// descending sequence still round-trips exactly — it just doesn't
/// compress. One encoder instance spans one id stream: chunked emitters
/// (core/answer_stream.h) keep a single encoder across chunks so the
/// chunk boundaries are invisible on the wire.
class DeltaIdEncoder {
 public:
  void Append(uint64_t id, ByteWriter* out) {
    out->PutVarint(id - prev_);  // wraps; the decoder's addition undoes it
    prev_ = id;
  }

 private:
  uint64_t prev_ = 0;
};

class DeltaIdDecoder {
 public:
  Result<uint64_t> Next(ByteReader* in) {
    PAXML_ASSIGN_OR_RETURN(uint64_t delta, in->GetVarint());
    prev_ += delta;  // wraps: exact inverse of the encoder
    return prev_;
  }

 private:
  uint64_t prev_ = 0;
};

/// Final answers of one fragment: local node ids (the answer payload bytes
/// are accounted separately, per the configured shipping mode).
struct AnswerUpMessage {
  FragmentId fragment = kNullFragment;
  std::vector<NodeId> answers;

  void Encode(ByteWriter* out) const;
  static Result<AnswerUpMessage> Decode(ByteReader* in);

  bool operator==(const AnswerUpMessage&) const = default;
};

}  // namespace paxml

#endif  // PAXML_CORE_MESSAGES_H_
