// Procedure evalFT: coordinator-side unification over the fragment tree.
//
// The coordinator (query site S_Q) receives per-fragment partial answers —
// residual formula vectors — and resolves their variables by walking the
// fragment tree:
//   * bottom-up for qualifiers: a leaf fragment's root (QV, QDV) vectors are
//     constant; substituting them into the parent's vectors makes those
//     constant too (Example 3.2);
//   * top-down for selection: the root fragment's stack is concrete, so the
//     stack tops it recorded at virtual nodes resolve the children's z
//     variables, and so on downward (Example 3.4).
//
// Fragments that were pruned by XPath annotations never report; their
// variables are bound to false, which is sound because pruning guarantees no
// live qualifier or selection state can observe them (see fragment/pruning.h).

#ifndef PAXML_CORE_EVAL_FT_H_
#define PAXML_CORE_EVAL_FT_H_

#include <unordered_map>
#include <vector>

#include "boolexpr/env.h"
#include "boolexpr/formula.h"
#include "core/messages.h"
#include "fragment/fragment.h"
#include "xpath/query_plan.h"

namespace paxml {

/// Coordinator state for one query evaluation.
class FragmentTreeUnifier {
 public:
  FragmentTreeUnifier(const FragmentedDocument* doc, const CompiledQuery* query)
      : doc_(doc), query_(query) {}

  FormulaArena* arena() { return &arena_; }

  /// Registers a fragment's stage-1 reply (decoded into the coordinator
  /// arena by the caller).
  void AddQualReport(QualUpMessage message);

  /// Registers a fragment's selection reply.
  void AddSelReport(SelUpMessage message);

  /// Bottom-up unification of qualifier variables. `participating` lists the
  /// fragments that reported; all others' variables resolve to false.
  /// After this call, ResolvedQualRow() is valid for every fragment.
  Status UnifyQualifiers(const std::vector<bool>& participating);

  /// Top-down unification of the selection stack tops. Requires
  /// UnifyQualifiers first when the query has qualifiers (PaX2's stack tops
  /// mention qualifier variables). After this call, ResolvedStackInit() is
  /// valid for every fragment that reported (or whose parent did).
  Status UnifySelection(const std::vector<bool>& participating);

  /// Resolved boolean (QV, QDV) rows of fragment `f`'s root.
  const std::pair<std::vector<uint8_t>, std::vector<uint8_t>>& ResolvedQualRow(
      FragmentId f) const;

  /// Resolved z-vector (stack init) of fragment `f`. Entry 0 is always 0
  /// except for the root fragment (which never needs it).
  const std::vector<uint8_t>& ResolvedStackInit(FragmentId f) const;

  /// True iff fragment `f` reported answers or candidates in stage 2.
  bool HasAnswerWork(FragmentId f) const;

  /// Builds the QualDownMessage for fragment `f` (resolved rows of its
  /// virtual children).
  QualDownMessage MakeQualDown(FragmentId f) const;

  /// Builds the SelDownMessage for fragment `f`.
  SelDownMessage MakeSelDown(FragmentId f) const;

  /// The root fragment's root-qualifier residual with all current bindings
  /// applied (constant after UnifyQualifiers). kTrue if no root qualifier.
  Formula ResolveRootQual();

 private:
  /// Children-first order of fragment ids.
  std::vector<FragmentId> BottomUpOrder() const;

  const FragmentedDocument* doc_;
  const CompiledQuery* query_;
  FormulaArena arena_;
  Binding binding_;

  std::unordered_map<FragmentId, QualUpMessage> qual_reports_;
  std::unordered_map<FragmentId, SelUpMessage> sel_reports_;
  std::unordered_map<FragmentId,
                     std::pair<std::vector<uint8_t>, std::vector<uint8_t>>>
      resolved_qual_;
  std::unordered_map<FragmentId, std::vector<uint8_t>> resolved_stack_;
};

}  // namespace paxml

#endif  // PAXML_CORE_EVAL_FT_H_
