// Accounting for simulated distributed query runs.
//
// The paper's guarantees are stated in exactly these units:
//  * visits per site (<= 3 for PaX3, <= 2 for PaX2, 1 for ParBoX),
//  * communication volume O(|Q| |FT| + |ans|) — bytes, independent of |T|,
//  * total computation (sum over sites) and parallel computation (max over
//    sites per round, summed over rounds).

#ifndef PAXML_SIM_STATS_H_
#define PAXML_SIM_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace paxml {

/// Index of a site in a Cluster.
using SiteId = int32_t;
inline constexpr SiteId kNullSite = -1;

/// Accounted traffic on one directed site pair. With the framed message
/// plane (runtime/frame.h) a *message* is one frame on the wire; the
/// envelopes it coalesced are counted separately, so batching shrinks
/// `messages` while `envelopes` and `bytes` stay exactly what the protocol
/// produced.
struct EdgeStats {
  uint64_t messages = 0;   ///< frames (== envelopes when batching is off)
  uint64_t envelopes = 0;  ///< accounted envelopes carried by those frames
  uint64_t bytes = 0;

  bool operator==(const EdgeStats&) const = default;
};

/// Counters for one site across one query run.
struct SiteStats {
  int visits = 0;                ///< rounds in which the site participated
  uint64_t bytes_sent = 0;       ///< payload bytes sent by the site
  uint64_t bytes_received = 0;   ///< payload bytes delivered to the site
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  double compute_seconds = 0;    ///< wall time of the site's work closures
};

/// Latency/bandwidth model turning message counts and bytes into seconds.
/// Defaults approximate the paper's local LAN.
///
/// Field contract (enforced by TransferSeconds):
///  * `latency_seconds` >= 0 — fixed per-message cost; 0 models an ideal
///    network, negative makes no sense.
///  * `bandwidth_bytes_per_second` > 0 — a zero here used to divide every
///    byte count by 0, silently turning each derived elapsed-time metric
///    into inf. Model an infinitely fast link with a very large value, not
///    with 0.
struct NetworkCostModel {
  double latency_seconds = 0.0001;            ///< 0.1 ms per message
  double bandwidth_bytes_per_second = 100e6;  ///< ~100 MB/s

  /// Fixed framing overhead charged per message on top of the payload:
  /// headers, acks, protocol framing — the bytes a real stack adds to every
  /// message regardless of its size (>= 0; a TCP/IP+Ethernet header train
  /// is ~66 bytes). This is the term per-(run,edge) frame batching
  /// amortizes: N envelopes coalesced into one frame pay the overhead once.
  /// Default 0 keeps the historical model (payload bytes only).
  double per_message_overhead_bytes = 0;

  bool Valid() const {
    return latency_seconds >= 0 && bandwidth_bytes_per_second > 0 &&
           per_message_overhead_bytes >= 0;
  }

  double TransferSeconds(uint64_t messages, uint64_t bytes) const {
    PAXML_CHECK(Valid());
    const double wire_bytes =
        static_cast<double>(bytes) +
        static_cast<double>(messages) * per_message_overhead_bytes;
    return static_cast<double>(messages) * latency_seconds +
           wire_bytes / bandwidth_bytes_per_second;
  }
};

/// Site-pool saturation observed while a run's deliveries fanned out
/// (runtime/site_driver.h, DESIGN.md §14). Like MemoSavings these are
/// *extra* information, excluded from the bit-identity contract: `tasks`
/// counts the lane and split-item tasks this run's deliveries submitted
/// (exact, per run), while the peaks are gauges of the pool the run
/// shared — under concurrent runs they show combined pressure, which is
/// precisely the saturation signal the bench tables report.
struct PoolStats {
  uint64_t tasks = 0;       ///< pool tasks submitted (lanes + split chunks)
  uint64_t busy_peak = 0;   ///< max simultaneously busy workers observed
  uint64_t queue_peak = 0;  ///< max queued-task depth observed

  PoolStats& operator+=(const PoolStats& o) {
    tasks += o.tasks;
    busy_peak = busy_peak > o.busy_peak ? busy_peak : o.busy_peak;
    queue_peak = queue_peak > o.queue_peak ? queue_peak : o.queue_peak;
    return *this;
  }
};

/// Work a fragment-stage memo avoided during a run (serving layer,
/// DESIGN.md §12). Savings are *extra* information: the canonical counters
/// (visits, bytes, messages) still describe the protocol the coordinator
/// observed — a memo-served reply is accounted exactly like a computed one,
/// which is what keeps cached and uncached runs bit-identical.
struct MemoSavings {
  uint64_t fragment_hits = 0;  ///< memo-served (fragment, step) deliveries
  uint64_t saved_bytes = 0;    ///< accounted reply bytes served from memo
  double saved_seconds = 0;    ///< site compute time the hits skipped

  MemoSavings& operator+=(const MemoSavings& o) {
    fragment_hits += o.fragment_hits;
    saved_bytes += o.saved_bytes;
    saved_seconds += o.saved_seconds;
    return *this;
  }
};

/// Aggregated statistics of one distributed query evaluation.
struct RunStats {
  std::vector<SiteStats> per_site;

  int rounds = 0;                   ///< coordinator-driven stages executed

  /// Accounted messages on the wire. With frame batching (the default) a
  /// message is one frame — all of a round's envelopes on one (run, edge);
  /// with batching off it is one envelope, the historical meaning.
  uint64_t total_messages = 0;

  /// Accounted envelopes the protocol produced, regardless of how many
  /// frames carried them. Invariant: batching changes total_messages but
  /// never total_envelopes (or any byte total) — tested property.
  uint64_t total_envelopes = 0;

  uint64_t total_bytes = 0;         ///< all payload bytes on the wire
  uint64_t answer_bytes = 0;        ///< bytes of shipped answers (<= total)
  uint64_t data_bytes_shipped = 0;  ///< XML tree data moved (Naive baseline)

  /// Bytes *actually written* on the (modeled or real) wire with the framed
  /// message plane: every sealed frame's encoded size — header (run, edge,
  /// sequence) plus the materialized payload encodings. Differs from
  /// total_bytes in both directions: it adds the frame/part headers but
  /// excludes phantom bytes (modeled payloads no real bytes back). Control
  /// frames count too — they are written even though they are free in the
  /// paper's model. Zero with batching off (no frames exist); the natural
  /// input for a frame-level compression hook.
  uint64_t wire_bytes = 0;

  /// The frames' plain (uncompressed) encoded sizes — == wire_bytes when
  /// frame compression is off or never fired. The pair makes the
  /// compression ratio observable without touching any logical counter.
  uint64_t wire_raw_bytes = 0;

  /// How many sealed frames actually shipped compressed (kFrameZ records).
  uint64_t wire_frames_compressed = 0;

  /// Answer-delta codec effect: logical bytes of delta-transcoded parts
  /// (what the paper's model charges — absolute varint ids) vs the bytes
  /// those parts actually occupy inside frames after delta encoding.
  /// Zero when no transcoded part shipped. delta_wire_bytes <=
  /// delta_logical_bytes on sorted id streams (tested ≥30% smaller on FT2).
  uint64_t delta_logical_bytes = 0;
  uint64_t delta_wire_bytes = 0;

  /// Per-edge traffic, keyed (from, to). Only cross-site accounted messages
  /// appear (local delivery is free); kNullSite marks coordinator-originated
  /// messages not attributable to a site's fragment work.
  std::map<std::pair<SiteId, SiteId>, EdgeStats> edges;

  /// Sum over rounds of the maximum site compute time in that round: the
  /// perceived (parallel) evaluation time.
  double parallel_seconds = 0;

  /// Sum of compute over all sites and rounds.
  double total_compute_seconds = 0;

  /// Coordinator-side work (evalFT unification etc.).
  double coordinator_seconds = 0;

  /// Fragment-memo savings (zero unless TransportOptions::fragment_memo is
  /// set). Not part of the paper's accounting; reported so serving-layer
  /// reuse is visible without perturbing any equality-tested counter.
  uint64_t memo_fragment_hits = 0;
  uint64_t memo_saved_bytes = 0;
  double memo_saved_seconds = 0;

  /// Site-pool saturation splits (zero when no delivery fanned out). Like
  /// memo_*, advisory: excluded from every bit-identity comparison — the
  /// whole point of the parallel path is that only these and the timing
  /// fields may differ from the serial run.
  uint64_t pool_tasks = 0;
  uint64_t pool_busy_peak = 0;
  uint64_t pool_queue_peak = 0;

  int max_visits() const;
  uint64_t total_visits() const;

  /// Parallel time plus modeled transfer time: the end-to-end latency a
  /// client would observe.
  double ElapsedSeconds(const NetworkCostModel& net = {}) const {
    return parallel_seconds + coordinator_seconds +
           net.TransferSeconds(total_messages, total_bytes);
  }

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

}  // namespace paxml

#endif  // PAXML_SIM_STATS_H_
