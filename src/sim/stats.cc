#include "sim/stats.h"

#include <algorithm>

#include "common/string_util.h"

namespace paxml {

int RunStats::max_visits() const {
  int m = 0;
  for (const SiteStats& s : per_site) m = std::max(m, s.visits);
  return m;
}

uint64_t RunStats::total_visits() const {
  uint64_t n = 0;
  for (const SiteStats& s : per_site) n += static_cast<uint64_t>(s.visits);
  return n;
}

std::string RunStats::ToString() const {
  std::string out;
  out += StringFormat(
      "rounds=%d messages=%llu envelopes=%llu bytes=%llu (answers=%llu, "
      "data=%llu) wire=%llu\n",
      rounds, static_cast<unsigned long long>(total_messages),
      static_cast<unsigned long long>(total_envelopes),
      static_cast<unsigned long long>(total_bytes),
      static_cast<unsigned long long>(answer_bytes),
      static_cast<unsigned long long>(data_bytes_shipped),
      static_cast<unsigned long long>(wire_bytes));
  if (wire_raw_bytes != wire_bytes || wire_frames_compressed > 0) {
    out += StringFormat(
        "wire-raw=%llu frames-compressed=%llu\n",
        static_cast<unsigned long long>(wire_raw_bytes),
        static_cast<unsigned long long>(wire_frames_compressed));
  }
  if (delta_logical_bytes > 0) {
    out += StringFormat(
        "delta-coded: logical=%llu wire=%llu\n",
        static_cast<unsigned long long>(delta_logical_bytes),
        static_cast<unsigned long long>(delta_wire_bytes));
  }
  out += StringFormat(
      "parallel=%.6fs total-compute=%.6fs coordinator=%.6fs max-visits=%d\n",
      parallel_seconds, total_compute_seconds, coordinator_seconds,
      max_visits());
  if (memo_fragment_hits > 0) {
    out += StringFormat(
        "memo: fragment-hits=%llu saved-bytes=%llu saved-compute=%.6fs\n",
        static_cast<unsigned long long>(memo_fragment_hits),
        static_cast<unsigned long long>(memo_saved_bytes),
        memo_saved_seconds);
  }
  for (size_t i = 0; i < per_site.size(); ++i) {
    const SiteStats& s = per_site[i];
    out += StringFormat(
        "  site %zu: visits=%d sent=%s recv=%s compute=%.6fs\n", i, s.visits,
        HumanBytes(s.bytes_sent).c_str(), HumanBytes(s.bytes_received).c_str(),
        s.compute_seconds);
  }
  for (const auto& [edge, e] : edges) {
    out += StringFormat("  edge %d->%d: messages=%llu envelopes=%llu bytes=%s\n",
                        edge.first, edge.second,
                        static_cast<unsigned long long>(e.messages),
                        static_cast<unsigned long long>(e.envelopes),
                        HumanBytes(e.bytes).c_str());
  }
  return out;
}

}  // namespace paxml
