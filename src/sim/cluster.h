// A simulated cluster of sites holding fragments of one workload.
//
// Substitutes the paper's ten-machine LAN (see DESIGN.md §5): placement of
// fragments on in-process sites. The cluster is workload-agnostic — it
// holds an abstract WorkloadData (an XML FragmentedDocument, a partitioned
// graph store) and only needs its fragment count; XML-aware callers
// downcast back through doc(), graph callers through GraphOf()
// (DESIGN.md §11). Execution lives in src/runtime — a
// Coordinator drives message rounds over a Transport whose backends deliver
// site mail sequentially (SyncTransport) or on a persistent worker pool
// (PooledTransport). The guarantees under test (visits, communication
// volume, computation totals) are counts and are unaffected by the
// in-process substitution; timing components are measured per site so that
// parallel cost = max-over-sites matches the paper's metric even when the
// host has fewer cores than sites.

#ifndef PAXML_SIM_CLUSTER_H_
#define PAXML_SIM_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/workload_data.h"
#include "fragment/fragment.h"
#include "sim/stats.h"

namespace paxml {

class WorkerPool;

struct ClusterOptions {
  /// Deliver each round's site mail on the cluster's shared worker pool
  /// (PooledTransport). When false, sites run sequentially (SyncTransport)
  /// — timing still reports parallel cost as the per-round max, making
  /// curves deterministic on small hosts. Counts and byte totals are
  /// identical either way (tested property).
  bool parallel_execution = true;

  /// When set, every Coordinator round over this cluster *realizes* the
  /// model's transfer time for the round's accounted traffic as wall-clock
  /// delay on the driver thread. Counts and RunStats are unchanged (the
  /// modeled cost is already in RunStats::ElapsedSeconds); only measured
  /// wall time grows. Rounds become latency-bound, as against a real
  /// network — which is what multi-query scheduling overlaps
  /// (bench_multiquery). Must satisfy NetworkCostModel::Valid().
  std::optional<NetworkCostModel> simulated_network;
};

/// Placement plus execution engine for one fragmented workload.
class Cluster {
 public:
  /// Creates a cluster of `site_count` sites over `data` (any workload; an
  /// XML FragmentedDocument converts implicitly). The data is shared;
  /// sites only read their fragments.
  Cluster(std::shared_ptr<const WorkloadData> data, size_t site_count,
          ClusterOptions options = {});

  /// Assigns fragment `f` to site `s` (default placement: fragment i on
  /// site i % site_count; use Place for the paper's explicit layouts).
  Status Place(FragmentId f, SiteId s);

  /// Round-robin placement of all fragments.
  void PlaceRoundRobin();

  /// Places fragment 0 on site 0 and distributes the rest round-robin over
  /// the remaining sites (common experiment layout: coordinator holds the
  /// root fragment).
  void PlaceRootAndSpread();

  size_t site_count() const { return site_count_; }

  /// The workload this cluster places, and the fragment count that sizes
  /// its placement (the only two things placement and runtime need).
  const WorkloadData& data() const { return *data_; }
  size_t fragment_count() const { return data_->fragment_count(); }

  /// The XML document this cluster serves. PAXML_CHECKs that the workload
  /// family is "xml" — graph clusters must go through GraphOf() instead.
  const FragmentedDocument& doc() const;
  std::shared_ptr<const FragmentedDocument> doc_ptr() const;

  SiteId site_of(FragmentId f) const {
    return placement_[static_cast<size_t>(f)];
  }
  const std::vector<FragmentId>& fragments_at(SiteId s) const {
    return by_site_[static_cast<size_t>(s)];
  }

  /// The site holding the root fragment: the query site S_Q.
  SiteId query_site() const { return site_of(0); }

  const ClusterOptions& options() const { return options_; }

  /// Monotone version of the data this cluster serves, for the serving
  /// layer's cache keys (DESIGN.md §12). Placement changes bump it too:
  /// moving a fragment does not change answers, but it invalidates
  /// per-fragment memo entries whose replay assumed the old site layout —
  /// and a coarser epoch is always safe. Anything that mutates what a query
  /// would observe must call AdvanceDataEpoch(); cached answers and memo
  /// entries from earlier epochs are then never served again.
  uint64_t data_epoch() const {
    return data_epoch_.load(std::memory_order_acquire);
  }
  void AdvanceDataEpoch() {
    data_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// The worker pool shared by every pooled transport (and so every
  /// concurrent query evaluation) over this cluster, created lazily on
  /// first use. Heavy query streams thus pay thread spawns once per
  /// cluster, not once per run. Thread-safe.
  std::shared_ptr<WorkerPool> worker_pool() const;

  /// The pool intra-site parallel delivery runs on (site_threads > 1; see
  /// runtime/site_driver.h), created lazily on first use. Deliberately a
  /// *separate* pool from worker_pool(): a PooledTransport round executes
  /// site deliveries on worker_pool() workers, and a nested RunAll on the
  /// same pool would deadlock (WorkerPool checks for exactly that).
  /// Thread-safe.
  std::shared_ptr<WorkerPool> site_worker_pool() const;

 private:
  std::shared_ptr<const WorkloadData> data_;
  size_t site_count_;
  ClusterOptions options_;
  std::vector<SiteId> placement_;           // fragment -> site
  std::vector<std::vector<FragmentId>> by_site_;  // site -> fragments
  std::atomic<uint64_t> data_epoch_{1};

  mutable std::mutex pool_mu_;  // guards lazy creation of both pools
  mutable std::shared_ptr<WorkerPool> worker_pool_;
  mutable std::shared_ptr<WorkerPool> site_worker_pool_;
};

}  // namespace paxml

#endif  // PAXML_SIM_CLUSTER_H_
