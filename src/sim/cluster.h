// A simulated cluster of sites holding fragments of one document.
//
// Substitutes the paper's ten-machine LAN (see DESIGN.md §5). Sites are
// in-process entities; each evaluation *round* (one visit of every
// participating site) runs the sites' work closures — in parallel on real
// threads by default — and records per-site wall time, visit counts, and
// byte-accurate message sizes. The guarantees under test (visits,
// communication volume, computation totals) are counts and are unaffected
// by the in-process substitution; timing components are measured per site
// so that parallel cost = max-over-sites matches the paper's metric even
// when the host has fewer cores than sites.

#ifndef PAXML_SIM_CLUSTER_H_
#define PAXML_SIM_CLUSTER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "fragment/fragment.h"
#include "sim/stats.h"

namespace paxml {

struct ClusterOptions {
  /// Run each round's site closures on real threads (one per site). When
  /// false, sites run sequentially — timing still reports parallel cost as
  /// the per-round max, making curves deterministic on small hosts.
  bool parallel_execution = true;
};

/// Placement plus execution engine for one fragmented document.
class Cluster {
 public:
  /// Creates a cluster of `site_count` sites over `doc`. The document is
  /// shared; sites only read their fragments.
  Cluster(std::shared_ptr<const FragmentedDocument> doc, size_t site_count,
          ClusterOptions options = {});

  /// Assigns fragment `f` to site `s` (default placement: fragment i on
  /// site i % site_count; use Place for the paper's explicit layouts).
  Status Place(FragmentId f, SiteId s);

  /// Round-robin placement of all fragments.
  void PlaceRoundRobin();

  /// Places fragment 0 on site 0 and distributes the rest round-robin over
  /// the remaining sites (common experiment layout: coordinator holds the
  /// root fragment).
  void PlaceRootAndSpread();

  size_t site_count() const { return site_count_; }
  const FragmentedDocument& doc() const { return *doc_; }
  const std::shared_ptr<const FragmentedDocument>& doc_ptr() const { return doc_; }

  SiteId site_of(FragmentId f) const {
    return placement_[static_cast<size_t>(f)];
  }
  const std::vector<FragmentId>& fragments_at(SiteId s) const {
    return by_site_[static_cast<size_t>(s)];
  }

  /// The site holding the root fragment: the query site S_Q.
  SiteId query_site() const { return site_of(0); }

  const ClusterOptions& options() const { return options_; }

 private:
  std::shared_ptr<const FragmentedDocument> doc_;
  size_t site_count_;
  ClusterOptions options_;
  std::vector<SiteId> placement_;           // fragment -> site
  std::vector<std::vector<FragmentId>> by_site_;  // site -> fragments
};

/// Per-query execution context: runs rounds over a cluster and accumulates
/// RunStats. One QueryRun per query evaluation.
class QueryRun {
 public:
  explicit QueryRun(const Cluster* cluster);

  /// Executes one round: `work(site)` runs for every site in `sites`
  /// (in parallel when the cluster allows), counting one visit each.
  /// `label` names the stage for traces.
  void Round(const std::string& label, const std::vector<SiteId>& sites,
             const std::function<void(SiteId)>& work);

  /// Records a message of `bytes` payload bytes from `from` to `to`.
  /// Pass kNullSite as `from` for coordinator-originated messages that are
  /// not attributable to a site's fragment work (e.g. the initial query).
  void Send(SiteId from, SiteId to, uint64_t bytes);

  /// Records answer payload bytes (also counted in total bytes).
  void SendAnswer(SiteId from, SiteId to, uint64_t bytes);

  /// Records raw XML data shipping (NaiveCentralized baseline).
  void ShipData(SiteId from, SiteId to, uint64_t bytes);

  /// Measures coordinator-side work (evalFT etc.).
  void Coordinator(const std::function<void()>& work);

  /// Sites that hold at least one of the given fragments (sorted, unique).
  std::vector<SiteId> SitesOf(const std::vector<FragmentId>& fragments) const;

  /// All sites holding at least one fragment.
  std::vector<SiteId> AllSites() const;

  RunStats TakeStats() { return std::move(stats_); }
  const RunStats& stats() const { return stats_; }

 private:
  const Cluster* cluster_;
  RunStats stats_;
  std::mutex mu_;  // guards stats_ during parallel rounds
};

}  // namespace paxml

#endif  // PAXML_SIM_CLUSTER_H_
