#include "sim/cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "runtime/worker_pool.h"

namespace paxml {

Cluster::Cluster(std::shared_ptr<const WorkloadData> data,
                 size_t site_count, ClusterOptions options)
    : data_(std::move(data)), site_count_(site_count), options_(options) {
  PAXML_CHECK_GT(site_count_, 0u);
  if (options_.simulated_network.has_value()) {
    PAXML_CHECK(options_.simulated_network->Valid());
  }
  placement_.assign(data_->fragment_count(), kNullSite);
  by_site_.assign(site_count_, {});
  PlaceRoundRobin();
}

const FragmentedDocument& Cluster::doc() const {
  // The downcast is safe exactly when the family tag says so; a graph
  // cluster reaching an XML-only code path is a caller bug, not wire input.
  PAXML_CHECK(data_->family() == kXmlWorkloadFamily);
  return static_cast<const FragmentedDocument&>(*data_);
}

std::shared_ptr<const FragmentedDocument> Cluster::doc_ptr() const {
  PAXML_CHECK(data_->family() == kXmlWorkloadFamily);
  return std::static_pointer_cast<const FragmentedDocument>(data_);
}

Status Cluster::Place(FragmentId f, SiteId s) {
  if (f < 0 || static_cast<size_t>(f) >= data_->fragment_count()) {
    return Status::InvalidArgument(StringFormat("bad fragment id %d", f));
  }
  if (s < 0 || static_cast<size_t>(s) >= site_count_) {
    return Status::InvalidArgument(StringFormat("bad site id %d", s));
  }
  const SiteId old = placement_[static_cast<size_t>(f)];
  if (old != kNullSite) {
    auto& v = by_site_[static_cast<size_t>(old)];
    v.erase(std::remove(v.begin(), v.end(), f), v.end());
  }
  placement_[static_cast<size_t>(f)] = s;
  by_site_[static_cast<size_t>(s)].push_back(f);
  // Re-placement invalidates serving-layer state (see data_epoch()). Bumps
  // during construction are harmless — caches are built against a cluster
  // that already exists.
  AdvanceDataEpoch();
  return Status::OK();
}

void Cluster::PlaceRoundRobin() {
  for (size_t f = 0; f < data_->fragment_count(); ++f) {
    PAXML_CHECK(Place(static_cast<FragmentId>(f),
                      static_cast<SiteId>(f % site_count_))
                    .ok());
  }
}

std::shared_ptr<WorkerPool> Cluster::worker_pool() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (worker_pool_ == nullptr) worker_pool_ = std::make_shared<WorkerPool>();
  return worker_pool_;
}

std::shared_ptr<WorkerPool> Cluster::site_worker_pool() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (site_worker_pool_ == nullptr) {
    site_worker_pool_ = std::make_shared<WorkerPool>();
  }
  return site_worker_pool_;
}

void Cluster::PlaceRootAndSpread() {
  PAXML_CHECK(Place(0, 0).ok());
  if (site_count_ == 1) {
    for (size_t f = 1; f < data_->fragment_count(); ++f) {
      PAXML_CHECK(Place(static_cast<FragmentId>(f), 0).ok());
    }
    return;
  }
  for (size_t f = 1; f < data_->fragment_count(); ++f) {
    const SiteId s = static_cast<SiteId>(1 + (f - 1) % (site_count_ - 1));
    PAXML_CHECK(Place(static_cast<FragmentId>(f), s).ok());
  }
}

}  // namespace paxml
