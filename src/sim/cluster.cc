#include "sim/cluster.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {

Cluster::Cluster(std::shared_ptr<const FragmentedDocument> doc,
                 size_t site_count, ClusterOptions options)
    : doc_(std::move(doc)), site_count_(site_count), options_(options) {
  PAXML_CHECK_GT(site_count_, 0u);
  placement_.assign(doc_->size(), kNullSite);
  by_site_.assign(site_count_, {});
  PlaceRoundRobin();
}

Status Cluster::Place(FragmentId f, SiteId s) {
  if (f < 0 || static_cast<size_t>(f) >= doc_->size()) {
    return Status::InvalidArgument(StringFormat("bad fragment id %d", f));
  }
  if (s < 0 || static_cast<size_t>(s) >= site_count_) {
    return Status::InvalidArgument(StringFormat("bad site id %d", s));
  }
  const SiteId old = placement_[static_cast<size_t>(f)];
  if (old != kNullSite) {
    auto& v = by_site_[static_cast<size_t>(old)];
    v.erase(std::remove(v.begin(), v.end(), f), v.end());
  }
  placement_[static_cast<size_t>(f)] = s;
  by_site_[static_cast<size_t>(s)].push_back(f);
  return Status::OK();
}

void Cluster::PlaceRoundRobin() {
  for (size_t f = 0; f < doc_->size(); ++f) {
    PAXML_CHECK(Place(static_cast<FragmentId>(f),
                      static_cast<SiteId>(f % site_count_))
                    .ok());
  }
}

void Cluster::PlaceRootAndSpread() {
  PAXML_CHECK(Place(0, 0).ok());
  if (site_count_ == 1) {
    for (size_t f = 1; f < doc_->size(); ++f) {
      PAXML_CHECK(Place(static_cast<FragmentId>(f), 0).ok());
    }
    return;
  }
  for (size_t f = 1; f < doc_->size(); ++f) {
    const SiteId s = static_cast<SiteId>(1 + (f - 1) % (site_count_ - 1));
    PAXML_CHECK(Place(static_cast<FragmentId>(f), s).ok());
  }
}

QueryRun::QueryRun(const Cluster* cluster) : cluster_(cluster) {
  stats_.per_site.resize(cluster->site_count());
}

void QueryRun::Round(const std::string& label,
                     const std::vector<SiteId>& sites,
                     const std::function<void(SiteId)>& work) {
  (void)label;
  ++stats_.rounds;
  if (sites.empty()) return;

  std::vector<double> durations(sites.size(), 0);
  auto run_one = [&](size_t idx) {
    const auto start = std::chrono::steady_clock::now();
    work(sites[idx]);
    const auto end = std::chrono::steady_clock::now();
    durations[idx] = std::chrono::duration<double>(end - start).count();
  };

  if (cluster_->options().parallel_execution && sites.size() > 1) {
    std::vector<std::thread> threads;
    threads.reserve(sites.size());
    for (size_t i = 0; i < sites.size(); ++i) {
      threads.emplace_back(run_one, i);
    }
    for (std::thread& t : threads) t.join();
  } else {
    for (size_t i = 0; i < sites.size(); ++i) run_one(i);
  }

  double round_max = 0;
  for (size_t i = 0; i < sites.size(); ++i) {
    SiteStats& s = stats_.per_site[static_cast<size_t>(sites[i])];
    ++s.visits;
    s.compute_seconds += durations[i];
    stats_.total_compute_seconds += durations[i];
    round_max = std::max(round_max, durations[i]);
  }
  stats_.parallel_seconds += round_max;
}

void QueryRun::Send(SiteId from, SiteId to, uint64_t bytes) {
  // Local delivery is free: the query site does not pay network costs for
  // fragments it holds itself (S_Q stores the root fragment by assumption).
  if (from == to && from != kNullSite) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.total_messages;
  stats_.total_bytes += bytes;
  if (from != kNullSite) {
    SiteStats& f = stats_.per_site[static_cast<size_t>(from)];
    ++f.messages_sent;
    f.bytes_sent += bytes;
  }
  if (to != kNullSite) {
    SiteStats& t = stats_.per_site[static_cast<size_t>(to)];
    ++t.messages_received;
    t.bytes_received += bytes;
  }
}

void QueryRun::SendAnswer(SiteId from, SiteId to, uint64_t bytes) {
  if (from == to && from != kNullSite) return;  // local: free, like Send
  Send(from, to, bytes);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.answer_bytes += bytes;
}

void QueryRun::ShipData(SiteId from, SiteId to, uint64_t bytes) {
  if (from == to && from != kNullSite) return;
  Send(from, to, bytes);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.data_bytes_shipped += bytes;
}

void QueryRun::Coordinator(const std::function<void()>& work) {
  const auto start = std::chrono::steady_clock::now();
  work();
  const auto end = std::chrono::steady_clock::now();
  stats_.coordinator_seconds +=
      std::chrono::duration<double>(end - start).count();
}

std::vector<SiteId> QueryRun::SitesOf(
    const std::vector<FragmentId>& fragments) const {
  std::vector<SiteId> sites;
  for (FragmentId f : fragments) sites.push_back(cluster_->site_of(f));
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

std::vector<SiteId> QueryRun::AllSites() const {
  std::vector<FragmentId> all;
  for (size_t f = 0; f < cluster_->doc().size(); ++f) {
    all.push_back(static_cast<FragmentId>(f));
  }
  return SitesOf(all);
}

}  // namespace paxml
