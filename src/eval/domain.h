// Boolean-algebra domains for the shared evaluation passes.
//
// The paper's partial evaluation runs the *same* query logic in two modes:
//  * over complete information  -> truth values (centralized evaluation, or
//    a fragment whose dependencies are already resolved), and
//  * over incomplete information -> Boolean formulas with variables standing
//    for missing parts (residual functions).
//
// We express that by templating the qualifier and selection passes over a
// Domain: BoolDomain computes with plain booleans, FormulaDomain with
// hash-consed formulas. Both expose the same tiny interface, so the passes
// are written once, and the distributed algorithms provably perform the same
// per-node work as the centralized evaluator (Section 3.4: total computation
// O(|Q| |T|)).

#ifndef PAXML_EVAL_DOMAIN_H_
#define PAXML_EVAL_DOMAIN_H_

#include <cstdint>
#include <optional>

#include "boolexpr/formula.h"

namespace paxml {

/// Plain boolean computation; used when every input is known.
class BoolDomain {
 public:
  /// uint8_t (not bool) so that std::vector<Value> is a real byte array.
  using Value = uint8_t;

  Value False() const { return 0; }
  Value True() const { return 1; }
  Value FromBool(bool b) const { return b ? 1 : 0; }
  Value And(Value a, Value b) const { return a & b; }
  Value Or(Value a, Value b) const { return a | b; }
  Value Not(Value a) const { return a ^ 1; }

  bool IsTrue(Value v) const { return v != 0; }
  bool IsFalse(Value v) const { return v == 0; }
  std::optional<bool> ConstValue(Value v) const { return v != 0; }
};

/// Residual-formula computation over a FormulaArena.
class FormulaDomain {
 public:
  using Value = Formula;

  explicit FormulaDomain(FormulaArena* arena) : arena_(arena) {}

  Value False() const { return kFalseFormula; }
  Value True() const { return kTrueFormula; }
  Value FromBool(bool b) const { return b ? kTrueFormula : kFalseFormula; }
  Value And(Value a, Value b) const { return arena_->And(a, b); }
  Value Or(Value a, Value b) const { return arena_->Or(a, b); }
  Value Not(Value a) const { return arena_->Not(a); }

  bool IsTrue(Value v) const { return v == kTrueFormula; }
  bool IsFalse(Value v) const { return v == kFalseFormula; }
  std::optional<bool> ConstValue(Value v) const { return arena_->ConstValue(v); }

  FormulaArena* arena() const { return arena_; }

 private:
  FormulaArena* arena_;
};

}  // namespace paxml

#endif  // PAXML_EVAL_DOMAIN_H_
