// Centralized XPath evaluation: the ground truth and the baseline.
//
// Evaluates a compiled query over a complete tree held in one place, with
// the classic two-pass structure (bottom-up qualifiers, top-down selection)
// in O(|Q| |T|) time — the cost the paper's distributed algorithms are
// measured against. Virtual nodes, if present, are inert (match nothing):
// pass an assembled tree for exact answers.

#ifndef PAXML_EVAL_CENTRALIZED_H_
#define PAXML_EVAL_CENTRALIZED_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "xml/tree.h"
#include "xpath/query_plan.h"

namespace paxml {

/// Counters describing one centralized evaluation.
struct CentralizedStats {
  uint64_t qualifier_ops = 0;  ///< (node, entry) steps in the qualifier pass
  uint64_t selection_ops = 0;  ///< (node, entry) steps in the selection pass
  int passes = 0;              ///< tree traversals performed (1 or 2)

  uint64_t total_ops() const { return qualifier_ops + selection_ops; }
};

struct CentralizedResult {
  /// Answer nodes in document order.
  std::vector<NodeId> answers;
  CentralizedStats stats;
};

/// Evaluates `query` over `tree`. Queries without qualifiers skip the
/// qualifier pass (single traversal), mirroring the paper's observation that
/// Boolean-free queries need fewer passes.
CentralizedResult EvaluateCentralized(const Tree& tree,
                                      const CompiledQuery& query);

/// Convenience: parse + compile + evaluate. The query is compiled against
/// the tree's symbol table.
Result<CentralizedResult> EvaluateCentralized(const Tree& tree,
                                              std::string_view query);

}  // namespace paxml

#endif  // PAXML_EVAL_CENTRALIZED_H_
