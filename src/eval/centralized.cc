#include "eval/centralized.h"

#include <algorithm>

#include "eval/domain.h"
#include "eval/qualifier_pass.h"
#include "eval/selection_pass.h"

namespace paxml {

CentralizedResult EvaluateCentralized(const Tree& tree,
                                      const CompiledQuery& query) {
  CentralizedResult result;
  if (tree.empty()) return result;

  BoolDomain domain;
  QualVectors<BoolDomain> vectors;
  if (query.has_qualifiers()) {
    vectors = RunQualifierPass(tree, query, &domain, {},
                               &result.stats.qualifier_ops);
    ++result.stats.passes;
  }

  // Root qualifier (leading ε[q]): evaluated at the root element.
  BoolDomain::Value root_qual = domain.True();
  const int root_qual_id = query.selection()[0].qual;
  if (root_qual_id >= 0) {
    root_qual = EvalQualAtNode(tree, query, &domain, vectors, tree.root(),
                               root_qual_id);
  }

  if (query.IsBooleanQuery()) {
    // Empty selection path: the answer is the root element iff the root
    // qualifier holds (ParBoX semantics).
    if (domain.IsTrue(root_qual)) result.answers.push_back(tree.root());
    return result;
  }

  QualAtHook<BoolDomain::Value> qual_at;
  if (query.has_qualifiers()) {
    qual_at = [&](NodeId v, int qual_id) {
      return EvalQualAtNode(tree, query, &domain, vectors, v, qual_id);
    };
  }
  auto qual_at_doc = [&](int qual_id) {
    return EvalQualAtDoc(query, &domain, vectors, tree.root(), qual_id);
  };

  std::vector<BoolDomain::Value> doc_vector =
      MakeDocVector(query, &domain, root_qual, qual_at_doc);
  SelectionOutput<BoolDomain> out = RunSelectionPass(
      tree, query, &domain, std::move(doc_vector), qual_at);
  ++result.stats.passes;
  result.stats.selection_ops = out.ops;

  PAXML_CHECK(out.candidates.empty());  // booleans never leave residuals
  result.answers = std::move(out.answers);
  std::sort(result.answers.begin(), result.answers.end());
  return result;
}

Result<CentralizedResult> EvaluateCentralized(const Tree& tree,
                                              std::string_view query) {
  PAXML_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileXPath(query, tree.symbols()));
  return EvaluateCentralized(tree, compiled);
}

}  // namespace paxml
