// The top-down selection pass (Procedure topDown, Fig. 4 of the paper).
//
// One pre-order traversal computes, for every node v and selection entry i,
// SV_v(i) = "v is reachable from the document node via the prefix η1/…/ηi".
// A stack holds the ancestors' vectors; the invariant that the stack top
// summarizes the whole stack makes every step O(1) vector lookups:
//
//    label/wildcard: SV_v(i) = SV_parent(i-1) ∧ term(v, ηi) ∧ qual_i(v)
//    '//':           SV_v(i) = SV_v(i-1) ∨ SV_parent(i)
//    ε[q] filter:    SV_v(i) = SV_v(i-1) ∧ qual_i(v)
//
// Nodes whose last entry is constant-true are answers (`ans`); nodes whose
// last entry is a residual formula are candidate answers (`cans`) to be
// settled by unification (Stage 3 of PaX3 / Stage 2 of PaX2). When the
// traversal reaches a virtual node F_k it records the current stack top —
// exactly the vector the fragment F_k's z-variables stand for (Example 3.4).
//
// Cost: O(|SVect| * |T|) domain operations.

#ifndef PAXML_EVAL_SELECTION_PASS_H_
#define PAXML_EVAL_SELECTION_PASS_H_

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "eval/domain.h"
#include "xml/tree.h"
#include "xpath/query_plan.h"

namespace paxml {

/// Qualifier-value oracle: value of qualifier expression `qual_id` at node v.
/// PaX3 reads resolved qualifier vectors; PaX2 injects fresh variables;
/// the centralized evaluator reads boolean vectors.
template <typename V>
using QualAtHook = std::function<V(NodeId v, int qual_id)>;

template <typename D>
struct SelectionOutput {
  using Value = typename D::Value;

  /// Nodes certainly in the answer (last entry == constant true).
  std::vector<NodeId> answers;

  /// Candidate answers with their residual formulas (never constants).
  std::vector<std::pair<NodeId, Value>> candidates;

  /// Stack top recorded at each virtual node: virtual node id -> SV vector
  /// of its parent (what the child fragment's stack-init variables denote).
  std::vector<std::pair<NodeId, std::vector<Value>>> virtual_stack_tops;

  /// Domain operations performed (the paper's computation-cost unit).
  uint64_t ops = 0;
};

/// Runs the selection pass over (a fragment of) `tree`.
///
/// `init_stack` is the SV vector of the *parent* of the tree/fragment root:
/// the document-node vector for the global root (see MakeDocVector), or a
/// vector of fresh variables for a non-root fragment.
///
/// `qual_at` may be empty when the query has no qualifiers.
template <typename D>
SelectionOutput<D> RunSelectionPass(
    const Tree& tree, const CompiledQuery& query, D* domain,
    std::vector<typename D::Value> init_stack,
    const QualAtHook<typename D::Value>& qual_at = {}) {
  using Value = typename D::Value;
  const std::vector<CompiledQuery::SelEntry>& sel = query.selection();
  const size_t m = sel.size();
  PAXML_CHECK_EQ(init_stack.size(), m);

  SelectionOutput<D> out;
  if (tree.empty()) return out;
  // Boolean queries (empty selection path) are resolved by the caller from
  // the root qualifier; the traversal below assumes at least one real step.
  PAXML_CHECK_GT(m, 1u);

  const size_t last = m - 1;

  // Explicit DFS; stack_vectors parallels the ancestor chain.
  struct Item {
    NodeId v;
    bool expanded;
  };
  std::vector<Item> work = {{tree.root(), false}};
  std::vector<std::vector<Value>> stack;
  stack.push_back(std::move(init_stack));

  while (!work.empty()) {
    Item item = work.back();
    work.pop_back();
    if (item.expanded) {
      stack.pop_back();
      continue;
    }
    const NodeId v = item.v;
    const std::vector<Value>& parent_vec = stack.back();

    if (tree.IsVirtual(v)) {
      // The child fragment continues the traversal; hand it the context.
      out.virtual_stack_tops.emplace_back(v, parent_vec);
      continue;
    }

    std::vector<Value> vec(m, domain->False());
    // Entry 0 (document node) is false at every real node: vec[0] stays F.
    for (size_t i = 1; i < m; ++i) {
      const CompiledQuery::SelEntry& e = sel[i];
      switch (e.kind) {
        case SelKind::kLabel: {
          const bool term = tree.IsElement(v) && tree.label(v) == e.label;
          Value val = term ? parent_vec[i - 1] : domain->False();
          if (term && e.qual >= 0 && !domain->IsFalse(val)) {
            val = domain->And(val, qual_at(v, e.qual));
          }
          vec[i] = val;
          break;
        }
        case SelKind::kWildcard: {
          const bool term = tree.IsElement(v);
          Value val = term ? parent_vec[i - 1] : domain->False();
          if (term && e.qual >= 0 && !domain->IsFalse(val)) {
            val = domain->And(val, qual_at(v, e.qual));
          }
          vec[i] = val;
          break;
        }
        case SelKind::kDescend:
          vec[i] = domain->Or(vec[i - 1], parent_vec[i]);
          break;
        case SelKind::kSelfFilter: {
          Value val = vec[i - 1];
          if (e.qual >= 0 && !domain->IsFalse(val)) {
            val = domain->And(val, qual_at(v, e.qual));
          }
          vec[i] = val;
          break;
        }
        case SelKind::kRoot:
          PAXML_CHECK(false);  // only entry 0, skipped above
          break;
      }
      ++out.ops;
    }

    const Value final_value = vec[last];
    if (auto c = domain->ConstValue(final_value)) {
      if (*c) out.answers.push_back(v);
    } else {
      out.candidates.emplace_back(v, final_value);
    }

    if (tree.first_child(v) != kNullNode) {
      work.push_back({v, true});  // sentinel: pop the vector when done
      for (NodeId c : tree.children(v)) work.push_back({c, false});
      stack.push_back(std::move(vec));
    }
  }
  return out;
}

/// Builds the document-node vector used as the stack init for the global
/// root: entry 0 = root-qualifier value (the paper evaluates queries at the
/// root of T), '//' entries inherit (the closure contains the document node),
/// everything else is false. `root_qual_value` must already incorporate any
/// ε[q] prefix of the query; `qual_at_doc` resolves self-filter entries
/// directly after a leading '//'.
template <typename D>
std::vector<typename D::Value> MakeDocVector(
    const CompiledQuery& query, D* domain, typename D::Value root_qual_value,
    const std::function<typename D::Value(int qual_id)>& qual_at_doc = {}) {
  using Value = typename D::Value;
  const std::vector<CompiledQuery::SelEntry>& sel = query.selection();
  std::vector<Value> vec(sel.size(), domain->False());
  vec[0] = root_qual_value;
  for (size_t i = 1; i < sel.size(); ++i) {
    switch (sel[i].kind) {
      case SelKind::kDescend:
        vec[i] = vec[i - 1];
        break;
      case SelKind::kSelfFilter: {
        Value val = vec[i - 1];
        if (sel[i].qual >= 0 && !domain->IsFalse(val)) {
          PAXML_CHECK(qual_at_doc != nullptr);
          val = domain->And(val, qual_at_doc(sel[i].qual));
        }
        vec[i] = val;
        break;
      }
      default:
        break;  // label/wildcard never match the document node
    }
  }
  return vec;
}

}  // namespace paxml

#endif  // PAXML_EVAL_SELECTION_PASS_H_
