// The bottom-up qualifier pass (extended ParBoX, Section 3.1).
//
// One post-order traversal computes, for every node v and every QVect entry
// e, the vectors
//    QV_v(e)  — e matches at v (see query_plan.h for the exact semantics),
//    QDV_v(e) — e matches at v or at some descendant of v,
// using only the children's vectors (locality is what makes per-fragment
// partial evaluation possible). Virtual nodes take their (QV, QDV) rows from
// a hook — constants in a centralized run, fresh variables in a partial run.
//
// Cost: O(|E| * |T|) domain operations, |E| = number of QVect entries.

#ifndef PAXML_EVAL_QUALIFIER_PASS_H_
#define PAXML_EVAL_QUALIFIER_PASS_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "eval/domain.h"
#include "xml/tree.h"
#include "xpath/query_plan.h"

namespace paxml {

/// Flat per-node qualifier vectors (row-major: node * entry_count + entry).
template <typename D>
struct QualVectors {
  using Value = typename D::Value;

  size_t entry_count = 0;
  std::vector<Value> qv;
  std::vector<Value> qdv;

  Value QV(NodeId v, int e) const {
    return qv[static_cast<size_t>(v) * entry_count + static_cast<size_t>(e)];
  }
  Value QDV(NodeId v, int e) const {
    return qdv[static_cast<size_t>(v) * entry_count + static_cast<size_t>(e)];
  }
  Value* QVRow(NodeId v) { return qv.data() + static_cast<size_t>(v) * entry_count; }
  Value* QDVRow(NodeId v) { return qdv.data() + static_cast<size_t>(v) * entry_count; }
  const Value* QVRow(NodeId v) const {
    return qv.data() + static_cast<size_t>(v) * entry_count;
  }
  const Value* QDVRow(NodeId v) const {
    return qdv.data() + static_cast<size_t>(v) * entry_count;
  }
};

/// Supplies (QV, QDV) rows for virtual nodes. Entry index is the second
/// argument. When absent, virtual nodes contribute all-false rows (inert).
template <typename V>
using VirtualQualHook = std::function<std::pair<V, V>(NodeId, int)>;

namespace eval_internal {

/// Does the entry's node test hold at v? Always a concrete boolean.
inline bool EntryTestMatches(const Tree& tree, NodeId v,
                             const CompiledQuery::Entry& e) {
  switch (e.test) {
    case TestKind::kLabel:
      return tree.IsElement(v) && tree.label(v) == e.label;
    case TestKind::kWildcard:
      return tree.IsElement(v);
    case TestKind::kAnyNode:
      return true;
    case TestKind::kTextEq:
      return tree.IsText(v) && tree.text(v) == e.text;
    case TestKind::kValCmp: {
      if (!tree.IsText(v)) return false;
      auto num = ParseNumber(tree.text(v));
      return num && EvalCmp(e.op, *num, e.number);
    }
  }
  return false;
}

}  // namespace eval_internal

/// Computes the QV/QDV rows of a single node from its (already computed)
/// children rows: the post-order step of the bottom-up pass, exposed so that
/// PaX2 can interleave it with its pre-order selection computation.
template <typename D>
void ComputeQualRowsAtNode(
    const Tree& tree, const CompiledQuery& query, D* domain, NodeId v,
    const VirtualQualHook<typename D::Value>& virtual_hook,
    QualVectors<D>* vectors, uint64_t* counter = nullptr) {
  using Value = typename D::Value;
  const std::vector<CompiledQuery::Entry>& entries = query.entries();
  const size_t ec = entries.size();
  if (ec == 0) return;

  Value* qv_row = vectors->QVRow(v);
  Value* qdv_row = vectors->QDVRow(v);

  if (tree.IsVirtual(v)) {
    for (size_t e = 0; e < ec; ++e) {
      if (virtual_hook) {
        auto [qv, qdv] = virtual_hook(v, static_cast<int>(e));
        qv_row[e] = qv;
        qdv_row[e] = qdv;
      }
      if (counter) ++*counter;
    }
    return;
  }

  // Aggregates over children, shared by all entries of this node:
  //   qcv[e]  = OR_child QV_child(e)      (some child matches)
  //   qadv[e] = OR_child QDV_child(e)     (some proper descendant matches)
  std::vector<Value> qcv(ec, domain->False());
  std::vector<Value> qadv(ec, domain->False());
  for (NodeId c : tree.children(v)) {
    const Value* cqv = vectors->QVRow(c);
    const Value* cqdv = vectors->QDVRow(c);
    for (size_t e = 0; e < ec; ++e) {
      qcv[e] = domain->Or(qcv[e], cqv[e]);
      qadv[e] = domain->Or(qadv[e], cqdv[e]);
    }
  }

  // Evaluates a qualifier expression at v. Atom lookups only touch entries
  // with smaller indices (topological order), which are already final in
  // qv_row/qdv_row for the self/descendant-or-self axes.
  auto eval_qual = [&](int qual_id, auto&& self) -> Value {
    const CompiledQuery::QualNode& n =
        query.qual_nodes()[static_cast<size_t>(qual_id)];
    switch (n.kind) {
      case QualNodeKind::kTrue:
        return domain->True();
      case QualNodeKind::kAtom:
        switch (n.axis) {
          case Axis::kChild:
            return qcv[static_cast<size_t>(n.entry)];
          case Axis::kProperDescendant:
            return qadv[static_cast<size_t>(n.entry)];
          case Axis::kDescendantOrSelf:
            return qdv_row[static_cast<size_t>(n.entry)];
          case Axis::kSelf:
            return qv_row[static_cast<size_t>(n.entry)];
          case Axis::kNone:
            break;
        }
        PAXML_CHECK(false);
        return domain->False();
      case QualNodeKind::kAnd:
        return domain->And(self(n.left, self), self(n.right, self));
      case QualNodeKind::kOr:
        return domain->Or(self(n.left, self), self(n.right, self));
      case QualNodeKind::kNot:
        return domain->Not(self(n.left, self));
    }
    PAXML_CHECK(false);
    return domain->False();
  };

  for (size_t e = 0; e < ec; ++e) {
    const CompiledQuery::Entry& entry = entries[e];
    Value value =
        domain->FromBool(eval_internal::EntryTestMatches(tree, v, entry));
    if (!domain->IsFalse(value)) {
      if (entry.qual >= 0) {
        value = domain->And(value, eval_qual(entry.qual, eval_qual));
      }
      switch (entry.rest_axis) {
        case Axis::kNone:
          break;
        case Axis::kChild:
          value = domain->And(value, qcv[static_cast<size_t>(entry.rest)]);
          break;
        case Axis::kProperDescendant:
          value = domain->And(value, qadv[static_cast<size_t>(entry.rest)]);
          break;
        case Axis::kDescendantOrSelf:
          // QDV of the rest at v = QV_v(rest) OR qadv(rest); rest < e, so
          // qdv_row[rest] is already final.
          value = domain->And(value, qdv_row[static_cast<size_t>(entry.rest)]);
          break;
        case Axis::kSelf:
          PAXML_CHECK(false);
          break;
      }
    }
    qv_row[e] = value;
    qdv_row[e] = domain->Or(value, qadv[e]);
    if (counter) ++*counter;
  }
}

/// Computes QualVectors for (a fragment of) `tree` bottom-up.
///
/// `counter`, when non-null, is incremented once per (node, entry) domain
/// operation group — the unit in which the paper states computation costs.
template <typename D>
QualVectors<D> RunQualifierPass(
    const Tree& tree, const CompiledQuery& query, D* domain,
    const VirtualQualHook<typename D::Value>& virtual_hook = {},
    uint64_t* counter = nullptr) {
  const size_t ec = query.entries().size();

  QualVectors<D> out;
  out.entry_count = ec;
  out.qv.assign(tree.size() * ec, domain->False());
  out.qdv.assign(tree.size() * ec, domain->False());
  if (tree.empty() || ec == 0) return out;

  // Post-order traversal: children are fully processed before their parent.
  struct Item {
    NodeId v;
    bool expanded;
  };
  std::vector<Item> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (!item.expanded) {
      stack.push_back({item.v, true});
      for (NodeId c : tree.children(item.v)) stack.push_back({c, false});
      continue;
    }
    ComputeQualRowsAtNode(tree, query, domain, item.v, virtual_hook, &out,
                          counter);
  }
  return out;
}

/// Evaluates qualifier expression `qual_id` at node `v` from final vectors.
/// Used by the selection pass (Stage 2 of PaX3), where all qualifier values
/// are known (or residual formulas).
template <typename D>
typename D::Value EvalQualAtNode(const Tree& tree, const CompiledQuery& query,
                                 D* domain, const QualVectors<D>& vectors,
                                 NodeId v, int qual_id) {
  using Value = typename D::Value;
  const CompiledQuery::QualNode& n = query.qual_nodes()[static_cast<size_t>(qual_id)];
  switch (n.kind) {
    case QualNodeKind::kTrue:
      return domain->True();
    case QualNodeKind::kAtom: {
      switch (n.axis) {
        case Axis::kChild: {
          Value acc = domain->False();
          for (NodeId c : tree.children(v)) {
            acc = domain->Or(acc, vectors.QV(c, n.entry));
          }
          return acc;
        }
        case Axis::kProperDescendant: {
          Value acc = domain->False();
          for (NodeId c : tree.children(v)) {
            acc = domain->Or(acc, vectors.QDV(c, n.entry));
          }
          return acc;
        }
        case Axis::kDescendantOrSelf:
          return vectors.QDV(v, n.entry);
        case Axis::kSelf:
          return vectors.QV(v, n.entry);
        case Axis::kNone:
          break;
      }
      PAXML_CHECK(false);
      return domain->False();
    }
    case QualNodeKind::kAnd:
      return domain->And(
          EvalQualAtNode(tree, query, domain, vectors, v, n.left),
          EvalQualAtNode(tree, query, domain, vectors, v, n.right));
    case QualNodeKind::kOr:
      return domain->Or(EvalQualAtNode(tree, query, domain, vectors, v, n.left),
                        EvalQualAtNode(tree, query, domain, vectors, v, n.right));
    case QualNodeKind::kNot:
      return domain->Not(
          EvalQualAtNode(tree, query, domain, vectors, v, n.left));
  }
  PAXML_CHECK(false);
  return domain->False();
}

/// Evaluates qualifier expression `qual_id` at the *document node* whose only
/// child is `root`. Child atoms look at the root element itself; descendant
/// atoms at its descendant-or-self closure; self atoms are false (the
/// document node is not a real node).
template <typename D>
typename D::Value EvalQualAtDoc(const CompiledQuery& query, D* domain,
                                const QualVectors<D>& vectors, NodeId root,
                                int qual_id) {
  const CompiledQuery::QualNode& n = query.qual_nodes()[static_cast<size_t>(qual_id)];
  switch (n.kind) {
    case QualNodeKind::kTrue:
      return domain->True();
    case QualNodeKind::kAtom:
      switch (n.axis) {
        case Axis::kChild:
          return vectors.QV(root, n.entry);
        case Axis::kProperDescendant:
        case Axis::kDescendantOrSelf:
          return vectors.QDV(root, n.entry);
        case Axis::kSelf:
          return domain->False();
        case Axis::kNone:
          break;
      }
      PAXML_CHECK(false);
      return domain->False();
    case QualNodeKind::kAnd:
      return domain->And(EvalQualAtDoc(query, domain, vectors, root, n.left),
                         EvalQualAtDoc(query, domain, vectors, root, n.right));
    case QualNodeKind::kOr:
      return domain->Or(EvalQualAtDoc(query, domain, vectors, root, n.left),
                        EvalQualAtDoc(query, domain, vectors, root, n.right));
    case QualNodeKind::kNot:
      return domain->Not(EvalQualAtDoc(query, domain, vectors, root, n.left));
  }
  PAXML_CHECK(false);
  return domain->False();
}

}  // namespace paxml

#endif  // PAXML_EVAL_QUALIFIER_PASS_H_
