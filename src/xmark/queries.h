// The experiment queries of the paper (Fig. 7), adapted to paxml syntax.

#ifndef PAXML_XMARK_QUERIES_H_
#define PAXML_XMARK_QUERIES_H_

#include <string>
#include <vector>

namespace paxml::xmark {

/// Q1: qualifier-free, no '//' in the selection path.
inline constexpr const char* kQ1 = "/sites/site/people/person";

/// Q2: qualifier-free, '//' in the selection path.
inline constexpr const char* kQ2 = "/sites/site/open_auctions//annotation";

/// Q3: qualifiers, no '//'.
inline constexpr const char* kQ3 =
    "/sites/site/people/person[profile/age > 20 and address/country = "
    "\"US\"]/creditcard";

/// Q4: qualifiers and '//'.
inline constexpr const char* kQ4 =
    "/sites//people/person[profile/age > 20 and address/country = "
    "\"US\"]/creditcard";

struct NamedQuery {
  const char* name;
  const char* text;
  bool has_qualifiers;
  bool has_descendant;
};

/// All four queries with their feature matrix (the experiments cover the
/// four combinations of {qualifiers} x {descendant step}).
inline std::vector<NamedQuery> ExperimentQueries() {
  return {
      {"Q1", kQ1, false, false},
      {"Q2", kQ2, false, true},
      {"Q3", kQ3, true, false},
      {"Q4", kQ4, true, true},
  };
}

}  // namespace paxml::xmark

#endif  // PAXML_XMARK_QUERIES_H_
