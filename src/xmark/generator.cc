#include "xmark/generator.h"

#include <array>

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {
namespace {

// Word pool for description/text content (XMark fills these from
// Shakespeare; any natural-ish text with similar length distribution works).
constexpr const char* kWords[] = {
    "serene",   "market",  "trade",    "ledger",  "auction", "harbor",
    "velvet",   "copper",  "meridian", "quorum",  "cipher",  "lattice",
    "orchard",  "beacon",  "summit",   "drift",   "ember",   "fathom",
    "garnet",   "hollow",  "isthmus",  "jubilee", "keel",    "lumen",
    "mosaic",   "nectar",  "obelisk",  "prism",   "quill",   "rampart",
    "saffron",  "tundra",  "umber",    "vertex",  "willow",  "zenith",
    "anchor",   "bramble", "cascade",  "delta",   "estuary", "flint",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kFirstNames[] = {"Anna", "Kim",  "Lisa", "Omar", "Wei",
                                       "Ines", "Raj",  "Sara", "Tomas", "Yuki"};
constexpr const char* kLastNames[] = {"Ito",    "Meyer", "Okafor", "Silva",
                                      "Novak",  "Haddad", "Larsen", "Kovacs",
                                      "Duarte", "Fontaine"};
constexpr const char* kCountries[] = {"Canada", "Germany", "Japan",
                                      "Brazil", "Kenya",   "Norway"};
constexpr const char* kCities[] = {"Springfield", "Riverton", "Lakewood",
                                   "Fairview",    "Georgetown", "Ashland"};
constexpr const char* kContinents[] = {"africa", "asia",     "australia",
                                       "europe", "samerica"};

/// TreeBuilder wrapper that tracks serialized bytes as content is emitted,
/// so sections can be generated to a byte budget in one pass.
class CountingBuilder {
 public:
  explicit CountingBuilder(TreeBuilder* b) : b_(b) {}

  void Open(std::string_view label) {
    b_->Open(label);
    bytes_ += 2 * label.size() + 5;  // <label></label>
  }
  void Close() { b_->Close(); }
  void Text(std::string_view text) {
    b_->Text(text);
    bytes_ += text.size();
  }
  void Leaf(std::string_view label, std::string_view text) {
    Open(label);
    Text(text);
    Close();
  }
  void LeafNumber(std::string_view label, long long value) {
    Leaf(label, StringFormat("%lld", value));
  }

  size_t bytes() const { return bytes_; }

 private:
  TreeBuilder* b_;
  size_t bytes_ = 0;
};

/// Emits a sentence of `words` pool words.
std::string Sentence(Rng* rng, size_t words) {
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) out.push_back(' ');
    out += kWords[rng->NextBounded(kWordCount)];
  }
  return out;
}

std::string PersonName(Rng* rng) {
  return std::string(kFirstNames[rng->NextBounded(10)]) + " " +
         kLastNames[rng->NextBounded(10)];
}

std::string Date(Rng* rng) {
  return StringFormat("%02d/%02d/%04d", static_cast<int>(rng->NextBounded(12)) + 1,
                      static_cast<int>(rng->NextBounded(28)) + 1,
                      2000 + static_cast<int>(rng->NextBounded(7)));
}

/// One XMark "site" subtree generator; sections are filled until their byte
/// budget is reached.
class SiteGenerator {
 public:
  SiteGenerator(TreeBuilder* b, Rng* rng, const XMarkOptions& options,
                int site_index)
      : cb_(b), rng_(rng), options_(options), site_index_(site_index) {}

  void Generate(const SiteBudget& budget) {
    cb_.Open("site");
    GenerateRegions(budget.regions_namerica, budget.regions_other);
    GenerateCategories(budget.categories);
    GeneratePeople(budget.people);
    GenerateOpenAuctions(budget.open_auctions);
    GenerateClosedAuctions(budget.closed_auctions);
    cb_.Close();
  }

 private:
  void GenerateItem(int index) {
    cb_.Open("item");
    cb_.Leaf("location", kCountries[rng_->NextBounded(6)]);
    cb_.LeafNumber("quantity", 1 + static_cast<long long>(rng_->NextBounded(5)));
    cb_.Leaf("name", Sentence(rng_, 2));
    cb_.Leaf("payment", "Cash Creditcard");
    cb_.Open("description");
    cb_.Leaf("text", Sentence(rng_, 12 + rng_->NextBounded(20)));
    cb_.Close();
    if (rng_->NextBool(0.4)) {
      cb_.Open("mailbox");
      const size_t mails = 1 + rng_->NextBounded(3);
      for (size_t i = 0; i < mails; ++i) {
        cb_.Open("mail");
        cb_.Leaf("from", PersonName(rng_));
        cb_.Leaf("to", PersonName(rng_));
        cb_.Leaf("date", Date(rng_));
        cb_.Leaf("text", Sentence(rng_, 8 + rng_->NextBounded(12)));
        cb_.Close();
      }
      cb_.Close();
    }
    cb_.Close();
    (void)index;
  }

  void GenerateRegions(size_t namerica_bytes, size_t other_bytes) {
    cb_.Open("regions");
    // namerica first: the FT2 fragmentation cuts it as its own fragment.
    cb_.Open("namerica");
    const size_t start = cb_.bytes();
    int index = 0;
    while (cb_.bytes() - start < namerica_bytes) GenerateItem(index++);
    cb_.Close();
    const size_t per_continent = other_bytes / 5;
    for (const char* continent : kContinents) {
      cb_.Open(continent);
      const size_t cstart = cb_.bytes();
      while (cb_.bytes() - cstart < per_continent) GenerateItem(index++);
      cb_.Close();
    }
    cb_.Close();
  }

  void GenerateCategories(size_t bytes) {
    cb_.Open("categories");
    const size_t start = cb_.bytes();
    while (cb_.bytes() - start < bytes) {
      cb_.Open("category");
      cb_.Leaf("name", Sentence(rng_, 2));
      cb_.Open("description");
      cb_.Leaf("text", Sentence(rng_, 10 + rng_->NextBounded(15)));
      cb_.Close();
      cb_.Close();
    }
    cb_.Close();
  }

  void GeneratePeople(size_t bytes) {
    cb_.Open("people");
    const size_t start = cb_.bytes();
    int index = 0;
    while (cb_.bytes() - start < bytes) {
      cb_.Open("person");
      cb_.Leaf("name", PersonName(rng_));
      cb_.Leaf("emailaddress",
               StringFormat("mailto:p%d.s%d@example.org", index, site_index_));
      if (rng_->NextBool(0.5)) {
        cb_.Leaf("phone", StringFormat("+%d (%d) %d",
                                       static_cast<int>(rng_->NextBounded(90)) + 1,
                                       static_cast<int>(rng_->NextBounded(900)) + 100,
                                       static_cast<int>(rng_->NextBounded(9000000)) + 1000000));
      }
      if (rng_->NextBool(0.8)) {
        cb_.Open("address");
        cb_.Leaf("street", StringFormat("%d %s St",
                                        static_cast<int>(rng_->NextBounded(99)) + 1,
                                        kWords[rng_->NextBounded(kWordCount)]));
        cb_.Leaf("city", kCities[rng_->NextBounded(6)]);
        cb_.Leaf("country", rng_->NextBool(options_.us_fraction)
                                ? "US"
                                : kCountries[rng_->NextBounded(6)]);
        cb_.Leaf("province", kWords[rng_->NextBounded(kWordCount)]);
        cb_.LeafNumber("zipcode", static_cast<long long>(rng_->NextBounded(90000)) + 10000);
        cb_.Close();
      }
      if (rng_->NextBool(options_.creditcard_fraction)) {
        cb_.Leaf("creditcard",
                 StringFormat("%04d %04d %04d %04d",
                              static_cast<int>(rng_->NextBounded(10000)),
                              static_cast<int>(rng_->NextBounded(10000)),
                              static_cast<int>(rng_->NextBounded(10000)),
                              static_cast<int>(rng_->NextBounded(10000))));
      }
      cb_.Open("profile");
      const size_t interests = rng_->NextBounded(4);
      for (size_t i = 0; i < interests; ++i) {
        cb_.Leaf("interest", kWords[rng_->NextBounded(kWordCount)]);
      }
      if (rng_->NextBool(0.6)) {
        cb_.Leaf("education", rng_->NextBool() ? "Graduate School" : "College");
      }
      cb_.Leaf("business", rng_->NextBool() ? "Yes" : "No");
      cb_.LeafNumber("age", 18 + static_cast<long long>(rng_->NextBounded(42)));
      cb_.Close();  // profile
      cb_.Close();  // person
      ++index;
    }
    cb_.Close();
  }

  void GenerateOpenAuctions(size_t bytes) {
    cb_.Open("open_auctions");
    const size_t start = cb_.bytes();
    int index = 0;
    while (cb_.bytes() - start < bytes) {
      cb_.Open("open_auction");
      cb_.LeafNumber("initial", static_cast<long long>(rng_->NextBounded(200)) + 1);
      const size_t bidders = rng_->NextBounded(4);
      for (size_t i = 0; i < bidders; ++i) {
        cb_.Open("bidder");
        cb_.Leaf("date", Date(rng_));
        cb_.Leaf("time", StringFormat("%02d:%02d:%02d",
                                      static_cast<int>(rng_->NextBounded(24)),
                                      static_cast<int>(rng_->NextBounded(60)),
                                      static_cast<int>(rng_->NextBounded(60))));
        cb_.Leaf("personref", StringFormat("person%d", index));
        cb_.LeafNumber("increase", static_cast<long long>(rng_->NextBounded(20)) + 1);
        cb_.Close();
      }
      cb_.LeafNumber("current", static_cast<long long>(rng_->NextBounded(500)) + 1);
      cb_.Leaf("itemref", StringFormat("item%d", index));
      cb_.Leaf("seller", StringFormat("person%d",
                                      static_cast<int>(rng_->NextBounded(1000))));
      if (rng_->NextBool(options_.annotation_fraction)) {
        cb_.Open("annotation");
        cb_.Leaf("author", PersonName(rng_));
        cb_.Open("description");
        cb_.Leaf("text", Sentence(rng_, 10 + rng_->NextBounded(16)));
        cb_.Close();
        cb_.Leaf("happiness",
                 StringFormat("%d", static_cast<int>(rng_->NextBounded(10)) + 1));
        cb_.Close();
      }
      cb_.LeafNumber("quantity", 1 + static_cast<long long>(rng_->NextBounded(4)));
      cb_.Leaf("type", rng_->NextBool() ? "Regular" : "Featured");
      cb_.Open("interval");
      cb_.Leaf("start", Date(rng_));
      cb_.Leaf("end", Date(rng_));
      cb_.Close();
      cb_.Close();  // open_auction
      ++index;
    }
    cb_.Close();
  }

  void GenerateClosedAuctions(size_t bytes) {
    cb_.Open("closed_auctions");
    const size_t start = cb_.bytes();
    int index = 0;
    while (cb_.bytes() - start < bytes) {
      cb_.Open("closed_auction");
      cb_.Leaf("seller", StringFormat("person%d",
                                      static_cast<int>(rng_->NextBounded(1000))));
      cb_.Leaf("buyer", StringFormat("person%d",
                                     static_cast<int>(rng_->NextBounded(1000))));
      cb_.Leaf("itemref", StringFormat("item%d", index));
      cb_.LeafNumber("price", static_cast<long long>(rng_->NextBounded(1000)) + 1);
      cb_.Leaf("date", Date(rng_));
      cb_.LeafNumber("quantity", 1 + static_cast<long long>(rng_->NextBounded(4)));
      cb_.Leaf("type", rng_->NextBool() ? "Regular" : "Featured");
      if (rng_->NextBool(options_.annotation_fraction)) {
        cb_.Open("annotation");
        cb_.Leaf("author", PersonName(rng_));
        cb_.Open("description");
        cb_.Leaf("text", Sentence(rng_, 8 + rng_->NextBounded(12)));
        cb_.Close();
        cb_.Leaf("happiness",
                 StringFormat("%d", static_cast<int>(rng_->NextBounded(10)) + 1));
        cb_.Close();
      }
      cb_.Close();
      ++index;
    }
    cb_.Close();
  }

  CountingBuilder cb_;
  Rng* rng_;
  const XMarkOptions& options_;
  int site_index_;
};

}  // namespace

SiteBudget SiteBudget::Uniform(size_t total_bytes) {
  SiteBudget b;
  b.regions_namerica = total_bytes / 10;
  b.regions_other = total_bytes * 15 / 100;
  b.categories = total_bytes * 5 / 100;
  b.people = total_bytes * 25 / 100;
  b.open_auctions = total_bytes * 30 / 100;
  b.closed_auctions = total_bytes * 15 / 100;
  return b;
}

Tree GenerateSitesTree(const std::vector<SiteBudget>& budgets,
                       const XMarkOptions& options) {
  PAXML_CHECK(!budgets.empty());
  TreeBuilder builder(options.symbols);
  builder.Open("sites");
  Rng rng(options.seed);
  for (size_t i = 0; i < budgets.size(); ++i) {
    // Each site gets an independent stream: site content is stable under
    // changes to the other sites' budgets.
    Rng site_rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    SiteGenerator gen(&builder, &site_rng, options, static_cast<int>(i));
    gen.Generate(budgets[i]);
  }
  builder.Close();
  return std::move(builder).Finish();
}

Tree GenerateUniformSitesTree(size_t total_bytes, size_t site_count,
                              const XMarkOptions& options) {
  PAXML_CHECK_GT(site_count, 0u);
  std::vector<SiteBudget> budgets(site_count,
                                  SiteBudget::Uniform(total_bytes / site_count));
  return GenerateSitesTree(budgets, options);
}

}  // namespace paxml
