#include "runtime/socket_server.h"

#include <sys/socket.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "runtime/frame.h"
#include "runtime/site_driver.h"
#include "runtime/wire.h"
#include "runtime/worker_pool.h"
#include "serving/fingerprint.h"
#include "serving/fragment_memo.h"
#include "sim/cluster.h"

namespace paxml {

namespace {

/// The peer's staging plane: handlers send through it as through any
/// transport, but a sealed frame whose destination is not the hosted site
/// is captured (translated back to the client's run id) for the wire
/// instead of a local mailbox. Reply capture is staged *per client run* so
/// that concurrent rounds of independent runs (peer_concurrent_rounds > 1)
/// each take exactly their own frames, in their own seal order — per-run
/// order is all the client's reassembler checks. The base Transport is
/// thread-safe; the run map and staging strings here get their own lock.
class PeerPlane : public Transport {
 public:
  PeerPlane(SiteId home, TransportOptions options)
      : Transport(std::move(options)), home_(home) {}

  void Register(RunId local, RunId client) {
    std::lock_guard<std::mutex> lock(mu_);
    client_run_[local] = client;
  }
  void Forget(RunId local) {
    std::lock_guard<std::mutex> lock(mu_);
    client_run_.erase(local);
  }

  /// The kFrame records sealed for `client_run` since the last take, in
  /// seal order.
  std::string TakePending(RunId client_run) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(client_run);
    if (it == pending_.end()) return {};
    std::string bytes = std::move(it->second);
    pending_.erase(it);
    return bytes;
  }

  Status RunRound(RunId, const std::vector<SiteId>&, const DeliverFn&,
                  std::vector<double>*) override {
    return Status::Internal("the peer plane has no delivery rounds");
  }
  const char* name() const override { return "peer"; }

  using Transport::InjectFrame;  // the server feeds client frames in

 protected:
  bool TakeSealedFrameLocked(Frame& frame, FrameWireInfo* wire) override {
    if (frame.to == home_) return false;
    std::lock_guard<std::mutex> lock(mu_);  // after the base lock, only here
    auto it = client_run_.find(frame.run);
    PAXML_CHECK(it != client_run_.end());
    frame.run = it->second;
    // The plane options carry the *negotiated* threshold (0 when the
    // connection declined codecs), so replies gate exactly as the client's
    // outbound frames do — the two directions price identically.
    *wire = EncodeFrameForWire(frame, options().compress_min_bytes,
                               &pending_[frame.run]);
    return true;
  }

 private:
  SiteId home_;
  std::mutex mu_;
  std::map<RunId, RunId> client_run_;   ///< local run -> client run
  std::map<RunId, std::string> pending_;  ///< client run -> staged records
};

/// Everything one announced run owns at the peer.
struct RunState {
  RunId local_run = kNullRun;
  RunStats stats;  ///< advisory; the client's accounting is authoritative
  std::unique_ptr<SiteProgram> program;
  std::optional<SiteDriver> driver;
  Status broken;  ///< spec/placement problems surface at the next round
  /// True while this run's round executes on the connection's round pool.
  /// A well-behaved client never overlaps a run's rounds (its barrier is
  /// per-run) or closes a run mid-round; a violation is answered with a
  /// clean connection error, never a data race.
  std::atomic<bool> round_inflight{false};
};

}  // namespace

SiteServer::SiteServer(const Cluster* cluster, SiteId site,
                       SiteProgramFactory factory, size_t max_site_threads,
                       std::shared_ptr<FragmentMemo> memo, bool allow_compress,
                       size_t max_concurrent_rounds)
    : cluster_(cluster),
      site_(site),
      factory_(std::move(factory)),
      max_site_threads_(max_site_threads),
      memo_(std::move(memo)),
      allow_compress_(allow_compress),
      max_concurrent_rounds_(max_concurrent_rounds) {
  PAXML_CHECK(site >= 0 &&
              static_cast<size_t>(site) < cluster->site_count());
}

SiteServer::~SiteServer() { CloseFd(listen_fd_); }

Result<int> SiteServer::Listen(const std::string& host, int port) {
  PAXML_CHECK(listen_fd_ < 0);
  PAXML_ASSIGN_OR_RETURN(listen_fd_, ListenOn(host, port));
  return BoundPort(listen_fd_);
}

void SiteServer::Shutdown() {
  shutdown_.store(true);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

Status SiteServer::Serve() {
  PAXML_CHECK(listen_fd_ >= 0);  // Listen first
  while (!shutdown_.load()) {
    Result<int> fd = AcceptOn(listen_fd_);
    if (!fd.ok()) {
      if (shutdown_.load()) return Status::OK();
      return fd.status();
    }
    // A connection failure tears down that client's runs only; the server
    // keeps accepting — but the operator gets to see why the client was
    // dropped (the client only sees "peer closed").
    Status status = ServeConnection(*fd);
    if (!status.ok()) {
      std::fprintf(stderr, "paxml_site[%d]: client dropped: %s\n", site_,
                   status.ToString().c_str());
    }
    CloseFd(*fd);
  }
  return Status::OK();
}

Status SiteServer::ServeOne() {
  PAXML_CHECK(listen_fd_ >= 0);
  PAXML_ASSIGN_OR_RETURN(int fd, AcceptOn(listen_fd_));
  Status status = ServeConnection(fd);
  CloseFd(fd);
  return status;
}

Status SiteServer::ServeConnection(int fd) {
  RecordBuffer buf;
  FrameReassembler reassembler;
  std::unique_ptr<PeerPlane> plane;  // built once the Hello arrives
  // Keyed by the *client's* run id. shared_ptr so a round executing on the
  // round pool keeps its state alive independent of the map.
  std::map<RunId, std::shared_ptr<RunState>> runs;
  bool hello_done = false;
  // Intra-site parallel delivery, sized by the client's Hello (capped by
  // the operator): one pool per connection, shared across its runs. Lanes
  // fan out and join inside each DeliverTimed.
  size_t site_threads = 1;
  std::shared_ptr<WorkerPool> site_pool;
  // Whether this connection negotiated the lz4 codec at Hello. Gates both
  // directions: kFrameZ from the client is only legal when true, and the
  // PeerPlane's replies only compress when true (via its mirrored options).
  bool conn_compress = false;
  // Every write to the connection — a round's reply batch, an error, the
  // hello ack — happens under write_mu, so concurrent rounds' records
  // never interleave on the wire.
  std::mutex write_mu;
  // A round task's write failure, surfaced by the read loop (the task has
  // no other way to tear the connection down).
  std::mutex conn_status_mu;
  Status conn_status;
  // Cross-run round fan-out (wire protocol v6), sized by the client's
  // Hello capped by the operator. Declared AFTER everything a round task
  // borrows: its destructor drains and joins in-flight tasks first, so no
  // task outlives the plane, the run map or the mutexes above.
  std::shared_ptr<WorkerPool> rounds_pool;

  auto send_error = [&](RunId run, const std::string& message) -> Status {
    ErrorRecord error;
    error.run = run;
    error.message = message;
    std::string bytes;
    AppendControlRecord(RecordType::kError, error, &bytes);
    std::lock_guard<std::mutex> lock(write_mu);
    return WriteAll(fd, bytes);
  };

  // One run's round, from drain to the locked reply write. Runs inline on
  // the connection thread (the historical path) or as a round-pool task;
  // either way the reply frames precede the kRoundDone in one write — the
  // ordering the client's barrier depends on.
  auto run_round = [&](const std::shared_ptr<RunState>& state,
                       RunId client_run) -> Status {
    RoundDoneRecord done;
    done.run = client_run;
    done.site = site_;
    std::vector<Envelope> mail = plane->Drain(state->local_run, site_);
    done.status =
        state->driver->DeliverTimed(site_, std::move(mail), &done.seconds);
    const MemoSavings saved = state->driver->TakeMemoSavings();
    done.memo_fragment_hits = saved.fragment_hits;
    done.memo_saved_bytes = saved.saved_bytes;
    done.memo_saved_seconds = saved.saved_seconds;
    const PoolStats pool = state->driver->TakePoolStats();
    done.pool_tasks = pool.tasks;
    done.pool_busy_peak = pool.busy_peak;
    done.pool_queue_peak = pool.queue_peak;
    // The peer's round boundary: stage -> frames, captured for the wire in
    // seal order.
    plane->FlushRun(state->local_run);
    // Reply frames first, the barrier release last — their order on this
    // connection is the round's correctness argument.
    std::string bytes = plane->TakePending(client_run);
    AppendControlRecord(RecordType::kRoundDone, done, &bytes);
    // Clear the in-flight mark BEFORE the write: the client may send this
    // run's next round-start the instant it sees the kRoundDone, and that
    // start must not race a stale mark. Nothing of this run runs between
    // here and the write — the barrier holds the client until the write
    // lands.
    state->round_inflight.store(false);
    std::lock_guard<std::mutex> lock(write_mu);
    return WriteAll(fd, bytes);
  };

  auto handle = [&](WireRecord record) -> Status {
    ByteReader reader(record.payload);
    if (!hello_done) {
      if (record.type != RecordType::kHello) {
        return Status::NetworkError("expected hello");
      }
      PAXML_ASSIGN_OR_RETURN(HelloRecord hello, HelloRecord::Decode(&reader));
      // v4/v5 clients are still welcome — the newer knobs (codecs in v5,
      // pool saturation in v6) simply default off for them.
      if (hello.version < 4 || hello.version > kWireProtocolVersion) {
        (void)send_error(kNullRun, "wire protocol version mismatch");
        return Status::NetworkError("wire protocol version mismatch");
      }
      if (hello.site != site_) {
        (void)send_error(kNullRun, "this peer serves site " +
                                       std::to_string(site_));
        return Status::NetworkError("client dialed the wrong site");
      }
      // Mirror the client's plane knobs so both sides seal identical
      // frames (batching is implied — the frame is the wire unit).
      TransportOptions options;
      options.batching = true;
      options.answer_chunk_ids =
          static_cast<size_t>(hello.answer_chunk_ids);
      options.data_chunk_bytes = hello.data_chunk_bytes;
      options.max_frame_bytes = hello.max_frame_bytes;
      // Wire input: bound a hostile thread count before sizing a pool.
      site_threads = static_cast<size_t>(
          std::min<uint64_t>(std::max<uint64_t>(hello.site_threads, 1), 64));
      if (max_site_threads_ > 0) {
        site_threads = std::min(site_threads, max_site_threads_);
      }
      options.site_threads = site_threads;
      if (site_threads > 1) {
        site_pool = std::make_shared<WorkerPool>(site_threads);
      }
      // Intra-fragment splitting: mirror the client's threshold so this
      // site's dominant lanes split exactly like the client's local sites'
      // (a percentage needs no bounding — values > 100 just never fire).
      options.split_threshold_pct = hello.split_threshold_pct;
      // Cross-run fan-out, bounded like the thread count and capped by the
      // operator. One round at a time (the historical loop) needs no pool.
      size_t rounds = static_cast<size_t>(std::min<uint64_t>(
          std::max<uint64_t>(hello.peer_concurrent_rounds, 1), 16));
      if (max_concurrent_rounds_ > 0) {
        rounds = std::min(rounds, max_concurrent_rounds_);
      }
      if (rounds > 1) rounds_pool = std::make_shared<WorkerPool>(rounds);
      // Codec negotiation: accept the client's lz4 offer only when the
      // operator allowed it. The client's threshold is mirrored into the
      // plane options only on acceptance, so a declined offer leaves the
      // replies raw (threshold 0 disables the gate entirely).
      conn_compress = allow_compress_ && !legacy_hello_ &&
                      hello.version >= 5 &&
                      (hello.codecs & kCodecLz4) != 0 &&
                      hello.compress_min_bytes > 0;
      options.compress_min_bytes =
          conn_compress ? hello.compress_min_bytes : 0;
      plane = std::make_unique<PeerPlane>(site_, std::move(options));
      HelloAckRecord ack;
      ack.site = site_;
      if (!legacy_hello_) {
        ack.version = kWireProtocolVersion;
        ack.codecs = conn_compress ? kCodecLz4 : 0;
      }
      std::string bytes;
      AppendControlRecord(RecordType::kHelloAck, ack, &bytes);
      hello_done = true;
      std::lock_guard<std::mutex> lock(write_mu);
      return WriteAll(fd, bytes);
    }

    switch (record.type) {
      case RecordType::kOpenRun: {
        PAXML_ASSIGN_OR_RETURN(OpenRunRecord open,
                               OpenRunRecord::Decode(&reader));
        if (runs.count(open.run) != 0) {
          return Status::NetworkError("open-run for an already open run");
        }
        auto& slot = runs[open.run];
        slot = std::make_shared<RunState>();
        RunState& state = *slot;
        state.stats.per_site.resize(cluster_->site_count());
        state.local_run = plane->OpenRun(cluster_, &state.stats);
        plane->Register(state.local_run, open.run);

        // Workload fingerprint first: a peer serving the other data model
        // reports the real mismatch immediately (and by name), instead of
        // a shape complaint or a compile failure deep in the program
        // factory.
        if (open.spec.family != cluster_->data().family()) {
          state.broken = Status::InvalidArgument(
              "workload mismatch: run is \"" + open.spec.family +
              "\" but this peer serves \"" +
              std::string(cluster_->data().family()) + "\" data");
          return send_error(open.run, state.broken.message());
        }

        // Placement fingerprint: a peer serving a different cluster must
        // fail loudly at the first delivery, not answer from divergent
        // data.
        if (open.site_count != cluster_->site_count() ||
            open.placement.size() != cluster_->fragment_count()) {
          state.broken = Status::InvalidArgument(
              "cluster shape mismatch between client and peer");
        } else {
          for (size_t f = 0; f < open.placement.size(); ++f) {
            if (open.placement[f] !=
                cluster_->site_of(static_cast<FragmentId>(f))) {
              state.broken =
                  Status::InvalidArgument("placement mismatch at fragment " +
                                          std::to_string(f));
              break;
            }
          }
        }
        if (state.broken.ok() && open.spec.algorithm.empty()) {
          state.broken = Status::InvalidArgument(
              "run was opened without a spec; remote delivery is impossible");
        }
        if (state.broken.ok()) {
          Result<std::unique_ptr<SiteProgram>> program = factory_(open.spec);
          if (program.ok()) {
            state.program = std::move(*program);
            // The memo session mirrors the one an in-process Coordinator
            // would open: same fingerprint, this peer's view of the epoch
            // (the clusters are bit-identical by the placement check).
            std::shared_ptr<MemoSession> session;
            if (memo_ != nullptr) {
              session = std::make_shared<MemoSession>(
                  memo_, RunFingerprint(open.spec), cluster_->data_epoch());
            }
            state.driver.emplace(cluster_, plane.get(), state.local_run,
                                 state.program->handlers(), site_pool,
                                 site_threads, std::move(session));
          } else {
            state.broken = program.status();
          }
        }
        return Status::OK();
      }
      case RecordType::kCloseRun: {
        PAXML_ASSIGN_OR_RETURN(CloseRunRecord close,
                               CloseRunRecord::Decode(&reader));
        auto it = runs.find(close.run);
        if (it == runs.end()) return Status::OK();  // already gone
        if (it->second->round_inflight.load()) {
          // A well-behaved client never closes mid-round (its barrier
          // completed first); drop the violator before the race happens.
          return Status::NetworkError("close-run during an in-flight round");
        }
        plane->Forget(it->second->local_run);
        plane->CloseRun(it->second->local_run);
        reassembler.CloseRun(close.run);
        runs.erase(it);
        return Status::OK();
      }
      case RecordType::kFrame:
      case RecordType::kFrameZ: {
        PAXML_ASSIGN_OR_RETURN(ReceivedFrame received,
                               DecodeFrameRecord(record, conn_compress));
        if (received.frame.to != site_) {
          return Status::NetworkError("frame for a site this peer does not serve");
        }
        PAXML_RETURN_NOT_OK(reassembler.Accept(received.frame));
        auto it = runs.find(received.frame.run);
        if (it == runs.end()) return Status::OK();  // races a close: drop
        received.frame.run = it->second->local_run;
        return plane->InjectFrame(std::move(received.frame), &received.wire);
      }
      case RecordType::kRoundStart: {
        PAXML_ASSIGN_OR_RETURN(RoundStartRecord start,
                               RoundStartRecord::Decode(&reader));
        auto it = runs.find(start.run);
        Status refused;
        if (start.site != site_) {
          refused = Status::InvalidArgument(
              "round-start for a site this peer does not serve");
        } else if (it == runs.end()) {
          refused = Status::NetworkError("round-start for an unknown run");
        } else if (!it->second->broken.ok()) {
          refused = it->second->broken;
        }
        if (!refused.ok()) {
          RoundDoneRecord done;
          done.run = start.run;
          done.site = site_;
          done.status = std::move(refused);
          std::string bytes;
          AppendControlRecord(RecordType::kRoundDone, done, &bytes);
          std::lock_guard<std::mutex> lock(write_mu);
          return WriteAll(fd, bytes);
        }
        std::shared_ptr<RunState> state = it->second;
        if (state->round_inflight.exchange(true)) {
          // The client's per-run barrier makes this impossible for a
          // well-behaved client (RunRound checks it); refuse the violator
          // before two rounds of one run can race on its driver.
          return Status::NetworkError(
              "round-start for a run whose round is in flight");
        }
        if (rounds_pool != nullptr) {
          // Independent runs' rounds overlap on the site pool; this run's
          // reply batch goes out whenever its task finishes (per-run frame
          // order is preserved — that is all the client checks).
          rounds_pool->Post([run_round, state, client_run = start.run,
                             &conn_status, &conn_status_mu] {
            Status status = run_round(state, client_run);
            if (!status.ok()) {
              std::lock_guard<std::mutex> lock(conn_status_mu);
              if (conn_status.ok()) conn_status = std::move(status);
            }
          });
          return Status::OK();
        }
        return run_round(state, start.run);
      }
      default:
        return Status::NetworkError(std::string("unexpected record: ") +
                                    RecordTypeName(record.type));
    }
  };

  char chunk[1 << 16];
  while (true) {
    // A round task that failed to write its reply poisons the connection;
    // the read loop is the only place that can report it and return (the
    // rounds pool's destructor then drains any remaining tasks).
    {
      std::lock_guard<std::mutex> lock(conn_status_mu);
      if (!conn_status.ok()) return conn_status;
    }
    Result<size_t> n = ReadSome(fd, chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (*n == 0) {
      // Orderly teardown: the client went away; drop its runs.
      return buf.pending_bytes() == 0
                 ? Status::OK()
                 : Status::NetworkError("client closed mid-record");
    }
    buf.Append({chunk, *n});
    while (true) {
      Result<std::optional<WireRecord>> record = buf.Next();
      if (!record.ok()) return record.status();
      if (!record->has_value()) break;
      PAXML_RETURN_NOT_OK(handle(std::move(**record)));
    }
  }
}

}  // namespace paxml
