#include "runtime/socket_transport.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "runtime/frame.h"
#include "sim/cluster.h"

namespace paxml {

namespace {

void SetRecvTimeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Reads records until one of `type` arrives (handshake only; data records
/// are not expected before the ack).
Result<WireRecord> ReadRecordOfType(int fd, RecordBuffer* buf,
                                    RecordType type) {
  char chunk[4096];
  while (true) {
    PAXML_ASSIGN_OR_RETURN(auto maybe, buf->Next());
    if (maybe.has_value()) {
      if (maybe->type == RecordType::kError) {
        ByteReader reader(maybe->payload);
        PAXML_ASSIGN_OR_RETURN(ErrorRecord err, ErrorRecord::Decode(&reader));
        return Status::NetworkError("peer rejected handshake: " + err.message);
      }
      if (maybe->type != type) {
        return Status::NetworkError("unexpected record during handshake");
      }
      return std::move(*maybe);
    }
    PAXML_ASSIGN_OR_RETURN(size_t n, ReadSome(fd, chunk, sizeof(chunk)));
    if (n == 0) return Status::NetworkError("peer closed during handshake");
    buf->Append({chunk, n});
  }
}

}  // namespace

SocketTransport::SocketTransport(TransportOptions options)
    : Transport(std::move(options)) {
  // The frame is the wire unit: an unbatched socket plane would have no
  // records to write.
  PAXML_CHECK(this->options().batching);
  PAXML_CHECK(!this->options().remote_endpoints.empty());

  for (const auto& [site, endpoint] : this->options().remote_endpoints) {
    auto conn = std::make_unique<Connection>();
    conn->site = site;
    conn->endpoint = endpoint;
    Result<int> fd = DialEndpoint(endpoint);
    Status status = fd.status();
    if (status.ok()) {
      conn->fd = *fd;
      // Bound the handshake so a wedged peer cannot hang construction;
      // steady-state reads block indefinitely (rounds have no deadline).
      SetRecvTimeout(conn->fd, 30);
      RecordBuffer buf;
      HelloRecord hello;
      hello.site = site;
      hello.answer_chunk_ids = this->options().answer_chunk_ids;
      hello.data_chunk_bytes = this->options().data_chunk_bytes;
      hello.max_frame_bytes = this->options().max_frame_bytes;
      hello.site_threads = this->options().site_threads;
      // Offer the codec only when the client would actually use it.
      const bool offer_lz4 = this->options().compress_min_bytes > 0;
      hello.codecs = offer_lz4 ? kCodecLz4 : 0;
      hello.compress_min_bytes = this->options().compress_min_bytes;
      // v6 pool knobs: the peer splits dominant lanes with the same
      // threshold as the local sites and may fan this connection's runs'
      // rounds out (capped by its operator). A pre-v6 peer ignores both.
      hello.split_threshold_pct = this->options().split_threshold_pct;
      hello.peer_concurrent_rounds = this->options().peer_concurrent_rounds;
      std::string bytes;
      AppendControlRecord(RecordType::kHello, hello, &bytes);
      status = WriteAll(conn->fd, bytes);
      if (status.ok()) {
        Result<WireRecord> ack =
            ReadRecordOfType(conn->fd, &buf, RecordType::kHelloAck);
        if (ack.ok()) {
          ByteReader reader(ack->payload);
          Result<HelloAckRecord> decoded = HelloAckRecord::Decode(&reader);
          if (!decoded.ok()) {
            status = decoded.status();
          } else if (decoded->site != site) {
            status = Status::NetworkError(
                "peer at " + endpoint + " serves a different site");
          } else {
            // Graceful fallback: a pre-v5 peer (or one that declined the
            // codec) simply runs uncompressed — no error, no retry.
            conn->compress = offer_lz4 && decoded->version >= 5 &&
                             (decoded->codecs & kCodecLz4) != 0;
          }
        } else {
          status = ack.status();
        }
      }
      if (status.ok()) {
        SetRecvTimeout(conn->fd, 0);
        conn->alive = true;
      } else {
        CloseFd(conn->fd);
        conn->fd = -1;
      }
    }
    conn->status = status;
    if (conn->alive) {
      conn->receiver =
          std::thread([this, c = conn.get()] { ReceiverLoop(c); });
    }
    by_site_[site] = conn.get();
    connections_.push_back(std::move(conn));
  }
}

SocketTransport::~SocketTransport() {
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    for (auto& conn : connections_) {
      // EOF is the graceful teardown signal; peers drop connection state.
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& conn : connections_) {
    if (conn->receiver.joinable()) conn->receiver.join();
    CloseFd(conn->fd);
    conn->fd = -1;
  }
}

SocketTransport::Connection* SocketTransport::ConnectionFor(SiteId site) {
  auto it = by_site_.find(site);
  return it == by_site_.end() ? nullptr : it->second;
}

Status SocketTransport::EnsureConnected() const {
  std::lock_guard<std::mutex> lock(net_mu_);
  for (const auto& conn : connections_) {
    if (!conn->alive) return conn->status;
  }
  return Status::OK();
}

void SocketTransport::QueueLocked(Connection& conn, std::string bytes) {
  if (!conn.alive) return;  // the round registration surfaces the failure
  conn.outbox.append(bytes);
}

bool SocketTransport::TakeSealedFrameLocked(Frame& frame,
                                            FrameWireInfo* wire) {
  if (!remote(frame.to)) return false;
  Connection* conn = ConnectionFor(frame.to);
  // Compress only when the connection negotiated it; a fallback peer gets
  // (and the run's stats record) plain raw frames.
  const uint64_t threshold = (conn != nullptr && conn->compress)
                                 ? options().compress_min_bytes
                                 : 0;
  std::string bytes;
  *wire = EncodeFrameForWire(frame, threshold, &bytes);
  std::lock_guard<std::mutex> lock(net_mu_);
  if (conn == nullptr || !conn->alive) {
    // The frame is lost with its peer; make sure the run reports it even
    // if no later round visits the dead site.
    failed_runs_.emplace(
        frame.run, Status::NetworkError("site " + std::to_string(frame.to) +
                                        " is unreachable"));
    return true;
  }
  QueueLocked(*conn, std::move(bytes));
  return true;
}

void SocketTransport::FlushConnection(Connection& conn) {
  // io_mu before net_mu_ keeps concurrent flushers from reordering two
  // swapped-out batches on the wire (lock order: io_mu -> net_mu_; the
  // base transport lock, when held, always comes first).
  std::lock_guard<std::mutex> io_lock(conn.io_mu);
  std::string bytes;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    if (!conn.alive || conn.outbox.empty()) return;
    bytes.swap(conn.outbox);
    fd = conn.fd;
  }
  Status status = WriteAll(fd, bytes);
  if (!status.ok()) FailConnection(conn, std::move(status));
}

void SocketTransport::FlushOutboxes() {
  for (auto& conn : connections_) FlushConnection(*conn);
}

void SocketTransport::FailConnection(Connection& conn, Status status) {
  std::lock_guard<std::mutex> lock(net_mu_);
  if (!conn.alive) return;
  conn.alive = false;
  conn.status = std::move(status);
  conn.outbox.clear();
  // Wake the receiver and any blocked writer; the fd itself closes in the
  // destructor, after the receiver thread joined.
  if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
  Status site_error = Status::NetworkError(
      "connection to site " + std::to_string(conn.site) + " (" +
      conn.endpoint + ") failed: " + conn.status.message());
  for (auto& [run, wait] : waits_) {
    if (wait.awaiting.erase(conn.site) > 0 && wait.status.ok()) {
      wait.status = site_error;
    }
  }
  net_cv_.notify_all();
}

void SocketTransport::FailRun(RunId run, Status status) {
  std::lock_guard<std::mutex> lock(net_mu_);
  failed_runs_.emplace(run, status);
  auto it = waits_.find(run);
  if (it != waits_.end() && it->second.status.ok()) {
    it->second.status = std::move(status);
    net_cv_.notify_all();
  }
}

void SocketTransport::RunOpened(RunId run, const Cluster* cluster,
                                const RunSpec* spec) {
  // Config validation happens per run (the transport sees its cluster here
  // first): a bad deployment map fails the run cleanly, never aborts.
  for (const auto& [site, endpoint] : options().remote_endpoints) {
    if (site < 0 || static_cast<size_t>(site) >= cluster->site_count()) {
      FailRun(run, Status::InvalidArgument(
                       "remote endpoint for site " + std::to_string(site) +
                       " outside the cluster"));
      return;
    }
  }
  if (remote(cluster->query_site())) {
    FailRun(run, Status::InvalidArgument(
                     "the query site must be local to the client process"));
    return;
  }

  OpenRunRecord record;
  record.run = run;
  if (spec != nullptr) record.spec = *spec;
  record.site_count = static_cast<uint32_t>(cluster->site_count());
  record.placement.reserve(cluster->fragment_count());
  for (size_t f = 0; f < cluster->fragment_count(); ++f) {
    record.placement.push_back(cluster->site_of(static_cast<FragmentId>(f)));
  }
  std::string bytes;
  AppendControlRecord(RecordType::kOpenRun, record, &bytes);
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    for (auto& conn : connections_) QueueLocked(*conn, bytes);
  }
  FlushOutboxes();
}

void SocketTransport::RunClosing(RunId run) {
  CloseRunRecord record;
  record.run = run;
  std::string bytes;
  AppendControlRecord(RecordType::kCloseRun, record, &bytes);
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    for (auto& conn : connections_) {
      QueueLocked(*conn, bytes);
      conn->reassembler.CloseRun(run);
    }
    failed_runs_.erase(run);
    waits_.erase(run);  // no round can be in flight at close
  }
  FlushOutboxes();
}

Status SocketTransport::RunRound(RunId run, const std::vector<SiteId>& sites,
                                 const DeliverFn& deliver,
                                 std::vector<double>* durations) {
  durations->assign(sites.size(), 0);
  if (sites.empty()) return Status::OK();

  std::vector<size_t> local_idx;
  std::vector<size_t> remote_idx;
  for (size_t i = 0; i < sites.size(); ++i) {
    (remote(sites[i]) ? remote_idx : local_idx).push_back(i);
  }

  // The round boundary: seals every staged edge of the run — local frames
  // into mailboxes, remote ones into their connections' outboxes — and
  // snapshots the visited sites' local mail.
  std::vector<std::vector<Envelope>> inboxes = SnapshotInboxes(run, sites);

  // Register the barrier before any kRoundStart goes out, so a fast peer's
  // kRoundDone always finds it.
  {
    std::lock_guard<std::mutex> lock(net_mu_);
    PAXML_CHECK(waits_.count(run) == 0);  // one round per run at a time
    RoundWait& wait = waits_[run];
    auto failed = failed_runs_.find(run);
    if (failed != failed_runs_.end()) wait.status = failed->second;
    for (size_t i : remote_idx) {
      Connection* conn = ConnectionFor(sites[i]);
      PAXML_CHECK(conn != nullptr);
      if (!conn->alive) {
        if (wait.status.ok()) {
          wait.status = Status::NetworkError(
              "site " + std::to_string(sites[i]) + " (" + conn->endpoint +
              ") is unreachable: " + conn->status.message());
        }
        continue;
      }
      wait.awaiting.insert(sites[i]);
      RoundStartRecord start;
      start.run = run;
      start.site = sites[i];
      std::string bytes;
      AppendControlRecord(RecordType::kRoundStart, start, &bytes);
      QueueLocked(*conn, std::move(bytes));
    }
  }
  // Everything queued — the run's frames, then the round starts — goes on
  // the wire in order; peers work while we deliver the local sites.
  FlushOutboxes();

  for (size_t i : local_idx) {
    (*durations)[i] = TimedDeliver(deliver, sites[i], std::move(inboxes[i]));
  }

  Status status;
  {
    std::unique_lock<std::mutex> lock(net_mu_);
    RoundWait& wait = waits_[run];
    // An error ends the wait immediately (no hang on a dead peer); late
    // kRoundDones for this round find no entry and are ignored.
    net_cv_.wait(lock, [&] {
      return wait.awaiting.empty() || !wait.status.ok();
    });
    status = wait.status;
    for (size_t i : remote_idx) {
      auto it = wait.seconds.find(sites[i]);
      if (it != wait.seconds.end()) (*durations)[i] = it->second;
    }
    waits_.erase(run);
  }
  return status;
}

void SocketTransport::ReceiverLoop(Connection* conn) {
  RecordBuffer buf;
  char chunk[1 << 16];
  while (true) {
    Result<size_t> n = ReadSome(conn->fd, chunk, sizeof(chunk));
    if (!n.ok() || *n == 0) {
      FailConnection(*conn, n.ok() ? Status::NetworkError("peer closed")
                                   : n.status());
      return;
    }
    buf.Append({chunk, *n});
    while (true) {
      Result<std::optional<WireRecord>> record = buf.Next();
      if (!record.ok()) {
        FailConnection(*conn, record.status());
        return;
      }
      if (!record->has_value()) break;
      Status status = HandleRecord(*conn, std::move(**record));
      if (!status.ok()) {
        FailConnection(*conn, std::move(status));
        return;
      }
    }
  }
}

Status SocketTransport::HandleRecord(Connection& conn, WireRecord record) {
  ByteReader reader(record.payload);
  switch (record.type) {
    case RecordType::kFrame:
    case RecordType::kFrameZ: {
      PAXML_ASSIGN_OR_RETURN(ReceivedFrame received,
                             DecodeFrameRecord(record, conn.compress));
      if (received.frame.from != conn.site) {
        return Status::NetworkError("frame from a site the peer does not serve");
      }
      {
        std::lock_guard<std::mutex> lock(net_mu_);
        PAXML_RETURN_NOT_OK(conn.reassembler.Accept(received.frame));
      }
      // Injection accounts the frame (the codec reproduces the sender's
      // logical deltas exactly; the record's own sizes feed the wire
      // split) and mailboxes it; frames for since-closed runs are dropped
      // inside.
      return InjectFrame(std::move(received.frame), &received.wire);
    }
    case RecordType::kRoundDone: {
      PAXML_ASSIGN_OR_RETURN(RoundDoneRecord done,
                             RoundDoneRecord::Decode(&reader));
      // Merge the peer's memo savings before taking net_mu_ (the base
      // class's lock never nests inside it), and before the barrier
      // releases — the accounting happens-before the round's completion.
      if (done.memo_fragment_hits > 0) {
        AccountMemoSavings(done.run,
                           MemoSavings{done.memo_fragment_hits,
                                       done.memo_saved_bytes,
                                       done.memo_saved_seconds});
      }
      // Likewise the peer's pool saturation (advisory, like memo_*).
      if (done.pool_tasks > 0) {
        AccountPoolStats(done.run, PoolStats{done.pool_tasks,
                                             done.pool_busy_peak,
                                             done.pool_queue_peak});
      }
      std::lock_guard<std::mutex> lock(net_mu_);
      auto it = waits_.find(done.run);
      if (it == waits_.end()) return Status::OK();  // stale: round already over
      RoundWait& wait = it->second;
      if (wait.awaiting.erase(done.site) > 0) {
        wait.seconds[done.site] = done.seconds;
        if (!done.status.ok() && wait.status.ok()) {
          wait.status = done.status;
        }
        net_cv_.notify_all();
      }
      return Status::OK();
    }
    case RecordType::kError: {
      PAXML_ASSIGN_OR_RETURN(ErrorRecord error, ErrorRecord::Decode(&reader));
      if (error.run == kNullRun) {
        return Status::NetworkError("peer error: " + error.message);
      }
      FailRun(error.run, Status::NetworkError("site " +
                                              std::to_string(conn.site) +
                                              ": " + error.message));
      return Status::OK();
    }
    default:
      return Status::NetworkError(std::string("unexpected record: ") +
                                  RecordTypeName(record.type));
  }
}

}  // namespace paxml
