#include "runtime/wire.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/lz4.h"
#include "runtime/frame.h"

namespace paxml {

namespace {

// Mirrors frame.cc: ids are signed with -1 as the null sentinel.
uint64_t EncodeId(int32_t v) { return static_cast<uint64_t>(v + 1); }

Result<int32_t> DecodeId(uint64_t v) {
  if (v > 0x7fffffff) return Status::ParseError("wire: id out of range");
  return static_cast<int32_t>(v) - 1;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void EncodeStatus(const Status& status, ByteWriter* out) {
  out->PutU8(static_cast<uint8_t>(status.code()));
  out->PutString(status.message());
}

Status DecodeStatus(ByteReader* in, Status* out) {
  PAXML_ASSIGN_OR_RETURN(uint8_t code, in->GetU8());
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::ParseError("wire: bad status code");
  }
  PAXML_ASSIGN_OR_RETURN(std::string message, in->GetString());
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

Status Errno(const char* what) {
  return Status::NetworkError(std::string(what) + ": " +
                              std::strerror(errno));
}

}  // namespace

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kHello: return "hello";
    case RecordType::kHelloAck: return "hello-ack";
    case RecordType::kOpenRun: return "open-run";
    case RecordType::kCloseRun: return "close-run";
    case RecordType::kFrame: return "frame";
    case RecordType::kRoundStart: return "round-start";
    case RecordType::kRoundDone: return "round-done";
    case RecordType::kError: return "error";
    case RecordType::kFrameZ: return "frame-z";
  }
  return "?";
}

void AppendRecord(RecordType type, std::string_view payload,
                  std::string* out) {
  PAXML_CHECK(payload.size() + 1 <= kMaxRecordBytes);
  const uint32_t length = static_cast<uint32_t>(payload.size() + 1);
  char header[4];
  std::memcpy(header, &length, sizeof(length));  // little-endian hosts only,
  out->append(header, sizeof(header));           // as the ByteWriter already is
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

void RecordBuffer::Append(std::string_view bytes) {
  // Compact lazily so long sessions do not grow the buffer unboundedly.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 16) && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

Result<std::optional<WireRecord>> RecordBuffer::Next() {
  if (buf_.size() - pos_ < 4) return std::optional<WireRecord>();
  uint32_t length = 0;
  std::memcpy(&length, buf_.data() + pos_, sizeof(length));
  if (length == 0 || length > kMaxRecordBytes) {
    return Status::ParseError("wire: bad record length");
  }
  if (buf_.size() - pos_ - 4 < length) return std::optional<WireRecord>();
  const uint8_t type = static_cast<uint8_t>(buf_[pos_ + 4]);
  if (type < static_cast<uint8_t>(RecordType::kHello) ||
      type > static_cast<uint8_t>(RecordType::kFrameZ)) {
    return Status::ParseError("wire: unknown record type");
  }
  WireRecord record;
  record.type = static_cast<RecordType>(type);
  record.payload.assign(buf_, pos_ + 5, length - 1);
  pos_ += 4 + static_cast<size_t>(length);
  return std::optional<WireRecord>(std::move(record));
}

Status FrameReassembler::Accept(const Frame& frame) {
  // Staging numbers an edge's frames 0, 1, 2, ... for the run's lifetime
  // (runtime/transport.h), so the receiver expects exactly that.
  uint64_t& expected = next_[{frame.run, frame.from, frame.to}];
  if (frame.sequence < expected) {
    return Status::NetworkError("frame reassembly: duplicate sequence");
  }
  if (frame.sequence > expected) {
    return Status::NetworkError("frame reassembly: sequence gap");
  }
  ++expected;
  return Status::OK();
}

void FrameReassembler::CloseRun(RunId run) {
  for (auto it = next_.begin(); it != next_.end();) {
    if (std::get<0>(it->first) == run) {
      it = next_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---- Control payload codecs -------------------------------------------------

void HelloRecord::Encode(ByteWriter* out) const {
  out->PutU32(version);
  out->PutVarint(EncodeId(site));
  out->PutVarint(answer_chunk_ids);
  out->PutVarint(data_chunk_bytes);
  out->PutVarint(max_frame_bytes);
  out->PutVarint(site_threads);
  // The compression offer exists only since v5; gating on the declared
  // version lets tests (and future downgrade paths) emit true v4 hellos.
  if (version >= 5) {
    out->PutU8(codecs);
    out->PutVarint(compress_min_bytes);
  }
  if (version >= 6) {
    out->PutVarint(split_threshold_pct);
    out->PutVarint(peer_concurrent_rounds);
  }
}

Result<HelloRecord> HelloRecord::Decode(ByteReader* in) {
  HelloRecord r;
  PAXML_ASSIGN_OR_RETURN(r.version, in->GetU32());
  PAXML_ASSIGN_OR_RETURN(uint64_t site, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.site, DecodeId(site));
  PAXML_ASSIGN_OR_RETURN(r.answer_chunk_ids, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.data_chunk_bytes, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.max_frame_bytes, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.site_threads, in->GetVarint());
  if (r.version >= 5) {
    PAXML_ASSIGN_OR_RETURN(r.codecs, in->GetU8());
    PAXML_ASSIGN_OR_RETURN(r.compress_min_bytes, in->GetVarint());
  }
  if (r.version >= 6) {
    PAXML_ASSIGN_OR_RETURN(r.split_threshold_pct, in->GetVarint());
    PAXML_ASSIGN_OR_RETURN(r.peer_concurrent_rounds, in->GetVarint());
  }
  return r;
}

void HelloAckRecord::Encode(ByteWriter* out) const {
  out->PutVarint(EncodeId(site));
  if (version >= 5) {
    out->PutU32(version);
    out->PutU8(codecs);
  }
}

Result<HelloAckRecord> HelloAckRecord::Decode(ByteReader* in) {
  HelloAckRecord r;
  PAXML_ASSIGN_OR_RETURN(uint64_t site, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.site, DecodeId(site));
  // Pre-v5 servers end the record here: tolerate the short form and report
  // the fallback state (old protocol, no codecs).
  if (in->AtEnd()) {
    r.version = 4;
    r.codecs = 0;
    return r;
  }
  PAXML_ASSIGN_OR_RETURN(r.version, in->GetU32());
  PAXML_ASSIGN_OR_RETURN(r.codecs, in->GetU8());
  return r;
}

void OpenRunRecord::Encode(ByteWriter* out) const {
  out->PutVarint(run);
  out->PutString(spec.algorithm);
  out->PutString(spec.query);
  out->PutU8(spec.use_annotations ? 1 : 0);
  out->PutU8(spec.ship_mode);
  out->PutString(spec.family);
  out->PutU32(site_count);
  out->PutVarint(placement.size());
  for (SiteId s : placement) out->PutVarint(EncodeId(s));
}

Result<OpenRunRecord> OpenRunRecord::Decode(ByteReader* in) {
  OpenRunRecord r;
  PAXML_ASSIGN_OR_RETURN(r.run, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.spec.algorithm, in->GetString());
  PAXML_ASSIGN_OR_RETURN(r.spec.query, in->GetString());
  PAXML_ASSIGN_OR_RETURN(uint8_t annotations, in->GetU8());
  if (annotations > 1) return Status::ParseError("wire: bad annotation flag");
  r.spec.use_annotations = annotations != 0;
  PAXML_ASSIGN_OR_RETURN(r.spec.ship_mode, in->GetU8());
  PAXML_ASSIGN_OR_RETURN(r.spec.family, in->GetString());
  PAXML_ASSIGN_OR_RETURN(r.site_count, in->GetU32());
  PAXML_ASSIGN_OR_RETURN(uint64_t fragments, in->GetVarint());
  if (fragments > in->remaining()) {
    return Status::ParseError("wire: placement count past buffer end");
  }
  r.placement.reserve(fragments);
  for (uint64_t i = 0; i < fragments; ++i) {
    PAXML_ASSIGN_OR_RETURN(uint64_t site, in->GetVarint());
    PAXML_ASSIGN_OR_RETURN(SiteId s, DecodeId(site));
    r.placement.push_back(s);
  }
  return r;
}

void CloseRunRecord::Encode(ByteWriter* out) const { out->PutVarint(run); }

Result<CloseRunRecord> CloseRunRecord::Decode(ByteReader* in) {
  CloseRunRecord r;
  PAXML_ASSIGN_OR_RETURN(r.run, in->GetVarint());
  return r;
}

void RoundStartRecord::Encode(ByteWriter* out) const {
  out->PutVarint(run);
  out->PutVarint(EncodeId(site));
}

Result<RoundStartRecord> RoundStartRecord::Decode(ByteReader* in) {
  RoundStartRecord r;
  PAXML_ASSIGN_OR_RETURN(r.run, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(uint64_t site, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.site, DecodeId(site));
  return r;
}

void RoundDoneRecord::Encode(ByteWriter* out) const {
  out->PutVarint(run);
  out->PutVarint(EncodeId(site));
  out->PutU64(DoubleBits(seconds));
  EncodeStatus(status, out);
  out->PutVarint(memo_fragment_hits);
  out->PutVarint(memo_saved_bytes);
  out->PutU64(DoubleBits(memo_saved_seconds));
  out->PutVarint(pool_tasks);
  out->PutVarint(pool_busy_peak);
  out->PutVarint(pool_queue_peak);
}

Result<RoundDoneRecord> RoundDoneRecord::Decode(ByteReader* in) {
  RoundDoneRecord r;
  PAXML_ASSIGN_OR_RETURN(r.run, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(uint64_t site, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.site, DecodeId(site));
  PAXML_ASSIGN_OR_RETURN(uint64_t bits, in->GetU64());
  r.seconds = BitsDouble(bits);
  PAXML_RETURN_NOT_OK(DecodeStatus(in, &r.status));
  PAXML_ASSIGN_OR_RETURN(r.memo_fragment_hits, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.memo_saved_bytes, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(uint64_t saved_bits, in->GetU64());
  r.memo_saved_seconds = BitsDouble(saved_bits);
  // The v6 pool fields are trailing: a pre-v6 peer's record ends here.
  if (!in->AtEnd()) {
    PAXML_ASSIGN_OR_RETURN(r.pool_tasks, in->GetVarint());
    PAXML_ASSIGN_OR_RETURN(r.pool_busy_peak, in->GetVarint());
    PAXML_ASSIGN_OR_RETURN(r.pool_queue_peak, in->GetVarint());
  }
  return r;
}

void ErrorRecord::Encode(ByteWriter* out) const {
  out->PutVarint(run);
  out->PutString(message);
}

Result<ErrorRecord> ErrorRecord::Decode(ByteReader* in) {
  ErrorRecord r;
  PAXML_ASSIGN_OR_RETURN(r.run, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(r.message, in->GetString());
  return r;
}

void AppendFrameRecord(const Frame& frame, std::string* out) {
  ByteWriter w;
  frame.Encode(&w);
  AppendRecord(RecordType::kFrame, w.bytes(), out);
}

FrameWireInfo EncodeFrameForWire(const Frame& frame,
                                 uint64_t compress_min_bytes,
                                 std::string* out) {
  FrameWireInfo info;
  info.raw_bytes = frame.EncodedSize();
  info.wire_bytes = info.raw_bytes;
  const bool eligible =
      compress_min_bytes > 0 && info.raw_bytes >= compress_min_bytes;
  // The accounting-only fast path: nothing to write, nothing to compress —
  // the sizes are fully determined without materializing the encoding.
  if (!eligible && out == nullptr) return info;

  ByteWriter w;
  frame.Encode(&w);
  if (eligible) {
    const std::string z = Lz4Compress(w.bytes());
    const uint64_t z_payload = VarintSize(info.raw_bytes) + z.size();
    // No-expansion rule, applied identically on every side: a frame that
    // does not shrink ships raw, so modeled and actual wire bytes agree.
    if (z_payload < info.raw_bytes) {
      info.wire_bytes = z_payload;
      info.compressed = true;
      if (out != nullptr) {
        ByteWriter payload;
        payload.PutVarint(info.raw_bytes);
        payload.PutBytes(z.data(), z.size());
        AppendRecord(RecordType::kFrameZ, payload.bytes(), out);
      }
      return info;
    }
  }
  if (out != nullptr) AppendRecord(RecordType::kFrame, w.bytes(), out);
  return info;
}

Result<ReceivedFrame> DecodeFrameRecord(const WireRecord& record,
                                        bool allow_compressed) {
  ReceivedFrame received;
  if (record.type == RecordType::kFrame) {
    ByteReader reader(record.payload);
    PAXML_ASSIGN_OR_RETURN(received.frame, Frame::Decode(&reader));
    if (!reader.AtEnd()) {
      return Status::ParseError("wire: trailing bytes after frame");
    }
    received.wire.raw_bytes = record.payload.size();
    received.wire.wire_bytes = record.payload.size();
    return received;
  }
  PAXML_CHECK(record.type == RecordType::kFrameZ);  // caller routes types
  if (!allow_compressed) {
    return Status::NetworkError(
        "wire: compressed frame on a connection that never negotiated "
        "compression");
  }
  ByteReader reader(record.payload);
  PAXML_ASSIGN_OR_RETURN(uint64_t raw_size, reader.GetVarint());
  if (raw_size == 0 || raw_size > kMaxRecordBytes) {
    return Status::ParseError("wire: bad declared frame size");
  }
  PAXML_ASSIGN_OR_RETURN(
      std::string raw,
      Lz4Decompress(reader.rest(), static_cast<size_t>(raw_size)));
  ByteReader frame_reader(raw);
  PAXML_ASSIGN_OR_RETURN(received.frame, Frame::Decode(&frame_reader));
  if (!frame_reader.AtEnd()) {
    return Status::ParseError("wire: trailing bytes after compressed frame");
  }
  received.wire.raw_bytes = raw_size;
  received.wire.wire_bytes = record.payload.size();
  received.wire.compressed = true;
  return received;
}

// ---- Sockets ----------------------------------------------------------------

Result<int> ListenOn(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::NetworkError(std::string("getaddrinfo: ") +
                                ::gai_strerror(rc));
  }
  Status last = Status::NetworkError("listen: no usable address");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || ::listen(fd, 16) != 0) {
      last = Errno("bind/listen");
      ::close(fd);
      continue;
    }
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  return last;
}

Result<int> BoundPort(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return Status::NetworkError("getsockname: unexpected address family");
}

Result<int> AcceptOn(int fd) {
  const int conn = ::accept(fd, nullptr, nullptr);
  if (conn < 0) return Errno("accept");
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Result<int> DialEndpoint(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("endpoint must be host:port: " + endpoint);
  }
  std::string host = endpoint.substr(0, colon);
  const std::string service = endpoint.substr(colon + 1);
  // Allow bracketed IPv6 literals ("[::1]:7000").
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']') {
    host = host.substr(1, host.size() - 2);
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::NetworkError(std::string("getaddrinfo: ") +
                                ::gai_strerror(rc));
  }
  Status last = Status::NetworkError("dial: no usable address");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect");
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  return last;
}

Status WriteAll(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, char* buf, size_t n) {
  while (true) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    return static_cast<size_t>(got);
  }
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace paxml
