// SiteRuntime: message-driven execution at one site.
//
// A SiteRuntime owns a site's fragment list and hands delivered envelopes,
// in arrival order, to the algorithm's MessageHandlers — one part at a
// time, with the envelope for context. The runtime never decodes a part's
// payload: what the bytes mean is the workload family's business
// (core/xml_handlers.h decodes the XML wire formats of core/messages.h;
// the graph family decodes its reachability rows), which is what keeps
// this layer free of data-model headers (DESIGN.md §11). The same
// dispatch path serves both roles of the protocol — worker sites
// (requests and down-messages, running on transport worker threads) and the
// coordinator (up-messages, running on the driver thread after each round)
// — so an algorithm is exactly its set of handlers plus a Coordinator
// script, and never touches sockets, threads, or byte accounting.

#ifndef PAXML_RUNTIME_SITE_RUNTIME_H_
#define PAXML_RUNTIME_SITE_RUNTIME_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "runtime/transport.h"

namespace paxml {

class Cluster;

/// What a handler sees of its execution environment: which site it runs at,
/// the placement, which run of the transport it belongs to, and a way to
/// send envelopes from that site.
class SiteContext {
 public:
  SiteContext(SiteId site, const Cluster* cluster, Transport* transport,
              RunId run)
      : site_(site), cluster_(cluster), transport_(transport), run_(run) {}

  SiteId site() const { return site_; }
  const Cluster& cluster() const { return *cluster_; }

  /// The evaluation this context sends on behalf of.
  RunId run() const { return run_; }

  /// The query site S_Q (the coordinator's address).
  SiteId query_site() const;

  /// Sends `env` from this site (env.from and env.run are stamped here, so
  /// a handler can never leak mail into another run's mailboxes).
  void Send(Envelope env) {
    env.from = site_;
    env.run = run_;
    transport_->Send(std::move(env));
  }

  /// The message plane this context sends on (chunk-size options live
  /// here; EnvelopeStream below streams through it).
  Transport& transport() const { return *transport_; }

 private:
  SiteId site_;
  const Cluster* cluster_;
  Transport* transport_;
  RunId run_;
};

/// Incremental emitter of one logical envelope: open it on a head envelope
/// whose last part's bytes will grow, Append() chunks of encoded payload
/// (and/or modeled phantom bytes) as they are produced, Close() when done.
///
/// On a batching transport the head is staged into the open frame
/// immediately and every chunk extends it in place — the paper's answer
/// streaming: a site ships its answers as it settles them instead of
/// materializing one monolithic shipment, and the frame that leaves at the
/// round boundary is byte-identical to the monolithic envelope. With
/// batching off (or for free local delivery, where no wire exists) the
/// chunks accumulate privately and Close() sends one classic envelope —
/// the seed's exact behavior. Either way the receiver decodes a single
/// envelope, so handlers and accounting never see chunk boundaries.
///
/// Scoped to one handler invocation: a stream must be closed before the
/// handler returns (frames cannot seal around an open stream), and only
/// one stream per destination may be open at a time.
class EnvelopeStream {
 public:
  /// Stamps `head` with the context's site and run and opens the stream.
  /// `head.parts` must be non-empty; chunks extend the last part.
  EnvelopeStream(SiteContext& ctx, Envelope head);

  /// Closes the stream if Close() was not called explicitly.
  ~EnvelopeStream();

  EnvelopeStream(const EnvelopeStream&) = delete;
  EnvelopeStream& operator=(const EnvelopeStream&) = delete;

  /// Appends `bytes` to the growing part and `phantom_bytes` to the
  /// envelope's modeled payload.
  void Append(std::string_view bytes, uint64_t phantom_bytes = 0);

  /// Appends transcoded `bytes` that account as `logical_bytes` of logical
  /// payload (the delta-encoded answer chunks: shipped bytes shrink, the
  /// paper's byte accounting does not). Append(b, p) ==
  /// AppendRecoded(b, b.size(), p).
  void AppendRecoded(std::string_view bytes, uint64_t logical_bytes,
                     uint64_t phantom_bytes = 0);

  void Close();

 private:
  Transport* transport_;
  Envelope buffered_;    ///< the whole envelope when not staged
  RunId run_ = kNullRun;
  SiteId from_ = kNullSite;
  SiteId to_ = kNullSite;
  bool staged_ = false;  ///< head lives in the transport's open frame
  bool closed_ = false;
};

/// Algorithm-provided message handlers: the workload seam. One pure
/// virtual receives every routed part; a family's base class (e.g.
/// core/xml_handlers.h's XmlMessageHandlers) decodes its payload kinds
/// into typed callbacks on top of this.
///
/// Threading contract: site-side handlers (requests, down-messages) run on
/// transport worker threads, and — with site_threads > 1 — handlers for
/// *different fragments of one site* run concurrently within a round
/// (runtime/site_driver.h). An algorithm must therefore confine site-side
/// mutable state to per-fragment slots: a handler addressed to fragment f
/// may touch only f's state (plus the const data/query). One fragment's
/// mail is never processed concurrently with itself, and within-envelope
/// part order is preserved (a SelDown riding ahead of the AnswerRequest in
/// the same envelope still lands first). All shipped algorithm families
/// (core/{pax2,pax3,naive,parbox,reach}.cc) satisfy this: their site-side
/// state lives in per-fragment slots sized at construction (the graph
/// family's site side is read-only). Coordinator-side handlers
/// (up-messages, query/data ships) always run single-threaded on the
/// driver thread and may keep cross-fragment state (unifier, answer
/// assembly) unlocked.
/// One splittable request, produced by MessageHandlers::MakeSplitTask: the
/// paratreet visitor/interact idiom (DESIGN.md §14). Construction is the
/// cheap visitor pass — it builds `item_count()` *independent* work items
/// (per-entry local traversals for the graph family, per-root-child
/// qualifier/selection subtrees for the XML family). RunItem is the
/// interact pass: the driver calls it once per item, concurrently for
/// distinct items, on the site worker pool — items must not share mutable
/// state (each writes private slots sized at construction). Finish runs
/// serially after every item completed and emits through `ctx` exactly the
/// sends the unsplit handler would have, byte for byte and in the same
/// order — the bit-identity contract is the evaluator's to keep; the
/// driver only supplies the threads and the replay position.
class SplitTask {
 public:
  virtual ~SplitTask() = default;

  virtual size_t item_count() const = 0;

  /// Computes item `item` into its private slot. Called at most once per
  /// item; concurrent across distinct items; must not send.
  virtual void RunItem(size_t item) = 0;

  /// Combines the item slots and emits the handler's sends through `ctx`.
  virtual Status Finish(SiteContext& ctx) = 0;
};

class MessageHandlers {
 public:
  virtual ~MessageHandlers() = default;

  /// One routed part of one envelope, in arrival order. `env` provides the
  /// routing context (from/to, phantom bytes); `part` the kind, fragment
  /// address and opaque payload bytes. The handler owns all decoding.
  virtual Status OnPart(SiteContext& ctx, const Envelope& env,
                        const WirePart& part) = 0;

  /// Splittable hook: a task evaluating `part` as independent sub-items, or
  /// null when this part cannot (or should not) split — the default. The
  /// driver asks only for the final part of a request envelope on a lane it
  /// decided to split (earlier parts of the envelope were already
  /// dispatched serially through OnPart, so down-messages are in place);
  /// a null return simply falls back to the serial OnPart path. The
  /// returned task must produce byte-identical sends to OnPart on the same
  /// part.
  virtual std::unique_ptr<SplitTask> MakeSplitTask(const Envelope& env,
                                                   const WirePart& part) {
    (void)env;
    (void)part;
    return nullptr;
  }
};

/// Dispatch endpoint for one site.
class SiteRuntime {
 public:
  SiteRuntime(SiteId site, const Cluster* cluster, Transport* transport,
              RunId run, MessageHandlers* handlers)
      : ctx_(site, cluster, transport, run), handlers_(handlers) {}

  SiteId site() const { return ctx_.site(); }

  /// Fragments placed at this site.
  const std::vector<FragmentId>& fragments() const;

  /// Dispatches `mail` part by part, in order; stops at the first error.
  Status Deliver(std::vector<Envelope> mail);

 private:
  SiteContext ctx_;
  MessageHandlers* handlers_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_SITE_RUNTIME_H_
