#include "runtime/query_scheduler.h"

#include <algorithm>
#include <utility>

#include "runtime/worker_pool.h"

namespace paxml {

QueryScheduler::QueryScheduler(size_t depth, std::shared_ptr<WorkerPool> pool)
    : pool_(std::move(pool)) {
  depth = std::max<size_t>(depth, 1);
  drivers_.reserve(depth);
  for (size_t i = 0; i < depth; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : drivers_) t.join();
}

void QueryScheduler::Submit(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(QueuedJob{std::move(job), next_seq_++});
  }
  work_cv_.notify_one();
}

void QueryScheduler::Submit(std::function<void()> job) {
  Job j;
  j.run = std::move(job);
  Submit(std::move(j));
}

void QueryScheduler::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

size_t QueryScheduler::admission_limit() {
  std::lock_guard<std::mutex> lock(mu_);
  return AdmissionLimitLocked();
}

size_t QueryScheduler::queued_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t QueryScheduler::AdmissionLimitLocked() const {
  const size_t depth = drivers_.size();
  if (pool_ == nullptr) return depth;
  // Saturation signal: round batches sitting in the pool with unstarted
  // tasks. Up to one queued batch per worker is healthy pipelining; beyond
  // that, every extra batch sheds one admission slot (floor 1, so the
  // stream always drains and the backlog bound stays proportional to the
  // worker count).
  const size_t backlog = pool_->queued_batch_count();
  const size_t workers = pool_->worker_count();
  if (backlog <= workers) return depth;
  const size_t over = backlog - workers;
  return over >= depth ? 1 : std::max<size_t>(1, depth - over);
}

size_t QueryScheduler::BestJobIndexLocked() const {
  // Priority first; within a band, earliest deadline first (a job with a
  // deadline is more urgent than one without — the deadline-free job can
  // always wait); submission order breaks the remaining ties.
  auto better = [](const QueuedJob& a, const QueuedJob& b) {
    if (a.job.priority != b.job.priority) {
      return a.job.priority > b.job.priority;
    }
    if (a.job.deadline != b.job.deadline) {
      if (!a.job.deadline.has_value()) return false;
      if (!b.job.deadline.has_value()) return true;
      return *a.job.deadline < *b.job.deadline;
    }
    return a.seq < b.seq;
  };
  size_t best = queue_.size();
  for (size_t i = 0; i < queue_.size(); ++i) {
    if (best == queue_.size() || better(queue_[i], queue_[best])) {
      best = i;
    }
  }
  return best;
}

void QueryScheduler::DriverLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping, queue fully drained

    // Reap dead-on-arrival work first, whatever its priority: an expired
    // or cancelled queued job costs nothing to reject and must not wait
    // behind higher-priority work for a driver to select it — its client
    // is blocked in Wait() and deserves the verdict now.
    std::vector<QueuedJob> rejects;
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < queue_.size();) {
      const Job& job = queue_[i].job;
      if ((job.deadline.has_value() && now >= *job.deadline) ||
          (job.cancelled && job.cancelled())) {
        rejects.push_back(std::move(queue_[i]));
        queue_[i] = std::move(queue_.back());
        queue_.pop_back();
      } else {
        ++i;
      }
    }
    if (!rejects.empty()) {
      // The reject callbacks run unlocked but must count as in-flight
      // work: otherwise Wait() could observe an empty queue and return
      // before a rejected job's callback has delivered its verdict.
      running_ += rejects.size();
      lock.unlock();
      for (QueuedJob& dead : rejects) {
        if (!dead.job.reject) continue;
        if (dead.job.deadline.has_value() && now >= *dead.job.deadline) {
          dead.job.reject(
              Status::DeadlineExceeded("deadline expired while queued"));
        } else {
          dead.job.reject(Status::Cancelled("cancelled while queued"));
        }
      }
      lock.lock();
      running_ -= rejects.size();
      work_cv_.notify_all();
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
      continue;  // re-examine the queue from scratch
    }

    if (running_ >= AdmissionLimitLocked()) {
      // Throttled by pool saturation. The backlog drains without any
      // scheduler activity (workers pull tasks on their own), so poll on a
      // short timer rather than waiting for a notification that may never
      // describe the pool's state.
      work_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }

    const size_t idx = BestJobIndexLocked();
    QueuedJob picked = std::move(queue_[idx]);
    // Selection scans, so queue order is free: swap-pop instead of erase.
    queue_[idx] = std::move(queue_.back());
    queue_.pop_back();
    ++running_;
    lock.unlock();

    Status admit = Status::OK();
    if (picked.job.deadline.has_value() &&
        std::chrono::steady_clock::now() >= *picked.job.deadline) {
      admit = Status::DeadlineExceeded("deadline expired while queued");
    } else if (picked.job.cancelled && picked.job.cancelled()) {
      admit = Status::Cancelled("cancelled while queued");
    }
    if (admit.ok()) {
      if (picked.job.run) picked.job.run();
    } else if (picked.job.reject) {
      picked.job.reject(admit);
    }

    lock.lock();
    --running_;
    // A slot freed: other drivers throttled on the admission limit may
    // proceed, and Wait() may have reached quiescence.
    work_cv_.notify_all();
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace paxml
