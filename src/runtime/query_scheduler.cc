#include "runtime/query_scheduler.h"

#include <algorithm>

namespace paxml {

QueryScheduler::QueryScheduler(size_t depth) {
  depth = std::max<size_t>(depth, 1);
  drivers_.reserve(depth);
  for (size_t i = 0; i < depth; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : drivers_) t.join();
}

void QueryScheduler::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void QueryScheduler::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void QueryScheduler::DriverLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace paxml
