#include "runtime/frame.h"

#include "common/logging.h"

namespace paxml {

namespace {

// Sites and fragments are signed with -1 as the null sentinel; shift by one
// so the varint encoding stays single-byte for the common small ids.
uint64_t EncodeId(int32_t v) { return static_cast<uint64_t>(v + 1); }

// The decoder consumes untrusted wire input: reject anything that would
// wrap the int32 shift (a corrupt varint must surface as a parse error,
// never as a bogus id).
Result<int32_t> DecodeId(uint64_t v) {
  if (v > 0x7fffffff) return Status::ParseError("frame: id out of range");
  return static_cast<int32_t>(v) - 1;
}

// Envelope flag byte: bit 0 = accounted, bits 1-2 = payload category.
uint8_t EnvelopeFlags(const Envelope& env) {
  return static_cast<uint8_t>((env.accounted ? 1 : 0) |
                              (static_cast<uint8_t>(env.category) << 1));
}

// Part flag byte: bit 0 = accounted, bit 1 = an explicit logical size
// follows (delta-transcoded payloads whose accounted size differs from the
// shipped bytes).
uint8_t PartFlags(const WirePart& part) {
  return static_cast<uint8_t>((part.accounted ? 1 : 0) |
                              (part.logical_bytes != 0 ? 2 : 0));
}

}  // namespace

uint64_t Frame::AccountedBytes() const {
  uint64_t bytes = 0;
  for (const Envelope& env : envelopes) {
    if (env.accounted) bytes += env.WireBytes();
  }
  return bytes;
}

bool Frame::Accounted() const {
  for (const Envelope& env : envelopes) {
    if (env.accounted) return true;
  }
  return false;
}

void Frame::Encode(ByteWriter* out) const {
  out->PutVarint(run);
  out->PutVarint(EncodeId(from));
  out->PutVarint(EncodeId(to));
  out->PutVarint(sequence);
  out->PutVarint(envelopes.size());
  for (const Envelope& env : envelopes) {
    out->PutU8(EnvelopeFlags(env));
    out->PutVarint(env.phantom_bytes);
    out->PutVarint(env.parts.size());
    for (const WirePart& part : env.parts) {
      out->PutU8(static_cast<uint8_t>(part.kind));
      out->PutVarint(EncodeId(part.fragment));
      out->PutU8(PartFlags(part));
      if (part.logical_bytes != 0) out->PutVarint(part.logical_bytes);
      out->PutString(part.bytes);
    }
  }
}

uint64_t Frame::EncodedSize() const {
  uint64_t n = VarintSize(run) + VarintSize(EncodeId(from)) +
               VarintSize(EncodeId(to)) + VarintSize(sequence) +
               VarintSize(envelopes.size());
  for (const Envelope& env : envelopes) {
    n += 1 + VarintSize(env.phantom_bytes) + VarintSize(env.parts.size());
    for (const WirePart& part : env.parts) {
      n += 1 + VarintSize(EncodeId(part.fragment)) + 1 +
           (part.logical_bytes != 0 ? VarintSize(part.logical_bytes) : 0) +
           VarintSize(part.bytes.size()) + part.bytes.size();
    }
  }
  return n;
}

Result<Frame> Frame::Decode(ByteReader* in) {
  Frame frame;
  PAXML_ASSIGN_OR_RETURN(uint64_t run, in->GetVarint());
  frame.run = run;
  PAXML_ASSIGN_OR_RETURN(uint64_t from, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(frame.from, DecodeId(from));
  PAXML_ASSIGN_OR_RETURN(uint64_t to, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(frame.to, DecodeId(to));
  if (frame.to == kNullSite) {
    return Status::ParseError("frame: null destination");
  }
  PAXML_ASSIGN_OR_RETURN(frame.sequence, in->GetVarint());
  PAXML_ASSIGN_OR_RETURN(uint64_t envelope_count, in->GetVarint());
  // Counts come off the wire: bound them by what the remaining bytes could
  // possibly hold (>= 3 bytes per envelope, >= 4 per part) before any
  // reserve, so a corrupt header is a parse error, not an allocation blast.
  if (envelope_count > in->remaining() / 3) {
    return Status::ParseError("frame: envelope count past buffer end");
  }
  frame.envelopes.reserve(envelope_count);
  for (uint64_t i = 0; i < envelope_count; ++i) {
    Envelope env;
    env.run = frame.run;
    env.from = frame.from;
    env.to = frame.to;
    PAXML_ASSIGN_OR_RETURN(uint8_t flags, in->GetU8());
    if (flags >> 3) return Status::ParseError("frame: bad envelope flags");
    env.accounted = (flags & 1) != 0;
    const uint8_t category = flags >> 1;
    if (category > static_cast<uint8_t>(PayloadCategory::kData)) {
      return Status::ParseError("frame: bad payload category");
    }
    env.category = static_cast<PayloadCategory>(category);
    PAXML_ASSIGN_OR_RETURN(env.phantom_bytes, in->GetVarint());
    PAXML_ASSIGN_OR_RETURN(uint64_t part_count, in->GetVarint());
    if (part_count > in->remaining() / 4) {
      return Status::ParseError("frame: part count past buffer end");
    }
    env.parts.reserve(part_count);
    for (uint64_t p = 0; p < part_count; ++p) {
      WirePart part;
      PAXML_ASSIGN_OR_RETURN(uint8_t kind, in->GetU8());
      if (kind > static_cast<uint8_t>(MessageKind::kReachUp)) {
        return Status::ParseError("frame: bad message kind");
      }
      part.kind = static_cast<MessageKind>(kind);
      PAXML_ASSIGN_OR_RETURN(uint64_t fragment, in->GetVarint());
      PAXML_ASSIGN_OR_RETURN(part.fragment, DecodeId(fragment));
      PAXML_ASSIGN_OR_RETURN(uint8_t part_flags, in->GetU8());
      if (part_flags > 3) return Status::ParseError("frame: bad part flag");
      part.accounted = (part_flags & 1) != 0;
      if ((part_flags & 2) != 0) {
        PAXML_ASSIGN_OR_RETURN(part.logical_bytes, in->GetVarint());
        // 0 would re-encode without the flag bit, breaking the
        // re-encode-byte-identical property; reject it as corrupt.
        if (part.logical_bytes == 0) {
          return Status::ParseError("frame: zero logical size");
        }
      }
      PAXML_ASSIGN_OR_RETURN(part.bytes, in->GetString());
      env.parts.push_back(std::move(part));
    }
    frame.envelopes.push_back(std::move(env));
  }
  return frame;
}

void AccountEnvelopeBytes(const Envelope& env, RunStats* stats) {
  // Decoded frames may carry wire input: a site id outside the stats
  // vector is a caller bug (sockets must validate against the cluster
  // before accounting), caught here rather than written out of bounds.
  PAXML_CHECK_LT(static_cast<size_t>(env.to), stats->per_site.size());
  PAXML_CHECK(env.from == kNullSite ||
              static_cast<size_t>(env.from) < stats->per_site.size());
  const uint64_t bytes = env.WireBytes();
  ++stats->total_envelopes;
  stats->total_bytes += bytes;
  switch (env.category) {
    case PayloadCategory::kAnswer:
      stats->answer_bytes += bytes;
      break;
    case PayloadCategory::kData:
      stats->data_bytes_shipped += bytes;
      break;
    case PayloadCategory::kControl:
      break;
  }
  if (env.from != kNullSite) {
    stats->per_site[static_cast<size_t>(env.from)].bytes_sent += bytes;
  }
  stats->per_site[static_cast<size_t>(env.to)].bytes_received += bytes;
  stats->edges[{env.from, env.to}].bytes += bytes;
  ++stats->edges[{env.from, env.to}].envelopes;
  // Delta-codec visibility: parts whose shipped bytes were transcoded away
  // from their logical encoding report both sizes, accounted or not (the
  // phantom-answer mode delta-encodes its unaccounted id list too).
  for (const WirePart& p : env.parts) {
    if (p.logical_bytes != 0) {
      stats->delta_logical_bytes += p.logical_bytes;
      stats->delta_wire_bytes += p.bytes.size();
    }
  }
}

void AccountFrame(const Frame& frame, RunStats* stats) {
  const uint64_t raw = frame.EncodedSize();
  AccountFrameWire(frame, stats, {raw, raw, false});
}

void AccountFrameWire(const Frame& frame, RunStats* stats,
                      const FrameWireInfo& wire) {
  for (const Envelope& env : frame.envelopes) {
    if (env.accounted) AccountEnvelopeBytes(env, stats);
  }
  // Every frame is physically written, control-plane or not: wire_bytes is
  // what a socket moves (post-compression), wire_raw_bytes the plain
  // encoding, while the counters below follow the paper's model (request
  // frames are free, phantom bytes are counted).
  stats->wire_bytes += wire.wire_bytes;
  stats->wire_raw_bytes += wire.raw_bytes;
  if (wire.compressed) ++stats->wire_frames_compressed;
  if (!frame.Accounted()) return;
  PAXML_CHECK_LT(static_cast<size_t>(frame.to), stats->per_site.size());
  PAXML_CHECK(frame.from == kNullSite ||
              static_cast<size_t>(frame.from) < stats->per_site.size());
  ++stats->total_messages;
  if (frame.from != kNullSite) {
    ++stats->per_site[static_cast<size_t>(frame.from)].messages_sent;
  }
  ++stats->per_site[static_cast<size_t>(frame.to)].messages_received;
  ++stats->edges[{frame.from, frame.to}].messages;
}

}  // namespace paxml
