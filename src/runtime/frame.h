// Frame: the unit that actually goes on the wire.
//
// The algorithms think in Envelopes — one typed bundle of WireParts per
// logical message. The network (modeled today by NetworkCostModel, real
// once a socket Transport exists) thinks in *frames*: at each round
// boundary the transport coalesces every envelope staged for the same
// (run, destination edge) into one Frame, so a round's traffic on an edge
// pays per-message costs (latency, header overhead) once instead of once
// per envelope. Batching is per-run by construction — the staging key
// includes the RunId — so concurrent evaluations never share a frame
// (invariant 5, DESIGN.md §6).
//
// A Frame has a binary codec over the existing WirePart encodings
// (core/messages.h payloads travel as the same bytes the parts already
// hold). The codec round-trips *everything* accounting depends on —
// envelope `accounted` flags, part `accounted` flags, phantom byte counts,
// payload categories — so a re-decoded frame reproduces RunStats exactly
// (AccountFrame below; tested property). This is the wire format the
// ROADMAP's socket transport will write to a TCP stream: header metadata
// (run, edge, per-edge sequence number) is exactly what reassembly and
// ordering need on a real connection.

#ifndef PAXML_RUNTIME_FRAME_H_
#define PAXML_RUNTIME_FRAME_H_

#include <cstdint>
#include <vector>

#include "boolexpr/codec.h"
#include "common/result.h"
#include "runtime/transport.h"
#include "sim/stats.h"

namespace paxml {

/// One framed unit of (run, edge) traffic: every envelope the run staged
/// for this edge between two round boundaries, in send order.
struct Frame {
  RunId run = kNullRun;

  /// The directed edge. `from` may be kNullSite for coordinator-originated
  /// envelopes a test injects without stamping a sender.
  SiteId from = kNullSite;
  SiteId to = kNullSite;

  /// Position of this frame in the edge's stream (0, 1, 2, ... per
  /// (run, edge) for the transport's lifetime). Pure header metadata today;
  /// a socket transport uses it to detect loss and reordering.
  uint64_t sequence = 0;

  std::vector<Envelope> envelopes;

  /// Sum of the accounted envelopes' wire bytes (phantom included).
  uint64_t AccountedBytes() const;

  /// True if the frame carries at least one accounted envelope — only such
  /// frames count as messages (a frame of pure control-plane requests is
  /// free, exactly as the unbatched request envelopes were).
  bool Accounted() const;

  /// Serializes the frame: header (run, edge, sequence), then each
  /// envelope with its category, accounted flag, phantom bytes and parts
  /// (kind, fragment, a flags byte — bit 0 accounted, bit 1 "carries a
  /// logical size" — the optional logical byte count, payload bytes).
  /// Deterministic: re-encoding a decoded frame is byte-identical (tested
  /// property).
  void Encode(ByteWriter* out) const;

  /// Exactly Encode()'s output size (tested property), computed without
  /// materializing the buffer — what RunStats::wire_bytes accounts per
  /// sealed frame.
  uint64_t EncodedSize() const;

  /// Decodes one frame; rejects trailing garbage within the envelope
  /// structure but leaves the reader positioned after the frame, so frames
  /// can be concatenated on a stream.
  static Result<Frame> Decode(ByteReader* in);
};

/// Accounts one accounted, non-local envelope's bytes into `stats`
/// (category split, per-site and per-edge byte totals, total_envelopes) —
/// everything *except* the message count, which belongs to the frame (or,
/// unbatched, to the envelope itself). The caller has already checked
/// accounted/local.
void AccountEnvelopeBytes(const Envelope& env, RunStats* stats);

/// Accounts a delivered frame into `stats`: every accounted envelope's
/// bytes plus — if the frame is accounted at all — one message on the
/// frame's edge. Applying this to a Decode()d copy of a frame reproduces
/// the exact RunStats deltas of the original (tested property). This
/// overload models a plain uncompressed wire (raw == wire == EncodedSize).
void AccountFrame(const Frame& frame, RunStats* stats);

/// Same, but with the frame's actual wire sizes: `wire.raw_bytes` feeds
/// wire_raw_bytes, `wire.wire_bytes` feeds wire_bytes, and a compressed
/// frame bumps wire_frames_compressed. Every logical counter (messages,
/// envelopes, byte splits) is identical between the two overloads — the
/// wire split is the ONLY thing compression may move.
void AccountFrameWire(const Frame& frame, RunStats* stats,
                      const FrameWireInfo& wire);

}  // namespace paxml

#endif  // PAXML_RUNTIME_FRAME_H_
