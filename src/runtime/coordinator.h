// Coordinator: the driver of one distributed query evaluation.
//
// Replaces the old QueryRun closure API. An algorithm is written as a
// protocol script against this class: Post() down-envelopes and control
// requests, RunRound() to visit the addressed sites (the transport delivers
// their mail in parallel or sequentially), then the coordinator's own mail
// — the sites' up-replies — is dispatched on the driver thread. Visit
// counts, per-round parallel time and coordinator time accumulate into
// RunStats here; all byte accounting happens inside Transport::Send.
//
// Construction opens a run on the transport and destruction closes it, so
// any number of Coordinators may drive concurrent evaluations over one
// shared transport (and one shared WorkerPool) without cross-talk — the
// multi-query path (runtime/query_scheduler.h) depends on exactly this.
//
// An optional RunControl makes the evaluation cancellable: RunRound checks
// it at every round boundary (and before sleeping out a simulated network
// delay), so Cancel() or a deadline expiry unwinds through the ordinary
// Status path and the destructor's CloseRun — concurrent runs never notice
// (DESIGN.md §7).

#ifndef PAXML_RUNTIME_COORDINATOR_H_
#define PAXML_RUNTIME_COORDINATOR_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runtime/run_control.h"
#include "runtime/site_driver.h"
#include "runtime/site_runtime.h"
#include "runtime/transport.h"
#include "sim/stats.h"

namespace paxml {

class Cluster;

class Coordinator {
 public:
  /// Opens a fresh run on `transport` accounting into this coordinator's
  /// RunStats, and builds the run's SiteDriver dispatching into `handlers`.
  /// A non-null `control` makes the run cancellable: RunRound returns its
  /// Check() status at round boundaries. A non-null `spec` describes the
  /// evaluation to remote peers (required for delivery rounds over a
  /// socket transport; in-process backends ignore it).
  Coordinator(const Cluster* cluster, Transport* transport,
              MessageHandlers* handlers, RunControl* control = nullptr,
              const RunSpec* spec = nullptr);

  /// Closes the run; any mail an abandoned protocol left behind is
  /// discarded with it. Publishes the final RunStats snapshot to the
  /// RunControl (if any), so aborted runs still report their accounting.
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  const Cluster& cluster() const { return *cluster_; }
  SiteId query_site() const;

  /// The transport run this evaluation owns.
  RunId run() const { return run_; }

  /// Sends a coordinator-originated envelope (env.from = query site,
  /// env.run = this evaluation's run).
  void Post(Envelope env);

  /// One protocol round: every site in `sites` is visited once — its
  /// pending mail is decoded and dispatched to the algorithm handlers, in
  /// parallel per the transport backend — then the up-replies that arrived
  /// at the query site are dispatched on this thread (in deterministic
  /// sender order, so pooled and sync backends unify identically). An empty
  /// `sites` is a no-op: a stage pruned down to nothing visits no site and
  /// counts no round.
  Status RunRound(const std::string& label, const std::vector<SiteId>& sites);

  /// Times coordinator-local work (evalFT unification, result assembly).
  void RunLocal(const std::function<void()>& work);

  /// Sites that hold at least one of the given fragments (sorted, unique).
  std::vector<SiteId> SitesOf(const std::vector<FragmentId>& fragments) const;

  /// All sites holding at least one fragment.
  std::vector<SiteId> AllSites() const;

  const RunStats& stats() const { return stats_; }
  RunStats TakeStats() { return std::move(stats_); }

 private:
  /// Drains and dispatches mail addressed to the query site.
  Status DispatchCoordinatorMail();

  /// If the cluster opts into ClusterOptions::simulated_network, sleeps for
  /// the modeled transfer time of the traffic accounted since the previous
  /// round. Wall-clock only: RunStats never includes the sleep (the model's
  /// cost is already reported by RunStats::ElapsedSeconds). This is what
  /// makes a round *latency-bound* in simulation, so the multi-query
  /// scheduler's overlap shows up in measured throughput exactly as it
  /// would against a real network.
  void RealizeNetworkDelay();

  const Cluster* cluster_;
  Transport* transport_;
  RunControl* control_ = nullptr;
  RunId run_ = kNullRun;
  std::optional<SiteDriver> driver_;  ///< built after the run opens
  RunStats stats_;

  // Traffic marker for RealizeNetworkDelay: what was already slept for.
  uint64_t delayed_messages_ = 0;
  uint64_t delayed_bytes_ = 0;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_COORDINATOR_H_
