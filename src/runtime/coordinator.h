// Coordinator: the driver of one distributed query evaluation.
//
// Replaces the old QueryRun closure API. An algorithm is written as a
// protocol script against this class: Post() down-envelopes and control
// requests, RunRound() to visit the addressed sites (the transport delivers
// their mail in parallel or sequentially), then the coordinator's own mail
// — the sites' up-replies — is dispatched on the driver thread. Visit
// counts, per-round parallel time and coordinator time accumulate into
// RunStats here; all byte accounting happens inside Transport::Send.

#ifndef PAXML_RUNTIME_COORDINATOR_H_
#define PAXML_RUNTIME_COORDINATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "runtime/site_runtime.h"
#include "runtime/transport.h"
#include "sim/stats.h"

namespace paxml {

class Cluster;

class Coordinator {
 public:
  /// Binds `transport` to a fresh RunStats for this evaluation and builds
  /// one SiteRuntime per site dispatching into `handlers`.
  Coordinator(const Cluster* cluster, Transport* transport,
              MessageHandlers* handlers);

  const Cluster& cluster() const { return *cluster_; }
  SiteId query_site() const;

  /// Sends a coordinator-originated envelope (env.from = query site).
  void Post(Envelope env);

  /// One protocol round: every site in `sites` is visited once — its
  /// pending mail is decoded and dispatched to the algorithm handlers, in
  /// parallel per the transport backend — then the up-replies that arrived
  /// at the query site are dispatched on this thread (in deterministic
  /// sender order, so pooled and sync backends unify identically).
  Status RunRound(const std::string& label, const std::vector<SiteId>& sites);

  /// Times coordinator-local work (evalFT unification, result assembly).
  void RunLocal(const std::function<void()>& work);

  /// Sites that hold at least one of the given fragments (sorted, unique).
  std::vector<SiteId> SitesOf(const std::vector<FragmentId>& fragments) const;

  /// All sites holding at least one fragment.
  std::vector<SiteId> AllSites() const;

  const RunStats& stats() const { return stats_; }
  RunStats TakeStats() { return std::move(stats_); }

 private:
  /// Drains and dispatches mail addressed to the query site.
  Status DispatchCoordinatorMail();

  const Cluster* cluster_;
  Transport* transport_;
  std::vector<SiteRuntime> sites_;
  RunStats stats_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_COORDINATOR_H_
