// QueryScheduler: priority-aware admission control for a stream of query
// evaluations over one shared transport and worker pool.
//
// The paper's guarantees are per query, but a server faces a *stream* of
// queries over one cluster. Each algorithm is a blocking protocol script
// (Post rounds, wait, unify, repeat — see runtime/coordinator.h), so the
// scheduler admits up to `depth` scripts at a time, each on its own driver
// thread against its own Coordinator (= its own transport run). The rounds
// of concurrent evaluations interleave on the shared WorkerPool, which
// serves one task from each blocked round in turn — round-robin across
// ready queries — so a wide round cannot starve the rest (worker_pool.h).
// While one query's driver sits in coordinator-side unification (or in a
// simulated network delay), the pool keeps crunching the other queries'
// site work; that overlap is the throughput win bench_multiquery measures.
//
// Admission order and rejection (the session API's contract, DESIGN.md §7):
//   * Jobs are admitted by descending priority; within a priority band,
//     earliest absolute deadline first (EDF — a deadline-carrying job
//     always outranks a deadline-free one in its band), remaining ties in
//     submission order. A high-priority query jumps the queue but never
//     preempts an evaluation already in flight.
//   * A job whose deadline has passed is *rejected* (its reject callback
//     runs with DeadlineExceeded) without ever opening a transport run;
//     likewise a job whose cancelled() predicate has turned true is
//     rejected with Cancelled. Drivers reap dead-on-arrival work ahead of
//     priority selection each time they examine the queue, so a rejection
//     is never stuck behind higher-priority work — though with every
//     driver busy evaluating, it waits for the next one to come free.
//     Queued work that can no longer meet its deadline costs the cluster
//     nothing.
//   * When the shared WorkerPool is saturated (more round batches queued
//     than there are workers), drivers stop admitting new evaluations
//     beyond a shrunken limit until the backlog drains: admitting more
//     concurrent rounds than the pool can serve only inflates every
//     query's latency. admission_limit() exposes the current value.
//
// The scheduler knows nothing about algorithms: jobs are opaque closures.
// The engine-level surface that pairs it with a shared transport is
// Engine::Submit (core/engine.h); EvalBatch rides on top of that.

#ifndef PAXML_RUNTIME_QUERY_SCHEDULER_H_
#define PAXML_RUNTIME_QUERY_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"

namespace paxml {

class WorkerPool;

class QueryScheduler {
 public:
  /// One schedulable evaluation.
  struct Job {
    /// The evaluation itself; runs on a driver thread.
    std::function<void()> run;

    /// Invoked *instead of* run when the job is rejected at admission
    /// (deadline expired or cancelled while queued). May be null.
    std::function<void(const Status&)> reject;

    /// Polled at admission; true means the job was cancelled while queued
    /// and is rejected without running. May be null.
    std::function<bool()> cancelled;

    /// Higher runs first; within a band, earliest deadline first, then
    /// submission order.
    int priority = 0;

    /// Absolute deadline; a job still queued past it is rejected, and a
    /// nearer deadline wins admission within a priority band (EDF).
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  /// `depth` = maximum evaluations in flight (the stream depth); at least 1.
  /// A non-null `pool` enables saturation-adaptive admission: while the
  /// pool's queued-batch backlog exceeds its worker count, the effective
  /// depth shrinks (one slot per excess batch, floor 1) until it drains.
  explicit QueryScheduler(size_t depth,
                          std::shared_ptr<WorkerPool> pool = nullptr);

  /// Runs or rejects every remaining job, then joins the drivers.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  size_t depth() const { return drivers_.size(); }

  /// Enqueues one evaluation; never blocks.
  void Submit(Job job);

  /// Convenience: a plain closure is a priority-0 job with no deadline.
  void Submit(std::function<void()> job);

  /// Blocks until every job submitted so far has finished or been rejected.
  void Wait();

  /// The number of evaluations drivers may currently have in flight:
  /// depth(), shrunk while the shared pool is saturated. Introspection.
  size_t admission_limit();

  /// Jobs submitted but not yet admitted or rejected. Introspection.
  size_t queued_count();

 private:
  struct QueuedJob {
    Job job;
    uint64_t seq = 0;  // submission order, the priority tie-breaker
  };

  void DriverLoop();
  size_t AdmissionLimitLocked() const;
  /// Index into queue_ of the best admissible job, or queue_.size().
  size_t BestJobIndexLocked() const;

  std::mutex mu_;
  std::condition_variable work_cv_;  // drivers wait for jobs / admission
  std::condition_variable idle_cv_;  // Wait() waits for quiescence
  std::vector<QueuedJob> queue_;     // unordered; selection scans for best
  uint64_t next_seq_ = 0;
  size_t running_ = 0;
  bool stopping_ = false;
  std::shared_ptr<WorkerPool> pool_;
  std::vector<std::thread> drivers_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_QUERY_SCHEDULER_H_
