// QueryScheduler: interleaves several concurrent query evaluations over one
// shared transport and worker pool.
//
// The paper's guarantees are per query, but a server faces a *stream* of
// queries over one cluster. Each algorithm is a blocking protocol script
// (Post rounds, wait, unify, repeat — see runtime/coordinator.h), so the
// scheduler runs up to `depth` scripts at a time, each on its own driver
// thread against its own Coordinator (= its own transport run). The rounds
// of concurrent evaluations interleave on the shared WorkerPool, which
// serves one task from each blocked round in turn — round-robin across
// ready queries — so a wide round cannot starve the rest (worker_pool.h).
// While one query's driver sits in coordinator-side unification (or in a
// simulated network delay), the pool keeps crunching the other queries'
// site work; that overlap is the throughput win bench_multiquery measures.
//
// The scheduler knows nothing about algorithms: jobs are opaque closures.
// The engine-level entry point that pairs it with a shared transport is
// EvalBatch (core/engine.h).

#ifndef PAXML_RUNTIME_QUERY_SCHEDULER_H_
#define PAXML_RUNTIME_QUERY_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paxml {

class QueryScheduler {
 public:
  /// `depth` = maximum evaluations in flight (the stream depth); at least 1.
  explicit QueryScheduler(size_t depth);

  /// Runs every remaining job, then joins the drivers.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  size_t depth() const { return drivers_.size(); }

  /// Enqueues one evaluation. Jobs are admitted in submission order as
  /// drivers free up; Submit never blocks.
  void Submit(std::function<void()> job);

  /// Blocks until every job submitted so far has finished.
  void Wait();

 private:
  void DriverLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // drivers wait for jobs
  std::condition_variable idle_cv_;  // Wait() waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> drivers_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_QUERY_SCHEDULER_H_
