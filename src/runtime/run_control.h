// RunControl: the cooperative cancellation and deadline token of one query
// evaluation.
//
// The session API (core/engine.h) hands every submitted query a RunControl
// and threads it down to the evaluation's Coordinator. Cancellation is
// cooperative at *round boundaries*: the Coordinator calls Check() before
// starting a round (and before sleeping out a simulated network delay), so
// a cancelled or deadline-expired evaluation unwinds through the normal
// Status path — the Coordinator destructor closes its transport run,
// discarding whatever mail the abandoned protocol left behind, exactly as
// any error path does. Concurrent runs on the same transport are untouched
// (invariant 5, DESIGN.md §6); the cancellation and deadline tests pin this.
//
// The token also carries the run's final RunStats snapshot: the Coordinator
// publishes its stats on destruction, so an aborted evaluation still
// reports the rounds it ran and the bytes it moved (a successful one
// reports them through its DistributedResult instead).

#ifndef PAXML_RUNTIME_RUN_CONTROL_H_
#define PAXML_RUNTIME_RUN_CONTROL_H_

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>

#include "common/status.h"
#include "sim/stats.h"

namespace paxml {

/// Live accounting snapshot of an in-flight evaluation, published by the
/// Coordinator at every round boundary — what a client can see *before*
/// Wait() resolves (QueryHandle::Progress). Counts only what has actually
/// been accounted: staged-but-unsealed frames are not yet traffic.
struct RunProgress {
  int rounds = 0;             ///< coordinator rounds completed so far
  uint64_t messages = 0;      ///< accounted frames so far
  uint64_t envelopes = 0;     ///< accounted envelopes so far
  uint64_t bytes = 0;         ///< accounted payload bytes so far

  bool operator==(const RunProgress&) const = default;
};

class RunControl {
 public:
  using Clock = std::chrono::steady_clock;

  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Requests cooperative cancellation. Safe from any thread, any number of
  /// times; the evaluation observes it at its next round boundary (or while
  /// still queued, at admission).
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Sets the absolute deadline. Call before the evaluation starts (the
  /// engine does this at submission); not synchronized against Check().
  void set_deadline(Clock::time_point deadline) { deadline_ = deadline; }

  const std::optional<Clock::time_point>& deadline() const {
    return deadline_;
  }

  /// OK while the run may proceed; Cancelled / DeadlineExceeded once it
  /// must unwind. The Coordinator calls this at round boundaries.
  Status Check() const {
    if (cancel_requested()) {
      return Status::Cancelled("evaluation cancelled");
    }
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      return Status::DeadlineExceeded("evaluation deadline expired");
    }
    return Status::OK();
  }

  /// Final accounting of the (possibly aborted) run; the Coordinator
  /// publishes on destruction. For successful runs the stats moved into the
  /// DistributedResult take precedence over this snapshot.
  void PublishStats(const RunStats& stats) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = stats;
  }

  RunStats TakeStats() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(stats_);
  }

  /// Round-boundary progress publication (Coordinator::RunRound) and its
  /// reader (QueryHandle::Progress). Monotone per run; thread-safe.
  void PublishProgress(const RunProgress& progress) {
    std::lock_guard<std::mutex> lock(mu_);
    progress_ = progress;
  }

  RunProgress progress() const {
    std::lock_guard<std::mutex> lock(mu_);
    return progress_;
  }

 private:
  std::atomic<bool> cancel_{false};
  std::optional<Clock::time_point> deadline_;
  mutable std::mutex mu_;  // guards stats_ and progress_
  RunStats stats_;
  RunProgress progress_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_RUN_CONTROL_H_
