// WorkerPool: a persistent pool of worker threads shared by every
// concurrent consumer of a cluster's compute.
//
// Extracted out of PooledTransport so that one pool can serve many
// concurrent query evaluations (and any future consumer: batching,
// background compaction) instead of every transport spawning its own
// threads. The unit of submission is a *batch* — RunAll() enqueues a group
// of tasks and blocks until all of them have finished. Each batch carries
// its own completion latch, so RunAll is fully reentrant: any number of
// threads may run batches concurrently without sharing completion state
// (the old PooledTransport kept one inflight_ counter and one done_cv_ for
// the whole pool, which deadlocked two concurrent rounds against each
// other's tasks).
//
// Fairness: workers serve the active batches round-robin, one task at a
// time — after a worker takes a task from a batch, that batch goes to the
// back of the service order. With one batch per query round in flight,
// pool time is shared evenly across concurrent queries and a wide round
// cannot starve the others (the multi-query scheduler relies on this; see
// runtime/query_scheduler.h and DESIGN.md §6).

#ifndef PAXML_RUNTIME_WORKER_POOL_H_
#define PAXML_RUNTIME_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace paxml {

class WorkerPool {
 public:
  /// `workers` = 0 picks min(max(hardware concurrency, 2), 8).
  explicit WorkerPool(size_t workers = 0);

  /// Drains every queued task, then joins the workers. Destroying the pool
  /// while a RunAll is blocked in another thread is a caller bug.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t worker_count() const { return threads_.size(); }

  /// True when the calling thread is one of *this* pool's workers. A task
  /// running on pool A may legally RunAll on pool B (the site-parallel
  /// delivery path nests the cluster's site pool under the transport pool
  /// this way); only same-pool nesting deadlocks.
  bool OnWorkerThread() const;

  /// Runs `tasks` on the pool and blocks until every one of them has
  /// finished. Reentrant: concurrent callers wait on private latches.
  /// Tasks must not call RunAll on the same pool (a worker blocking on a
  /// nested batch could leave no worker to run it); that misuse is caught
  /// by a PAXML_CHECK instead of a silent deadlock.
  void RunAll(std::vector<std::function<void()>> tasks);

  /// Fire-and-forget: enqueues `task` as a single-task batch and returns
  /// immediately. Completion is the caller's protocol, not the pool's —
  /// the peer plane posts whole rounds this way and relies on its own
  /// kRoundDone barrier (runtime/socket_server.cc). Legal from a worker
  /// thread of the same pool (posting cannot block, so it cannot deadlock).
  void Post(std::function<void()> task);

  /// Batches that still have queued (unstarted) tasks. Test introspection.
  size_t queued_batch_count();

  /// Saturation gauges since construction (DESIGN.md §14): the maximum
  /// number of simultaneously executing tasks and the maximum queued
  /// (unstarted) task depth ever observed. Pool-global — under concurrent
  /// runs they show combined pressure, which is what the bench tables want
  /// next to speedup. Monotone; readers dedupe with max-merging
  /// (PoolStats::operator+=).
  uint64_t busy_peak();
  uint64_t queue_peak();

 private:
  /// One RunAll call: its queued tasks plus a completion latch.
  /// `remaining` counts queued *and* executing tasks; the batch leaves
  /// batches_ once its queue empties, while the caller's shared_ptr keeps
  /// the latch alive until the last task signals done_cv.
  struct Batch {
    std::deque<std::function<void()>> tasks;
    size_t remaining = 0;
    std::condition_variable done_cv;
  };

  void WorkerLoop();
  bool HasRunnableTaskLocked() const;

  void EnqueueBatch(std::shared_ptr<Batch> batch);

  std::mutex mu_;
  std::condition_variable work_cv_;
  /// Active batches in round-robin service order; only batches with at
  /// least one queued task appear here.
  std::list<std::shared_ptr<Batch>> batches_;
  bool stopping_ = false;
  /// Saturation accounting, all under mu_: current executing tasks,
  /// current queued (unstarted) tasks, and their historical peaks.
  size_t busy_ = 0;
  size_t queued_ = 0;
  uint64_t busy_peak_ = 0;
  uint64_t queue_peak_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_WORKER_POOL_H_
