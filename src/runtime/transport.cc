#include "runtime/transport.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "runtime/worker_pool.h"
#include "sim/cluster.h"

namespace paxml {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kQueryShip: return "query-ship";
    case MessageKind::kQualRequest: return "qual-request";
    case MessageKind::kSelRequest: return "sel-request";
    case MessageKind::kAnswerRequest: return "answer-request";
    case MessageKind::kDataRequest: return "data-request";
    case MessageKind::kQualUp: return "qual-up";
    case MessageKind::kSelUp: return "sel-up";
    case MessageKind::kAnswerUp: return "answer-up";
    case MessageKind::kQualDown: return "qual-down";
    case MessageKind::kSelDown: return "sel-down";
    case MessageKind::kDataShip: return "data-ship";
  }
  return "?";
}

uint64_t Envelope::WireBytes() const {
  uint64_t bytes = phantom_bytes;
  for (const WirePart& p : parts) {
    if (p.accounted) bytes += p.bytes.size();
  }
  return bytes;
}

Transport::RunBinding& Transport::BindingLocked(RunId run) {
  auto it = runs_.find(run);
  PAXML_CHECK(it != runs_.end());  // envelope or round for a run not open
  return it->second;
}

const Transport::RunBinding& Transport::BindingLocked(RunId run) const {
  auto it = runs_.find(run);
  PAXML_CHECK(it != runs_.end());  // envelope or round for a run not open
  return it->second;
}

bool Transport::HasPendingMailLocked(const RunBinding& binding) {
  for (const auto& box : binding.mailboxes) {
    if (!box.empty()) return true;
  }
  return false;
}

RunId Transport::OpenRun(const Cluster* cluster, RunStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  const RunId run = next_run_id_++;
  RunBinding& binding = runs_[run];
  binding.stats = stats;
  binding.mailboxes.assign(cluster->site_count(), {});
  return run;
}

void Transport::CloseRun(RunId run) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = runs_.find(run);
  PAXML_CHECK(it != runs_.end());
  runs_.erase(it);
}

void Transport::Send(Envelope env) {
  PAXML_CHECK(env.run != kNullRun);  // Post/SiteContext stamp the run id
  PAXML_CHECK(env.to != kNullSite);
  const uint64_t bytes = env.WireBytes();
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(env.run);
  PAXML_CHECK_LT(static_cast<size_t>(env.to), binding.mailboxes.size());
  // Local delivery is free: co-located fragments exchange no network bytes
  // (the query site holds the root fragment by assumption).
  const bool local = env.from == env.to && env.from != kNullSite;
  if (env.accounted && !local) {
    RunStats* stats = binding.stats;
    ++stats->total_messages;
    stats->total_bytes += bytes;
    switch (env.category) {
      case PayloadCategory::kAnswer:
        stats->answer_bytes += bytes;
        break;
      case PayloadCategory::kData:
        stats->data_bytes_shipped += bytes;
        break;
      case PayloadCategory::kControl:
        break;
    }
    if (env.from != kNullSite) {
      SiteStats& f = stats->per_site[static_cast<size_t>(env.from)];
      ++f.messages_sent;
      f.bytes_sent += bytes;
    }
    SiteStats& t = stats->per_site[static_cast<size_t>(env.to)];
    ++t.messages_received;
    t.bytes_received += bytes;
    EdgeStats& e = stats->edges[{env.from, env.to}];
    ++e.messages;
    e.bytes += bytes;
  }
  binding.mailboxes[static_cast<size_t>(env.to)].push_back(std::move(env));
}

std::vector<Envelope> Transport::Drain(RunId run, SiteId site) {
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(run);
  PAXML_CHECK_LT(static_cast<size_t>(site), binding.mailboxes.size());
  std::vector<Envelope> mail;
  mail.swap(binding.mailboxes[static_cast<size_t>(site)]);
  return mail;
}

bool Transport::HasMail(RunId run, SiteId site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const RunBinding& binding = BindingLocked(run);
  PAXML_CHECK_LT(static_cast<size_t>(site), binding.mailboxes.size());
  return !binding.mailboxes[static_cast<size_t>(site)].empty();
}

bool Transport::HasPendingMail(RunId run) const {
  std::lock_guard<std::mutex> lock(mu_);
  return HasPendingMailLocked(BindingLocked(run));
}

size_t Transport::open_run_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

std::vector<std::vector<Envelope>> Transport::SnapshotInboxes(
    RunId run, const std::vector<SiteId>& sites) {
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(run);
  std::vector<std::vector<Envelope>> inboxes;
  inboxes.reserve(sites.size());
  for (SiteId s : sites) {
    PAXML_CHECK_LT(static_cast<size_t>(s), binding.mailboxes.size());
    std::vector<Envelope> mail;
    mail.swap(binding.mailboxes[static_cast<size_t>(s)]);
    inboxes.push_back(std::move(mail));
  }
  return inboxes;
}

namespace {

double TimedDeliver(const Transport::DeliverFn& deliver, SiteId site,
                    std::vector<Envelope> mail) {
  const auto start = std::chrono::steady_clock::now();
  deliver(site, std::move(mail));
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

// ---- SyncTransport ----------------------------------------------------------

void SyncTransport::RunRound(RunId run, const std::vector<SiteId>& sites,
                             const DeliverFn& deliver,
                             std::vector<double>* durations) {
  durations->assign(sites.size(), 0);
  std::vector<std::vector<Envelope>> inboxes = SnapshotInboxes(run, sites);
  for (size_t i = 0; i < sites.size(); ++i) {
    (*durations)[i] = TimedDeliver(deliver, sites[i], std::move(inboxes[i]));
  }
}

// ---- PooledTransport --------------------------------------------------------

PooledTransport::PooledTransport(std::shared_ptr<WorkerPool> pool)
    : pool_(pool ? std::move(pool) : std::make_shared<WorkerPool>()) {}

PooledTransport::PooledTransport(size_t workers)
    : pool_(std::make_shared<WorkerPool>(workers)) {}

size_t PooledTransport::worker_count() const { return pool_->worker_count(); }

void PooledTransport::RunRound(RunId run, const std::vector<SiteId>& sites,
                               const DeliverFn& deliver,
                               std::vector<double>* durations) {
  durations->assign(sites.size(), 0);
  if (sites.empty()) return;
  // shared_ptr keeps the per-site mail copyable for std::function.
  auto inboxes = std::make_shared<std::vector<std::vector<Envelope>>>(
      SnapshotInboxes(run, sites));

  // One task per site: a site's mail is processed by exactly one worker, so
  // per-fragment state needs no locking in the algorithm handlers. RunAll
  // blocks on this round's private latch, so concurrent rounds of other
  // runs share the pool without waiting on each other's tasks.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    tasks.push_back([&deliver, &sites, durations, inboxes, i] {
      (*durations)[i] =
          TimedDeliver(deliver, sites[i], std::move((*inboxes)[i]));
    });
  }
  pool_->RunAll(std::move(tasks));
}

// ---- Builders ---------------------------------------------------------------

Envelope MakeQueryShipEnvelope(SiteId to, uint64_t query_bytes) {
  Envelope env;
  env.to = to;
  env.phantom_bytes = query_bytes;
  env.parts.push_back({MessageKind::kQueryShip, kNullFragment, {}, true});
  return env;
}

Envelope MakeRequestEnvelope(MessageKind kind, SiteId to, FragmentId fragment) {
  Envelope env;
  env.to = to;
  env.accounted = false;
  env.parts.push_back({kind, fragment, {}, false});
  return env;
}

// ---- Factory ----------------------------------------------------------------

std::unique_ptr<Transport> MakeTransport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSync:
      return std::make_unique<SyncTransport>();
    case TransportKind::kPooled:
      return std::make_unique<PooledTransport>();
  }
  PAXML_CHECK(false);
  return nullptr;
}

TransportKind DefaultTransportKind(const Cluster& cluster) {
  return cluster.options().parallel_execution ? TransportKind::kPooled
                                              : TransportKind::kSync;
}

std::unique_ptr<Transport> MakeTransportFor(const Cluster& cluster,
                                            std::optional<TransportKind> kind) {
  const TransportKind k = kind.value_or(DefaultTransportKind(cluster));
  if (k == TransportKind::kPooled) {
    return std::make_unique<PooledTransport>(cluster.worker_pool());
  }
  return MakeTransport(k);
}

Transport* EnsureTransport(Transport* transport, const Cluster& cluster,
                           std::unique_ptr<Transport>* owned) {
  if (transport != nullptr) return transport;
  *owned = MakeTransportFor(cluster);
  return owned->get();
}

}  // namespace paxml
