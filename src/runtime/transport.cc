#include "runtime/transport.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "runtime/frame.h"
#include "runtime/socket_transport.h"
#include "runtime/wire.h"
#include "runtime/worker_pool.h"
#include "sim/cluster.h"

namespace paxml {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kQueryShip: return "query-ship";
    case MessageKind::kQualRequest: return "qual-request";
    case MessageKind::kSelRequest: return "sel-request";
    case MessageKind::kAnswerRequest: return "answer-request";
    case MessageKind::kDataRequest: return "data-request";
    case MessageKind::kQualUp: return "qual-up";
    case MessageKind::kSelUp: return "sel-up";
    case MessageKind::kAnswerUp: return "answer-up";
    case MessageKind::kQualDown: return "qual-down";
    case MessageKind::kSelDown: return "sel-down";
    case MessageKind::kDataShip: return "data-ship";
    case MessageKind::kReachRequest: return "reach-request";
    case MessageKind::kReachUp: return "reach-up";
  }
  return "?";
}

uint64_t Envelope::WireBytes() const {
  uint64_t bytes = phantom_bytes;
  for (const WirePart& p : parts) {
    if (p.accounted) bytes += p.LogicalSize();
  }
  return bytes;
}

void AppendPartBytes(WirePart& part, std::string_view bytes, uint64_t logical) {
  // Materialize the running logical total the first time it diverges from
  // bytes.size(); from then on every append maintains it explicitly.
  if (part.logical_bytes == 0 && logical != bytes.size()) {
    part.logical_bytes = part.bytes.size();
  }
  if (part.logical_bytes != 0) part.logical_bytes += logical;
  part.bytes.append(bytes);
}

Transport::RunBinding& Transport::BindingLocked(RunId run) {
  auto it = runs_.find(run);
  PAXML_CHECK(it != runs_.end());  // envelope or round for a run not open
  return it->second;
}

const Transport::RunBinding& Transport::BindingLocked(RunId run) const {
  auto it = runs_.find(run);
  PAXML_CHECK(it != runs_.end());  // envelope or round for a run not open
  return it->second;
}

bool Transport::HasPendingMailLocked(const RunBinding& binding) {
  for (const auto& box : binding.mailboxes) {
    if (!box.empty()) return true;
  }
  for (const auto& [edge, staged] : binding.staging) {
    if (!staged.envelopes.empty()) return true;
  }
  return false;
}

RunId Transport::OpenRun(const Cluster* cluster, RunStats* stats,
                         const RunSpec* spec) {
  RunId run = kNullRun;
  {
    std::lock_guard<std::mutex> lock(mu_);
    run = next_run_id_++;
    RunBinding& binding = runs_[run];
    binding.stats = stats;
    binding.mailboxes.assign(cluster->site_count(), {});
  }
  RunOpened(run, cluster, spec);
  return run;
}

void Transport::CloseRun(RunId run) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = runs_.find(run);
    PAXML_CHECK(it != runs_.end());
    runs_.erase(it);
  }
  RunClosing(run);
}

bool Transport::TakeSealedFrameLocked(Frame& frame, FrameWireInfo* wire) {
  (void)frame;
  (void)wire;
  return false;
}

void Transport::RunOpened(RunId run, const Cluster* cluster,
                          const RunSpec* spec) {
  (void)run;
  (void)cluster;
  (void)spec;
}

void Transport::RunClosing(RunId run) { (void)run; }

void Transport::AccountMemoSavings(RunId run, const MemoSavings& savings) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = runs_.find(run);
  if (it == runs_.end()) return;  // races CloseRun like late remote mail
  RunStats* stats = it->second.stats;
  stats->memo_fragment_hits += savings.fragment_hits;
  stats->memo_saved_bytes += savings.saved_bytes;
  stats->memo_saved_seconds += savings.saved_seconds;
}

void Transport::AccountPoolStats(RunId run, const PoolStats& pool) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = runs_.find(run);
  if (it == runs_.end()) return;  // races CloseRun like late remote mail
  RunStats* stats = it->second.stats;
  stats->pool_tasks += pool.tasks;
  stats->pool_busy_peak = std::max(stats->pool_busy_peak, pool.busy_peak);
  stats->pool_queue_peak = std::max(stats->pool_queue_peak, pool.queue_peak);
}

void Transport::Send(Envelope env) {
  PAXML_CHECK(env.run != kNullRun);  // Post/SiteContext stamp the run id
  PAXML_CHECK(env.to != kNullSite);
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(env.run);
  PAXML_CHECK_LT(static_cast<size_t>(env.to), binding.mailboxes.size());
  // Local delivery is free and immediate: co-located fragments exchange no
  // network bytes (the query site holds the root fragment by assumption),
  // so there is nothing to frame either.
  const bool local = env.from == env.to && env.from != kNullSite;
  if (options_.batching && !local) {
    const RunId run = env.run;
    const EdgeKey edge{env.from, env.to};
    StagedEdge& staged = binding.staging[edge];
    PAXML_CHECK(!staged.stream_open);  // close the stream before more mail
    staged.staged_bytes += env.WireBytes();
    staged.envelopes.push_back(std::move(env));
    MaybeFlushEdgeLocked(run, binding, edge);
    return;
  }
  if (env.accounted && !local) {
    AccountEnvelopeBytes(env, binding.stats);
    RunStats* stats = binding.stats;
    ++stats->total_messages;
    if (env.from != kNullSite) {
      ++stats->per_site[static_cast<size_t>(env.from)].messages_sent;
    }
    ++stats->per_site[static_cast<size_t>(env.to)].messages_received;
    ++stats->edges[{env.from, env.to}].messages;
  }
  binding.mailboxes[static_cast<size_t>(env.to)].push_back(std::move(env));
}

void Transport::StreamBegin(Envelope head) {
  PAXML_CHECK(options_.batching);
  PAXML_CHECK(head.run != kNullRun);
  PAXML_CHECK(head.to != kNullSite);
  PAXML_CHECK(!head.parts.empty());  // the part StreamAppend extends
  const bool local = head.from == head.to && head.from != kNullSite;
  PAXML_CHECK(!local);  // EnvelopeStream buffers local shipments itself
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(head.run);
  PAXML_CHECK_LT(static_cast<size_t>(head.to), binding.mailboxes.size());
  StagedEdge& staged = binding.staging[{head.from, head.to}];
  PAXML_CHECK(!staged.stream_open);  // one open stream per (run, edge)
  staged.staged_bytes += head.WireBytes();
  staged.envelopes.push_back(std::move(head));
  staged.stream_open = true;
}

void Transport::StreamAppend(RunId run, SiteId from, SiteId to,
                             std::string_view bytes, uint64_t logical_bytes,
                             uint64_t phantom_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(run);
  auto it = binding.staging.find({from, to});
  PAXML_CHECK(it != binding.staging.end() && it->second.stream_open);
  Envelope& env = it->second.envelopes.back();
  AppendPartBytes(env.parts.back(), bytes, logical_bytes);
  env.phantom_bytes += phantom_bytes;
  if (env.parts.back().accounted) {
    it->second.staged_bytes += logical_bytes;
  }
  it->second.staged_bytes += phantom_bytes;
}

void Transport::StreamEnd(RunId run, SiteId from, SiteId to) {
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(run);
  auto it = binding.staging.find({from, to});
  PAXML_CHECK(it != binding.staging.end() && it->second.stream_open);
  it->second.stream_open = false;
  // The stream may have grown the edge past the adaptive-flush threshold;
  // now that it is closed the frame is free to seal.
  MaybeFlushEdgeLocked(run, binding, {from, to});
}

void Transport::SealEdgeLocked(RunId run, RunBinding& binding,
                               const EdgeKey& edge, StagedEdge&& staged) {
  // A frame must never seal around a half-written stream; streams are
  // scoped inside one site handler, which completes before any round
  // boundary of its run.
  PAXML_CHECK(!staged.stream_open);
  if (staged.envelopes.empty()) return;
  Frame frame;
  frame.run = run;
  frame.from = edge.first;
  frame.to = edge.second;
  frame.sequence = binding.next_frame_sequence[edge]++;
  frame.envelopes = std::move(staged.envelopes);
  // Hook first: a socket backend encodes (and maybe compresses) the frame
  // for its peer and reports the actual wire sizes; the in-process default
  // models the identical sizes from the options, so every backend accounts
  // the same numbers.
  FrameWireInfo wire;
  const bool taken = TakeSealedFrameLocked(frame, &wire);
  if (!taken) {
    wire = EncodeFrameForWire(frame, options_.compress_min_bytes, nullptr);
  }
  AccountFrameWire(frame, binding.stats, wire);
  if (taken) return;  // bound for a peer's wire
  auto& box = binding.mailboxes[static_cast<size_t>(edge.second)];
  for (Envelope& env : frame.envelopes) box.push_back(std::move(env));
}

void Transport::MaybeFlushEdgeLocked(RunId run, RunBinding& binding,
                                     const EdgeKey& edge) {
  if (options_.max_frame_bytes == 0) return;
  auto it = binding.staging.find(edge);
  if (it == binding.staging.end() || it->second.stream_open) return;
  if (it->second.staged_bytes <= options_.max_frame_bytes) return;
  SealEdgeLocked(run, binding, edge, std::move(it->second));
  binding.staging.erase(it);
}

void Transport::FlushRunLocked(RunId run, RunBinding& binding) {
  // Ordered map: frames seal lowest (from, to) first, so mailbox order is
  // deterministic across backends.
  for (auto& [edge, staged] : binding.staging) {
    SealEdgeLocked(run, binding, edge, std::move(staged));
  }
  binding.staging.clear();
}

void Transport::FlushToSiteLocked(RunId run, RunBinding& binding,
                                  SiteId site) {
  for (auto it = binding.staging.begin(); it != binding.staging.end();) {
    if (it->first.second == site) {
      SealEdgeLocked(run, binding, it->first, std::move(it->second));
      it = binding.staging.erase(it);
    } else {
      ++it;
    }
  }
}

void Transport::FlushRun(RunId run) {
  std::lock_guard<std::mutex> lock(mu_);
  FlushRunLocked(run, BindingLocked(run));
}

Status Transport::InjectFrame(Frame frame, const FrameWireInfo* wire) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = runs_.find(frame.run);
  // Mail for a run that has since closed legitimately races CloseRun (an
  // abandoned protocol's replies may still be in flight): drop it.
  if (it == runs_.end()) return Status::OK();
  RunBinding& binding = it->second;
  // Wire input: validate the ids before accounting would PAXML_CHECK.
  if (frame.to < 0 ||
      static_cast<size_t>(frame.to) >= binding.mailboxes.size()) {
    return Status::ParseError("frame: destination site out of range");
  }
  if (frame.from != kNullSite &&
      static_cast<size_t>(frame.from) >= binding.mailboxes.size()) {
    return Status::ParseError("frame: source site out of range");
  }
  const FrameWireInfo info =
      wire != nullptr
          ? *wire
          : EncodeFrameForWire(frame, options_.compress_min_bytes, nullptr);
  AccountFrameWire(frame, binding.stats, info);
  FrameWireInfo relay_unused;
  if (TakeSealedFrameLocked(frame, &relay_unused)) {
    return Status::OK();  // relay onward
  }
  auto& box = binding.mailboxes[static_cast<size_t>(frame.to)];
  for (Envelope& env : frame.envelopes) box.push_back(std::move(env));
  return Status::OK();
}

std::vector<Envelope> Transport::Drain(RunId run, SiteId site) {
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(run);
  PAXML_CHECK_LT(static_cast<size_t>(site), binding.mailboxes.size());
  FlushToSiteLocked(run, binding, site);
  std::vector<Envelope> mail;
  mail.swap(binding.mailboxes[static_cast<size_t>(site)]);
  return mail;
}

bool Transport::HasMail(RunId run, SiteId site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const RunBinding& binding = BindingLocked(run);
  PAXML_CHECK_LT(static_cast<size_t>(site), binding.mailboxes.size());
  if (!binding.mailboxes[static_cast<size_t>(site)].empty()) return true;
  for (const auto& [edge, staged] : binding.staging) {
    if (edge.second == site && !staged.envelopes.empty()) return true;
  }
  return false;
}

bool Transport::HasPendingMail(RunId run) const {
  std::lock_guard<std::mutex> lock(mu_);
  return HasPendingMailLocked(BindingLocked(run));
}

size_t Transport::open_run_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

std::vector<std::vector<Envelope>> Transport::SnapshotInboxes(
    RunId run, const std::vector<SiteId>& sites) {
  std::lock_guard<std::mutex> lock(mu_);
  RunBinding& binding = BindingLocked(run);
  // The round boundary: every edge the run staged since the last boundary
  // seals and is accounted now, before the snapshot, so the round sees the
  // full pre-round traffic (destinations outside `sites` keep the sealed
  // mail in their boxes for a later round or drain).
  FlushRunLocked(run, binding);
  std::vector<std::vector<Envelope>> inboxes;
  inboxes.reserve(sites.size());
  for (SiteId s : sites) {
    PAXML_CHECK_LT(static_cast<size_t>(s), binding.mailboxes.size());
    std::vector<Envelope> mail;
    mail.swap(binding.mailboxes[static_cast<size_t>(s)]);
    inboxes.push_back(std::move(mail));
  }
  return inboxes;
}

double TimedDeliver(const Transport::DeliverFn& deliver, SiteId site,
                    std::vector<Envelope> mail) {
  const auto start = std::chrono::steady_clock::now();
  deliver(site, std::move(mail));
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// ---- SyncTransport ----------------------------------------------------------

Status SyncTransport::RunRound(RunId run, const std::vector<SiteId>& sites,
                               const DeliverFn& deliver,
                               std::vector<double>* durations) {
  durations->assign(sites.size(), 0);
  std::vector<std::vector<Envelope>> inboxes = SnapshotInboxes(run, sites);
  for (size_t i = 0; i < sites.size(); ++i) {
    (*durations)[i] = TimedDeliver(deliver, sites[i], std::move(inboxes[i]));
  }
  return Status::OK();
}

// ---- PooledTransport --------------------------------------------------------

PooledTransport::PooledTransport(std::shared_ptr<WorkerPool> pool,
                                 TransportOptions options)
    : Transport(options),
      pool_(pool ? std::move(pool) : std::make_shared<WorkerPool>()) {}

PooledTransport::PooledTransport(size_t workers, TransportOptions options)
    : Transport(options), pool_(std::make_shared<WorkerPool>(workers)) {}

size_t PooledTransport::worker_count() const { return pool_->worker_count(); }

Status PooledTransport::RunRound(RunId run, const std::vector<SiteId>& sites,
                                 const DeliverFn& deliver,
                                 std::vector<double>* durations) {
  durations->assign(sites.size(), 0);
  if (sites.empty()) return Status::OK();
  // shared_ptr keeps the per-site mail copyable for std::function.
  auto inboxes = std::make_shared<std::vector<std::vector<Envelope>>>(
      SnapshotInboxes(run, sites));

  // One task per site: a site's mail is processed by exactly one worker, so
  // per-fragment state needs no locking in the algorithm handlers. RunAll
  // blocks on this round's private latch, so concurrent rounds of other
  // runs share the pool without waiting on each other's tasks.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    tasks.push_back([&deliver, &sites, durations, inboxes, i] {
      (*durations)[i] =
          TimedDeliver(deliver, sites[i], std::move((*inboxes)[i]));
    });
  }
  pool_->RunAll(std::move(tasks));
  return Status::OK();
}

// ---- Builders ---------------------------------------------------------------

Envelope MakeQueryShipEnvelope(SiteId to, uint64_t query_bytes) {
  Envelope env;
  env.to = to;
  env.phantom_bytes = query_bytes;
  env.parts.push_back({MessageKind::kQueryShip, kNullFragment, {}, true});
  return env;
}

Envelope MakeRequestEnvelope(MessageKind kind, SiteId to, FragmentId fragment) {
  Envelope env;
  env.to = to;
  env.accounted = false;
  env.parts.push_back({kind, fragment, {}, false});
  return env;
}

// ---- Factory ----------------------------------------------------------------

std::unique_ptr<Transport> MakeTransport(TransportKind kind,
                                         TransportOptions options) {
  switch (kind) {
    case TransportKind::kSync:
      return std::make_unique<SyncTransport>(std::move(options));
    case TransportKind::kPooled:
      return std::make_unique<PooledTransport>(nullptr, std::move(options));
    case TransportKind::kSocket:
      return std::make_unique<SocketTransport>(std::move(options));
  }
  PAXML_CHECK(false);
  return nullptr;
}

TransportKind DefaultTransportKind(const Cluster& cluster) {
  return cluster.options().parallel_execution ? TransportKind::kPooled
                                              : TransportKind::kSync;
}

std::unique_ptr<Transport> MakeTransportFor(const Cluster& cluster,
                                            std::optional<TransportKind> kind,
                                            TransportOptions options) {
  // A deployment map means a socket plane unless the caller insists
  // otherwise (in-process kinds then simply ignore the endpoints).
  const TransportKind k =
      kind.value_or(options.remote_endpoints.empty()
                        ? DefaultTransportKind(cluster)
                        : TransportKind::kSocket);
  if (k == TransportKind::kPooled) {
    return std::make_unique<PooledTransport>(cluster.worker_pool(),
                                             std::move(options));
  }
  return MakeTransport(k, std::move(options));
}

Transport* EnsureTransport(Transport* transport, const Cluster& cluster,
                           std::unique_ptr<Transport>* owned) {
  if (transport != nullptr) return transport;
  *owned = MakeTransportFor(cluster);
  return owned->get();
}

}  // namespace paxml
