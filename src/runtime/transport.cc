#include "runtime/transport.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "sim/cluster.h"

namespace paxml {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kQueryShip: return "query-ship";
    case MessageKind::kQualRequest: return "qual-request";
    case MessageKind::kSelRequest: return "sel-request";
    case MessageKind::kAnswerRequest: return "answer-request";
    case MessageKind::kDataRequest: return "data-request";
    case MessageKind::kQualUp: return "qual-up";
    case MessageKind::kSelUp: return "sel-up";
    case MessageKind::kAnswerUp: return "answer-up";
    case MessageKind::kQualDown: return "qual-down";
    case MessageKind::kSelDown: return "sel-down";
    case MessageKind::kDataShip: return "data-ship";
  }
  return "?";
}

uint64_t Envelope::WireBytes() const {
  uint64_t bytes = phantom_bytes;
  for (const WirePart& p : parts) {
    if (p.accounted) bytes += p.bytes.size();
  }
  return bytes;
}

void Transport::Begin(const Cluster* cluster, RunStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  cluster_ = cluster;
  stats_ = stats;
  mailboxes_.assign(cluster->site_count(), {});
}

void Transport::Send(Envelope env) {
  PAXML_CHECK(env.to != kNullSite);
  const uint64_t bytes = env.WireBytes();
  std::lock_guard<std::mutex> lock(mu_);
  PAXML_CHECK_LT(static_cast<size_t>(env.to), mailboxes_.size());
  // Local delivery is free: co-located fragments exchange no network bytes
  // (the query site holds the root fragment by assumption).
  const bool local = env.from == env.to && env.from != kNullSite;
  if (env.accounted && !local) {
    ++stats_->total_messages;
    stats_->total_bytes += bytes;
    switch (env.category) {
      case PayloadCategory::kAnswer:
        stats_->answer_bytes += bytes;
        break;
      case PayloadCategory::kData:
        stats_->data_bytes_shipped += bytes;
        break;
      case PayloadCategory::kControl:
        break;
    }
    if (env.from != kNullSite) {
      SiteStats& f = stats_->per_site[static_cast<size_t>(env.from)];
      ++f.messages_sent;
      f.bytes_sent += bytes;
    }
    SiteStats& t = stats_->per_site[static_cast<size_t>(env.to)];
    ++t.messages_received;
    t.bytes_received += bytes;
    EdgeStats& e = stats_->edges[{env.from, env.to}];
    ++e.messages;
    e.bytes += bytes;
  }
  mailboxes_[static_cast<size_t>(env.to)].push_back(std::move(env));
}

std::vector<Envelope> Transport::Drain(SiteId site) {
  std::lock_guard<std::mutex> lock(mu_);
  PAXML_CHECK_LT(static_cast<size_t>(site), mailboxes_.size());
  std::vector<Envelope> mail;
  mail.swap(mailboxes_[static_cast<size_t>(site)]);
  return mail;
}

bool Transport::HasMail(SiteId site) {
  std::lock_guard<std::mutex> lock(mu_);
  return !mailboxes_[static_cast<size_t>(site)].empty();
}

std::vector<std::vector<Envelope>> Transport::SnapshotInboxes(
    const std::vector<SiteId>& sites) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<Envelope>> inboxes;
  inboxes.reserve(sites.size());
  for (SiteId s : sites) {
    PAXML_CHECK_LT(static_cast<size_t>(s), mailboxes_.size());
    std::vector<Envelope> mail;
    mail.swap(mailboxes_[static_cast<size_t>(s)]);
    inboxes.push_back(std::move(mail));
  }
  return inboxes;
}

namespace {

double TimedDeliver(const Transport::DeliverFn& deliver, SiteId site,
                    std::vector<Envelope> mail) {
  const auto start = std::chrono::steady_clock::now();
  deliver(site, std::move(mail));
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

// ---- SyncTransport ----------------------------------------------------------

void SyncTransport::RunRound(const std::vector<SiteId>& sites,
                             const DeliverFn& deliver,
                             std::vector<double>* durations) {
  durations->assign(sites.size(), 0);
  std::vector<std::vector<Envelope>> inboxes = SnapshotInboxes(sites);
  for (size_t i = 0; i < sites.size(); ++i) {
    (*durations)[i] = TimedDeliver(deliver, sites[i], std::move(inboxes[i]));
  }
}

// ---- PooledTransport --------------------------------------------------------

PooledTransport::PooledTransport(size_t workers) {
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = std::min<size_t>(std::max<size_t>(hw, 2), 8);
  }
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

PooledTransport::~PooledTransport() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void PooledTransport::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping, queue fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      --inflight_;
    }
    done_cv_.notify_all();
  }
}

void PooledTransport::RunRound(const std::vector<SiteId>& sites,
                               const DeliverFn& deliver,
                               std::vector<double>* durations) {
  durations->assign(sites.size(), 0);
  if (sites.empty()) return;
  std::vector<std::vector<Envelope>> inboxes = SnapshotInboxes(sites);

  // One task per site: a site's mail is processed by exactly one worker, so
  // per-fragment state needs no locking in the algorithm handlers.
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    inflight_ += sites.size();
    for (size_t i = 0; i < sites.size(); ++i) {
      // shared_ptr keeps the task copyable for std::function.
      auto mail =
          std::make_shared<std::vector<Envelope>>(std::move(inboxes[i]));
      tasks_.push_back([&deliver, &sites, durations, mail, i] {
        (*durations)[i] = TimedDeliver(deliver, sites[i], std::move(*mail));
      });
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(pool_mu_);
  done_cv_.wait(lock, [this] { return inflight_ == 0; });
}

// ---- Builders ---------------------------------------------------------------

Envelope MakeQueryShipEnvelope(SiteId to, uint64_t query_bytes) {
  Envelope env;
  env.to = to;
  env.phantom_bytes = query_bytes;
  env.parts.push_back({MessageKind::kQueryShip, kNullFragment, {}, true});
  return env;
}

Envelope MakeRequestEnvelope(MessageKind kind, SiteId to, FragmentId fragment) {
  Envelope env;
  env.to = to;
  env.accounted = false;
  env.parts.push_back({kind, fragment, {}, false});
  return env;
}

// ---- Factory ----------------------------------------------------------------

std::unique_ptr<Transport> MakeTransport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSync:
      return std::make_unique<SyncTransport>();
    case TransportKind::kPooled:
      return std::make_unique<PooledTransport>();
  }
  PAXML_CHECK(false);
  return nullptr;
}

TransportKind DefaultTransportKind(const Cluster& cluster) {
  return cluster.options().parallel_execution ? TransportKind::kPooled
                                              : TransportKind::kSync;
}

Transport* EnsureTransport(Transport* transport, const Cluster& cluster,
                           std::unique_ptr<Transport>* owned) {
  if (transport != nullptr) return transport;
  *owned = MakeTransport(DefaultTransportKind(cluster));
  return owned->get();
}

}  // namespace paxml
