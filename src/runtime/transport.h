// Transport: the message plane under the distributed algorithms.
//
// Every byte that crosses sites in a query evaluation flows through exactly
// one choke point, Transport::Send — the algorithms never touch the stats
// directly. An Envelope is one accounted network message; it carries typed
// WireParts (encoded per core/messages.h) plus optionally "phantom" bytes
// that model payloads the simulation does not materialize (the query text,
// answer XML subtrees, the naive baseline's raw tree data). Request parts
// (kQueryShip, k*Request) are the control plane: they replace the closure
// calls of the old QueryRun::Round API and, like those calls, cost no bytes
// — the paper accounts coordinator-driven stage starts as *visits*, not
// traffic.
//
// One transport carries any number of concurrent query evaluations. Each
// evaluation opens a *run* (OpenRun) and gets a RunId that namespaces its
// mailboxes and its RunStats; every envelope is stamped with the run it
// belongs to, so concurrent evaluations never see each other's mail or
// bleed into each other's accounting (invariant 5, DESIGN.md §6).
//
// Framing (DESIGN.md §8): by default the transport does not put envelopes
// on the (modeled) wire one by one. Send *stages* each cross-site envelope
// under its (run, from, to) edge; at the next round boundary — the inbox
// snapshot that starts a delivery round, or a Drain of a destination's
// mail — the staged envelopes of an edge are sealed into one Frame
// (runtime/frame.h), accounted as a single message, and delivered. Byte
// totals, per-edge byte splits and visit counts are exactly those of
// unbatched sending (tested property); only the message count — and with
// it every per-message cost in NetworkCostModel — shrinks. Staging is keyed
// by run, so concurrent evaluations never share a frame. TransportOptions
// is the escape hatch: batching=false restores the historical
// envelope-per-message plane.
//
// Three backends deliver mail:
//   * SyncTransport    — sequential, deterministic; the reference semantics.
//   * PooledTransport  — delivers each round's site mail on a WorkerPool
//                        (by default the cluster's shared pool, so heavy
//                        query streams pay no per-run thread spawns).
//                        Produces identical answers, visit counts and
//                        per-edge byte totals: site work is independent per
//                        site and coordinator-side processing is
//                        order-normalized (see Coordinator).
//   * SocketTransport  — (runtime/socket_transport.h) sites named in
//                        TransportOptions::remote_endpoints are served by
//                        paxml_site peer processes over TCP; sealed frames
//                        are the wire records and the round barrier is a
//                        control-record exchange (DESIGN.md §9). Reproduces
//                        SyncTransport's exact RunStats (tested property).

#ifndef PAXML_RUNTIME_TRANSPORT_H_
#define PAXML_RUNTIME_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "sim/stats.h"

namespace paxml {

class Cluster;
class FragmentMemo;
class WorkerPool;
struct Frame;

/// Identifies one query evaluation bound to a Transport. Ids are unique per
/// transport for its lifetime (never reused).
using RunId = uint64_t;
inline constexpr RunId kNullRun = 0;

/// Discriminates the typed chunks inside an Envelope. The runtime never
/// decodes the payload kinds — each workload family's handlers do
/// (core/xml_handlers.h for the XML wire formats, core/reach.cc for the
/// graph rows); here they are opaque routed bytes.
enum class MessageKind : uint8_t {
  kQueryShip = 0,   ///< the query text travels to a site (phantom bytes)
  kQualRequest,     ///< start the qualifier stage for one fragment
  kSelRequest,      ///< start the selection (or combined) stage
  kAnswerRequest,   ///< settle candidates and ship answers
  kDataRequest,     ///< ship raw fragment data (naive baseline)
  kQualUp,          ///< QualUpMessage
  kSelUp,           ///< SelUpMessage
  kAnswerUp,        ///< AnswerUpMessage
  kQualDown,        ///< QualDownMessage
  kSelDown,         ///< SelDownMessage
  kDataShip,        ///< raw tree data (phantom bytes; naive baseline)
  kReachRequest,    ///< start local reachability partial evaluation (graph)
  kReachUp,         ///< boolean-equation rows of one graph fragment
};

const char* MessageKindName(MessageKind kind);

/// What a remote peer needs to reconstruct one evaluation's site-side
/// program: the workload family, the algorithm within it (an
/// AlgorithmName() string — "PaX2", "PaX3", "NaiveCentralized", "ParBoX"
/// for "xml"; "Reach" for "graph"), the query source text and the options
/// that change site-side behavior. In-process backends ignore it; the
/// socket backend ships it in the run-open control record, and the peer
/// compiles the query against its own copy of the data (deterministic:
/// both sides derive identical pruning, stack inits and wire encodings).
/// core/workload.h turns a spec back into handlers via the per-family
/// registry.
struct RunSpec {
  std::string algorithm;
  std::string query;
  bool use_annotations = false;
  uint8_t ship_mode = 0;  ///< AnswerShipMode as its wire value

  /// Workload family of the run ("xml", "graph"); selects the registered
  /// program builder. Last member with a default so existing four-field
  /// aggregate initializers keep meaning an XML run.
  std::string family = "xml";
};

/// Which RunStats bucket an envelope's bytes land in (besides total_bytes).
enum class PayloadCategory : uint8_t {
  kControl,  ///< partial answers, resolved values, the query itself
  kAnswer,   ///< shipped answers: the O(|ans|) term
  kData,     ///< raw XML shipping (NaiveCentralized baseline)
};

/// One typed chunk of an envelope. `bytes` holds the encoded wire format
/// for payload kinds and is empty for request kinds. An unaccounted part
/// rides along without contributing to the envelope's byte count — used for
/// the answer id list when answers already ship as self-describing XML
/// (phantom bytes), so accounting matches the paper's model.
struct WirePart {
  MessageKind kind;
  FragmentId fragment = kNullFragment;  ///< routing for request kinds
  std::string bytes;
  bool accounted = true;

  /// Logical (pre-transcoding) size of `bytes` for accounting, or 0 when
  /// the part ships exactly its logical encoding (the common case — the
  /// sentinel keeps every 4-field aggregate initializer meaning "bytes ARE
  /// the logical payload"). The answer-delta codec sets this to the
  /// fixed/absolute-varint size the ids *would* have cost, so per-edge
  /// bytes, answer_bytes and total_bytes stay bit-identical to the
  /// pre-delta wire while the frame encoding (wire_bytes) shrinks. A
  /// nonzero value never equals 0 by construction (headers are >= 1 byte),
  /// so "0 means bytes.size()" is unambiguous.
  uint64_t logical_bytes = 0;

  /// Accounted size of this part: the logical payload bytes.
  uint64_t LogicalSize() const {
    return logical_bytes != 0 ? logical_bytes : bytes.size();
  }
};

/// Behavior knobs of the message plane, shared by every backend.
struct TransportOptions {
  /// Coalesce each round's envelopes per (run, destination edge) into one
  /// Frame at the round boundary (the default). Off restores the seed's
  /// envelope-per-message accounting — the escape hatch for comparisons
  /// and for callers that need Send-time accounting.
  bool batching = true;

  /// Streamed answer shipments (core/answer_stream.h) append their id list
  /// in chunks of at most this many node ids, so no site materializes one
  /// monolithic answer payload. The chunk boundaries are invisible on the
  /// wire: chunks extend the open frame and concatenate to the exact
  /// AnswerUpMessage encoding.
  size_t answer_chunk_ids = 256;

  /// Chunk size for streamed raw-data shipments (the naive baseline's
  /// modeled fragment transfer), in phantom bytes per chunk.
  uint64_t data_chunk_bytes = 64 * 1024;

  /// Adaptive flush (0 = off): seal an edge's frame as soon as its staged
  /// envelopes exceed this many wire bytes instead of waiting for the round
  /// boundary, bounding peak staging memory for huge-|ans| rounds. Byte
  /// totals, visits and answers are unchanged — only message counts grow
  /// (tested property). An open EnvelopeStream defers the flush to its
  /// close (a frame never seals around a half-written stream).
  uint64_t max_frame_bytes = 0;

  /// Intra-site parallelism: a site's round mail is partitioned into
  /// per-fragment lanes and delivered on up to this many worker threads
  /// (runtime/site_driver.h). 1 (the default) keeps the serial path. The
  /// socket backend mirrors the knob to its paxml_site peers via the Hello
  /// record, so remote sites parallelize the same way. RunStats — answers,
  /// visits, per-edge bytes/messages/envelopes, frame sequences — are
  /// bit-identical to the serial order (tested property): handler sends are
  /// captured per lane and replayed in the serial mail order at the round
  /// seal (DESIGN.md §10).
  size_t site_threads = 1;

  /// Intra-fragment work splitting (0 = off): with parallel delivery on
  /// (site_threads > 1), a round segment whose largest per-fragment lane
  /// carries at least this percentage of the segment's envelope/byte
  /// weight has that lane's work split into independent sub-tasks by the
  /// evaluator (MessageHandlers::MakeSplitTask) and fanned out on the same
  /// pool as the other lanes — the paratreet visitor/interact idiom, for
  /// sites whose round is dominated by one large fragment (DESIGN.md §14).
  /// 100 splits only a lane that IS the whole segment; values below force
  /// splitting earlier (tests use 1). RunStats stay bit-identical to the
  /// serial order; `parallel_seconds` becomes max-over-sub-tasks. The
  /// socket backend mirrors the knob to paxml_site peers via Hello (wire
  /// protocol v6).
  uint64_t split_threshold_pct = 0;

  /// Cross-run fan-out on a paxml_site peer (wire protocol v6): how many
  /// *independent runs'* rounds one connection may deliver concurrently on
  /// the peer's site pool. 1 (the default) keeps the historical
  /// one-round-at-a-time connection loop; higher values let a multi-query
  /// client overlap its runs' rounds on the peer, with the kRoundDone
  /// barrier kept per-run. The peer may cap it (paxml_site --rounds).
  /// Rounds of one run are never reordered (the client's per-run barrier
  /// already serializes them), so each run's RunStats are unchanged.
  uint64_t peer_concurrent_rounds = 1;

  /// Frame compression threshold (0 = off): a sealed frame whose encoding
  /// is at least this many bytes is compressed (common/lz4.h) before it
  /// hits the wire, when the connection negotiated the codec (wire
  /// protocol v5; in-process backends model the same gate so sync ==
  /// pooled == socket wire accounting stays exact). Compression is
  /// invisible to every logical counter — total_bytes, answer_bytes,
  /// per-edge splits, visits — and shows up only in RunStats::wire_bytes
  /// (vs wire_raw_bytes) and the modeled/wall latency.
  uint64_t compress_min_bytes = 0;

  /// Remote deployment map of the socket backend: site -> "host:port" of
  /// the paxml_site process serving it. Sites absent from the map (the
  /// query site S_Q must be one of them) are evaluated in-process by the
  /// client. Non-empty selects TransportKind::kSocket in MakeTransportFor
  /// when no explicit kind is given.
  std::map<SiteId, std::string> remote_endpoints = {};

  /// Fragment-stage memo shared across this transport's runs
  /// (serving/fragment_memo.h). When set, each Coordinator opens a
  /// MemoSession for its run and the run's SiteDriver serves repeated
  /// per-fragment stages from the memo instead of re-evaluating them;
  /// answers and all accounted counters stay bit-identical, with the
  /// skipped work reported via RunStats::memo_* (DESIGN.md §12). Null (the
  /// default) disables memoization. In-process only — socket peers hold
  /// their own memo (paxml_site --memo).
  std::shared_ptr<FragmentMemo> fragment_memo = nullptr;
};

/// One network message. Envelope metadata (routing, kinds) models the
/// constant-size header real stacks add and is not accounted, exactly as
/// the old QueryRun::Send(bytes) accounting did.
struct Envelope {
  /// The evaluation this envelope belongs to. Coordinator::Post and
  /// SiteContext::Send stamp it; Transport::Send rejects kNullRun.
  RunId run = kNullRun;

  SiteId from = kNullSite;
  SiteId to = kNullSite;
  PayloadCategory category = PayloadCategory::kControl;

  /// Control-plane envelopes (requests only) are not accounted: they model
  /// the stage-start RPC whose cost the paper counts as a site visit.
  bool accounted = true;

  /// Modeled-but-not-materialized payload bytes (query text, answer XML,
  /// shipped tree data).
  uint64_t phantom_bytes = 0;

  std::vector<WirePart> parts;

  /// Accounted payload bytes of this envelope (logical part sizes — what
  /// the paper's cost model counts, independent of wire transcoding).
  uint64_t WireBytes() const;
};

/// Appends `bytes` (carrying `logical` accounted bytes) to a part,
/// maintaining the logical_bytes sentinel: parts stay in the compact
/// "logical == bytes.size()" representation until the first append whose
/// logical size differs, then materialize the running total. The ONE
/// append path for streamed chunks (Transport::StreamAppend and
/// EnvelopeStream's buffered mode), so batched and unbatched runs account
/// identically.
void AppendPartBytes(WirePart& part, std::string_view bytes, uint64_t logical);

/// How one sealed frame actually went on (or would go on) the wire:
/// `raw_bytes` is the plain Frame::Encode size, `wire_bytes` the bytes
/// written after optional compression (== raw_bytes when not compressed).
struct FrameWireInfo {
  uint64_t raw_bytes = 0;
  uint64_t wire_bytes = 0;
  bool compressed = false;
};

/// Message plane between the sites of one Cluster. Owns the per-run per-site
/// mailboxes and the accounting; subclasses choose the execution strategy
/// for delivery rounds. All methods are thread-safe; any number of runs may
/// be open concurrently.
class Transport {
 public:
  /// Delivery callback: receives a site's drained mailbox.
  using DeliverFn = std::function<void(SiteId, std::vector<Envelope>)>;

  virtual ~Transport() = default;

  /// Opens a fresh run over `cluster`, accounting into `stats` (per_site
  /// must already be sized). The returned id namespaces the run's
  /// mailboxes; it never aliases another open run. `spec` describes the
  /// evaluation to remote peers (see RunSpec); in-process backends ignore
  /// it and it may be null (the socket backend then serves the run as a
  /// pure frame relay — remote delivery rounds fail cleanly).
  RunId OpenRun(const Cluster* cluster, RunStats* stats,
                const RunSpec* spec = nullptr);

  /// Releases a run's binding. Pending mail is discarded (error paths
  /// legitimately abandon a protocol mid-round). The id must name an open
  /// run; its RunStats is not touched after this returns. A socket backend
  /// tears the run down on its peers too (graceful: peers drop the run's
  /// mail and program without disturbing other runs).
  void CloseRun(RunId run);

  /// THE choke point. With batching (the default), a cross-site envelope is
  /// staged under its (run, from, to) edge and accounted when the edge's
  /// frame seals at the next round boundary; unbatched, it is accounted
  /// immediately (unless control-plane) and enqueued directly. Local
  /// delivery — between co-located fragments — is always immediate and
  /// free: there is no wire to frame, matching the deployment reality that
  /// S_Q holds the root fragment. env.run must name an open run. Virtual
  /// (with the stream methods below) so the parallel delivery path can
  /// interpose a capture plane that records handler sends for deterministic
  /// replay (runtime/site_driver.h).
  virtual void Send(Envelope env);

  /// Opens a streamed envelope on `head`'s edge (batching only, cross-site
  /// only): `head` is staged as the edge's open stream and StreamAppend
  /// extends its last part in place, so chunks emitted over time land in
  /// the same frame as one envelope. Exactly one stream may be open per
  /// (run, edge); it must be closed (StreamEnd) before the next round
  /// boundary. Use runtime/site_runtime.h's EnvelopeStream, which also
  /// handles the unbatched and local cases, instead of calling these
  /// directly.
  virtual void StreamBegin(Envelope head);

  /// Appends `bytes` to the open stream's last part (accounting
  /// `logical_bytes` of logical payload — pass bytes.size() unless the
  /// chunk was transcoded, e.g. delta-encoded answer ids) and adds
  /// `phantom_bytes` to its envelope's modeled payload.
  virtual void StreamAppend(RunId run, SiteId from, SiteId to,
                            std::string_view bytes, uint64_t logical_bytes,
                            uint64_t phantom_bytes);

  /// Closes the open stream on the edge; the envelope seals with the
  /// edge's next frame.
  virtual void StreamEnd(RunId run, SiteId from, SiteId to);

  /// Removes and returns `site`'s pending mail in `run`, sealing any
  /// staged frames destined to it first (a drain is a round boundary for
  /// the drained site).
  std::vector<Envelope> Drain(RunId run, SiteId site);

  /// Seals every staged edge of `run` now: a round boundary without an
  /// inbox snapshot. The remote peer's end-of-round flush — after its
  /// handlers ran, this turns their staged replies into the frames that go
  /// back on the wire.
  void FlushRun(RunId run);

  /// The query methods are const so a read-only view of the transport
  /// (e.g. Engine::transport()) can introspect it. Staged (not yet sealed)
  /// mail counts as pending: HasMail answers "would a Drain deliver
  /// anything", not "has a frame already sealed".
  bool HasMail(RunId run, SiteId site) const;

  /// True if any site of `run` holds undelivered mail.
  bool HasPendingMail(RunId run) const;

  /// Number of currently open runs.
  size_t open_run_count() const;

  /// Runs one delivery round for `run`: drains the mailbox of every site in
  /// `sites` (snapshot up front, so mail sent *during* the round queues for
  /// the next one), then invokes `deliver` once per site, measuring wall
  /// time per site into `durations` (aligned with `sites`). Reentrant:
  /// concurrent rounds of different runs do not wait on each other's work.
  /// The returned status is the *transport's* own health (in-process
  /// backends always succeed; the socket backend surfaces dead peers and
  /// remote handler failures here) — errors inside `deliver` stay the
  /// caller's to collect, as before.
  virtual Status RunRound(RunId run, const std::vector<SiteId>& sites,
                          const DeliverFn& deliver,
                          std::vector<double>* durations) = 0;

  virtual const char* name() const = 0;

  const TransportOptions& options() const { return options_; }
  bool batching() const { return options_.batching; }

 protected:
  Transport() = default;
  explicit Transport(TransportOptions options) : options_(std::move(options)) {}

  /// Snapshots the mailboxes of `sites` in `run` under the lock, in order.
  /// This is the round boundary: every staged frame of the run seals and
  /// delivers (and is accounted) first, so the snapshot sees the full
  /// pre-round traffic and mail sent *during* the round stages for the
  /// next boundary.
  std::vector<std::vector<Envelope>> SnapshotInboxes(
      RunId run, const std::vector<SiteId>& sites);

  /// Subclass hook, called under the transport lock when a staged edge has
  /// sealed, BEFORE the frame is accounted. Return true to take the frame
  /// off the local plane — a socket backend queues its encoding for the
  /// destination's connection — filling `*wire` with the sizes it actually
  /// put on the wire (the caller accounts them); return false for the
  /// default local delivery, leaving `*wire` untouched (the caller models
  /// the wire sizes from TransportOptions so in-process runs reproduce the
  /// socket numbers exactly).
  virtual bool TakeSealedFrameLocked(Frame& frame, FrameWireInfo* wire);

  /// Delivers a frame received from elsewhere (a peer's socket) into the
  /// run's mailboxes, accounting it exactly as a locally sealed frame
  /// (AccountFrameWire — the codec round-trips everything accounting
  /// needs, so re-decoded frames reproduce RunStats). `wire` carries the
  /// received record's actual sizes; null models them from the options
  /// (in-process tests). Frames for runs that have already closed are
  /// dropped silently: remote mail legitimately races CloseRun. Frames
  /// whose destination TakeSealedFrameLocked claims are relayed onward
  /// instead of mailboxed. Errors mean wire-invalid site ids, never a
  /// crash — decoded input is untrusted.
  Status InjectFrame(Frame frame, const FrameWireInfo* wire = nullptr);

  /// Hook pair around a run's lifetime, called *outside* the transport
  /// lock: after OpenRun registered the binding (a socket backend announces
  /// the run and its spec to every peer) and after CloseRun erased it (the
  /// backend tells peers to drop the run).
  virtual void RunOpened(RunId run, const Cluster* cluster,
                         const RunSpec* spec);
  virtual void RunClosing(RunId run);

  /// Adds fragment-memo savings to the run's RunStats (no-op if the run has
  /// closed — a remote peer's RoundDone legitimately races CloseRun). The
  /// merge path for savings a *peer* reported; the local driver's savings
  /// are merged by the Coordinator's round loop.
  void AccountMemoSavings(RunId run, const MemoSavings& savings);

  /// Adds pool-saturation counters to the run's RunStats pool_* fields,
  /// with the same lifetime rules as AccountMemoSavings. The merge path
  /// for counters a *peer*'s RoundDone reported (wire protocol v6); the
  /// local driver's are merged by the Coordinator's round loop.
  void AccountPoolStats(RunId run, const PoolStats& pool);

 private:
  using EdgeKey = std::pair<SiteId, SiteId>;

  /// Envelopes staged on one (run, edge) since the last round boundary.
  struct StagedEdge {
    std::vector<Envelope> envelopes;
    /// The last envelope is an open EnvelopeStream; it must be closed
    /// before this edge's frame can seal.
    bool stream_open = false;
    /// Running wire-byte total of `envelopes` (the adaptive-flush trigger).
    uint64_t staged_bytes = 0;
  };

  /// Everything one evaluation owns inside the transport.
  struct RunBinding {
    RunStats* stats = nullptr;
    std::vector<std::vector<Envelope>> mailboxes;  // one per site
    /// std::map so frames seal in deterministic (from, to) order across
    /// backends.
    std::map<EdgeKey, StagedEdge> staging;
    /// Monotone per-edge frame numbering for the codec header; survives
    /// flushes for the run's lifetime.
    std::map<EdgeKey, uint64_t> next_frame_sequence;
  };

  /// Must hold mu_. PAXML_CHECKs that `run` is open.
  RunBinding& BindingLocked(RunId run);
  const RunBinding& BindingLocked(RunId run) const;

  static bool HasPendingMailLocked(const RunBinding& binding);

  /// Must hold mu_. Seals one staged edge into a Frame, accounts it into
  /// the run's stats and moves its envelopes to the destination mailbox.
  void SealEdgeLocked(RunId run, RunBinding& binding, const EdgeKey& edge,
                      StagedEdge&& staged);

  /// Must hold mu_. Seals every staged edge of the run (`FlushRunLocked`)
  /// or only the edges destined to one site (`FlushToSiteLocked`).
  void FlushRunLocked(RunId run, RunBinding& binding);
  void FlushToSiteLocked(RunId run, RunBinding& binding, SiteId site);

  /// Must hold mu_. Seals `edge` early if adaptive flush is on, the staged
  /// bytes crossed the threshold and no stream is open on it.
  void MaybeFlushEdgeLocked(RunId run, RunBinding& binding,
                            const EdgeKey& edge);

  /// mutable so the const query methods can lock. Guards runs_ and every
  /// binding's mailboxes + staging + stats.
  mutable std::mutex mu_;
  RunId next_run_id_ = 1;
  std::map<RunId, RunBinding> runs_;
  TransportOptions options_;
};

/// Deterministic sequential delivery; reproduces the seed simulator's
/// numbers exactly and keeps timing curves stable on small hosts.
class SyncTransport : public Transport {
 public:
  explicit SyncTransport(TransportOptions options = {})
      : Transport(std::move(options)) {}

  Status RunRound(RunId run, const std::vector<SiteId>& sites,
                  const DeliverFn& deliver,
                  std::vector<double>* durations) override;
  const char* name() const override { return "sync"; }
};

/// Delivers each round's site mail on a WorkerPool. Pass a shared pool
/// (e.g. Cluster::worker_pool()) to serve many transports and runs from one
/// set of threads; with no pool the transport creates a private one.
class PooledTransport : public Transport {
 public:
  explicit PooledTransport(std::shared_ptr<WorkerPool> pool = nullptr,
                           TransportOptions options = {});
  /// Private pool with exactly `workers` threads (0 = default sizing).
  explicit PooledTransport(size_t workers, TransportOptions options = {});

  Status RunRound(RunId run, const std::vector<SiteId>& sites,
                  const DeliverFn& deliver,
                  std::vector<double>* durations) override;
  const char* name() const override { return "pooled"; }

  size_t worker_count() const;
  const std::shared_ptr<WorkerPool>& pool() const { return pool_; }

 private:
  std::shared_ptr<WorkerPool> pool_;
};

/// Invokes `deliver` for one site's mail and returns the wall time spent —
/// the per-site duration unit every backend's RunRound reports, kept as
/// ONE definition so socket and in-process visits are timed identically.
double TimedDeliver(const Transport::DeliverFn& deliver, SiteId site,
                    std::vector<Envelope> mail);

/// Builders for the two control-plane envelope shapes every algorithm posts.

/// Models shipping the query text (`query_bytes` accounted phantom bytes).
Envelope MakeQueryShipEnvelope(SiteId to, uint64_t query_bytes);

/// A free stage-start request for one fragment (kind must be a *Request).
Envelope MakeRequestEnvelope(MessageKind kind, SiteId to, FragmentId fragment);

enum class TransportKind : uint8_t { kSync, kPooled, kSocket };

/// kSocket requires a non-empty TransportOptions::remote_endpoints and
/// dials the peers in the constructor (dial failures surface as clean
/// RunRound errors, not aborts).
std::unique_ptr<Transport> MakeTransport(TransportKind kind,
                                         TransportOptions options = {});

/// The backend a cluster's options ask for: pooled iff parallel execution.
TransportKind DefaultTransportKind(const Cluster& cluster);

/// Creates a `kind` backend for `cluster` (defaulting to the cluster's
/// preferred kind, or to kSocket when `options.remote_endpoints` is
/// non-empty); a pooled backend shares the cluster's WorkerPool. The one
/// place that wires transports to cluster resources — the engine and
/// EnsureTransport both go through it.
std::unique_ptr<Transport> MakeTransportFor(
    const Cluster& cluster, std::optional<TransportKind> kind = std::nullopt,
    TransportOptions options = {});

/// Returns `transport` if non-null; otherwise creates the cluster's default
/// backend into `owned` and returns that. A pooled default shares the
/// cluster's WorkerPool. The algorithms' entry points use this for their
/// optional-transport parameters.
Transport* EnsureTransport(Transport* transport, const Cluster& cluster,
                           std::unique_ptr<Transport>* owned);

}  // namespace paxml

#endif  // PAXML_RUNTIME_TRANSPORT_H_
