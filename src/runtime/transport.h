// Transport: the message plane under the distributed algorithms.
//
// Every byte that crosses sites in a query evaluation flows through exactly
// one choke point, Transport::Send — the algorithms never touch the stats
// directly. An Envelope is one accounted network message; it carries typed
// WireParts (encoded per core/messages.h) plus optionally "phantom" bytes
// that model payloads the simulation does not materialize (the query text,
// answer XML subtrees, the naive baseline's raw tree data). Request parts
// (kQueryShip, k*Request) are the control plane: they replace the closure
// calls of the old QueryRun::Round API and, like those calls, cost no bytes
// — the paper accounts coordinator-driven stage starts as *visits*, not
// traffic.
//
// Two backends deliver mail:
//   * SyncTransport    — sequential, deterministic; the reference semantics.
//   * PooledTransport  — a persistent worker pool with per-site mailboxes
//                        (replacing the old thread-per-site-per-round
//                        spawning). Produces identical answers, visit counts
//                        and per-edge byte totals: site work is independent
//                        per site and coordinator-side processing is
//                        order-normalized (see Coordinator).
//
// A future networked backend only needs to implement this interface; the
// algorithms are unchanged (see DESIGN.md §5).

#ifndef PAXML_RUNTIME_TRANSPORT_H_
#define PAXML_RUNTIME_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/stats.h"
#include "xml/tree.h"

namespace paxml {

class Cluster;

/// Discriminates the typed chunks inside an Envelope. The *Up/*Down kinds
/// carry the wire formats of core/messages.h; the rest are control plane.
enum class MessageKind : uint8_t {
  kQueryShip = 0,   ///< the query text travels to a site (phantom bytes)
  kQualRequest,     ///< start the qualifier stage for one fragment
  kSelRequest,      ///< start the selection (or combined) stage
  kAnswerRequest,   ///< settle candidates and ship answers
  kDataRequest,     ///< ship raw fragment data (naive baseline)
  kQualUp,          ///< QualUpMessage
  kSelUp,           ///< SelUpMessage
  kAnswerUp,        ///< AnswerUpMessage
  kQualDown,        ///< QualDownMessage
  kSelDown,         ///< SelDownMessage
  kDataShip,        ///< raw tree data (phantom bytes; naive baseline)
};

const char* MessageKindName(MessageKind kind);

/// Which RunStats bucket an envelope's bytes land in (besides total_bytes).
enum class PayloadCategory : uint8_t {
  kControl,  ///< partial answers, resolved values, the query itself
  kAnswer,   ///< shipped answers: the O(|ans|) term
  kData,     ///< raw XML shipping (NaiveCentralized baseline)
};

/// One typed chunk of an envelope. `bytes` holds the encoded wire format
/// for payload kinds and is empty for request kinds. An unaccounted part
/// rides along without contributing to the envelope's byte count — used for
/// the answer id list when answers already ship as self-describing XML
/// (phantom bytes), so accounting matches the paper's model.
struct WirePart {
  MessageKind kind;
  FragmentId fragment = kNullFragment;  ///< routing for request kinds
  std::string bytes;
  bool accounted = true;
};

/// One network message. Envelope metadata (routing, kinds) models the
/// constant-size header real stacks add and is not accounted, exactly as
/// the old QueryRun::Send(bytes) accounting did.
struct Envelope {
  SiteId from = kNullSite;
  SiteId to = kNullSite;
  PayloadCategory category = PayloadCategory::kControl;

  /// Control-plane envelopes (requests only) are not accounted: they model
  /// the stage-start RPC whose cost the paper counts as a site visit.
  bool accounted = true;

  /// Modeled-but-not-materialized payload bytes (query text, answer XML,
  /// shipped tree data).
  uint64_t phantom_bytes = 0;

  std::vector<WirePart> parts;

  /// Accounted payload bytes of this envelope.
  uint64_t WireBytes() const;
};

/// Message plane between the sites of one Cluster. Owns the per-site
/// mailboxes and the accounting; subclasses choose the execution strategy
/// for delivery rounds. A transport is bound to one run at a time via
/// Begin() and may be reused for subsequent runs.
class Transport {
 public:
  /// Delivery callback: receives a site's drained mailbox.
  using DeliverFn = std::function<void(SiteId, std::vector<Envelope>)>;

  virtual ~Transport() = default;

  /// Binds this transport to one query run over `cluster`, accounting into
  /// `stats` (per_site must already be sized). Clears all mailboxes.
  void Begin(const Cluster* cluster, RunStats* stats);

  /// THE choke point: accounts the envelope (unless it is control-plane or
  /// local — delivery between co-located fragments is free, matching the
  /// deployment reality that S_Q holds the root fragment) and enqueues it
  /// into the destination mailbox. Thread-safe.
  void Send(Envelope env);

  /// Removes and returns `site`'s pending mail. Thread-safe.
  std::vector<Envelope> Drain(SiteId site);

  bool HasMail(SiteId site);

  /// Runs one delivery round: drains the mailbox of every site in `sites`
  /// (snapshot up front, so mail sent *during* the round queues for the
  /// next one), then invokes `deliver` once per site, measuring wall time
  /// per site into `durations` (aligned with `sites`).
  virtual void RunRound(const std::vector<SiteId>& sites,
                        const DeliverFn& deliver,
                        std::vector<double>* durations) = 0;

  virtual const char* name() const = 0;

 protected:
  /// Snapshots the mailboxes of `sites` under the lock, in order.
  std::vector<std::vector<Envelope>> SnapshotInboxes(
      const std::vector<SiteId>& sites);

  const Cluster* cluster_ = nullptr;

 private:
  RunStats* stats_ = nullptr;
  std::mutex mu_;  // guards mailboxes_ and *stats_ during rounds
  std::vector<std::vector<Envelope>> mailboxes_;
};

/// Deterministic sequential delivery; reproduces the seed simulator's
/// numbers exactly and keeps timing curves stable on small hosts.
class SyncTransport : public Transport {
 public:
  void RunRound(const std::vector<SiteId>& sites, const DeliverFn& deliver,
                std::vector<double>* durations) override;
  const char* name() const override { return "sync"; }
};

/// Persistent worker pool; each round's site deliveries are dispatched to
/// the pool and joined. Threads are spawned once per transport, not per
/// round per site.
class PooledTransport : public Transport {
 public:
  /// `workers` = 0 picks min(hardware concurrency, 8), at least 2.
  explicit PooledTransport(size_t workers = 0);
  ~PooledTransport() override;

  void RunRound(const std::vector<SiteId>& sites, const DeliverFn& deliver,
                std::vector<double>* durations) override;
  const char* name() const override { return "pooled"; }

  size_t worker_count() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex pool_mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable done_cv_;   // RunRound waits for completion
  std::deque<std::function<void()>> tasks_;
  size_t inflight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Builders for the two control-plane envelope shapes every algorithm posts.

/// Models shipping the query text (`query_bytes` accounted phantom bytes).
Envelope MakeQueryShipEnvelope(SiteId to, uint64_t query_bytes);

/// A free stage-start request for one fragment (kind must be a *Request).
Envelope MakeRequestEnvelope(MessageKind kind, SiteId to, FragmentId fragment);

enum class TransportKind : uint8_t { kSync, kPooled };

std::unique_ptr<Transport> MakeTransport(TransportKind kind);

/// The backend a cluster's options ask for: pooled iff parallel execution.
TransportKind DefaultTransportKind(const Cluster& cluster);

/// Returns `transport` if non-null; otherwise creates the cluster's default
/// backend into `owned` and returns that. The algorithms' entry points use
/// this for their optional-transport parameters.
Transport* EnsureTransport(Transport* transport, const Cluster& cluster,
                           std::unique_ptr<Transport>* owned);

}  // namespace paxml

#endif  // PAXML_RUNTIME_TRANSPORT_H_
