// The socket wire protocol under the framed message plane.
//
// A connection between the client (the process driving Coordinators over a
// SocketTransport) and a paxml_site peer carries length-delimited *records*:
// a little-endian u32 length, a type byte, then the typed payload. Data
// records (kFrame) carry exactly a Frame::Encode buffer — the unit PR 4
// built, whose header (run, edge, per-edge sequence) is what reassembly
// needs; control records implement the run lifecycle (kOpenRun/kCloseRun)
// and the round barrier (kRoundStart/kRoundDone), replacing the function
// calls an in-process transport makes (DESIGN.md §9).
//
// Everything here is testable without a socket: RecordBuffer decodes a byte
// stream incrementally (truncated and corrupt input surface as need-more /
// clean parse errors), FrameReassembler validates per-(run, edge) sequence
// numbers (duplicates and reordering are protocol violations), and each
// control record has an Encode/Decode pair over the shared ByteWriter /
// ByteReader primitives. The fd helpers at the bottom are the only code
// that touches the network.

#ifndef PAXML_RUNTIME_WIRE_H_
#define PAXML_RUNTIME_WIRE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "boolexpr/codec.h"
#include "common/result.h"
#include "runtime/frame.h"
#include "runtime/transport.h"

namespace paxml {

/// Bumped on any incompatible change; peers reject a mismatch at Hello.
/// v2: HelloRecord grew site_threads (intra-site parallel delivery).
/// v3: OpenRunRecord carries RunSpec::family (workload fingerprint).
/// v4: RoundDoneRecord carries fragment-memo savings (serving layer).
/// v5: frame compression — HelloRecord offers codecs + compress_min_bytes,
///     HelloAckRecord answers with its own version + accepted codecs, and
///     kFrameZ records carry compressed frames. A v5 server still accepts
///     v4 clients (the trailing Hello fields are absent), and a v5 client
///     falls back to raw frames when the ack is pre-v5 or declines the
///     codec — mixed versions run correctly, just uncompressed.
/// v6: pool saturation — HelloRecord mirrors split_threshold_pct
///     (intra-fragment work splitting) and peer_concurrent_rounds
///     (cross-run fan-out on the peer's connection loop), and
///     RoundDoneRecord reports the peer's pool_* counters. A v6 server
///     accepts v4/v5 clients (the knobs default off), and a v6 client
///     against an older server simply runs without peer-side splitting —
///     the RoundDone pool fields are trailing, so old decoders ignore them.
inline constexpr uint32_t kWireProtocolVersion = 6;

/// Codec bitmask for the Hello/HelloAck negotiation. The only codec today
/// is the in-repo LZ4-style block format (common/lz4.h).
inline constexpr uint8_t kCodecLz4 = 1;

/// Upper bound on one record's length field: a corrupt length must be a
/// parse error, not a gigabyte allocation.
inline constexpr uint64_t kMaxRecordBytes = 1ull << 30;

enum class RecordType : uint8_t {
  kHello = 1,      ///< client -> peer: version + the site the client dialed
  kHelloAck,       ///< peer -> client: the site actually served
  kOpenRun,        ///< client -> peer: run id, RunSpec, placement fingerprint
  kCloseRun,       ///< client -> peer: drop the run's mail and program
  kFrame,          ///< either direction: one Frame::Encode buffer
  kRoundStart,     ///< client -> peer: deliver the site's pending mail now
  kRoundDone,      ///< peer -> client: round executed (duration + status)
  kError,          ///< peer -> client: a run failed remotely
  kFrameZ,         ///< either direction: varint raw size + lz4 block (v5+)
};

const char* RecordTypeName(RecordType type);

struct WireRecord {
  RecordType type;
  std::string payload;
};

/// Appends one length-delimited record to `out`.
void AppendRecord(RecordType type, std::string_view payload, std::string* out);

/// Incremental decoder over a received byte stream. Append() raw bytes as
/// they arrive; Next() pops complete records in order, returns nullopt when
/// the buffer holds only a record prefix (truncated input is not an error
/// until the stream ends), and a parse error for corrupt framing (unknown
/// type, oversized length).
class RecordBuffer {
 public:
  void Append(std::string_view bytes);

  Result<std::optional<WireRecord>> Next();

  /// Bytes buffered but not yet consumed — non-zero at connection EOF means
  /// the peer died mid-record.
  size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

/// Validates the frame stream of one connection: within a (run, edge) the
/// sequence numbers minted by the sender's staging are consecutive from the
/// first one seen, so a duplicated, dropped or reordered record surfaces as
/// a clean protocol error instead of corrupt accounting.
class FrameReassembler {
 public:
  Status Accept(const Frame& frame);

  /// Forgets a closed run's edges (sequence numbering is per run lifetime).
  void CloseRun(RunId run);

 private:
  std::map<std::tuple<RunId, SiteId, SiteId>, uint64_t> next_;
};

// ---- Control record payloads ------------------------------------------------

struct HelloRecord {
  uint32_t version = kWireProtocolVersion;
  SiteId site = kNullSite;  ///< the site the client expects this peer to be

  /// The client transport's message-plane knobs. The peer mirrors them on
  /// its own staging plane so both sides seal byte-identical frames —
  /// otherwise e.g. an adaptive flush on the client only would make socket
  /// message counts diverge from the in-process run.
  uint64_t answer_chunk_ids = 0;
  uint64_t data_chunk_bytes = 0;
  uint64_t max_frame_bytes = 0;

  /// TransportOptions::site_threads, mirrored so the peer parallelizes its
  /// site's per-fragment delivery the same way the client's local sites do
  /// (paxml_site may cap it; determinism does not depend on the value).
  uint64_t site_threads = 1;

  /// v5+: codecs the client can decode (kCodec* bitmask) and its
  /// compress_min_bytes threshold, mirrored by the peer so both directions
  /// gate identically (the wire-accounting equality depends on it). Encode
  /// emits them only when `version` >= 5, so tests can craft true v4
  /// hellos; Decode reads them only when the received version says so.
  uint8_t codecs = 0;
  uint64_t compress_min_bytes = 0;

  /// v6+: TransportOptions::split_threshold_pct, mirrored so the peer's
  /// SiteDriver splits a dominant lane the same way the client's local
  /// sites do, and TransportOptions::peer_concurrent_rounds, the client's
  /// ask for cross-run round fan-out on this connection (the server caps
  /// it; paxml_site --rounds). Gated like the v5 fields.
  uint64_t split_threshold_pct = 0;
  uint64_t peer_concurrent_rounds = 1;

  void Encode(ByteWriter* out) const;
  static Result<HelloRecord> Decode(ByteReader* in);
};

struct HelloAckRecord {
  SiteId site = kNullSite;

  /// v5+: the server's protocol version and the codec subset it accepted.
  /// Pre-v5 servers sent only `site`; Decode tolerates the short form and
  /// reports version 4 / no codecs, which is exactly the fallback state.
  uint32_t version = 4;
  uint8_t codecs = 0;

  void Encode(ByteWriter* out) const;
  static Result<HelloAckRecord> Decode(ByteReader* in);
};

/// Announces one run to a peer. Carries the RunSpec (empty algorithm = no
/// remote delivery possible, frames only) plus a placement fingerprint so a
/// peer serving a *different* cluster fails loudly at open, not with
/// silently divergent answers.
struct OpenRunRecord {
  RunId run = kNullRun;
  RunSpec spec;
  uint32_t site_count = 0;
  std::vector<SiteId> placement;  ///< fragment -> site, in fragment order

  void Encode(ByteWriter* out) const;
  static Result<OpenRunRecord> Decode(ByteReader* in);
};

struct CloseRunRecord {
  RunId run = kNullRun;

  void Encode(ByteWriter* out) const;
  static Result<CloseRunRecord> Decode(ByteReader* in);
};

struct RoundStartRecord {
  RunId run = kNullRun;
  SiteId site = kNullSite;

  void Encode(ByteWriter* out) const;
  static Result<RoundStartRecord> Decode(ByteReader* in);
};

/// The peer's half of the round barrier: its reply frames were written
/// *before* this record on the same ordered connection, so receipt means
/// the round's traffic has fully arrived.
struct RoundDoneRecord {
  RunId run = kNullRun;
  SiteId site = kNullSite;
  double seconds = 0;  ///< wall time of the site's handler work
  Status status;       ///< the handlers' dispatch status

  /// Fragment-memo savings of this round on the peer (zero unless the peer
  /// runs with --memo); the client merges them into the run's RunStats
  /// memo_* fields (sim/stats.h).
  uint64_t memo_fragment_hits = 0;
  uint64_t memo_saved_bytes = 0;
  double memo_saved_seconds = 0;

  /// v6+: the peer's pool saturation for this round (zero without fan-out),
  /// merged into the run's RunStats pool_* fields. Trailing on the wire:
  /// Encode always emits them, Decode tolerates their absence (a pre-v6
  /// peer), so mixed versions interoperate.
  uint64_t pool_tasks = 0;
  uint64_t pool_busy_peak = 0;
  uint64_t pool_queue_peak = 0;

  void Encode(ByteWriter* out) const;
  static Result<RoundDoneRecord> Decode(ByteReader* in);
};

struct ErrorRecord {
  RunId run = kNullRun;  ///< kNullRun: the whole connection is poisoned
  std::string message;

  void Encode(ByteWriter* out) const;
  static Result<ErrorRecord> Decode(ByteReader* in);
};

/// Encodes a payload struct into one complete record appended to `out`.
template <typename R>
void AppendControlRecord(RecordType type, const R& record, std::string* out) {
  ByteWriter w;
  record.Encode(&w);
  AppendRecord(type, w.bytes(), out);
}

/// One complete kFrame record (never compressed).
void AppendFrameRecord(const Frame& frame, std::string* out);

/// THE frame-record encoder, shared by the client transport, the peer's
/// reply plane and the in-process accounting model — one code path is what
/// keeps sync == pooled == socket wire accounting exact. Encodes `frame`
/// and, when `compress_min_bytes` > 0 and the plain encoding is at least
/// that large, compresses it (common/lz4.h); a compressed payload that
/// fails to shrink below the raw one falls back to raw (both sides apply
/// the same deterministic rule). When `out` is non-null the complete
/// record (kFrame or kFrameZ) is appended; null just models the sizes —
/// the no-materialization fast path for in-process transports with
/// compression off. The returned FrameWireInfo prices the record payload
/// (the unit wire_bytes has always counted; the 5-byte record header is
/// excluded, as before).
FrameWireInfo EncodeFrameForWire(const Frame& frame,
                                 uint64_t compress_min_bytes,
                                 std::string* out);

/// A decoded kFrame/kFrameZ record plus how it arrived.
struct ReceivedFrame {
  Frame frame;
  FrameWireInfo wire;
};

/// Decodes a kFrame or kFrameZ record. A kFrameZ on a connection that
/// never negotiated compression (`allow_compressed` false) is a clean
/// NetworkError — never silent corruption; truncated or oversized
/// compressed payloads, declared-size mismatches and trailing bytes are
/// clean parse errors.
Result<ReceivedFrame> DecodeFrameRecord(const WireRecord& record,
                                        bool allow_compressed);

// ---- Sockets ----------------------------------------------------------------
//
// Minimal blocking TCP plumbing (IPv4/IPv6 via getaddrinfo). All calls
// return Status/Result instead of aborting: a refused dial or a dead peer
// is an operational condition, not a bug.

/// Binds and listens on `host:port` (port 0 = ephemeral); returns the fd.
Result<int> ListenOn(const std::string& host, int port);

/// The locally bound port of a listening fd (resolves port 0).
Result<int> BoundPort(int fd);

/// Accepts one connection (blocking).
Result<int> AcceptOn(int fd);

/// Connects to "host:port" (blocking).
Result<int> DialEndpoint(const std::string& endpoint);

/// Writes all of `bytes` (send with SIGPIPE suppressed).
Status WriteAll(int fd, std::string_view bytes);

/// Reads up to `n` bytes; 0 means orderly EOF.
Result<size_t> ReadSome(int fd, char* buf, size_t n);

void CloseFd(int fd);

}  // namespace paxml

#endif  // PAXML_RUNTIME_WIRE_H_
