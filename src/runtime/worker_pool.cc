#include "runtime/worker_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace paxml {

namespace {

/// The pool whose WorkerLoop owns the current thread (null on non-worker
/// threads). Lets RunAll catch same-pool nesting — the documented deadlock
/// — while still permitting a task on one pool to run batches on another.
thread_local const WorkerPool* current_worker_pool = nullptr;

}  // namespace

bool WorkerPool::OnWorkerThread() const {
  return current_worker_pool == this;
}

WorkerPool::WorkerPool(size_t workers) {
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = std::min<size_t>(std::max<size_t>(hw, 2), 8);
  }
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

size_t WorkerPool::queued_batch_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_.size();
}

uint64_t WorkerPool::busy_peak() {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_peak_;
}

uint64_t WorkerPool::queue_peak() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_peak_;
}

void WorkerPool::EnqueueBatch(std::shared_ptr<Batch> batch) {
  const size_t added = batch->tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PAXML_CHECK(!stopping_);
    batches_.push_back(std::move(batch));
    queued_ += added;
    if (queued_ > queue_peak_) queue_peak_ = queued_;
  }
  work_cv_.notify_all();
}

bool WorkerPool::HasRunnableTaskLocked() const {
  // batches_ only holds batches with queued tasks, so non-empty == runnable.
  return !batches_.empty();
}

void WorkerPool::RunAll(std::vector<std::function<void()>> tasks) {
  // A worker blocking on a batch of its own pool may leave no worker free
  // to run it: abort loudly instead of deadlocking silently.
  PAXML_CHECK(!OnWorkerThread());
  if (tasks.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();
  for (auto& t : tasks) batch->tasks.push_back(std::move(t));
  EnqueueBatch(batch);

  std::unique_lock<std::mutex> lock(mu_);
  batch->done_cv.wait(lock, [&] { return batch->remaining == 0; });
}

void WorkerPool::Post(std::function<void()> task) {
  auto batch = std::make_shared<Batch>();
  batch->remaining = 1;
  batch->tasks.push_back(std::move(task));
  EnqueueBatch(std::move(batch));
}

void WorkerPool::WorkerLoop() {
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stopping_ || HasRunnableTaskLocked(); });
      if (!HasRunnableTaskLocked()) return;  // stopping, queues fully drained
      batch = batches_.front();
      task = std::move(batch->tasks.front());
      batch->tasks.pop_front();
      batches_.pop_front();
      // Round-robin across batches: the batch rejoins at the back, so the
      // next worker serves the next batch (= the next query's round).
      if (!batch->tasks.empty()) batches_.push_back(batch);
      --queued_;
      ++busy_;
      if (busy_ > busy_peak_) busy_peak_ = busy_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      // Notify under the lock: the waiter cannot return from wait (and
      // destroy the batch) before notify_all has completed.
      if (--batch->remaining == 0) batch->done_cv.notify_all();
    }
  }
}

}  // namespace paxml
