#include "runtime/coordinator.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "serving/fingerprint.h"
#include "serving/fragment_memo.h"
#include "sim/cluster.h"

namespace paxml {

Coordinator::Coordinator(const Cluster* cluster, Transport* transport,
                         MessageHandlers* handlers, RunControl* control,
                         const RunSpec* spec)
    : cluster_(cluster), transport_(transport), control_(control) {
  stats_.per_site.resize(cluster->site_count());
  run_ = transport_->OpenRun(cluster, &stats_, spec);
  // site_threads > 1 turns on intra-site parallel delivery, on the
  // cluster's *site* pool — distinct from worker_pool(), which executes the
  // pooled backend's per-site round tasks (nesting one pool's RunAll inside
  // its own workers would deadlock; WorkerPool checks for it).
  const size_t site_threads = transport->options().site_threads;
  // A fragment memo on the transport turns on the memoized delivery path:
  // the session pins this run's (fingerprint, epoch) so entries recorded
  // under other queries or older data are never replayed into it. Needs a
  // spec — an anonymous run has no fingerprint to share under.
  std::shared_ptr<MemoSession> memo;
  const auto& shared_memo = transport->options().fragment_memo;
  if (shared_memo != nullptr && spec != nullptr) {
    memo = std::make_shared<MemoSession>(shared_memo, RunFingerprint(*spec),
                                         cluster->data_epoch());
  }
  driver_.emplace(cluster, transport, run_, handlers,
                  site_threads > 1 ? cluster->site_worker_pool() : nullptr,
                  site_threads, std::move(memo));
}

Coordinator::~Coordinator() {
  transport_->CloseRun(run_);
  // Aborted runs (cancel, deadline, protocol error) never reach TakeStats;
  // the snapshot lets the session layer report the rounds they did run.
  if (control_ != nullptr) control_->PublishStats(stats_);
}

SiteId Coordinator::query_site() const { return cluster_->query_site(); }

void Coordinator::Post(Envelope env) {
  env.from = query_site();
  env.run = run_;
  transport_->Send(std::move(env));
}

Status Coordinator::RunRound(const std::string& label,
                             const std::vector<SiteId>& sites) {
  (void)label;
  // The cancellation boundary: a cancelled or deadline-expired run refuses
  // to start another round and unwinds via the ordinary Status path. Mail
  // already posted for this round is discarded by CloseRun.
  if (control_ != nullptr) PAXML_RETURN_NOT_OK(control_->Check());
  // A stage pruned down to no participants is not a round: nothing is
  // visited, nothing can reply. Counting it inflated reported round counts.
  if (sites.empty()) return Status::OK();
  ++stats_.rounds;

  Status round_status = Status::OK();
  std::mutex status_mu;
  std::vector<double> durations;
  // Per-site parallel cost as DeliverTimed models it (max-over-lanes for a
  // fanned-out site, see runtime/site_driver.h), indexed like `sites`.
  // Only locally delivered sites are written; remote sites keep the
  // sentinel and fall back to the transport's duration (a socket peer's
  // RoundDone.seconds — itself a DeliverTimed measurement).
  std::map<SiteId, size_t> site_index;
  for (size_t i = 0; i < sites.size(); ++i) site_index[sites[i]] = i;
  std::vector<double> modeled(sites.size(), -1.0);
  // Transport-level failures (a dead socket peer, a remote handler error)
  // come back as the round's status; local handler errors are collected
  // through the deliver callback as before.
  Status transport_status = transport_->RunRound(
      run_, sites,
      [&](SiteId site, std::vector<Envelope> mail) {
        // Site-side round mail: per-fragment lanes may fan out on the site
        // pool. The coordinator's own up-mail (DispatchCoordinatorMail)
        // stays on the strictly serial Deliver path.
        double seconds = 0;
        Status st = driver_->DeliverTimed(site, std::move(mail), &seconds);
        modeled[site_index.at(site)] = seconds;
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(status_mu);
          if (round_status.ok()) round_status = std::move(st);
        }
      },
      &durations);

  double round_max = 0;
  for (size_t i = 0; i < sites.size(); ++i) {
    SiteStats& s = stats_.per_site[static_cast<size_t>(sites[i])];
    ++s.visits;
    const double seconds = modeled[i] >= 0 ? modeled[i] : durations[i];
    s.compute_seconds += seconds;
    stats_.total_compute_seconds += seconds;
    round_max = std::max(round_max, seconds);
  }
  stats_.parallel_seconds += round_max;

  // Savings the local memoized deliveries accumulated this round; a remote
  // peer's savings arrive through its RoundDone record instead (merged by
  // SocketTransport::AccountMemoSavings).
  const MemoSavings saved = driver_->TakeMemoSavings();
  stats_.memo_fragment_hits += saved.fragment_hits;
  stats_.memo_saved_bytes += saved.saved_bytes;
  stats_.memo_saved_seconds += saved.saved_seconds;

  // Likewise pool saturation: local fan-out drains here, a remote peer's
  // arrives through its RoundDone record (wire protocol v6).
  const PoolStats pool = driver_->TakePoolStats();
  stats_.pool_tasks += pool.tasks;
  stats_.pool_busy_peak = std::max(stats_.pool_busy_peak, pool.busy_peak);
  stats_.pool_queue_peak = std::max(stats_.pool_queue_peak, pool.queue_peak);

  PAXML_RETURN_NOT_OK(round_status);
  PAXML_RETURN_NOT_OK(transport_status);
  PAXML_RETURN_NOT_OK(DispatchCoordinatorMail());
  // The round's traffic is fully accounted (every frame it produced sealed
  // during the snapshot or the coordinator drain): publish progress before
  // sleeping out any modeled delay, so clients polling the handle see the
  // round as soon as it logically completed.
  if (control_ != nullptr) {
    control_->PublishProgress({stats_.rounds, stats_.total_messages,
                               stats_.total_envelopes, stats_.total_bytes});
  }
  // Don't sleep out a modeled network delay for a run that was cancelled
  // while the round was in flight: report promptly instead.
  if (control_ != nullptr) PAXML_RETURN_NOT_OK(control_->Check());
  RealizeNetworkDelay();
  return Status::OK();
}

Status Coordinator::DispatchCoordinatorMail() {
  const SiteId sq = query_site();
  const auto start = std::chrono::steady_clock::now();
  Status status = Status::OK();
  while (status.ok() && transport_->HasMail(run_, sq)) {
    std::vector<Envelope> mail = transport_->Drain(run_, sq);
    // Pooled workers interleave arrivals from different senders; per-sender
    // order is already sequential, so a stable sort by sender restores one
    // deterministic processing order across backends.
    std::stable_sort(mail.begin(), mail.end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.from < b.from;
                     });
    status = driver_->Deliver(sq, std::move(mail));
  }
  const auto end = std::chrono::steady_clock::now();
  stats_.coordinator_seconds +=
      std::chrono::duration<double>(end - start).count();
  return status;
}

void Coordinator::RealizeNetworkDelay() {
  const auto& model = cluster_->options().simulated_network;
  if (!model.has_value()) return;
  // Reading stats_ without the transport lock is safe here: the round has
  // completed, so every Send that contributed has happened-before this
  // point (via the round's completion latch or the sequential backend).
  const uint64_t messages = stats_.total_messages;
  const uint64_t bytes = stats_.total_bytes;
  const double seconds = model->TransferSeconds(messages - delayed_messages_,
                                                bytes - delayed_bytes_);
  delayed_messages_ = messages;
  delayed_bytes_ = bytes;
  if (seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

void Coordinator::RunLocal(const std::function<void()>& work) {
  const auto start = std::chrono::steady_clock::now();
  work();
  const auto end = std::chrono::steady_clock::now();
  stats_.coordinator_seconds +=
      std::chrono::duration<double>(end - start).count();
}

std::vector<SiteId> Coordinator::SitesOf(
    const std::vector<FragmentId>& fragments) const {
  std::vector<SiteId> sites;
  sites.reserve(fragments.size());
  for (FragmentId f : fragments) sites.push_back(cluster_->site_of(f));
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

std::vector<SiteId> Coordinator::AllSites() const {
  std::vector<FragmentId> all;
  all.reserve(cluster_->fragment_count());
  for (size_t f = 0; f < cluster_->fragment_count(); ++f) {
    all.push_back(static_cast<FragmentId>(f));
  }
  return SitesOf(all);
}

}  // namespace paxml
