// SiteDriver: the site-side half of one evaluation's round loop.
//
// Extracted from the Coordinator so that both drivers of a run share one
// dispatch surface: the Coordinator delivers local sites' mail (and its own
// up-replies) through it, and a paxml_site peer (runtime/socket_server.h)
// delivers its hosted site's mail through an identical driver built from
// the client's RunSpec — the round barrier then works as a control-record
// exchange instead of a function call (DESIGN.md §9). Either way, a
// delivery decodes the envelopes in order into the algorithm's
// MessageHandlers via one SiteRuntime per site.

#ifndef PAXML_RUNTIME_SITE_DRIVER_H_
#define PAXML_RUNTIME_SITE_DRIVER_H_

#include <vector>

#include "runtime/site_runtime.h"
#include "runtime/transport.h"

namespace paxml {

class Cluster;

class SiteDriver {
 public:
  /// Builds one SiteRuntime per site of `cluster`, all dispatching into
  /// `handlers` and sending through `transport` under `run`.
  SiteDriver(const Cluster* cluster, Transport* transport, RunId run,
             MessageHandlers* handlers);

  SiteDriver(const SiteDriver&) = delete;
  SiteDriver& operator=(const SiteDriver&) = delete;

  /// Decodes and dispatches `mail` at `site`, in order; stops at the first
  /// handler error.
  Status Deliver(SiteId site, std::vector<Envelope> mail);

  /// Deliver() plus wall-time measurement — the unit both the local round
  /// loop and a remote peer's RoundDone report in.
  Status DeliverTimed(SiteId site, std::vector<Envelope> mail,
                      double* seconds);

 private:
  std::vector<SiteRuntime> sites_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_SITE_DRIVER_H_
