// SiteDriver: the site-side half of one evaluation's round loop.
//
// Extracted from the Coordinator so that both drivers of a run share one
// dispatch surface: the Coordinator delivers local sites' mail (and its own
// up-replies) through it, and a paxml_site peer (runtime/socket_server.h)
// delivers its hosted site's mail through an identical driver built from
// the client's RunSpec — the round barrier then works as a control-record
// exchange instead of a function call (DESIGN.md §9). Either way, a
// delivery decodes the envelopes in order into the algorithm's
// MessageHandlers via one SiteRuntime per site.
//
// Intra-site parallelism (DESIGN.md §10): when the driver is built with a
// WorkerPool and site_threads > 1, DeliverParallel() partitions a site's
// round mail into per-fragment *lanes* — an envelope whose parts all
// address one fragment with site-side kinds keys its fragment's lane;
// anything else (query ship, up-messages, data ship, mixed-fragment
// envelopes) is a barrier delivered serially in place — and evaluates the
// lanes concurrently. Determinism is preserved by capture-and-replay:
// each lane's handlers send through a private capture plane, and after the
// lanes join, the captured envelopes are replayed into the real transport
// in the original serial mail order, so staging order, adaptive-flush
// points, frame sequences and every per-edge byte/message/envelope count
// are bit-identical to the serial delivery (tested property). This is safe
// because every algorithm's site-side state is confined to per-fragment
// slots (the MessageHandlers threading contract, runtime/site_runtime.h).
//
// Intra-fragment splitting (DESIGN.md §14): lanes cannot help a site whose
// round is dominated by ONE large fragment. With
// TransportOptions::split_threshold_pct set, a segment whose largest lane
// carries at least that percentage of the segment's byte weight (and holds
// a single envelope) is offered to the algorithm via
// MessageHandlers::MakeSplitTask — the paratreet visitor/interact idiom:
// the evaluator builds independent sub-items, the driver runs them as item
// chunks in the SAME pool batch as the other lanes' tasks, and the
// evaluator's Finish() emits byte-identical sends in the serial order.
// When the split lane is the whole segment there is no interleaving to
// reproduce, so the capture plane is bypassed and Finish() sends straight
// into the real transport. `parallel_seconds` is max over every task of
// the batch (lanes and chunks alike), so the metric reflects the finer
// fan-out.
//
// Fragment-stage memoization (DESIGN.md §12): a driver built with a
// MemoSession serves repeated lane deliveries from the memo instead of
// evaluating them. The memoized walk is serial (a hit replays recorded
// replies into the real plane in mail order, so there is nothing to
// overlap); barriers always evaluate normally. On the first divergence of
// a fragment — no memo entry, or the request stream differs — the driver
// rebuilds that fragment's handler state by re-delivering the memo-served
// request prefix through a discard capture plane, then evaluates and
// records from there. The same per-fragment-state contract that makes lane
// parallelism sound makes this replay sound; replayed replies go through
// Transport::Send like computed ones, so RunStats' accounted counters stay
// bit-identical and only the memo_* savings fields differ.

#ifndef PAXML_RUNTIME_SITE_DRIVER_H_
#define PAXML_RUNTIME_SITE_DRIVER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "runtime/site_runtime.h"
#include "runtime/transport.h"
#include "serving/fragment_memo.h"

namespace paxml {

class Cluster;
class WorkerPool;

class SiteDriver {
 public:
  /// Builds one SiteRuntime per site of `cluster`, all dispatching into
  /// `handlers` and sending through `transport` under `run`. A non-null
  /// `pool` with `site_threads` > 1 enables the parallel delivery path
  /// (DeliverParallel); the pool must not be the one the transport's own
  /// delivery rounds execute on (see Cluster::site_worker_pool). A non-null
  /// `memo` enables the fragment-stage memo path, which supersedes lane
  /// fan-out (memoized deliveries are serial; see the header comment).
  SiteDriver(const Cluster* cluster, Transport* transport, RunId run,
             MessageHandlers* handlers,
             std::shared_ptr<WorkerPool> pool = nullptr,
             size_t site_threads = 1,
             std::shared_ptr<MemoSession> memo = nullptr);

  SiteDriver(const SiteDriver&) = delete;
  SiteDriver& operator=(const SiteDriver&) = delete;

  /// Decodes and dispatches `mail` at `site`, in order; stops at the first
  /// handler error. Always serial — the coordinator's up-mail dispatch
  /// depends on it (coordinator-side handler state is single-threaded).
  Status Deliver(SiteId site, std::vector<Envelope> mail);

  /// Deliver(), but per-fragment lanes of `mail` run concurrently on the
  /// driver's pool when parallel delivery is enabled (else identical to
  /// Deliver). Only for *site-side* round mail — both round loops (the
  /// Coordinator's and the peer's) deliver through this. On a handler
  /// error, sends captured up to and including the failing envelope (in
  /// serial order) are replayed, the rest discarded, and the first failing
  /// envelope's status (by serial position) is returned — later lanes may
  /// have run further than the serial order would have, which only ever
  /// happens on runs that are about to be torn down.
  Status DeliverParallel(SiteId site, std::vector<Envelope> mail);

  /// DeliverParallel() plus a measurement of the delivery's *parallel
  /// cost* — the unit both the local round loop and a remote peer's
  /// RoundDone report in. Serial work (barriers, replay, the serial
  /// fallback) is measured as thread-CPU time; each parallel segment adds
  /// the maximum over its lane tasks' thread-CPU time, the intra-site
  /// analogue of the cluster's max-over-sites metric (sim/cluster.h), so
  /// the reported cost reflects the fan-out even when the host has fewer
  /// cores than lanes.
  Status DeliverTimed(SiteId site, std::vector<Envelope> mail,
                      double* seconds);

  /// True when DeliverParallel may actually fan out (pool + threads > 1).
  /// The memo path supersedes fan-out.
  bool parallel_enabled() const {
    return memo_ == nullptr && pool_ != nullptr && site_threads_ > 1;
  }

  /// Savings the memo path accumulated since the last take (zero without a
  /// memo session). The round loops drain this into RunStats — locally
  /// after the round, remotely via the RoundDone record.
  MemoSavings TakeMemoSavings() {
    return memo_ != nullptr ? memo_->TakeSavings() : MemoSavings{};
  }

  /// Pool saturation accumulated since the last take (zero when nothing
  /// fanned out): exact task submissions by this driver plus the shared
  /// pool's peak gauges, sampled after each batch. Drained into
  /// RunStats::pool_* the same way memo savings are — locally after the
  /// round, remotely via the RoundDone record.
  PoolStats TakePoolStats();

 private:
  Status DeliverParallelImpl(SiteId site, std::vector<Envelope> mail,
                             double* seconds);
  Status DeliverSegmentParallel(SiteId site, std::vector<Envelope>* segment,
                                double* seconds);
  Status DeliverMemoized(SiteId site, std::vector<Envelope> mail,
                         double* seconds);
  /// The whole-segment split fast path: `env` is the only envelope of its
  /// segment, so Finish() sends straight into the real transport (no
  /// capture, no replay).
  Status DeliverSplitDirect(SiteId site, Envelope env,
                            std::unique_ptr<SplitTask> split,
                            double* seconds);
  void AccountBatch(size_t tasks_submitted);

  std::vector<SiteRuntime> sites_;
  const Cluster* cluster_;
  Transport* transport_;
  RunId run_;
  MessageHandlers* handlers_;
  std::shared_ptr<WorkerPool> pool_;
  size_t site_threads_ = 1;
  std::shared_ptr<MemoSession> memo_;
  /// Pool accounting (under mu_: site deliveries run concurrently on the
  /// pooled transport's workers).
  std::mutex pool_stats_mu_;
  PoolStats pool_stats_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_SITE_DRIVER_H_
