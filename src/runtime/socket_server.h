// SiteServer: the peer side of the socket message plane.
//
// One process per machine runs a SiteServer for its SiteId: it listens for
// a SocketTransport client, reconstructs each announced run's site-side
// program from the wired RunSpec (via a factory the core layer provides —
// core/site_program.h — so this runtime layer stays algorithm-agnostic),
// mailboxes the client's frames on a local staging plane, and on each
// kRoundStart drains its site's mail through a SiteDriver — exactly the
// dispatch path the in-process Coordinator uses. The replies its handlers
// stage seal into frames at the end of the round (the peer's round
// boundary), go back on the connection, and only then does kRoundDone
// complete the client's barrier — ordering that makes the barrier correct
// without any further synchronization (DESIGN.md §9).
//
// Runs are independent: kCloseRun (or a client disconnect) drops one run's
// mail, program and sequence state without touching the others. Accounting
// here is advisory only — the client's AccountFrame over the received
// frames is authoritative, and reproduces the in-process RunStats exactly.
//
// Cross-run fan-out (DESIGN.md §14): when a client's Hello asks for
// peer_concurrent_rounds > 1 (wire protocol v6), independent runs' rounds
// on one connection execute concurrently on a per-connection round pool —
// each round's reply frames and its kRoundDone go out as one locked write,
// so the per-run barrier ordering is untouched. Rounds of ONE run are
// never overlapped (the client's barrier already serializes them), so each
// run's RunStats are exactly its solo RunStats.

#ifndef PAXML_RUNTIME_SOCKET_SERVER_H_
#define PAXML_RUNTIME_SOCKET_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "runtime/site_runtime.h"
#include "runtime/transport.h"

namespace paxml {

class Cluster;
class FragmentMemo;

/// One evaluation's site-side program: the MessageHandlers plus everything
/// they borrow (compiled query, options, prune state). Built per run from
/// the client's RunSpec; destroyed at kCloseRun.
class SiteProgram {
 public:
  virtual ~SiteProgram() = default;
  virtual MessageHandlers* handlers() = 0;
};

/// Resolves a RunSpec to a program over the server's cluster. The core
/// layer provides the real one (MakeSiteProgramFactory); tests may inject
/// stubs.
using SiteProgramFactory =
    std::function<Result<std::unique_ptr<SiteProgram>>(const RunSpec&)>;

class SiteServer {
 public:
  /// Serves `site` of `cluster`. The cluster must be bit-identical to the
  /// client's (same document, fragmentation and placement) — kOpenRun
  /// carries a placement fingerprint and mismatches fail the run loudly.
  /// `max_site_threads` caps the intra-site parallelism a client's Hello
  /// may request (0 = honor the client unconditionally): the operator of a
  /// paxml_site machine knows its core budget better than the client does.
  /// A non-null `memo` (paxml_site --memo) turns on fragment-stage
  /// memoization for every run this server delivers: the memo is
  /// process-wide, so repeated queries reuse entries across connections and
  /// runs, and each round's savings are reported back in the RoundDone
  /// record (serving/fragment_memo.h). `allow_compress` (paxml_site
  /// --compress) lets the server accept a client's codec offer at Hello;
  /// off, every offer is declined and the connection runs raw frames.
  /// `max_concurrent_rounds` caps the cross-run round fan-out a client's
  /// Hello may request (paxml_site --rounds; 0 = honor the client, bounded
  /// at 16): like the thread cap, the operator knows the machine's budget.
  SiteServer(const Cluster* cluster, SiteId site, SiteProgramFactory factory,
             size_t max_site_threads = 0,
             std::shared_ptr<FragmentMemo> memo = nullptr,
             bool allow_compress = false, size_t max_concurrent_rounds = 0);
  ~SiteServer();

  SiteServer(const SiteServer&) = delete;
  SiteServer& operator=(const SiteServer&) = delete;

  /// Binds and listens on host:port (port 0 = ephemeral); returns the
  /// bound port.
  Result<int> Listen(const std::string& host, int port);

  /// Accepts and serves clients until Shutdown() or a fatal accept error,
  /// one connection at a time (a client disconnect tears down its runs and
  /// the server accepts the next client).
  Status Serve();

  /// Accepts and serves exactly one client connection.
  Status ServeOne();

  /// Unblocks Serve() from another thread.
  void Shutdown();

  SiteId site() const { return site_; }

  /// Test hook: answer Hellos with the pre-v5 short HelloAck (site only)
  /// and never negotiate codecs — impersonates an older server so the
  /// mixed-version interop path is testable in-process.
  void set_legacy_hello(bool legacy) { legacy_hello_ = legacy; }

 private:
  Status ServeConnection(int fd);

  const Cluster* cluster_;
  SiteId site_;
  SiteProgramFactory factory_;
  size_t max_site_threads_ = 0;
  std::shared_ptr<FragmentMemo> memo_;
  bool allow_compress_ = false;
  size_t max_concurrent_rounds_ = 0;
  bool legacy_hello_ = false;
  int listen_fd_ = -1;
  std::atomic<bool> shutdown_{false};
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_SOCKET_SERVER_H_
