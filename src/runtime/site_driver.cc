#include "runtime/site_driver.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "runtime/worker_pool.h"
#include "sim/cluster.h"

namespace paxml {

namespace {

/// The capture plane of one parallel lane: handlers send through it exactly
/// as through the real transport, but every envelope is recorded instead of
/// staged, to be replayed into the real plane in serial mail order after
/// the lanes join. Batching is off so an EnvelopeStream takes its buffered
/// path and Close() emits one whole envelope — PR 4's guarantee that the
/// chunks concatenate to the exact monolithic encoding is what makes the
/// replayed envelope byte-identical to the serially staged one. Unshared:
/// one capture per lane task, so no locking beyond the base class's.
class CaptureTransport : public Transport {
 public:
  explicit CaptureTransport(TransportOptions real)
      : Transport(Captured(std::move(real))) {}

  void Send(Envelope env) override { sent_.push_back(std::move(env)); }

  Status RunRound(RunId, const std::vector<SiteId>&, const DeliverFn&,
                  std::vector<double>*) override {
    return Status::Internal("the capture plane has no delivery rounds");
  }
  const char* name() const override { return "capture"; }

  /// The envelopes sent since the last take, in send order.
  std::vector<Envelope> TakeSent() {
    std::vector<Envelope> out = std::move(sent_);
    sent_.clear();
    return out;
  }

 private:
  static TransportOptions Captured(TransportOptions options) {
    // Chunk-size knobs are mirrored (handlers read them when streaming);
    // batching off routes EnvelopeStream through buffered Sends, and the
    // replay target owns framing, flushing and the remote plane.
    options.batching = false;
    options.remote_endpoints.clear();
    options.site_threads = 1;
    return options;
  }

  std::vector<Envelope> sent_;
};

/// The lane an envelope belongs to: fragment f when every part is a
/// site-side kind consistently addressed to f, else kNullFragment — a
/// *barrier* delivered serially in place. Up-messages, query/data ships and
/// mixed-fragment envelopes are conservatively barriers: their handlers
/// touch cross-fragment state (unifier, answer assembly) or carry no
/// fragment routing. The frame codec wires part.fragment for every kind,
/// so lanes survive the socket hop unchanged.
FragmentId EnvelopeLane(const Envelope& env) {
  FragmentId lane = kNullFragment;
  for (const WirePart& part : env.parts) {
    switch (part.kind) {
      case MessageKind::kQualRequest:
      case MessageKind::kSelRequest:
      case MessageKind::kAnswerRequest:
      case MessageKind::kDataRequest:
      case MessageKind::kQualDown:
      case MessageKind::kSelDown:
      case MessageKind::kReachRequest:
        break;
      default:
        return kNullFragment;
    }
    if (part.fragment == kNullFragment) return kNullFragment;
    if (lane == kNullFragment) {
      lane = part.fragment;
    } else if (lane != part.fragment) {
      return kNullFragment;
    }
  }
  return lane;
}

/// CPU time consumed by the calling thread. Lane tasks measure themselves
/// with this so that an oversubscribed host (fewer cores than lanes) still
/// reports each lane's own work, not the time it spent descheduled —
/// max-over-lanes then models the fan-out the way max-over-sites models
/// the multi-machine cluster (sim/cluster.h).
double ThreadCpuSeconds() {
  timespec ts;
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// CPU time of `fn` on the calling thread, added to *seconds when it is
/// non-null. CPU (not wall) everywhere keeps the serial and parallel
/// measurements comparable: on a host where concurrent site deliveries
/// interleave on few cores, wall time would charge a site for time it
/// spent descheduled.
Status Timed(double* seconds, const std::function<Status()>& fn) {
  if (seconds == nullptr) return fn();
  const double start = ThreadCpuSeconds();
  Status status = fn();
  *seconds += ThreadCpuSeconds() - start;
  return status;
}

}  // namespace

SiteDriver::SiteDriver(const Cluster* cluster, Transport* transport, RunId run,
                       MessageHandlers* handlers,
                       std::shared_ptr<WorkerPool> pool, size_t site_threads,
                       std::shared_ptr<MemoSession> memo)
    : cluster_(cluster),
      transport_(transport),
      run_(run),
      handlers_(handlers),
      pool_(std::move(pool)),
      site_threads_(site_threads),
      memo_(std::move(memo)) {
  sites_.reserve(cluster->site_count());
  for (size_t s = 0; s < cluster->site_count(); ++s) {
    sites_.emplace_back(static_cast<SiteId>(s), cluster, transport, run,
                        handlers);
  }
}

Status SiteDriver::Deliver(SiteId site, std::vector<Envelope> mail) {
  PAXML_CHECK_LT(static_cast<size_t>(site), sites_.size());
  return sites_[static_cast<size_t>(site)].Deliver(std::move(mail));
}

Status SiteDriver::DeliverParallel(SiteId site, std::vector<Envelope> mail) {
  return DeliverParallelImpl(site, std::move(mail), nullptr);
}

Status SiteDriver::DeliverParallelImpl(SiteId site, std::vector<Envelope> mail,
                                       double* seconds) {
  PAXML_CHECK_LT(static_cast<size_t>(site), sites_.size());
  if (memo_ != nullptr) return DeliverMemoized(site, std::move(mail), seconds);
  // A single envelope is still worth walking when splitting is on — the
  // one-hot-fragment round is exactly one big request envelope.
  const size_t min_mail =
      transport_->options().split_threshold_pct > 0 ? 1 : 2;
  if (!parallel_enabled() || mail.size() < min_mail) {
    return Timed(seconds, [&] {
      return sites_[static_cast<size_t>(site)].Deliver(std::move(mail));
    });
  }
  // Walk the mail in order: maximal runs of lane-keyed envelopes fan out
  // as parallel segments; barriers split them and run serially in place.
  size_t i = 0;
  while (i < mail.size()) {
    if (EnvelopeLane(mail[i]) == kNullFragment) {
      std::vector<Envelope> one;
      one.push_back(std::move(mail[i]));
      PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
        return sites_[static_cast<size_t>(site)].Deliver(std::move(one));
      }));
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < mail.size() && EnvelopeLane(mail[j]) != kNullFragment) ++j;
    std::vector<Envelope> segment(std::make_move_iterator(mail.begin() + i),
                                  std::make_move_iterator(mail.begin() + j));
    PAXML_RETURN_NOT_OK(DeliverSegmentParallel(site, &segment, seconds));
    i = j;
  }
  return Status::OK();
}

Status SiteDriver::DeliverSegmentParallel(SiteId site,
                                          std::vector<Envelope>* segment,
                                          double* seconds) {
  const size_t n = segment->size();
  // Group the segment's envelope indices by lane, lanes in order of first
  // appearance (deterministic, so the lane -> task assignment is too).
  std::map<FragmentId, size_t> lane_of;
  std::vector<std::vector<size_t>> lanes;
  for (size_t k = 0; k < n; ++k) {
    auto [it, inserted] = lane_of.emplace(EnvelopeLane((*segment)[k]),
                                          lanes.size());
    if (inserted) lanes.emplace_back();
    lanes[it->second].push_back(k);
  }

  // Split heuristic (DESIGN.md §14): the largest lane by byte weight
  // splits when it carries at least split_threshold_pct of the segment,
  // holds a single envelope, and the algorithm can actually split its
  // request (MakeSplitTask non-null with >= 2 items). Building the task is
  // the visitor pass — serial work, measured as such.
  std::unique_ptr<SplitTask> split;
  size_t hot_index = n;
  const uint64_t split_pct = transport_->options().split_threshold_pct;
  if (split_pct > 0) {
    std::vector<uint64_t> weight(lanes.size(), 0);
    uint64_t total = 0;
    for (size_t l = 0; l < lanes.size(); ++l) {
      for (size_t k : lanes[l]) {
        // +64 per envelope keeps tiny request lanes comparable by count.
        weight[l] += (*segment)[k].WireBytes() + 64;
      }
      total += weight[l];
    }
    const size_t hot = static_cast<size_t>(
        std::max_element(weight.begin(), weight.end()) - weight.begin());
    if (weight[hot] * 100 >= split_pct * total && lanes[hot].size() == 1) {
      const size_t k = lanes[hot][0];
      const Envelope& env = (*segment)[k];
      (void)Timed(seconds, [&] {
        if (!env.parts.empty()) {
          split = handlers_->MakeSplitTask(env, env.parts.back());
        }
        return Status::OK();
      });
      if (split != nullptr && split->item_count() >= 2) {
        hot_index = k;
        lanes.erase(lanes.begin() + static_cast<ptrdiff_t>(hot));
      } else {
        split.reset();  // the serial lane path evaluates it like any other
      }
    }
  }

  if (split == nullptr && lanes.size() < 2) {
    // One fragment, nothing to split: the serial fast path (no capture).
    return Timed(seconds, [&] {
      return sites_[static_cast<size_t>(site)].Deliver(std::move(*segment));
    });
  }
  if (split != nullptr && lanes.empty()) {
    // The split lane IS the segment (a single envelope): there is no
    // interleaving to reproduce, so bypass the capture plane entirely.
    return DeliverSplitDirect(site, std::move((*segment)[hot_index]),
                              std::move(split), seconds);
  }

  // Cap the lane fan-out at site_threads by merging lanes round-robin;
  // sorting each task's indices restores original order, so same-lane
  // envelopes still mutate their fragment's state in serial order.
  const size_t lane_task_count = std::min(site_threads_, lanes.size());
  std::vector<std::vector<size_t>> assignment(lane_task_count);
  for (size_t l = 0; l < lanes.size(); ++l) {
    auto& dst = assignment[l % lane_task_count];
    dst.insert(dst.end(), lanes[l].begin(), lanes[l].end());
  }
  for (auto& indices : assignment) std::sort(indices.begin(), indices.end());

  // Each slot is written by exactly one task (indices partition [0, n),
  // minus the hot envelope's slot, which the caller thread owns).
  std::vector<Status> statuses(n);
  std::vector<std::vector<Envelope>> sends(n);

  // The hot lane's capture context: pre-parts (down-messages riding ahead
  // of the request in its envelope) dispatch into it serially before the
  // batch; Finish() emits into it after the batch joins; TakeSent() then
  // yields the lane's sends in exactly the serial part order.
  std::optional<CaptureTransport> hot_capture;
  std::optional<SiteContext> hot_ctx;
  size_t chunk_count = 0;
  if (split != nullptr) {
    hot_capture.emplace(transport_->options());
    hot_ctx.emplace(site, cluster_, &*hot_capture, run_);
    const Envelope& env = (*segment)[hot_index];
    statuses[hot_index] = Timed(seconds, [&] {
      for (size_t p = 0; p + 1 < env.parts.size(); ++p) {
        PAXML_RETURN_NOT_OK(handlers_->OnPart(*hot_ctx, env, env.parts[p]));
      }
      return Status::OK();
    });
    if (statuses[hot_index].ok()) {
      chunk_count = std::min(site_threads_, split->item_count());
    }
  }

  // One batch for everything: the cold lanes' tasks and the hot lane's
  // item chunks run interleaved on the same pool, so the segment costs
  // max-over-all-tasks, not lanes-then-split.
  const size_t task_count = lane_task_count + chunk_count;
  std::vector<double> task_seconds(task_count, 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(task_count);
  for (size_t t = 0; t < lane_task_count; ++t) {
    tasks.push_back([this, site, segment, &statuses, &sends, &task_seconds, t,
                     indices = std::move(assignment[t])] {
      const double cpu_start = ThreadCpuSeconds();
      CaptureTransport capture(transport_->options());
      SiteRuntime runtime(site, cluster_, &capture, run_, handlers_);
      for (size_t k : indices) {
        std::vector<Envelope> one;
        one.push_back(std::move((*segment)[k]));
        statuses[k] = runtime.Deliver(std::move(one));
        sends[k] = capture.TakeSent();
        if (!statuses[k].ok()) break;  // a failed lane stops, like serial
      }
      task_seconds[t] = ThreadCpuSeconds() - cpu_start;
    });
  }
  SplitTask* split_raw = split.get();
  for (size_t c = 0; c < chunk_count; ++c) {
    tasks.push_back(
        [split_raw, c, chunk_count, lane_task_count, &task_seconds] {
          const double cpu_start = ThreadCpuSeconds();
          const size_t items = split_raw->item_count();
          for (size_t item = c; item < items; item += chunk_count) {
            split_raw->RunItem(item);
          }
          task_seconds[lane_task_count + c] = ThreadCpuSeconds() - cpu_start;
        });
  }
  pool_->RunAll(std::move(tasks));
  AccountBatch(task_count);
  if (seconds != nullptr) {
    // The segment costs what its slowest task costs — measured as that
    // task's own CPU time, so the metric holds on oversubscribed hosts.
    *seconds += *std::max_element(task_seconds.begin(), task_seconds.end());
  }
  if (split != nullptr && statuses[hot_index].ok()) {
    statuses[hot_index] =
        Timed(seconds, [&] { return split->Finish(*hot_ctx); });
  }
  if (split != nullptr) sends[hot_index] = hot_capture->TakeSent();

  // Replay into the real plane in serial mail order: staging order, seal
  // points and frame sequences come out bit-identical to the serial
  // delivery. On error, replay stops after the first failing envelope's
  // partial sends — exactly what the serial order would have sent.
  size_t stop = n;
  for (size_t k = 0; k < n; ++k) {
    if (!statuses[k].ok()) {
      stop = k;
      break;
    }
  }
  Status replayed = Timed(seconds, [&] {
    for (size_t k = 0; k < n && k <= stop; ++k) {
      for (Envelope& env : sends[k]) transport_->Send(std::move(env));
    }
    return Status::OK();
  });
  (void)replayed;
  return stop == n ? Status::OK() : statuses[stop];
}

Status SiteDriver::DeliverSplitDirect(SiteId site, Envelope env,
                                      std::unique_ptr<SplitTask> split,
                                      double* seconds) {
  // With the whole segment split, the serial order IS the pre-parts'
  // sends followed by Finish()'s — which is exactly how they are emitted
  // here, straight into the real plane: no capture, no replay.
  SiteContext ctx(site, cluster_, transport_, run_);
  PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
    for (size_t p = 0; p + 1 < env.parts.size(); ++p) {
      PAXML_RETURN_NOT_OK(handlers_->OnPart(ctx, env, env.parts[p]));
    }
    return Status::OK();
  }));
  const size_t items = split->item_count();
  const size_t chunk_count = std::min(site_threads_, items);
  std::vector<double> task_seconds(chunk_count, 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunk_count);
  SplitTask* split_raw = split.get();
  for (size_t c = 0; c < chunk_count; ++c) {
    tasks.push_back([split_raw, c, chunk_count, items, &task_seconds] {
      const double cpu_start = ThreadCpuSeconds();
      for (size_t item = c; item < items; item += chunk_count) {
        split_raw->RunItem(item);
      }
      task_seconds[c] = ThreadCpuSeconds() - cpu_start;
    });
  }
  pool_->RunAll(std::move(tasks));
  AccountBatch(chunk_count);
  if (seconds != nullptr) {
    *seconds += *std::max_element(task_seconds.begin(), task_seconds.end());
  }
  return Timed(seconds, [&] { return split->Finish(ctx); });
}

void SiteDriver::AccountBatch(size_t tasks_submitted) {
  // The peaks are pool-global gauges (the pool may be shared with other
  // runs); tasks are exact for this driver. Sampling after each batch
  // keeps the gauges current without touching the pool's hot path.
  const uint64_t busy = pool_->busy_peak();
  const uint64_t queue = pool_->queue_peak();
  std::lock_guard<std::mutex> lock(pool_stats_mu_);
  pool_stats_.tasks += tasks_submitted;
  if (busy > pool_stats_.busy_peak) pool_stats_.busy_peak = busy;
  if (queue > pool_stats_.queue_peak) pool_stats_.queue_peak = queue;
}

PoolStats SiteDriver::TakePoolStats() {
  std::lock_guard<std::mutex> lock(pool_stats_mu_);
  PoolStats out = pool_stats_;
  pool_stats_ = PoolStats{};
  return out;
}

Status SiteDriver::DeliverMemoized(SiteId site, std::vector<Envelope> mail,
                                   double* seconds) {
  for (Envelope& env : mail) {
    const FragmentId lane = EnvelopeLane(env);
    if (lane == kNullFragment) {
      // Barriers (query ship, up-mail, mixed-fragment envelopes) always
      // evaluate: their handlers touch cross-fragment state the memo does
      // not model.
      std::vector<Envelope> one;
      one.push_back(std::move(env));
      PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
        return sites_[static_cast<size_t>(site)].Deliver(std::move(one));
      }));
      continue;
    }
    std::vector<Envelope> replies;
    std::vector<Envelope> recover;
    if (memo_->Lookup(lane, env, &replies, &recover)) {
      // Hit: the recorded replies go through the real plane exactly where
      // the handler's sends would have — staging order, seal points and all
      // accounted counters come out bit-identical to an evaluated delivery.
      PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
        for (Envelope& r : replies) {
          r.run = run_;
          transport_->Send(std::move(r));
        }
        return Status::OK();
      }));
      continue;
    }
    if (!recover.empty()) {
      // First divergence of this fragment after memo-served steps: its
      // handler state was never built this run. Re-deliver the served
      // request prefix through a discard plane to rebuild it — the replies
      // were already replayed at the hits, so these sends must not reach
      // the wire a second time.
      CaptureTransport discard(transport_->options());
      SiteRuntime rebuild(site, cluster_, &discard, run_, handlers_);
      for (Envelope& r : recover) {
        r.run = run_;
        std::vector<Envelope> one;
        one.push_back(std::move(r));
        PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
          return rebuild.Deliver(std::move(one));
        }));
        (void)discard.TakeSent();
      }
    }
    // Evaluate through a capture plane so the reply set can be recorded,
    // measuring the handler's own CPU as the entry's cost.
    CaptureTransport capture(transport_->options());
    SiteRuntime runtime(site, cluster_, &capture, run_, handlers_);
    const Envelope request = env;  // the memo keeps the request's identity
    const double cpu_start = ThreadCpuSeconds();
    std::vector<Envelope> one;
    one.push_back(std::move(env));
    const Status status = runtime.Deliver(std::move(one));
    const double eval_seconds = ThreadCpuSeconds() - cpu_start;
    if (seconds != nullptr) *seconds += eval_seconds;
    std::vector<Envelope> sends = capture.TakeSent();
    // Replay even on error: the serial order would have sent the failing
    // envelope's partial output too.
    PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
      for (const Envelope& s : sends) transport_->Send(Envelope(s));
      return Status::OK();
    }));
    PAXML_RETURN_NOT_OK(status);
    memo_->Record(lane, request, std::move(sends), eval_seconds);
  }
  return Status::OK();
}

Status SiteDriver::DeliverTimed(SiteId site, std::vector<Envelope> mail,
                                double* seconds) {
  *seconds = 0;
  return DeliverParallelImpl(site, std::move(mail), seconds);
}

}  // namespace paxml
