#include "runtime/site_driver.h"

#include <chrono>

#include "common/logging.h"
#include "sim/cluster.h"

namespace paxml {

SiteDriver::SiteDriver(const Cluster* cluster, Transport* transport, RunId run,
                       MessageHandlers* handlers) {
  sites_.reserve(cluster->site_count());
  for (size_t s = 0; s < cluster->site_count(); ++s) {
    sites_.emplace_back(static_cast<SiteId>(s), cluster, transport, run,
                        handlers);
  }
}

Status SiteDriver::Deliver(SiteId site, std::vector<Envelope> mail) {
  PAXML_CHECK_LT(static_cast<size_t>(site), sites_.size());
  return sites_[static_cast<size_t>(site)].Deliver(std::move(mail));
}

Status SiteDriver::DeliverTimed(SiteId site, std::vector<Envelope> mail,
                                double* seconds) {
  const auto start = std::chrono::steady_clock::now();
  Status status = Deliver(site, std::move(mail));
  const auto end = std::chrono::steady_clock::now();
  *seconds = std::chrono::duration<double>(end - start).count();
  return status;
}

}  // namespace paxml
