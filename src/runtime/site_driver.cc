#include "runtime/site_driver.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <utility>

#include "common/logging.h"
#include "runtime/worker_pool.h"
#include "sim/cluster.h"

namespace paxml {

namespace {

/// The capture plane of one parallel lane: handlers send through it exactly
/// as through the real transport, but every envelope is recorded instead of
/// staged, to be replayed into the real plane in serial mail order after
/// the lanes join. Batching is off so an EnvelopeStream takes its buffered
/// path and Close() emits one whole envelope — PR 4's guarantee that the
/// chunks concatenate to the exact monolithic encoding is what makes the
/// replayed envelope byte-identical to the serially staged one. Unshared:
/// one capture per lane task, so no locking beyond the base class's.
class CaptureTransport : public Transport {
 public:
  explicit CaptureTransport(TransportOptions real)
      : Transport(Captured(std::move(real))) {}

  void Send(Envelope env) override { sent_.push_back(std::move(env)); }

  Status RunRound(RunId, const std::vector<SiteId>&, const DeliverFn&,
                  std::vector<double>*) override {
    return Status::Internal("the capture plane has no delivery rounds");
  }
  const char* name() const override { return "capture"; }

  /// The envelopes sent since the last take, in send order.
  std::vector<Envelope> TakeSent() {
    std::vector<Envelope> out = std::move(sent_);
    sent_.clear();
    return out;
  }

 private:
  static TransportOptions Captured(TransportOptions options) {
    // Chunk-size knobs are mirrored (handlers read them when streaming);
    // batching off routes EnvelopeStream through buffered Sends, and the
    // replay target owns framing, flushing and the remote plane.
    options.batching = false;
    options.remote_endpoints.clear();
    options.site_threads = 1;
    return options;
  }

  std::vector<Envelope> sent_;
};

/// The lane an envelope belongs to: fragment f when every part is a
/// site-side kind consistently addressed to f, else kNullFragment — a
/// *barrier* delivered serially in place. Up-messages, query/data ships and
/// mixed-fragment envelopes are conservatively barriers: their handlers
/// touch cross-fragment state (unifier, answer assembly) or carry no
/// fragment routing. The frame codec wires part.fragment for every kind,
/// so lanes survive the socket hop unchanged.
FragmentId EnvelopeLane(const Envelope& env) {
  FragmentId lane = kNullFragment;
  for (const WirePart& part : env.parts) {
    switch (part.kind) {
      case MessageKind::kQualRequest:
      case MessageKind::kSelRequest:
      case MessageKind::kAnswerRequest:
      case MessageKind::kDataRequest:
      case MessageKind::kQualDown:
      case MessageKind::kSelDown:
      case MessageKind::kReachRequest:
        break;
      default:
        return kNullFragment;
    }
    if (part.fragment == kNullFragment) return kNullFragment;
    if (lane == kNullFragment) {
      lane = part.fragment;
    } else if (lane != part.fragment) {
      return kNullFragment;
    }
  }
  return lane;
}

/// CPU time consumed by the calling thread. Lane tasks measure themselves
/// with this so that an oversubscribed host (fewer cores than lanes) still
/// reports each lane's own work, not the time it spent descheduled —
/// max-over-lanes then models the fan-out the way max-over-sites models
/// the multi-machine cluster (sim/cluster.h).
double ThreadCpuSeconds() {
  timespec ts;
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// CPU time of `fn` on the calling thread, added to *seconds when it is
/// non-null. CPU (not wall) everywhere keeps the serial and parallel
/// measurements comparable: on a host where concurrent site deliveries
/// interleave on few cores, wall time would charge a site for time it
/// spent descheduled.
Status Timed(double* seconds, const std::function<Status()>& fn) {
  if (seconds == nullptr) return fn();
  const double start = ThreadCpuSeconds();
  Status status = fn();
  *seconds += ThreadCpuSeconds() - start;
  return status;
}

}  // namespace

SiteDriver::SiteDriver(const Cluster* cluster, Transport* transport, RunId run,
                       MessageHandlers* handlers,
                       std::shared_ptr<WorkerPool> pool, size_t site_threads,
                       std::shared_ptr<MemoSession> memo)
    : cluster_(cluster),
      transport_(transport),
      run_(run),
      handlers_(handlers),
      pool_(std::move(pool)),
      site_threads_(site_threads),
      memo_(std::move(memo)) {
  sites_.reserve(cluster->site_count());
  for (size_t s = 0; s < cluster->site_count(); ++s) {
    sites_.emplace_back(static_cast<SiteId>(s), cluster, transport, run,
                        handlers);
  }
}

Status SiteDriver::Deliver(SiteId site, std::vector<Envelope> mail) {
  PAXML_CHECK_LT(static_cast<size_t>(site), sites_.size());
  return sites_[static_cast<size_t>(site)].Deliver(std::move(mail));
}

Status SiteDriver::DeliverParallel(SiteId site, std::vector<Envelope> mail) {
  return DeliverParallelImpl(site, std::move(mail), nullptr);
}

Status SiteDriver::DeliverParallelImpl(SiteId site, std::vector<Envelope> mail,
                                       double* seconds) {
  PAXML_CHECK_LT(static_cast<size_t>(site), sites_.size());
  if (memo_ != nullptr) return DeliverMemoized(site, std::move(mail), seconds);
  if (!parallel_enabled() || mail.size() < 2) {
    return Timed(seconds, [&] {
      return sites_[static_cast<size_t>(site)].Deliver(std::move(mail));
    });
  }
  // Walk the mail in order: maximal runs of lane-keyed envelopes fan out
  // as parallel segments; barriers split them and run serially in place.
  size_t i = 0;
  while (i < mail.size()) {
    if (EnvelopeLane(mail[i]) == kNullFragment) {
      std::vector<Envelope> one;
      one.push_back(std::move(mail[i]));
      PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
        return sites_[static_cast<size_t>(site)].Deliver(std::move(one));
      }));
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < mail.size() && EnvelopeLane(mail[j]) != kNullFragment) ++j;
    std::vector<Envelope> segment(std::make_move_iterator(mail.begin() + i),
                                  std::make_move_iterator(mail.begin() + j));
    PAXML_RETURN_NOT_OK(DeliverSegmentParallel(site, &segment, seconds));
    i = j;
  }
  return Status::OK();
}

Status SiteDriver::DeliverSegmentParallel(SiteId site,
                                          std::vector<Envelope>* segment,
                                          double* seconds) {
  const size_t n = segment->size();
  // Group the segment's envelope indices by lane, lanes in order of first
  // appearance (deterministic, so the lane -> task assignment is too).
  std::map<FragmentId, size_t> lane_of;
  std::vector<std::vector<size_t>> lanes;
  for (size_t k = 0; k < n; ++k) {
    auto [it, inserted] = lane_of.emplace(EnvelopeLane((*segment)[k]),
                                          lanes.size());
    if (inserted) lanes.emplace_back();
    lanes[it->second].push_back(k);
  }
  if (lanes.size() < 2) {  // one fragment: nothing to overlap
    return Timed(seconds, [&] {
      return sites_[static_cast<size_t>(site)].Deliver(std::move(*segment));
    });
  }
  // Cap the fan-out at site_threads by merging lanes round-robin; sorting
  // each task's indices restores original order, so same-lane envelopes
  // still mutate their fragment's state in serial order.
  const size_t task_count = std::min(site_threads_, lanes.size());
  std::vector<std::vector<size_t>> assignment(task_count);
  for (size_t l = 0; l < lanes.size(); ++l) {
    auto& dst = assignment[l % task_count];
    dst.insert(dst.end(), lanes[l].begin(), lanes[l].end());
  }
  for (auto& indices : assignment) std::sort(indices.begin(), indices.end());

  // Each slot is written by exactly one task (indices partition [0, n)).
  std::vector<Status> statuses(n);
  std::vector<std::vector<Envelope>> sends(n);
  std::vector<double> task_seconds(task_count, 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(task_count);
  for (size_t t = 0; t < task_count; ++t) {
    tasks.push_back([this, site, segment, &statuses, &sends, &task_seconds, t,
                     indices = std::move(assignment[t])] {
      const double cpu_start = ThreadCpuSeconds();
      CaptureTransport capture(transport_->options());
      SiteRuntime runtime(site, cluster_, &capture, run_, handlers_);
      for (size_t k : indices) {
        std::vector<Envelope> one;
        one.push_back(std::move((*segment)[k]));
        statuses[k] = runtime.Deliver(std::move(one));
        sends[k] = capture.TakeSent();
        if (!statuses[k].ok()) break;  // a failed lane stops, like serial
      }
      task_seconds[t] = ThreadCpuSeconds() - cpu_start;
    });
  }
  pool_->RunAll(std::move(tasks));
  if (seconds != nullptr) {
    // The segment costs what its slowest lane costs — measured as that
    // task's own CPU time, so the metric holds on oversubscribed hosts.
    *seconds += *std::max_element(task_seconds.begin(), task_seconds.end());
  }

  // Replay into the real plane in serial mail order: staging order, seal
  // points and frame sequences come out bit-identical to the serial
  // delivery. On error, replay stops after the first failing envelope's
  // partial sends — exactly what the serial order would have sent.
  size_t stop = n;
  for (size_t k = 0; k < n; ++k) {
    if (!statuses[k].ok()) {
      stop = k;
      break;
    }
  }
  Status replayed = Timed(seconds, [&] {
    for (size_t k = 0; k < n && k <= stop; ++k) {
      for (Envelope& env : sends[k]) transport_->Send(std::move(env));
    }
    return Status::OK();
  });
  (void)replayed;
  return stop == n ? Status::OK() : statuses[stop];
}

Status SiteDriver::DeliverMemoized(SiteId site, std::vector<Envelope> mail,
                                   double* seconds) {
  for (Envelope& env : mail) {
    const FragmentId lane = EnvelopeLane(env);
    if (lane == kNullFragment) {
      // Barriers (query ship, up-mail, mixed-fragment envelopes) always
      // evaluate: their handlers touch cross-fragment state the memo does
      // not model.
      std::vector<Envelope> one;
      one.push_back(std::move(env));
      PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
        return sites_[static_cast<size_t>(site)].Deliver(std::move(one));
      }));
      continue;
    }
    std::vector<Envelope> replies;
    std::vector<Envelope> recover;
    if (memo_->Lookup(lane, env, &replies, &recover)) {
      // Hit: the recorded replies go through the real plane exactly where
      // the handler's sends would have — staging order, seal points and all
      // accounted counters come out bit-identical to an evaluated delivery.
      PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
        for (Envelope& r : replies) {
          r.run = run_;
          transport_->Send(std::move(r));
        }
        return Status::OK();
      }));
      continue;
    }
    if (!recover.empty()) {
      // First divergence of this fragment after memo-served steps: its
      // handler state was never built this run. Re-deliver the served
      // request prefix through a discard plane to rebuild it — the replies
      // were already replayed at the hits, so these sends must not reach
      // the wire a second time.
      CaptureTransport discard(transport_->options());
      SiteRuntime rebuild(site, cluster_, &discard, run_, handlers_);
      for (Envelope& r : recover) {
        r.run = run_;
        std::vector<Envelope> one;
        one.push_back(std::move(r));
        PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
          return rebuild.Deliver(std::move(one));
        }));
        (void)discard.TakeSent();
      }
    }
    // Evaluate through a capture plane so the reply set can be recorded,
    // measuring the handler's own CPU as the entry's cost.
    CaptureTransport capture(transport_->options());
    SiteRuntime runtime(site, cluster_, &capture, run_, handlers_);
    const Envelope request = env;  // the memo keeps the request's identity
    const double cpu_start = ThreadCpuSeconds();
    std::vector<Envelope> one;
    one.push_back(std::move(env));
    const Status status = runtime.Deliver(std::move(one));
    const double eval_seconds = ThreadCpuSeconds() - cpu_start;
    if (seconds != nullptr) *seconds += eval_seconds;
    std::vector<Envelope> sends = capture.TakeSent();
    // Replay even on error: the serial order would have sent the failing
    // envelope's partial output too.
    PAXML_RETURN_NOT_OK(Timed(seconds, [&] {
      for (const Envelope& s : sends) transport_->Send(Envelope(s));
      return Status::OK();
    }));
    PAXML_RETURN_NOT_OK(status);
    memo_->Record(lane, request, std::move(sends), eval_seconds);
  }
  return Status::OK();
}

Status SiteDriver::DeliverTimed(SiteId site, std::vector<Envelope> mail,
                                double* seconds) {
  *seconds = 0;
  return DeliverParallelImpl(site, std::move(mail), seconds);
}

}  // namespace paxml
