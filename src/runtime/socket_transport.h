// SocketTransport: the framed message plane over real TCP connections.
//
// The client side of a multi-process deployment (DESIGN.md §9). Sites named
// in TransportOptions::remote_endpoints are served by paxml_site peer
// processes (runtime/socket_server.h); every other site — the query site
// S_Q must be one of them — is evaluated in-process exactly as under
// SyncTransport. The wire unit is the PR-4 Frame: at each round boundary
// the staged edges seal as usual, but a frame whose destination is remote
// is encoded as a length-delimited kFrame record and queued for its
// connection instead of entering a local mailbox; frames arriving from
// peers are sequence-checked (FrameReassembler) and injected back into the
// run's mailboxes with AccountFrame — the codec's tested guarantee that a
// re-decoded frame reproduces RunStats exactly is what makes a socket run's
// accounting identical to SyncTransport's (tests/socket_transport_test.cc).
//
// The round barrier is a control-record exchange: RunRound writes the
// run's pending frames, sends kRoundStart to each remote site it visits,
// delivers local sites inline, then blocks until every peer's kRoundDone
// (whose frames, on the same ordered connection, have necessarily arrived
// first). Run lifecycle rides the same records: OpenRun announces the run
// and its RunSpec (plus a placement fingerprint, so a peer serving a
// different cluster fails loudly) to every peer, CloseRun tears it down —
// peers drop the run's mail and program without disturbing other runs
// (invariant 5).
//
// Failure semantics: a dead or protocol-violating connection fails *runs
// that touch its site* — pending rounds wake with a clean NetworkError, no
// hang — while runs confined to healthy sites are undisturbed. Dial
// failures behave the same way (recorded, surfaced at the first round).
// Reconnect/retry and TLS are follow-ons (ROADMAP).

#ifndef PAXML_RUNTIME_SOCKET_TRANSPORT_H_
#define PAXML_RUNTIME_SOCKET_TRANSPORT_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/transport.h"
#include "runtime/wire.h"

namespace paxml {

class SocketTransport : public Transport {
 public:
  /// Dials every endpoint in `options.remote_endpoints` (which must be
  /// non-empty) and performs the Hello handshake. Dial failures do not
  /// throw or abort: they surface as clean errors from the first RunRound
  /// that needs the peer. Batching must be on — the frame is the wire unit.
  explicit SocketTransport(TransportOptions options);

  /// Closes every connection (peers treat EOF as teardown) and joins the
  /// receiver threads. All runs must be closed first, as for any backend.
  ~SocketTransport() override;

  Status RunRound(RunId run, const std::vector<SiteId>& sites,
                  const DeliverFn& deliver,
                  std::vector<double>* durations) override;
  const char* name() const override { return "socket"; }

  /// True if `site` is served by a peer process.
  bool remote(SiteId site) const {
    return options().remote_endpoints.count(site) != 0;
  }

  /// The first connection error, or OK when every peer is connected — an
  /// eager health probe for bootstrap code that wants to fail fast.
  Status EnsureConnected() const;

 protected:
  bool TakeSealedFrameLocked(Frame& frame, FrameWireInfo* wire) override;
  void RunOpened(RunId run, const Cluster* cluster,
                 const RunSpec* spec) override;
  void RunClosing(RunId run) override;

 private:
  struct Connection {
    SiteId site = kNullSite;
    std::string endpoint;
    int fd = -1;                ///< -1 once failed/closed (net_mu_)
    bool alive = false;         ///< net_mu_
    Status status;              ///< why the connection died (net_mu_)
    std::string outbox;         ///< encoded records awaiting a flush (net_mu_)
    FrameReassembler reassembler;  ///< incoming sequence check (net_mu_)
    /// Both sides negotiated the lz4 codec at Hello (wire protocol v5).
    /// Written once during the constructor handshake, before the receiver
    /// thread exists; immutable afterwards, so reads need no lock.
    bool compress = false;
    std::mutex io_mu;           ///< serializes fd writes
    std::thread receiver;
  };

  /// One in-flight round barrier of a run. At most one per run at a time
  /// (the Coordinator drives rounds sequentially).
  struct RoundWait {
    std::set<SiteId> awaiting;
    std::map<SiteId, double> seconds;
    Status status;
  };

  Connection* ConnectionFor(SiteId site);

  /// Appends `bytes` to the connection's outbox (net_mu_ held by caller).
  void QueueLocked(Connection& conn, std::string bytes);

  /// Writes out every connection's queued records.
  void FlushOutboxes();

  /// Swap-and-write one connection's outbox; on failure fails the
  /// connection. Safe from any thread.
  void FlushConnection(Connection& conn);

  /// Marks the connection dead, closes its fd and wakes every round that
  /// was waiting on its site. Idempotent, safe from any thread.
  void FailConnection(Connection& conn, Status status);

  /// Marks `run` permanently failed (bad config, remote error): its next
  /// round surfaces `status` instead of hanging.
  void FailRun(RunId run, Status status);

  void ReceiverLoop(Connection* conn);
  Status HandleRecord(Connection& conn, WireRecord record);

  /// Guards connection liveness, outboxes, reassemblers, waits_ and
  /// failed_runs_. Always the *last* lock acquired: both the base
  /// transport lock (in TakeSealedFrameLocked) and a connection's io_mu
  /// (in FlushConnection) may be held when net_mu_ is taken, so code
  /// holding net_mu_ must never acquire either of them.
  mutable std::mutex net_mu_;
  std::condition_variable net_cv_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<SiteId, Connection*> by_site_;
  std::map<RunId, RoundWait> waits_;
  std::map<RunId, Status> failed_runs_;
};

}  // namespace paxml

#endif  // PAXML_RUNTIME_SOCKET_TRANSPORT_H_
