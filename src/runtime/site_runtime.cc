#include "runtime/site_runtime.h"

#include "common/string_util.h"
#include "sim/cluster.h"

namespace paxml {

SiteId SiteContext::query_site() const { return cluster_->query_site(); }

namespace {

Status Unhandled(const char* what) {
  return Status::NotImplemented(
      StringFormat("algorithm installed no handler for %s messages", what));
}

}  // namespace

Status MessageHandlers::OnQueryShip(SiteContext&) { return Status::OK(); }
Status MessageHandlers::OnQualRequest(SiteContext&, FragmentId) {
  return Unhandled("qual-request");
}
Status MessageHandlers::OnSelRequest(SiteContext&, FragmentId) {
  return Unhandled("sel-request");
}
Status MessageHandlers::OnAnswerRequest(SiteContext&, FragmentId) {
  return Unhandled("answer-request");
}
Status MessageHandlers::OnDataRequest(SiteContext&, FragmentId) {
  return Unhandled("data-request");
}
Status MessageHandlers::OnQualDown(SiteContext&, QualDownMessage) {
  return Unhandled("qual-down");
}
Status MessageHandlers::OnSelDown(SiteContext&, SelDownMessage) {
  return Unhandled("sel-down");
}
Status MessageHandlers::OnQualUp(SiteContext&, QualUpMessage) {
  return Unhandled("qual-up");
}
Status MessageHandlers::OnSelUp(SiteContext&, SelUpMessage) {
  return Unhandled("sel-up");
}
Status MessageHandlers::OnAnswerUp(SiteContext&, AnswerUpMessage) {
  return Unhandled("answer-up");
}
Status MessageHandlers::OnDataShip(SiteContext&, FragmentId, uint64_t) {
  return Unhandled("data-ship");
}

const std::vector<FragmentId>& SiteRuntime::fragments() const {
  return ctx_.cluster().fragments_at(ctx_.site());
}

Status SiteRuntime::Deliver(std::vector<Envelope> mail) {
  for (const Envelope& env : mail) {
    for (const WirePart& part : env.parts) {
      PAXML_RETURN_NOT_OK(DispatchPart(env, part));
    }
  }
  return Status::OK();
}

Status SiteRuntime::DispatchPart(const Envelope& env, const WirePart& part) {
  switch (part.kind) {
    case MessageKind::kQueryShip:
      return handlers_->OnQueryShip(ctx_);
    case MessageKind::kQualRequest:
      return handlers_->OnQualRequest(ctx_, part.fragment);
    case MessageKind::kSelRequest:
      return handlers_->OnSelRequest(ctx_, part.fragment);
    case MessageKind::kAnswerRequest:
      return handlers_->OnAnswerRequest(ctx_, part.fragment);
    case MessageKind::kDataRequest:
      return handlers_->OnDataRequest(ctx_, part.fragment);
    case MessageKind::kQualDown: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(QualDownMessage m, QualDownMessage::Decode(&reader));
      return handlers_->OnQualDown(ctx_, std::move(m));
    }
    case MessageKind::kSelDown: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(SelDownMessage m, SelDownMessage::Decode(&reader));
      return handlers_->OnSelDown(ctx_, std::move(m));
    }
    case MessageKind::kQualUp: {
      FormulaArena* arena = handlers_->DecodeArena();
      if (arena == nullptr) {
        return Status::Internal("qual-up delivered but no decode arena");
      }
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(QualUpMessage m,
                             QualUpMessage::Decode(arena, &reader));
      return handlers_->OnQualUp(ctx_, std::move(m));
    }
    case MessageKind::kSelUp: {
      FormulaArena* arena = handlers_->DecodeArena();
      if (arena == nullptr) {
        return Status::Internal("sel-up delivered but no decode arena");
      }
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(SelUpMessage m, SelUpMessage::Decode(arena, &reader));
      return handlers_->OnSelUp(ctx_, std::move(m));
    }
    case MessageKind::kAnswerUp: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(AnswerUpMessage m,
                             AnswerUpMessage::Decode(&reader));
      return handlers_->OnAnswerUp(ctx_, std::move(m));
    }
    case MessageKind::kDataShip:
      return handlers_->OnDataShip(ctx_, part.fragment, env.phantom_bytes);
  }
  return Status::Internal("unknown message kind");
}

}  // namespace paxml
