#include "runtime/site_runtime.h"

#include "sim/cluster.h"

namespace paxml {

SiteId SiteContext::query_site() const { return cluster_->query_site(); }

// ---- EnvelopeStream ---------------------------------------------------------

EnvelopeStream::EnvelopeStream(SiteContext& ctx, Envelope head)
    : transport_(&ctx.transport()) {
  PAXML_CHECK(!head.parts.empty());
  head.from = ctx.site();
  head.run = ctx.run();
  run_ = head.run;
  from_ = head.from;
  to_ = head.to;
  const bool local = head.from == head.to && head.from != kNullSite;
  if (transport_->batching() && !local) {
    transport_->StreamBegin(std::move(head));
    staged_ = true;
  } else {
    buffered_ = std::move(head);
  }
}

EnvelopeStream::~EnvelopeStream() { Close(); }

void EnvelopeStream::Append(std::string_view bytes, uint64_t phantom_bytes) {
  AppendRecoded(bytes, bytes.size(), phantom_bytes);
}

void EnvelopeStream::AppendRecoded(std::string_view bytes,
                                   uint64_t logical_bytes,
                                   uint64_t phantom_bytes) {
  PAXML_CHECK(!closed_);
  if (staged_) {
    transport_->StreamAppend(run_, from_, to_, bytes, logical_bytes,
                             phantom_bytes);
  } else {
    AppendPartBytes(buffered_.parts.back(), bytes, logical_bytes);
    buffered_.phantom_bytes += phantom_bytes;
  }
}

void EnvelopeStream::Close() {
  if (closed_) return;
  closed_ = true;
  if (staged_) {
    transport_->StreamEnd(run_, from_, to_);
  } else {
    transport_->Send(std::move(buffered_));
  }
}

const std::vector<FragmentId>& SiteRuntime::fragments() const {
  return ctx_.cluster().fragments_at(ctx_.site());
}

Status SiteRuntime::Deliver(std::vector<Envelope> mail) {
  for (const Envelope& env : mail) {
    for (const WirePart& part : env.parts) {
      PAXML_RETURN_NOT_OK(handlers_->OnPart(ctx_, env, part));
    }
  }
  return Status::OK();
}

}  // namespace paxml
