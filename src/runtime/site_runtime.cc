#include "runtime/site_runtime.h"

#include "common/string_util.h"
#include "sim/cluster.h"

namespace paxml {

SiteId SiteContext::query_site() const { return cluster_->query_site(); }

// ---- EnvelopeStream ---------------------------------------------------------

EnvelopeStream::EnvelopeStream(SiteContext& ctx, Envelope head)
    : transport_(&ctx.transport()) {
  PAXML_CHECK(!head.parts.empty());
  head.from = ctx.site();
  head.run = ctx.run();
  run_ = head.run;
  from_ = head.from;
  to_ = head.to;
  const bool local = head.from == head.to && head.from != kNullSite;
  if (transport_->batching() && !local) {
    transport_->StreamBegin(std::move(head));
    staged_ = true;
  } else {
    buffered_ = std::move(head);
  }
}

EnvelopeStream::~EnvelopeStream() { Close(); }

void EnvelopeStream::Append(std::string_view bytes, uint64_t phantom_bytes) {
  PAXML_CHECK(!closed_);
  if (staged_) {
    transport_->StreamAppend(run_, from_, to_, bytes, phantom_bytes);
  } else {
    buffered_.parts.back().bytes.append(bytes);
    buffered_.phantom_bytes += phantom_bytes;
  }
}

void EnvelopeStream::Close() {
  if (closed_) return;
  closed_ = true;
  if (staged_) {
    transport_->StreamEnd(run_, from_, to_);
  } else {
    transport_->Send(std::move(buffered_));
  }
}

namespace {

Status Unhandled(const char* what) {
  return Status::NotImplemented(
      StringFormat("algorithm installed no handler for %s messages", what));
}

}  // namespace

Status MessageHandlers::OnQueryShip(SiteContext&) { return Status::OK(); }
Status MessageHandlers::OnQualRequest(SiteContext&, FragmentId) {
  return Unhandled("qual-request");
}
Status MessageHandlers::OnSelRequest(SiteContext&, FragmentId) {
  return Unhandled("sel-request");
}
Status MessageHandlers::OnAnswerRequest(SiteContext&, FragmentId) {
  return Unhandled("answer-request");
}
Status MessageHandlers::OnDataRequest(SiteContext&, FragmentId) {
  return Unhandled("data-request");
}
Status MessageHandlers::OnQualDown(SiteContext&, QualDownMessage) {
  return Unhandled("qual-down");
}
Status MessageHandlers::OnSelDown(SiteContext&, SelDownMessage) {
  return Unhandled("sel-down");
}
Status MessageHandlers::OnQualUp(SiteContext&, QualUpMessage) {
  return Unhandled("qual-up");
}
Status MessageHandlers::OnSelUp(SiteContext&, SelUpMessage) {
  return Unhandled("sel-up");
}
Status MessageHandlers::OnAnswerUp(SiteContext&, AnswerUpMessage) {
  return Unhandled("answer-up");
}
Status MessageHandlers::OnDataShip(SiteContext&, FragmentId, uint64_t) {
  return Unhandled("data-ship");
}

const std::vector<FragmentId>& SiteRuntime::fragments() const {
  return ctx_.cluster().fragments_at(ctx_.site());
}

Status SiteRuntime::Deliver(std::vector<Envelope> mail) {
  for (const Envelope& env : mail) {
    for (const WirePart& part : env.parts) {
      PAXML_RETURN_NOT_OK(DispatchPart(env, part));
    }
  }
  return Status::OK();
}

Status SiteRuntime::DispatchPart(const Envelope& env, const WirePart& part) {
  switch (part.kind) {
    case MessageKind::kQueryShip:
      return handlers_->OnQueryShip(ctx_);
    case MessageKind::kQualRequest:
      return handlers_->OnQualRequest(ctx_, part.fragment);
    case MessageKind::kSelRequest:
      return handlers_->OnSelRequest(ctx_, part.fragment);
    case MessageKind::kAnswerRequest:
      return handlers_->OnAnswerRequest(ctx_, part.fragment);
    case MessageKind::kDataRequest:
      return handlers_->OnDataRequest(ctx_, part.fragment);
    case MessageKind::kQualDown: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(QualDownMessage m, QualDownMessage::Decode(&reader));
      return handlers_->OnQualDown(ctx_, std::move(m));
    }
    case MessageKind::kSelDown: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(SelDownMessage m, SelDownMessage::Decode(&reader));
      return handlers_->OnSelDown(ctx_, std::move(m));
    }
    case MessageKind::kQualUp: {
      FormulaArena* arena = handlers_->DecodeArena();
      if (arena == nullptr) {
        return Status::Internal("qual-up delivered but no decode arena");
      }
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(QualUpMessage m,
                             QualUpMessage::Decode(arena, &reader));
      return handlers_->OnQualUp(ctx_, std::move(m));
    }
    case MessageKind::kSelUp: {
      FormulaArena* arena = handlers_->DecodeArena();
      if (arena == nullptr) {
        return Status::Internal("sel-up delivered but no decode arena");
      }
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(SelUpMessage m, SelUpMessage::Decode(arena, &reader));
      return handlers_->OnSelUp(ctx_, std::move(m));
    }
    case MessageKind::kAnswerUp: {
      ByteReader reader(part.bytes);
      PAXML_ASSIGN_OR_RETURN(AnswerUpMessage m,
                             AnswerUpMessage::Decode(&reader));
      return handlers_->OnAnswerUp(ctx_, std::move(m));
    }
    case MessageKind::kDataShip:
      return handlers_->OnDataShip(ctx_, part.fragment, env.phantom_bytes);
  }
  return Status::Internal("unknown message kind");
}

}  // namespace paxml
