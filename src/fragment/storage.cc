#include "fragment/storage.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace paxml {
namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestName = "manifest.paxml";
constexpr const char* kMagic = "paxml-fragments";
constexpr int kVersion = 1;

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path.string());
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::Internal("short write: " + path.string());
  return Status::OK();
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Status SaveDocument(const FragmentedDocument& doc,
                    const std::string& directory) {
  PAXML_RETURN_NOT_OK(doc.Validate());
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory: " + directory +
                                   ": " + ec.message());
  }

  std::string manifest;
  manifest += StringFormat("%s %d\n", kMagic, kVersion);
  manifest += StringFormat("fragments %zu\n", doc.size());
  for (const Fragment& f : doc.fragments()) {
    const std::string file = StringFormat("fragment_%d.xml", f.id);
    manifest += StringFormat(
        "fragment %d parent %d file %s annotation %s\n", f.id, f.parent,
        file.c_str(),
        f.annotation.empty() ? "-" : f.AnnotationString(*doc.symbols()).c_str());
    // Source-id mapping: count followed by the ids (count first, so readers
    // can skip the line without knowing the fragment's tree).
    manifest += StringFormat("sources %zu", f.source_ids.size());
    for (NodeId src : f.source_ids) manifest += StringFormat(" %d", src);
    manifest += "\n";
    PAXML_RETURN_NOT_OK(
        WriteFile(fs::path(directory) / file, SerializeXml(f.tree)));
  }
  return WriteFile(fs::path(directory) / kManifestName, manifest);
}

Result<FragmentedDocument> LoadDocument(const std::string& directory,
                                        std::shared_ptr<SymbolTable> symbols) {
  if (!symbols) symbols = SymbolTable::Shared();
  PAXML_ASSIGN_OR_RETURN(std::string manifest,
                         ReadFile(fs::path(directory) / kManifestName));

  std::istringstream in(manifest);
  std::string word;
  int version = 0;
  in >> word >> version;
  if (word != kMagic || version != kVersion) {
    return Status::ParseError("bad manifest header in " + directory);
  }
  size_t count = 0;
  in >> word >> count;
  if (word != "fragments" || count == 0) {
    return Status::ParseError("bad fragment count in manifest");
  }

  FragmentedDocument doc;
  doc.set_symbols(symbols);
  std::vector<Fragment> fragments(count);

  for (size_t i = 0; i < count; ++i) {
    int id = -1;
    int parent = -2;
    std::string file;
    std::string annotation;
    std::string kw_fragment;
    std::string kw_parent;
    std::string kw_file;
    std::string kw_annotation;
    in >> kw_fragment >> id >> kw_parent >> parent >> kw_file >> file >>
        kw_annotation >> annotation;
    if (kw_fragment != "fragment" || kw_parent != "parent" ||
        kw_file != "file" || kw_annotation != "annotation" || id < 0 ||
        static_cast<size_t>(id) >= count) {
      return Status::ParseError(
          StringFormat("bad manifest entry %zu in %s", i, directory.c_str()));
    }
    Fragment& f = fragments[static_cast<size_t>(id)];
    f.id = static_cast<FragmentId>(id);
    f.parent = static_cast<FragmentId>(parent);

    if (annotation != "-") {
      for (std::string_view label : Split(annotation, '/')) {
        if (label.empty()) return Status::ParseError("empty annotation label");
        f.annotation.push_back(symbols->Intern(label));
      }
    }

    in >> word;  // "sources"
    size_t source_count = 0;
    if (word != "sources" || !(in >> source_count)) {
      return Status::ParseError("missing sources line");
    }
    PAXML_ASSIGN_OR_RETURN(std::string xml,
                           ReadFile(fs::path(directory) / file));
    XmlParseOptions popts;
    popts.symbols = symbols;
    PAXML_ASSIGN_OR_RETURN(f.tree, ParseXml(xml, popts));
    if (source_count != f.tree.size()) {
      // Typically means the saved tree had adjacent text siblings, which
      // XML serialization merges.
      return Status::ParseError(StringFormat(
          "sources line of fragment %d does not match its tree size", id));
    }
    f.source_ids.resize(source_count);
    for (NodeId& src : f.source_ids) {
      long long v = 0;
      if (!(in >> v)) return Status::ParseError("short sources line");
      src = static_cast<NodeId>(v);
    }
  }

  // Rebuild children lists from virtual references.
  for (Fragment& f : fragments) {
    for (NodeId v : f.tree.VirtualNodes()) {
      f.children.push_back(f.tree.fragment_ref(v));
    }
  }
  for (Fragment& f : fragments) doc.AddFragment(std::move(f));
  PAXML_RETURN_NOT_OK(doc.Validate());
  return doc;
}

}  // namespace paxml
