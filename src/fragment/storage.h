// On-disk persistence of fragmented documents.
//
// A FragmentedDocument saves as a directory:
//
//   manifest.paxml     — fragment tree: ids, parents, annotations, files
//   fragment_<id>.xml  — each fragment as plain XML (virtual nodes
//                        round-trip as <paxml-virtual ref="N"/>)
//
// This is the unit a deployment would place on each site; the loader
// reconstructs the exact FragmentedDocument (including the source-id
// mapping back to the original tree, which the property tests rely on).

#ifndef PAXML_FRAGMENT_STORAGE_H_
#define PAXML_FRAGMENT_STORAGE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "fragment/fragment.h"

namespace paxml {

/// Writes `doc` under `directory` (created if absent; existing fragment
/// files are overwritten).
Status SaveDocument(const FragmentedDocument& doc, const std::string& directory);

/// Loads a document previously written by SaveDocument. The result
/// validates before returning.
Result<FragmentedDocument> LoadDocument(
    const std::string& directory, std::shared_ptr<SymbolTable> symbols = nullptr);

}  // namespace paxml

#endif  // PAXML_FRAGMENT_STORAGE_H_
