// Fragment sources: loading fragments one at a time.
//
// The paper's second future-work topic observes that partial evaluation also
// helps *centralized* processing of documents that do not fit in memory:
// fragments can be loaded from secondary storage one at a time, and the
// algorithm's visit bound caps how often each fragment must be (re)read.
// FragmentSource abstracts that access pattern:
//
//  * InMemorySource wraps a FragmentedDocument (tests, small documents);
//  * DirectorySource reads a SaveDocument() directory, parsing each
//    fragment's XML only when Load() is called — the document's trees are
//    never resident all at once.
//
// Both expose a topology-only "skeleton" FragmentedDocument (empty trees,
// parent/children links) for the coordinator-side unification.

#ifndef PAXML_FRAGMENT_SOURCE_H_
#define PAXML_FRAGMENT_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fragment/fragment.h"

namespace paxml {

class FragmentSource {
 public:
  virtual ~FragmentSource() = default;

  /// Number of fragments in the document.
  virtual size_t fragment_count() const = 0;

  /// Fragment-tree topology with empty trees; do not Validate() it.
  virtual const FragmentedDocument& skeleton() const = 0;

  /// Loads one fragment (a fresh copy; the caller owns its lifetime and
  /// drops it to release memory).
  virtual Result<Fragment> Load(FragmentId id) = 0;

  /// Serialized size of fragment `id` in bytes (for residency accounting),
  /// available without loading the tree.
  virtual size_t FragmentBytes(FragmentId id) const = 0;
};

/// Serves fragments from an in-memory FragmentedDocument.
class InMemorySource : public FragmentSource {
 public:
  explicit InMemorySource(const FragmentedDocument* doc);

  size_t fragment_count() const override { return doc_->size(); }
  const FragmentedDocument& skeleton() const override { return skeleton_; }
  Result<Fragment> Load(FragmentId id) override;
  size_t FragmentBytes(FragmentId id) const override {
    return bytes_[static_cast<size_t>(id)];
  }

 private:
  const FragmentedDocument* doc_;
  FragmentedDocument skeleton_;
  std::vector<size_t> bytes_;
};

/// Serves fragments from a SaveDocument() directory; each Load() parses one
/// fragment_<id>.xml file. Only the manifest (topology, annotations, source
/// ids — no tree content) is kept resident.
class DirectorySource : public FragmentSource {
 public:
  /// Reads the manifest; returns NotFound/ParseError on a bad directory.
  static Result<std::unique_ptr<DirectorySource>> Open(
      const std::string& directory,
      std::shared_ptr<SymbolTable> symbols = nullptr);

  size_t fragment_count() const override { return skeleton_.size(); }
  const FragmentedDocument& skeleton() const override { return skeleton_; }
  Result<Fragment> Load(FragmentId id) override;
  size_t FragmentBytes(FragmentId id) const override {
    return bytes_[static_cast<size_t>(id)];
  }

 private:
  DirectorySource() = default;

  std::string directory_;
  std::shared_ptr<SymbolTable> symbols_;
  FragmentedDocument skeleton_;  // empty trees; carries parents/children/annotations
  std::vector<std::string> files_;
  std::vector<std::vector<NodeId>> source_ids_;
  std::vector<size_t> bytes_;
};

}  // namespace paxml

#endif  // PAXML_FRAGMENT_SOURCE_H_
