#include "fragment/pruning.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace paxml {
namespace {

/// Optimistic one-step transition of the selection vector: qualifiers are
/// assumed true, labels are matched exactly.
std::vector<uint8_t> StepVector(const CompiledQuery& query,
                                const std::vector<uint8_t>& parent,
                                Symbol label) {
  const auto& sel = query.selection();
  std::vector<uint8_t> out(sel.size(), 0);
  for (size_t i = 1; i < sel.size(); ++i) {
    switch (sel[i].kind) {
      case SelKind::kLabel:
        out[i] = parent[i - 1] && sel[i].label == label;
        break;
      case SelKind::kWildcard:
        out[i] = parent[i - 1];
        break;
      case SelKind::kDescend:
        out[i] = out[i - 1] || parent[i];
        break;
      case SelKind::kSelfFilter:
        out[i] = out[i - 1];  // qualifier assumed true
        break;
      case SelKind::kRoot:
        PAXML_CHECK(false);
        break;
    }
  }
  return out;
}

/// Optimistic document-node vector (root qualifier assumed true).
std::vector<uint8_t> OptimisticDocVector(const CompiledQuery& query) {
  const auto& sel = query.selection();
  std::vector<uint8_t> vec(sel.size(), 0);
  vec[0] = 1;
  for (size_t i = 1; i < sel.size(); ++i) {
    if (sel[i].kind == SelKind::kDescend || sel[i].kind == SelKind::kSelfFilter) {
      vec[i] = vec[i - 1];
    }
  }
  return vec;
}

bool AnyAlive(const std::vector<uint8_t>& vec) {
  // Entry 0 only holds at the document node; it still means "a prefix can
  // start below" for the root fragment, so count every entry.
  return std::any_of(vec.begin(), vec.end(), [](uint8_t b) { return b != 0; });
}

/// Depth (levels below the anchor) observable by a QVect entry.
int EntryDepth(const CompiledQuery& query, int entry_id,
               std::vector<int>* memo) {
  int& cached = (*memo)[static_cast<size_t>(entry_id)];
  if (cached >= 0) return cached;
  cached = 0;  // break cycles defensively (entries are acyclic by topo order)
  const CompiledQuery::Entry& e = query.entries()[static_cast<size_t>(entry_id)];
  int depth = 0;
  if (e.qual >= 0) depth = std::max(depth, MaxQualifierDepth(query, e.qual));
  switch (e.rest_axis) {
    case Axis::kNone:
      break;
    case Axis::kChild:
      depth = std::max(depth, 1 + EntryDepth(query, e.rest, memo));
      break;
    case Axis::kProperDescendant:
    case Axis::kDescendantOrSelf:
      depth = kUnboundedQualDepth;
      break;
    case Axis::kSelf:
      PAXML_CHECK(false);
      break;
  }
  cached = std::min(depth, kUnboundedQualDepth);
  return cached;
}

}  // namespace

int MaxQualifierDepth(const CompiledQuery& query, int qual_id) {
  std::function<int(int)> depth_of = [&](int id) -> int {
    const CompiledQuery::QualNode& n = query.qual_nodes()[static_cast<size_t>(id)];
    std::vector<int> memo(query.entries().size(), -1);
    switch (n.kind) {
      case QualNodeKind::kTrue:
        return 0;
      case QualNodeKind::kAtom:
        switch (n.axis) {
          case Axis::kChild:
            return std::min(kUnboundedQualDepth,
                            1 + EntryDepth(query, n.entry, &memo));
          case Axis::kProperDescendant:
          case Axis::kDescendantOrSelf:
            return kUnboundedQualDepth;
          case Axis::kSelf:
            return EntryDepth(query, n.entry, &memo);
          case Axis::kNone:
            break;
        }
        PAXML_CHECK(false);
        return kUnboundedQualDepth;
      case QualNodeKind::kAnd:
      case QualNodeKind::kOr:
        return std::max(depth_of(n.left), depth_of(n.right));
      case QualNodeKind::kNot:
        return depth_of(n.left);
    }
    PAXML_CHECK(false);
    return kUnboundedQualDepth;
  };
  return depth_of(qual_id);
}

size_t PruneResult::CountSelectionRelevant() const {
  return static_cast<size_t>(std::count(selection_relevant.begin(),
                                        selection_relevant.end(), true));
}

size_t PruneResult::CountRequired() const {
  return static_cast<size_t>(std::count(required.begin(), required.end(), true));
}

PruneResult PruneFragments(const FragmentedDocument& doc,
                           const CompiledQuery& query) {
  const size_t n = doc.size();
  PruneResult out;
  out.selection_relevant.assign(n, false);
  out.required.assign(n, false);
  out.parent_vector.resize(n);
  out.root_vector.resize(n);

  const auto& sel = query.selection();

  // Per-fragment qualifier-reach budget at the fragment root: the deepest a
  // qualifier anchored at a live ancestor state can still see, in levels.
  // <0 means no qualifier reaches here; kUnboundedQualDepth means '//'.
  std::vector<int> qual_budget(n, -1);

  // The budget contributed by live qualifier-carrying states in `vec`.
  auto budget_from_vector = [&](const std::vector<uint8_t>& vec) {
    int budget = -1;
    for (size_t i = 0; i < sel.size(); ++i) {
      if (vec[i] && sel[i].qual >= 0) {
        budget = std::max(budget, MaxQualifierDepth(query, sel[i].qual));
      }
    }
    return budget;
  };

  // Process fragments parents-first (fragment ids are not guaranteed to be
  // topological for hand-built documents, so order explicitly).
  std::vector<FragmentId> order;
  order.reserve(n);
  std::vector<FragmentId> queue = {0};
  while (!queue.empty()) {
    FragmentId f = queue.back();
    queue.pop_back();
    order.push_back(f);
    for (FragmentId c : doc.fragment(f).children) queue.push_back(c);
  }
  PAXML_CHECK_EQ(order.size(), n);

  for (FragmentId fid : order) {
    const Fragment& frag = doc.fragment(fid);
    std::vector<uint8_t> vec;
    int budget;
    if (fid == 0) {
      vec = OptimisticDocVector(query);
      // Root qualifier anchors at the root element (one level down from the
      // conceptual document node, which the annotation walk enters next).
      budget = (sel[0].qual >= 0 && vec[0])
                   ? std::min(kUnboundedQualDepth,
                              MaxQualifierDepth(query, sel[0].qual) + 1)
                   : -1;
      out.parent_vector[0] = vec;
    } else {
      vec = out.root_vector[static_cast<size_t>(frag.parent)];
      budget = qual_budget[static_cast<size_t>(frag.parent)];
      PAXML_CHECK(!frag.annotation.empty());
    }

    // Walk the annotation labels (empty for the root fragment, whose root
    // vector is one step from the document vector).
    const std::vector<Symbol>& labels =
        fid == 0 ? std::vector<Symbol>{frag.tree.label(frag.tree.root())}
                 : frag.annotation;
    for (size_t j = 0; j < labels.size(); ++j) {
      if (j + 1 == labels.size()) out.parent_vector[fid] = vec;
      vec = StepVector(query, vec, labels[j]);
      budget = std::max(budget - 1, -1);
      budget = std::max(budget, budget_from_vector(vec));
      if (budget > kUnboundedQualDepth) budget = kUnboundedQualDepth;
    }
    out.root_vector[fid] = vec;
    qual_budget[fid] = budget;

    out.selection_relevant[fid] = AnyAlive(vec);
    out.required[fid] = out.selection_relevant[fid] || budget >= 0;
  }

  // The root fragment always participates (it holds the root and issues the
  // query).
  out.selection_relevant[0] = true;
  out.required[0] = true;
  return out;
}

}  // namespace paxml
