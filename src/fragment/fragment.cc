#include "fragment/fragment.h"

#include <functional>

#include "common/logging.h"
#include "common/string_util.h"
#include "xml/serializer.h"

namespace paxml {

size_t Fragment::PayloadSize() const {
  size_t n = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(tree.size()); ++v) {
    if (!tree.IsVirtual(v)) ++n;
  }
  return n;
}

std::string Fragment::AnnotationString(const SymbolTable& symbols) const {
  std::vector<std::string> labels;
  labels.reserve(annotation.size());
  for (Symbol s : annotation) labels.push_back(symbols.Name(s));
  return Join(labels, "/");
}

size_t FragmentedDocument::TotalPayloadNodes() const {
  size_t n = 0;
  for (const Fragment& f : fragments_) n += f.PayloadSize();
  return n;
}

std::vector<Symbol> FragmentedDocument::PathFromGlobalRoot(FragmentId id) const {
  std::vector<std::vector<Symbol>> pieces;
  for (FragmentId cur = id; cur != 0 && cur != kNullFragment;
       cur = fragment(cur).parent) {
    pieces.push_back(fragment(cur).annotation);
  }
  std::vector<Symbol> out;
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    out.insert(out.end(), it->begin(), it->end());
  }
  return out;
}

Tree FragmentedDocument::Assemble(std::vector<GlobalNodeId>* mapping) const {
  PAXML_CHECK(!fragments_.empty());
  Tree out(symbols_);
  if (mapping) mapping->clear();

  // Recursively copy fragment trees, expanding virtual nodes in place.
  std::function<void(FragmentId, NodeId, NodeId)> copy_subtree =
      [&](FragmentId fid, NodeId src, NodeId dst_parent) {
        const Tree& ft = fragment(fid).tree;
        switch (ft.kind(src)) {
          case NodeKind::kText:
            out.AddText(dst_parent, ft.text(src));
            if (mapping) mapping->push_back(GlobalNodeId{fid, src});
            return;
          case NodeKind::kVirtual: {
            const FragmentId ref = ft.fragment_ref(src);
            copy_subtree(ref, fragment(ref).tree.root(), dst_parent);
            return;
          }
          case NodeKind::kElement: {
            NodeId dst = out.AddElement(dst_parent, ft.label(src));
            if (mapping) mapping->push_back(GlobalNodeId{fid, src});
            for (const Attribute& a : ft.attributes(src)) {
              out.AddAttribute(dst, ft.symbols()->Name(a.name), a.value);
            }
            for (NodeId c : ft.children(src)) copy_subtree(fid, c, dst);
            return;
          }
        }
      };
  copy_subtree(0, fragment(0).tree.root(), kNullNode);
  return out;
}

Status FragmentedDocument::Validate() const {
  if (fragments_.empty()) {
    return Status::InvalidArgument("document has no fragments");
  }
  if (fragments_[0].parent != kNullFragment) {
    return Status::Internal("fragment 0 must be the root fragment");
  }
  std::vector<int> referenced(fragments_.size(), 0);
  for (size_t i = 0; i < fragments_.size(); ++i) {
    const Fragment& f = fragments_[i];
    if (f.id != static_cast<FragmentId>(i)) {
      return Status::Internal(StringFormat("fragment %zu has wrong id", i));
    }
    if (f.tree.empty()) {
      return Status::Internal(StringFormat("fragment %zu is empty", i));
    }
    PAXML_RETURN_NOT_OK(f.tree.Validate());
    if (!f.tree.IsElement(f.tree.root())) {
      return Status::Internal("fragment root must be an element");
    }
    if (f.source_ids.size() != f.tree.size()) {
      return Status::Internal("source_ids size mismatch");
    }
    if (i != 0) {
      if (f.parent < 0 || static_cast<size_t>(f.parent) >= fragments_.size()) {
        return Status::Internal("bad parent fragment id");
      }
      if (f.annotation.empty()) {
        return Status::Internal("non-root fragment without annotation");
      }
      if (f.annotation.back() != f.tree.label(f.tree.root())) {
        return Status::Internal(
            "annotation must end with the fragment root label");
      }
    }
    for (NodeId v : f.tree.VirtualNodes()) {
      const FragmentId ref = f.tree.fragment_ref(v);
      if (ref <= 0 || static_cast<size_t>(ref) >= fragments_.size()) {
        return Status::Internal("virtual node references unknown fragment");
      }
      if (fragment(ref).parent != f.id) {
        return Status::Internal("virtual ref/parent mismatch");
      }
      ++referenced[static_cast<size_t>(ref)];
    }
    for (FragmentId c : f.children) {
      if (c <= 0 || static_cast<size_t>(c) >= fragments_.size() ||
          fragment(c).parent != f.id) {
        return Status::Internal("children list inconsistent");
      }
    }
  }
  for (size_t i = 1; i < fragments_.size(); ++i) {
    if (referenced[i] != 1) {
      return Status::Internal(
          StringFormat("fragment %zu referenced %d times", i, referenced[i]));
    }
  }
  return Status::OK();
}

std::string FragmentedDocument::DebugString() const {
  std::string out = StringFormat("FragmentedDocument (%zu fragments)\n",
                                 fragments_.size());
  for (const Fragment& f : fragments_) {
    out += StringFormat(
        "  F%d: parent=%d nodes=%zu bytes=%zu annotation=\"%s\"\n", f.id,
        f.parent, f.PayloadSize(), SerializedSize(f.tree),
        symbols_ ? f.AnnotationString(*symbols_).c_str() : "?");
  }
  return out;
}

}  // namespace paxml
