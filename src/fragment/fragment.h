// Fragments and fragmented documents (Section 2.1 of the paper).
//
// An XML tree T is decomposed into disjoint subtrees (fragments). Inside a
// fragment, each missing sub-fragment F_k is represented by a *virtual node*
// labeled F_k; traversals that reach a virtual node know control passes to
// the site holding F_k. The fragmentation induces the *fragment tree* FT,
// whose edges we annotate with the label path between fragment roots — the
// XPath annotations driving the Section 5 optimization.
//
// No constraints are imposed on the fragmentation: fragments nest to any
// depth, at any level, with any sizes (the paper's "most generic possible"
// setting). The only requirement here is that fragment roots are element
// nodes (XPath annotations are label paths).

#ifndef PAXML_FRAGMENT_FRAGMENT_H_
#define PAXML_FRAGMENT_FRAGMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/workload_data.h"
#include "xml/tree.h"

namespace paxml {

/// A node in a fragmented document: (fragment, local node id).
struct GlobalNodeId {
  FragmentId fragment;
  NodeId node;

  bool operator==(const GlobalNodeId& o) const {
    return fragment == o.fragment && node == o.node;
  }
  bool operator<(const GlobalNodeId& o) const {
    return fragment != o.fragment ? fragment < o.fragment : node < o.node;
  }
};

/// One fragment of a fragmented document.
struct Fragment {
  FragmentId id = kNullFragment;

  /// The fragment's local tree; virtual nodes reference child fragment ids.
  Tree tree;

  /// Parent fragment in the fragment tree (kNullFragment for the root).
  FragmentId parent = kNullFragment;

  /// XPath annotation of the edge (parent -> this): labels of the nodes on
  /// the path from the parent fragment's root (exclusive) to this fragment's
  /// root (inclusive), e.g. {"client", "broker"} for the paper's F0 -> F1.
  /// Empty for the root fragment.
  std::vector<Symbol> annotation;

  /// Maps local node ids to node ids of the original (unfragmented) tree.
  /// Virtual nodes map to the root of the referenced fragment's subtree.
  std::vector<NodeId> source_ids;

  /// Child fragments in document order (derived; kept for navigation).
  std::vector<FragmentId> children;

  /// Number of non-virtual nodes.
  size_t PayloadSize() const;

  /// Annotation rendered as "client/broker".
  std::string AnnotationString(const SymbolTable& symbols) const;
};

/// A fragmented document: the fragment list plus the induced fragment tree.
/// Fragment 0 is always the root fragment (contains the original root).
/// The WorkloadData base is the placement layer's view of it: a Cluster
/// holds any workload's fragments; XML-aware code downcasts back via
/// Cluster::doc() after the family check.
class FragmentedDocument : public WorkloadData {
 public:
  FragmentedDocument() = default;
  FragmentedDocument(FragmentedDocument&&) = default;
  FragmentedDocument& operator=(FragmentedDocument&&) = default;

  std::string_view family() const override { return kXmlWorkloadFamily; }
  size_t fragment_count() const override { return fragments_.size(); }

  const std::vector<Fragment>& fragments() const { return fragments_; }
  std::vector<Fragment>& fragments() { return fragments_; }

  const Fragment& fragment(FragmentId id) const {
    return fragments_[static_cast<size_t>(id)];
  }
  size_t size() const { return fragments_.size(); }

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }
  void set_symbols(std::shared_ptr<SymbolTable> s) { symbols_ = std::move(s); }

  /// Total nodes over all fragments, excluding virtual placeholders
  /// (== node count of the original tree).
  size_t TotalPayloadNodes() const;

  /// Label path from the global root (exclusive) to the root of `id`
  /// (inclusive): the concatenation of annotations along the fragment tree.
  std::vector<Symbol> PathFromGlobalRoot(FragmentId id) const;

  /// Reconstructs the original tree by splicing fragments together.
  /// (What NaiveCentralized does after shipping everything to one site.)
  /// When `mapping` is non-null, it receives, per assembled node id, the
  /// (fragment, local node) the node came from.
  Tree Assemble(std::vector<GlobalNodeId>* mapping = nullptr) const;

  /// Structural integrity: exactly one root fragment; virtual refs resolve;
  /// parent/children symmetry; annotations consistent with the trees;
  /// source_ids populated.
  Status Validate() const;

  /// Human-readable fragment table (id, parent, annotation, nodes, bytes).
  std::string DebugString() const;

  void AddFragment(Fragment f) { fragments_.push_back(std::move(f)); }

 private:
  std::vector<Fragment> fragments_;
  std::shared_ptr<SymbolTable> symbols_;
};

}  // namespace paxml

#endif  // PAXML_FRAGMENT_FRAGMENT_H_
