// Fragmenters: ways of cutting a tree into a FragmentedDocument.
//
// The paper imposes no constraints on fragmentation; these helpers produce
// the shapes used in its figures and experiments plus randomized cuts for
// property tests:
//  * FragmentByCuts     — explicit cut nodes (Fig. 1's dashed polygons),
//  * FragmentBySubtrees — one fragment per child subtree of a given node
//    (Experiment 1's FT1: each XMark "site" its own fragment),
//  * FragmentBySize     — greedy size-bounded cuts,
//  * FragmentRandomly   — random element cuts (property tests).

#ifndef PAXML_FRAGMENT_FRAGMENTER_H_
#define PAXML_FRAGMENT_FRAGMENTER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fragment/fragment.h"
#include "xml/tree.h"

namespace paxml {

/// Cuts `tree` at the given element nodes: every cut node becomes the root
/// of its own fragment (cuts may nest arbitrarily). Fragment ids are
/// assigned in document order of the cut nodes; fragment 0 is the remainder
/// containing the original root.
///
/// Errors: a cut at the root, at a non-element, an out-of-range id, or a
/// duplicate cut.
Result<FragmentedDocument> FragmentByCuts(const Tree& tree,
                                          std::vector<NodeId> cuts);

/// Cuts every child subtree of `parent` whose subtree size is >= min_nodes
/// into its own fragment. With parent == root and min_nodes == 1 this yields
/// the paper's FT1 shape (root fragment = bare root, one fragment per
/// "site" subtree).
Result<FragmentedDocument> FragmentBySubtrees(const Tree& tree, NodeId parent,
                                              size_t min_nodes = 1);

/// Greedy bottom-up fragmentation: cuts subtrees so that no fragment exceeds
/// ~max_nodes payload nodes (best effort; a single node with many small
/// children may still exceed it by one subtree).
Result<FragmentedDocument> FragmentBySize(const Tree& tree, size_t max_nodes);

/// Cuts `count` random distinct element nodes (root excluded). If the tree
/// has fewer eligible elements, cuts all of them.
Result<FragmentedDocument> FragmentRandomly(const Tree& tree, size_t count,
                                            Rng* rng);

}  // namespace paxml

#endif  // PAXML_FRAGMENT_FRAGMENTER_H_
