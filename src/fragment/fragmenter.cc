#include "fragment/fragmenter.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {
namespace {

/// Shared implementation: cuts are validated, sorted into document order,
/// then each fragment's local tree is built by one DFS per fragment root.
Result<FragmentedDocument> BuildFromCuts(const Tree& tree,
                                         std::vector<NodeId> cuts) {
  if (tree.empty()) return Status::InvalidArgument("cannot fragment an empty tree");

  std::unordered_set<NodeId> cut_set;
  for (NodeId c : cuts) {
    if (c <= 0 || static_cast<size_t>(c) >= tree.size()) {
      return Status::InvalidArgument(
          StringFormat("cut node %d out of range (or root)", c));
    }
    if (!tree.IsElement(c)) {
      return Status::InvalidArgument("cut nodes must be elements");
    }
    if (!cut_set.insert(c).second) {
      return Status::InvalidArgument(StringFormat("duplicate cut node %d", c));
    }
  }
  // Document order == arena order for trees built top-down; normalize anyway.
  std::sort(cuts.begin(), cuts.end());

  // Fragment ids: 0 = root fragment, then cut nodes in document order.
  std::unordered_map<NodeId, FragmentId> cut_to_fragment;
  for (size_t i = 0; i < cuts.size(); ++i) {
    cut_to_fragment[cuts[i]] = static_cast<FragmentId>(i + 1);
  }

  FragmentedDocument doc;
  doc.set_symbols(tree.symbols());

  const size_t fragment_count = cuts.size() + 1;
  std::vector<Fragment> fragments(fragment_count);
  for (size_t i = 0; i < fragment_count; ++i) {
    fragments[i].id = static_cast<FragmentId>(i);
    fragments[i].tree = Tree(tree.symbols());
  }

  // Builds fragment `fid` rooted at `src`. Children that are cut nodes
  // become virtual placeholders; their fragments are built by the outer loop.
  auto build_fragment = [&](FragmentId fid, NodeId src_root) {
    Fragment& frag = fragments[static_cast<size_t>(fid)];
    std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId dst_parent) {
      auto it = (src == src_root) ? cut_to_fragment.end()
                                  : cut_to_fragment.find(src);
      if (it != cut_to_fragment.end()) {
        frag.tree.AddVirtual(dst_parent, it->second);
        frag.source_ids.push_back(src);
        fragments[static_cast<size_t>(it->second)].parent = fid;
        frag.children.push_back(it->second);
        return;
      }
      switch (tree.kind(src)) {
        case NodeKind::kText:
          frag.tree.AddText(dst_parent, tree.text(src));
          frag.source_ids.push_back(src);
          return;
        case NodeKind::kVirtual:
          // Re-fragmenting an already-fragmented tree is not supported.
          PAXML_CHECK(false);
          return;
        case NodeKind::kElement: {
          NodeId dst = frag.tree.AddElement(dst_parent, tree.label(src));
          frag.source_ids.push_back(src);
          PAXML_CHECK_EQ(static_cast<size_t>(dst) + 1, frag.source_ids.size());
          for (const Attribute& a : tree.attributes(src)) {
            frag.tree.AddAttribute(dst, tree.symbols()->Name(a.name), a.value);
          }
          for (NodeId c : tree.children(src)) copy(c, dst);
          return;
        }
      }
    };
    copy(src_root, kNullNode);
  };

  build_fragment(0, tree.root());
  for (size_t i = 0; i < cuts.size(); ++i) {
    build_fragment(static_cast<FragmentId>(i + 1), cuts[i]);
  }

  // Annotations: labels from the parent fragment's root (exclusive) down to
  // the cut node (inclusive). The path never crosses another cut node (the
  // parent fragment is by definition the nearest cut ancestor).
  for (size_t i = 0; i < cuts.size(); ++i) {
    Fragment& frag = fragments[i + 1];
    std::vector<Symbol> labels;
    NodeId v = cuts[i];
    for (;;) {
      PAXML_CHECK(tree.IsElement(v));
      labels.push_back(tree.label(v));
      v = tree.parent(v);
      PAXML_CHECK_NE(v, kNullNode);
      if (v == tree.root() && frag.parent == 0) break;
      if (cut_to_fragment.count(v) &&
          cut_to_fragment.at(v) == frag.parent) {
        break;
      }
    }
    std::reverse(labels.begin(), labels.end());
    frag.annotation = std::move(labels);
  }

  for (Fragment& f : fragments) doc.AddFragment(std::move(f));
  PAXML_RETURN_NOT_OK(doc.Validate());
  return doc;
}

}  // namespace

Result<FragmentedDocument> FragmentByCuts(const Tree& tree,
                                          std::vector<NodeId> cuts) {
  return BuildFromCuts(tree, std::move(cuts));
}

Result<FragmentedDocument> FragmentBySubtrees(const Tree& tree, NodeId parent,
                                              size_t min_nodes) {
  if (tree.empty()) return Status::InvalidArgument("empty tree");
  std::vector<NodeId> cuts;
  for (NodeId c : tree.children(parent)) {
    if (tree.IsElement(c) && tree.SubtreeSize(c) >= min_nodes) {
      cuts.push_back(c);
    }
  }
  return BuildFromCuts(tree, std::move(cuts));
}

Result<FragmentedDocument> FragmentBySize(const Tree& tree, size_t max_nodes) {
  if (tree.empty()) return Status::InvalidArgument("empty tree");
  if (max_nodes == 0) return Status::InvalidArgument("max_nodes must be > 0");

  // Bottom-up: accumulate subtree payload sizes; cut a child subtree whenever
  // keeping it would push the running size of the current region past the
  // bound. Text nodes are never cut (fragment roots are elements).
  std::vector<NodeId> cuts;
  std::vector<size_t> region_size(tree.size(), 0);

  // Post-order iteration over the arena: children have larger ids than... not
  // guaranteed in general, so do an explicit post-order walk.
  struct Item {
    NodeId v;
    bool expanded;
  };
  std::vector<Item> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (!item.expanded) {
      stack.push_back({item.v, true});
      for (NodeId c : tree.children(item.v)) stack.push_back({c, false});
      continue;
    }
    const NodeId v = item.v;
    size_t size = 1;
    for (NodeId c : tree.children(v)) size += region_size[static_cast<size_t>(c)];
    if (size > max_nodes && tree.IsElement(v) && v != tree.root()) {
      cuts.push_back(v);
      size = 0;  // becomes its own fragment; contributes nothing upward
    }
    region_size[static_cast<size_t>(v)] = size;
  }
  return BuildFromCuts(tree, std::move(cuts));
}

Result<FragmentedDocument> FragmentRandomly(const Tree& tree, size_t count,
                                            Rng* rng) {
  if (tree.empty()) return Status::InvalidArgument("empty tree");
  std::vector<NodeId> eligible;
  for (NodeId v = 1; v < static_cast<NodeId>(tree.size()); ++v) {
    if (tree.IsElement(v)) eligible.push_back(v);
  }
  // Partial Fisher-Yates for `count` distinct picks.
  std::vector<NodeId> cuts;
  const size_t take = std::min(count, eligible.size());
  for (size_t i = 0; i < take; ++i) {
    size_t j = i + static_cast<size_t>(rng->NextBounded(eligible.size() - i));
    std::swap(eligible[i], eligible[j]);
    cuts.push_back(eligible[i]);
  }
  return BuildFromCuts(tree, std::move(cuts));
}

}  // namespace paxml
