#include "fragment/source.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "common/logging.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace paxml {
namespace {

namespace fs = std::filesystem;

FragmentedDocument MakeSkeleton(const FragmentedDocument& doc) {
  FragmentedDocument skeleton;
  skeleton.set_symbols(doc.symbols());
  for (const Fragment& f : doc.fragments()) {
    Fragment s;
    s.id = f.id;
    s.parent = f.parent;
    s.annotation = f.annotation;
    s.children = f.children;
    // A single element standing for the fragment root: annotation pruning
    // reads the root fragment's root label from here.
    s.tree = Tree(doc.symbols());
    s.tree.AddElement(kNullNode, f.tree.label(f.tree.root()));
    skeleton.AddFragment(std::move(s));
  }
  return skeleton;
}

/// Reads the root element's tag name from the first bytes of a fragment
/// file (our serializer writes the root tag first, no prolog).
Result<std::string> ScanRootLabel(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + file.string());
  char buf[256];
  in.read(buf, sizeof(buf));
  const std::streamsize got = in.gcount();
  std::string_view head(buf, static_cast<size_t>(got));
  const size_t open = head.find('<');
  if (open == std::string_view::npos) {
    return Status::ParseError("no element in " + file.string());
  }
  size_t end = open + 1;
  while (end < head.size() && head[end] != ' ' && head[end] != '>' &&
         head[end] != '/') {
    ++end;
  }
  if (end <= open + 1) return Status::ParseError("bad root tag");
  return std::string(head.substr(open + 1, end - open - 1));
}

}  // namespace

// ---- InMemorySource ---------------------------------------------------------

InMemorySource::InMemorySource(const FragmentedDocument* doc)
    : doc_(doc), skeleton_(MakeSkeleton(*doc)) {
  bytes_.reserve(doc->size());
  for (const Fragment& f : doc->fragments()) {
    bytes_.push_back(SerializedSize(f.tree));
  }
}

Result<Fragment> InMemorySource::Load(FragmentId id) {
  if (id < 0 || static_cast<size_t>(id) >= doc_->size()) {
    return Status::OutOfRange(StringFormat("no fragment %d", id));
  }
  const Fragment& f = doc_->fragment(id);
  Fragment copy;
  copy.id = f.id;
  copy.parent = f.parent;
  copy.annotation = f.annotation;
  copy.children = f.children;
  copy.source_ids = f.source_ids;
  copy.tree = f.tree.Clone();
  return copy;
}

// ---- DirectorySource --------------------------------------------------------

Result<std::unique_ptr<DirectorySource>> DirectorySource::Open(
    const std::string& directory, std::shared_ptr<SymbolTable> symbols) {
  if (!symbols) symbols = std::make_shared<SymbolTable>();

  std::ifstream in(fs::path(directory) / "manifest.paxml");
  if (!in) return Status::NotFound("cannot open manifest in " + directory);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::istringstream manifest(buffer.str());

  std::string word;
  int version = 0;
  manifest >> word >> version;
  if (word != "paxml-fragments" || version != 1) {
    return Status::ParseError("bad manifest header in " + directory);
  }
  size_t count = 0;
  manifest >> word >> count;
  if (word != "fragments" || count == 0) {
    return Status::ParseError("bad fragment count");
  }

  auto source = std::unique_ptr<DirectorySource>(new DirectorySource());
  source->directory_ = directory;
  source->symbols_ = symbols;
  source->skeleton_.set_symbols(symbols);
  source->files_.resize(count);
  source->source_ids_.resize(count);
  source->bytes_.resize(count, 0);

  std::vector<Fragment> fragments(count);
  for (size_t i = 0; i < count; ++i) {
    int id = -1;
    int parent = -2;
    std::string file;
    std::string annotation;
    std::string kw0;
    std::string kw1;
    std::string kw2;
    std::string kw3;
    manifest >> kw0 >> id >> kw1 >> parent >> kw2 >> file >> kw3 >> annotation;
    if (kw0 != "fragment" || kw1 != "parent" || kw2 != "file" ||
        kw3 != "annotation" || id < 0 || static_cast<size_t>(id) >= count) {
      return Status::ParseError("bad manifest entry");
    }
    Fragment& f = fragments[static_cast<size_t>(id)];
    f.id = static_cast<FragmentId>(id);
    f.parent = static_cast<FragmentId>(parent);
    f.tree = Tree(symbols);
    if (annotation != "-") {
      for (std::string_view label : Split(annotation, '/')) {
        f.annotation.push_back(symbols->Intern(label));
      }
    }
    size_t source_count = 0;
    manifest >> word >> source_count;
    if (word != "sources") return Status::ParseError("missing sources line");
    auto& sources = source->source_ids_[static_cast<size_t>(id)];
    sources.resize(source_count);
    for (NodeId& src : sources) {
      long long v = 0;
      if (!(manifest >> v)) return Status::ParseError("short sources line");
      src = static_cast<NodeId>(v);
    }
    source->files_[static_cast<size_t>(id)] = file;
    std::error_code ec;
    const auto size = fs::file_size(fs::path(directory) / file, ec);
    if (ec) return Status::NotFound("missing fragment file " + file);
    source->bytes_[static_cast<size_t>(id)] = static_cast<size_t>(size);
  }

  // Children lists from parent pointers (document order by id).
  for (const Fragment& f : fragments) {
    if (f.id != 0) {
      if (f.parent < 0 || static_cast<size_t>(f.parent) >= count) {
        return Status::ParseError("bad parent pointer");
      }
      fragments[static_cast<size_t>(f.parent)].children.push_back(f.id);
    }
  }
  // Skeleton trees: one element per fragment root. Non-root labels come
  // from the annotations; the root fragment's from a cheap file scan.
  for (Fragment& f : fragments) {
    if (f.id == 0) {
      PAXML_ASSIGN_OR_RETURN(
          std::string label,
          ScanRootLabel(fs::path(directory) / source->files_[0]));
      f.tree.AddElement(kNullNode, label);
    } else {
      PAXML_CHECK(!f.annotation.empty());
      f.tree.AddElement(kNullNode, f.annotation.back());
    }
  }
  for (Fragment& f : fragments) source->skeleton_.AddFragment(std::move(f));
  return source;
}

Result<Fragment> DirectorySource::Load(FragmentId id) {
  if (id < 0 || static_cast<size_t>(id) >= skeleton_.size()) {
    return Status::OutOfRange(StringFormat("no fragment %d", id));
  }
  std::ifstream in(fs::path(directory_) / files_[static_cast<size_t>(id)],
                   std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + files_[static_cast<size_t>(id)]);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const Fragment& meta = skeleton_.fragment(id);
  Fragment f;
  f.id = meta.id;
  f.parent = meta.parent;
  f.annotation = meta.annotation;
  f.children = meta.children;
  f.source_ids = source_ids_[static_cast<size_t>(id)];
  XmlParseOptions popts;
  popts.symbols = symbols_;
  PAXML_ASSIGN_OR_RETURN(f.tree, ParseXml(buffer.str(), popts));
  if (f.source_ids.size() != f.tree.size()) {
    return Status::ParseError(
        StringFormat("fragment %d tree size mismatch", id));
  }
  return f;
}

}  // namespace paxml
