// XPath-annotation pruning (Section 5 of the paper).
//
// Fragment-tree edges carry the label path between fragment roots. Before
// evaluation, we run the selection path *optimistically* (all qualifiers
// assumed true) along those label paths. A fragment at whose root every
// selection state is dead can contain no answer node and is skipped.
//
// Soundness refinement: with qualifiers in the query, a fragment that can
// contain no *answer* may still contain nodes a *qualifier* of a relevant
// ancestor looks at (class-X qualifiers look downward, across fragment
// boundaries). PruneResult therefore distinguishes:
//   * selection_relevant — the fragment may contain answer nodes. Used to
//     prune stages whose qualifier inputs are already resolved (Stage 2/3 of
//     PaX3).
//   * required — selection_relevant OR reachable by a qualifier anchored at
//     a live selection state. Used by PaX2-XA, which prunes the combined
//     pass itself; variables of fragments outside `required` are bound to
//     false during unification, which cannot affect any answer.
// Qualifier reach is tracked as a depth budget: a child-axis-only qualifier
// of maximum path depth d sees d levels below its anchor; any '//' inside a
// qualifier makes the reach unbounded.
//
// The same optimistic walk yields, for qualifier-free queries, the *exact*
// SV vector of each fragment root's parent — a concrete stack
// initialization that removes all z-variables, so candidates never arise
// and the final visit is skipped (the second use of annotations in §5).

#ifndef PAXML_FRAGMENT_PRUNING_H_
#define PAXML_FRAGMENT_PRUNING_H_

#include <cstdint>
#include <vector>

#include "fragment/fragment.h"
#include "xpath/query_plan.h"

namespace paxml {

struct PruneResult {
  /// Per fragment: may contain answer nodes.
  std::vector<bool> selection_relevant;

  /// Per fragment: must participate in evaluation (selection or qualifier
  /// visibility).
  std::vector<bool> required;

  /// Per fragment: the optimistic SV vector of the fragment root's *parent*
  /// (the stack initialization). Exact iff the query has no qualifiers.
  std::vector<std::vector<uint8_t>> parent_vector;

  /// Per fragment: the optimistic SV vector at the fragment root itself.
  std::vector<std::vector<uint8_t>> root_vector;

  size_t CountSelectionRelevant() const;
  size_t CountRequired() const;
};

/// Runs the annotation pre-pass. O(|FT| path length * |SVect|) — negligible
/// next to evaluation, as the paper notes.
PruneResult PruneFragments(const FragmentedDocument& doc,
                           const CompiledQuery& query);

/// Maximum depth below its anchor node that qualifier expression `qual_id`
/// can observe; returns kUnboundedQualDepth if it contains any '//' axis.
inline constexpr int kUnboundedQualDepth = 1 << 20;
int MaxQualifierDepth(const CompiledQuery& query, int qual_id);

}  // namespace paxml

#endif  // PAXML_FRAGMENT_PRUNING_H_
