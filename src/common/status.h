// Status: the error model used across the paxml library.
//
// paxml follows the Arrow/RocksDB idiom: fallible operations return a Status
// (or a Result<T>, see result.h) instead of throwing. Exceptions never cross
// a public API boundary.

#ifndef PAXML_COMMON_STATUS_H_
#define PAXML_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace paxml {

/// Machine-readable category of an error.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kParseError = 2,        ///< XML or XPath text could not be parsed.
  kNotFound = 3,          ///< A referenced entity does not exist.
  kOutOfRange = 4,        ///< Index or id outside the valid domain.
  kAlreadyExists = 5,     ///< Uniqueness violated (e.g. duplicate fragment id).
  kInternal = 6,          ///< Invariant violation inside the library.
  kNotImplemented = 7,    ///< Feature intentionally unsupported.
  kNetworkError = 8,      ///< Simulated network failure injection.
  kCancelled = 9,         ///< The caller cancelled the operation.
  kDeadlineExceeded = 10, ///< The operation's deadline passed before it ran
                          ///< to completion.
};

/// Returns the canonical lower-case name of a status code ("parse-error" ...).
const char* StatusCodeToString(StatusCode code);

/// A cheaply copyable success-or-error value.
///
/// An OK status carries no allocation; error statuses share an immutable
/// heap state. Typical use:
///
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  /// Human-readable rendering, e.g. "parse-error: unexpected '<' at 12".
  std::string ToString() const;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status or Result<T> (Result is implicitly constructible from Status).
#define PAXML_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::paxml::Status _paxml_status = (expr);        \
    if (!_paxml_status.ok()) return _paxml_status; \
  } while (false)

}  // namespace paxml

#endif  // PAXML_COMMON_STATUS_H_
