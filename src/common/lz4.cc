#include "common/lz4.h"

#include <cstdint>
#include <cstring>

namespace paxml {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

uint32_t Read32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t Hash32(uint32_t v) {
  // Knuth multiplicative hash; top bits select the table slot.
  return (v * 2654435761u) >> (32 - kHashBits);
}

// 15-extended length: the nibble holds min(v, 15); v >= 15 appends 255-run
// bytes summing to the remainder, terminated by a byte < 255.
void PutExtendedLength(size_t v, std::string* out) {
  v -= 15;
  while (v >= 255) {
    out->push_back(static_cast<char>(0xff));
    v -= 255;
  }
  out->push_back(static_cast<char>(v));
}

void EmitSequence(const char* literals, size_t literal_len, size_t offset,
                  size_t match_len /* 0 = final literals-only sequence */,
                  std::string* out) {
  const uint8_t lit_nibble =
      static_cast<uint8_t>(literal_len < 15 ? literal_len : 15);
  const size_t match_extra = match_len == 0 ? 0 : match_len - kMinMatch;
  const uint8_t match_nibble =
      static_cast<uint8_t>(match_len == 0 ? 0
                                          : (match_extra < 15 ? match_extra
                                                              : 15));
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutExtendedLength(literal_len, out);
  out->append(literals, literal_len);
  if (match_len == 0) return;
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_nibble == 15) PutExtendedLength(match_extra, out);
}

}  // namespace

std::string Lz4Compress(std::string_view raw) {
  std::string out;
  const char* base = raw.data();
  const size_t n = raw.size();
  out.reserve(n / 2 + 16);

  // Greedy single-probe matcher: one candidate position per 4-byte hash
  // (stored +1 so 0 means empty; frame payloads are far below 4 GiB).
  uint32_t table[1 << kHashBits] = {};
  size_t anchor = 0;
  size_t i = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = Hash32(Read32(base + i));
    const size_t candidate = table[h] == 0 ? 0 : table[h] - 1;
    const bool usable = table[h] != 0 && i - candidate <= kMaxOffset &&
                        Read32(base + candidate) == Read32(base + i);
    table[h] = static_cast<uint32_t>(i + 1);
    if (!usable) {
      ++i;
      continue;
    }
    size_t len = kMinMatch;
    while (i + len < n && base[candidate + len] == base[i + len]) ++len;
    EmitSequence(base + anchor, i - anchor, i - candidate, len, &out);
    i += len;
    anchor = i;
  }
  EmitSequence(base + anchor, n - anchor, 0, 0, &out);
  return out;
}

Result<std::string> Lz4Decompress(std::string_view compressed,
                                  size_t raw_size) {
  std::string out;
  out.reserve(raw_size);
  const size_t n = compressed.size();
  size_t i = 0;

  // Reads the 255-run extension of a nibble that hit 15.
  auto extended = [&](size_t nibble, size_t* len) -> bool {
    *len = nibble;
    if (nibble != 15) return true;
    uint8_t b;
    do {
      if (i >= n) return false;
      b = static_cast<uint8_t>(compressed[i++]);
      *len += b;
    } while (b == 0xff);
    return true;
  };

  while (i < n) {
    const uint8_t token = static_cast<uint8_t>(compressed[i++]);
    size_t literal_len = 0;
    if (!extended(token >> 4, &literal_len)) {
      return Status::ParseError("lz4: truncated literal length");
    }
    if (literal_len > n - i) {
      return Status::ParseError("lz4: literals past end of block");
    }
    if (out.size() + literal_len > raw_size) {
      return Status::ParseError("lz4: output exceeds declared size");
    }
    out.append(compressed.data() + i, literal_len);
    i += literal_len;
    if (i == n) break;  // the final, literals-only sequence
    if (n - i < 2) return Status::ParseError("lz4: truncated match offset");
    const size_t offset =
        static_cast<uint8_t>(compressed[i]) |
        (static_cast<size_t>(static_cast<uint8_t>(compressed[i + 1])) << 8);
    i += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::ParseError("lz4: match offset out of range");
    }
    size_t match_extra = 0;
    if (!extended(token & 0x0f, &match_extra)) {
      return Status::ParseError("lz4: truncated match length");
    }
    const size_t match_len = match_extra + kMinMatch;
    if (out.size() + match_len > raw_size) {
      return Status::ParseError("lz4: output exceeds declared size");
    }
    // Byte-by-byte: offsets smaller than the match length legitimately
    // self-overlap (run-length shapes).
    size_t pos = out.size() - offset;
    for (size_t k = 0; k < match_len; ++k) out.push_back(out[pos + k]);
  }
  if (out.size() != raw_size) {
    return Status::ParseError("lz4: block decodes to the wrong size");
  }
  return out;
}

}  // namespace paxml
