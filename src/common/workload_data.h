// The data-model seam: what a Cluster holds without naming a workload.
//
// A Cluster places *fragments* on *sites*; the runtime ships messages
// between them. Nothing in either layer depends on what the fragments
// contain — that is the workload's business (an XML FragmentedDocument, a
// partitioned digraph GraphFragmentStore). WorkloadData is the only thing
// the placement and runtime layers see: a family tag (matching
// RunSpec::family and the workload registry in core/workload.h) and the
// fragment count that sizes placements. Algorithm families downcast to
// their concrete store after checking family() (Cluster::doc(),
// GraphOf()).

#ifndef PAXML_COMMON_WORKLOAD_DATA_H_
#define PAXML_COMMON_WORKLOAD_DATA_H_

#include <cstddef>
#include <string_view>

namespace paxml {

/// Family tags of the shipped workloads. A RunSpec carries one of these so
/// a remote peer rebuilds the right program (core/workload.h registers the
/// builders).
inline constexpr std::string_view kXmlWorkloadFamily = "xml";
inline constexpr std::string_view kGraphWorkloadFamily = "graph";

/// Abstract base of every placeable data set.
class WorkloadData {
 public:
  virtual ~WorkloadData() = default;

  /// The workload family this data belongs to ("xml", "graph"). Stable: it
  /// is part of the wire fingerprint a peer validates at run open.
  virtual std::string_view family() const = 0;

  /// Number of placeable fragments (placements are fragment -> site maps
  /// of exactly this length).
  virtual size_t fragment_count() const = 0;
};

}  // namespace paxml

#endif  // PAXML_COMMON_WORKLOAD_DATA_H_
