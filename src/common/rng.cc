#include "common/rng.h"

#include <algorithm>

namespace paxml {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0) return 0;
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    pick -= std::max(weights[i], 0.0);
    if (pick < 0) return i;
  }
  return weights.size() - 1;
}

std::string Rng::NextString(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + NextBounded(26)));
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

}  // namespace paxml
