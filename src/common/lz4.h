// In-repo LZ4-style block codec (no external dependency).
//
// The frame-compression hook (DESIGN.md §13) trades CPU for wire bytes on
// big frames; the codec here implements the classic LZ4 block shape —
// token byte (literal length high nibble, match length low nibble, both
// 15-extended with 255-run bytes), literals, 2-byte little-endian match
// offset, minimum match 4 — with greedy hash-chain-free matching. It is
// self-consistent (Lz4Decompress inverts Lz4Compress), deterministic, and
// makes no interop claim with the reference LZ4 library: both ends of a
// paxml connection run this code, negotiated via the Hello record.
//
// Decompression is strict: every length and offset is bounds-checked, the
// output must come to exactly `raw_size` bytes, and any violation is a
// clean ParseError — compressed records are untrusted wire input.

#ifndef PAXML_COMMON_LZ4_H_
#define PAXML_COMMON_LZ4_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace paxml {

/// Compresses `raw` into the block format above. Always succeeds; the
/// output of incompressible input is slightly *larger* than the input
/// (callers gate on size and fall back to raw — see EncodeFrameForWire).
std::string Lz4Compress(std::string_view raw);

/// Inverts Lz4Compress. `raw_size` is the declared plain size (carried on
/// the wire next to the block); the result has exactly that size or the
/// record is corrupt.
Result<std::string> Lz4Decompress(std::string_view compressed,
                                  size_t raw_size);

}  // namespace paxml

#endif  // PAXML_COMMON_LZ4_H_
