// Lightweight assertion/check macros for internal invariants.
//
// PAXML_CHECK* abort on violation in all build types: invariant breakage in
// a query engine must never silently corrupt answers. User-input errors go
// through Status, never through these macros.

#ifndef PAXML_COMMON_LOGGING_H_
#define PAXML_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace paxml::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "PAXML_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace paxml::internal

#define PAXML_CHECK(cond)                                         \
  do {                                                            \
    if (!(cond)) ::paxml::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

#define PAXML_CHECK_EQ(a, b) PAXML_CHECK((a) == (b))
#define PAXML_CHECK_NE(a, b) PAXML_CHECK((a) != (b))
#define PAXML_CHECK_LT(a, b) PAXML_CHECK((a) < (b))
#define PAXML_CHECK_LE(a, b) PAXML_CHECK((a) <= (b))
#define PAXML_CHECK_GT(a, b) PAXML_CHECK((a) > (b))
#define PAXML_CHECK_GE(a, b) PAXML_CHECK((a) >= (b))

#endif  // PAXML_COMMON_LOGGING_H_
