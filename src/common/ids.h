// Workload-neutral id types shared by every data model.
//
// The runtime layer (transport, frames, wire protocol) routes messages by
// fragment without knowing what a fragment *is* — an XML subtree
// (src/fragment) or a partitioned digraph piece (src/graph). Both models
// address their payloads with the same dense signed ids, defined once here
// so src/runtime never includes a data-model header (the workload seam,
// DESIGN.md §11).

#ifndef PAXML_COMMON_IDS_H_
#define PAXML_COMMON_IDS_H_

#include <cstdint>

namespace paxml {

/// Index of a node within its container's arena (an XML Tree, a graph
/// fragment's vertex table).
using NodeId = int32_t;
inline constexpr NodeId kNullNode = -1;

/// Id of a fragment within a fragmented workload (an XML fragmented
/// document or a partitioned graph).
using FragmentId = int32_t;
inline constexpr FragmentId kNullFragment = -1;

}  // namespace paxml

#endif  // PAXML_COMMON_IDS_H_
