// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef PAXML_COMMON_RESULT_H_
#define PAXML_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace paxml {

/// Holds either a T or a non-OK Status.
///
///   Result<Tree> r = ParseXml(text);
///   if (!r.ok()) return r.status();
///   Tree tree = std::move(r).ValueOrDie();
///
/// Constructing a Result from an OK status is a programming error (there
/// would be no value to return); it is converted to an internal error.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from a non-OK status (failure); enables PAXML_RETURN_NOT_OK and
  /// `return SomeErrorStatus();` in functions returning Result<T>.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error; Status::OK() if this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The value. Must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Alias matching Arrow naming.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define PAXML_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define PAXML_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  PAXML_ASSIGN_OR_RETURN_IMPL(PAXML_CONCAT_(_paxml_result_, __COUNTER__), \
                              lhs, rexpr)

#define PAXML_CONCAT_INNER_(a, b) a##b
#define PAXML_CONCAT_(a, b) PAXML_CONCAT_INNER_(a, b)

}  // namespace paxml

#endif  // PAXML_COMMON_RESULT_H_
