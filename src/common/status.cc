#include "common/status.h"

namespace paxml {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kNetworkError:
      return "network-error";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace paxml
