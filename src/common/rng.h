// Deterministic pseudo-random number generation.
//
// All synthetic data in paxml (XMark-like trees, random fragmentations,
// property-test inputs) is derived from Rng so experiments and tests are
// reproducible bit-for-bit given a seed.

#ifndef PAXML_COMMON_RNG_H_
#define PAXML_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace paxml {

/// xoshiro256** with splitmix64 seeding. Not cryptographic; fast and
/// statistically solid for workload generation.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// All-zero or empty weights return 0.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Random lower-case ASCII string of exactly `length` characters.
  std::string NextString(size_t length);

  /// Derives an independent generator; streams do not overlap in practice.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace paxml

#endif  // PAXML_COMMON_RNG_H_
