// Small string helpers shared across modules.

#ifndef PAXML_COMMON_STRING_UTIL_H_
#define PAXML_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace paxml {

/// Splits `input` on `sep`; empty pieces are kept ("a//b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view input, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// True iff `s` consists only of ASCII whitespace (or is empty).
bool IsAllWhitespace(std::string_view s);

/// Parses a decimal number (integer or fraction, optional sign).
std::optional<double> ParseNumber(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Escapes &, <, >, ", ' for embedding in XML text/attributes.
std::string XmlEscape(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders byte counts as "12.3 KB" / "4.0 MB" for reports.
std::string HumanBytes(uint64_t bytes);

}  // namespace paxml

#endif  // PAXML_COMMON_STRING_UTIL_H_
