#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace paxml {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::optional<double> ParseNumber(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  // strtod needs a NUL-terminated buffer; numbers are short, copy is cheap.
  std::string buf(s);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StringFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StringFormat("%.1f %s", value, units[unit]);
}

}  // namespace paxml
