// The XML tree data model.
//
// A Tree is an arena of nodes addressed by dense NodeIds. Node kinds:
//   * element  — labeled interior node (label interned in a SymbolTable),
//   * text     — leaf carrying a character-data string,
//   * virtual  — placeholder standing for a missing sub-fragment of a
//                distributed document (Section 2.1 of the paper). A virtual
//                node records the id of the fragment it stands for.
//
// The arena layout (contiguous structs, first-child/next-sibling links) keeps
// traversals cache-friendly; evaluation visits nodes in document order, which
// is exactly arena order for trees built top-down (parser, generator).

#ifndef PAXML_XML_TREE_H_
#define PAXML_XML_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "xml/symbol_table.h"

namespace paxml {

// NodeId / FragmentId live in common/ids.h (shared with the graph
// workload; the runtime layer routes by them without this header).

enum class NodeKind : uint8_t {
  kElement = 0,
  kText = 1,
  kVirtual = 2,
};

/// One attribute on an element. Class-X queries do not address attributes,
/// but the parser/serializer preserve them so real XML round-trips.
struct Attribute {
  Symbol name;
  std::string value;
};

/// POD node record. 40 bytes; members ordered to avoid padding waste.
struct Node {
  NodeId parent = kNullNode;
  NodeId first_child = kNullNode;
  NodeId last_child = kNullNode;
  NodeId next_sibling = kNullNode;
  Symbol label = kInvalidSymbol;       ///< element label; unused otherwise
  int32_t text_index = -1;             ///< text pool index for text nodes
  FragmentId fragment_ref = kNullFragment;  ///< for virtual nodes
  NodeKind kind = NodeKind::kElement;
};

/// A rooted ordered tree of elements, text and virtual nodes.
class Tree {
 public:
  /// Creates an empty tree sharing `symbols` (nullptr -> process-wide table).
  explicit Tree(std::shared_ptr<SymbolTable> symbols = nullptr);

  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;

  /// Deep copy (same symbol table).
  Tree Clone() const;

  // ---- Construction ------------------------------------------------------

  /// Appends a new element labeled `label` under `parent`
  /// (parent == kNullNode makes it the root; the tree must then be empty).
  NodeId AddElement(NodeId parent, std::string_view label);
  NodeId AddElement(NodeId parent, Symbol label);

  /// Appends a new text node under `parent` (must not be kNullNode).
  NodeId AddText(NodeId parent, std::string_view text);

  /// Appends a virtual node standing for fragment `ref` under `parent`.
  NodeId AddVirtual(NodeId parent, FragmentId ref);

  /// Adds an attribute to element `node`.
  void AddAttribute(NodeId node, std::string_view name, std::string_view value);

  // ---- Accessors ---------------------------------------------------------

  /// Root node id; kNullNode for an empty tree.
  NodeId root() const { return nodes_.empty() ? kNullNode : 0; }

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }

  NodeKind kind(NodeId id) const { return node(id).kind; }
  bool IsElement(NodeId id) const { return kind(id) == NodeKind::kElement; }
  bool IsText(NodeId id) const { return kind(id) == NodeKind::kText; }
  bool IsVirtual(NodeId id) const { return kind(id) == NodeKind::kVirtual; }

  NodeId parent(NodeId id) const { return node(id).parent; }
  NodeId first_child(NodeId id) const { return node(id).first_child; }
  NodeId next_sibling(NodeId id) const { return node(id).next_sibling; }

  /// Element label symbol (kInvalidSymbol for non-elements).
  Symbol label(NodeId id) const { return node(id).label; }

  /// Element label as a string. Precondition: IsElement(id).
  const std::string& LabelName(NodeId id) const;

  /// Text content of a text node. Precondition: IsText(id).
  std::string_view text(NodeId id) const;

  /// Fragment referenced by a virtual node. Precondition: IsVirtual(id).
  FragmentId fragment_ref(NodeId id) const { return node(id).fragment_ref; }

  /// Attributes of `node` (empty span if none).
  const std::vector<Attribute>& attributes(NodeId node) const;
  bool HasAttributes(NodeId node) const;

  /// Concatenated text of the node's direct text children.
  std::string DirectText(NodeId id) const;

  /// True iff some direct text child equals `value`.
  bool HasTextChild(NodeId id, std::string_view value) const;

  /// Numeric value of the first parseable direct text child, if any.
  std::optional<double> NumericValue(NodeId id) const;

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  // ---- Iteration ---------------------------------------------------------

  /// Range over the children of `id`, usable in range-for.
  class ChildRange {
   public:
    class Iterator {
     public:
      Iterator(const Tree* tree, NodeId cur) : tree_(tree), cur_(cur) {}
      NodeId operator*() const { return cur_; }
      Iterator& operator++() {
        cur_ = tree_->next_sibling(cur_);
        return *this;
      }
      bool operator!=(const Iterator& o) const { return cur_ != o.cur_; }

     private:
      const Tree* tree_;
      NodeId cur_;
    };
    ChildRange(const Tree* tree, NodeId parent) : tree_(tree), parent_(parent) {}
    Iterator begin() const {
      return Iterator(tree_, parent_ == kNullNode ? kNullNode
                                                  : tree_->first_child(parent_));
    }
    Iterator end() const { return Iterator(tree_, kNullNode); }

   private:
    const Tree* tree_;
    NodeId parent_;
  };

  ChildRange children(NodeId id) const { return ChildRange(this, id); }

  /// Number of children of `id`.
  size_t ChildCount(NodeId id) const;

  /// Ids of all nodes in the subtree rooted at `id`, in document order.
  std::vector<NodeId> SubtreeIds(NodeId id) const;

  /// Number of nodes in the subtree rooted at `id`.
  size_t SubtreeSize(NodeId id) const;

  /// Depth of `id` (root has depth 0).
  int Depth(NodeId id) const;

  /// Label path root -> id, e.g. "clientele/client/broker". Virtual and text
  /// nodes contribute no step. Excludes `id` itself when `inclusive` is false.
  std::string LabelPath(NodeId id, bool inclusive = true) const;

  /// All virtual nodes of this tree, in document order.
  std::vector<NodeId> VirtualNodes() const;

  // ---- Integrity ---------------------------------------------------------

  /// Verifies structural invariants (parent/child symmetry, acyclicity,
  /// single root, text/virtual leaves). Used by tests and debug assertions.
  Status Validate() const;

 private:
  NodeId NewNode(NodeId parent, NodeKind kind);

  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Node> nodes_;
  std::vector<std::string> texts_;
  // Sparse: most elements carry no attributes.
  std::unordered_map<NodeId, std::vector<Attribute>> attributes_;
};

}  // namespace paxml

#endif  // PAXML_XML_TREE_H_
