#include "xml/symbol_table.h"

#include "common/logging.h"

namespace paxml {

Symbol SymbolTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const Symbol sym = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), sym);
  return sym;
}

Symbol SymbolTable::Lookup(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::Name(Symbol sym) const {
  std::lock_guard<std::mutex> lock(mu_);
  PAXML_CHECK_LT(sym, names_.size());
  return names_[sym];
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

std::shared_ptr<SymbolTable> SymbolTable::Shared() {
  static std::shared_ptr<SymbolTable> table = std::make_shared<SymbolTable>();
  return table;
}

}  // namespace paxml
