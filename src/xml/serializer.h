// XML serialization of paxml Trees.

#ifndef PAXML_XML_SERIALIZER_H_
#define PAXML_XML_SERIALIZER_H_

#include <string>

#include "xml/tree.h"

namespace paxml {

struct XmlWriteOptions {
  /// Pretty-print with 2-space indentation; otherwise a single line.
  bool indent = false;

  /// Emit the <?xml version="1.0"?> declaration.
  bool declaration = false;
};

/// Serializes the subtree rooted at `node` (default: whole tree) as XML text.
/// Virtual nodes are emitted as <paxml-virtual ref="N"/> so that
/// ParseXml(SerializeXml(t)) round-trips fragments exactly.
std::string SerializeXml(const Tree& tree, NodeId node = kNullNode,
                         const XmlWriteOptions& options = {});

/// Number of bytes SerializeXml would produce with default options, without
/// materializing the string. Used for size-targeted generation and for
/// byte-accurate accounting of fragment shipping.
size_t SerializedSize(const Tree& tree, NodeId node = kNullNode);

}  // namespace paxml

#endif  // PAXML_XML_SERIALIZER_H_
