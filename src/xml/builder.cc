#include "xml/builder.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {

TreeBuilder& TreeBuilder::Open(std::string_view label) {
  const NodeId parent = open_.empty() ? kNullNode : open_.back();
  open_.push_back(tree_.AddElement(parent, label));
  return *this;
}

TreeBuilder& TreeBuilder::Close() {
  PAXML_CHECK(!open_.empty());
  open_.pop_back();
  return *this;
}

TreeBuilder& TreeBuilder::Text(std::string_view text) {
  PAXML_CHECK(!open_.empty());
  tree_.AddText(open_.back(), text);
  return *this;
}

TreeBuilder& TreeBuilder::Attr(std::string_view name, std::string_view value) {
  PAXML_CHECK(!open_.empty());
  tree_.AddAttribute(open_.back(), name, value);
  return *this;
}

TreeBuilder& TreeBuilder::LeafText(std::string_view label, std::string_view text) {
  return Open(label).Text(text).Close();
}

TreeBuilder& TreeBuilder::LeafNumber(std::string_view label, double value) {
  // Integral values print without a trailing ".0" so val() and text() agree
  // with how XMark-style documents write numbers.
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return LeafText(label, StringFormat("%lld", static_cast<long long>(value)));
  }
  return LeafText(label, StringFormat("%g", value));
}

TreeBuilder& TreeBuilder::Leaf(std::string_view label) {
  return Open(label).Close();
}

TreeBuilder& TreeBuilder::Virtual(FragmentId ref) {
  PAXML_CHECK(!open_.empty());
  tree_.AddVirtual(open_.back(), ref);
  return *this;
}

NodeId TreeBuilder::current() const {
  return open_.empty() ? kNullNode : open_.back();
}

Tree TreeBuilder::Finish() && {
  PAXML_CHECK(open_.empty());
  return std::move(tree_);
}

}  // namespace paxml
