// Interned element labels.
//
// Every element label (tag name) is interned into a Symbol (dense uint32).
// Label comparisons during query evaluation are integer compares, and query
// vectors can be built against symbols once instead of re-hashing strings at
// every node. Fragments of the same logical document share one table so that
// symbols are stable across sites (in a real deployment this corresponds to
// the shared document vocabulary / schema).

#ifndef PAXML_XML_SYMBOL_TABLE_H_
#define PAXML_XML_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace paxml {

/// Dense id of an interned label. kInvalidSymbol is never a valid label.
using Symbol = uint32_t;
inline constexpr Symbol kInvalidSymbol = 0xffffffffu;

/// Thread-safe intern table mapping label strings <-> Symbols.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Interns `name`, returning its stable symbol.
  Symbol Intern(std::string_view name);

  /// Returns the symbol of `name` if already interned, else kInvalidSymbol.
  Symbol Lookup(std::string_view name) const;

  /// The label string of `sym`. Precondition: sym was returned by Intern.
  const std::string& Name(Symbol sym) const;

  /// Number of distinct interned labels.
  size_t size() const;

  /// A process-wide table, convenient default for single-document programs.
  static std::shared_ptr<SymbolTable> Shared();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Symbol> index_;
  // deque: stable element addresses, so Name() references stay valid across
  // concurrent Intern calls.
  std::deque<std::string> names_;
};

}  // namespace paxml

#endif  // PAXML_XML_SYMBOL_TABLE_H_
