#include "xml/serializer.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "xml/parser.h"

namespace paxml {
namespace {

void WriteNode(const Tree& tree, NodeId id, const XmlWriteOptions& options,
               int depth, std::string* out) {
  auto indent = [&]() {
    if (options.indent) {
      if (!out->empty()) out->push_back('\n');
      out->append(static_cast<size_t>(depth) * 2, ' ');
    }
  };

  switch (tree.kind(id)) {
    case NodeKind::kText:
      out->append(XmlEscape(tree.text(id)));
      return;
    case NodeKind::kVirtual:
      indent();
      out->push_back('<');
      out->append(kVirtualElementName);
      out->append(" ");
      out->append(kVirtualRefAttribute);
      out->append("=\"");
      out->append(std::to_string(tree.fragment_ref(id)));
      out->append("\"/>");
      return;
    case NodeKind::kElement:
      break;
  }

  indent();
  const std::string& label = tree.LabelName(id);
  out->push_back('<');
  out->append(label);
  for (const Attribute& a : tree.attributes(id)) {
    out->push_back(' ');
    out->append(tree.symbols()->Name(a.name));
    out->append("=\"");
    out->append(XmlEscape(a.value));
    out->push_back('"');
  }
  if (tree.first_child(id) == kNullNode) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  // Text-only elements stay on one line: <name>Anna</name>.
  bool has_element_child = false;
  for (NodeId c : tree.children(id)) {
    if (!tree.IsText(c)) has_element_child = true;
  }
  for (NodeId c : tree.children(id)) {
    if (tree.IsText(c) && options.indent && has_element_child) {
      out->push_back('\n');
      out->append((static_cast<size_t>(depth) + 1) * 2, ' ');
    }
    WriteNode(tree, c, options, depth + 1, out);
  }
  if (options.indent && has_element_child) {
    out->push_back('\n');
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }
  out->append("</");
  out->append(label);
  out->push_back('>');
}

}  // namespace

std::string SerializeXml(const Tree& tree, NodeId node,
                         const XmlWriteOptions& options) {
  std::string out;
  if (options.declaration) out.append("<?xml version=\"1.0\"?>");
  if (tree.empty()) return out;
  if (node == kNullNode) node = tree.root();
  // Serializing a text node standalone is not meaningful XML.
  PAXML_CHECK(!tree.IsText(node));
  if (options.declaration && options.indent) out.push_back('\n');
  WriteNode(tree, node, options, 0, &out);
  return out;
}

size_t SerializedSize(const Tree& tree, NodeId node) {
  if (tree.empty()) return 0;
  if (node == kNullNode) node = tree.root();
  size_t total = 0;
  // Iterative traversal; accounts for tags, attributes and escaped text.
  struct Item {
    NodeId id;
  };
  std::vector<NodeId> stack = {node};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    switch (tree.kind(v)) {
      case NodeKind::kText:
        total += XmlEscape(tree.text(v)).size();
        break;
      case NodeKind::kVirtual:
        // <paxml-virtual ref="N"/>
        total += 1 + kVirtualElementName.size() + 1 +
                 kVirtualRefAttribute.size() + 2 +
                 std::to_string(tree.fragment_ref(v)).size() + 3;
        break;
      case NodeKind::kElement: {
        const std::string& label = tree.LabelName(v);
        size_t attr_bytes = 0;
        for (const Attribute& a : tree.attributes(v)) {
          attr_bytes +=
              1 + tree.symbols()->Name(a.name).size() + 2 + XmlEscape(a.value).size() + 1;
        }
        if (tree.first_child(v) == kNullNode) {
          total += 1 + label.size() + attr_bytes + 2;  // <label/>
        } else {
          total += (1 + label.size() + attr_bytes + 1) + (2 + label.size() + 1);
          for (NodeId c : tree.children(v)) stack.push_back(c);
        }
        break;
      }
    }
  }
  return total;
}

}  // namespace paxml
