// Fluent in-code construction of XML trees (tests, examples, generators).
//
//   TreeBuilder b;
//   b.Open("clientele");
//     b.Open("client");
//       b.LeafText("name", "Anna");
//       b.LeafText("country", "US");
//     b.Close();
//   b.Close();
//   Tree t = std::move(b).Finish();

#ifndef PAXML_XML_BUILDER_H_
#define PAXML_XML_BUILDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "xml/tree.h"

namespace paxml {

/// Stack-based tree builder. All methods return *this for chaining.
class TreeBuilder {
 public:
  explicit TreeBuilder(std::shared_ptr<SymbolTable> symbols = nullptr)
      : tree_(std::move(symbols)) {}

  /// Opens a new element under the current one (or as root).
  TreeBuilder& Open(std::string_view label);

  /// Closes the most recently opened element.
  TreeBuilder& Close();

  /// Adds a text node under the current element.
  TreeBuilder& Text(std::string_view text);

  /// Adds an attribute to the current element.
  TreeBuilder& Attr(std::string_view name, std::string_view value);

  /// Open(label) + Text(text) + Close(): the ubiquitous leaf pattern.
  TreeBuilder& LeafText(std::string_view label, std::string_view text);

  /// Leaf with a numeric value, e.g. LeafNumber("age", 32).
  TreeBuilder& LeafNumber(std::string_view label, double value);

  /// Empty element.
  TreeBuilder& Leaf(std::string_view label);

  /// Virtual placeholder for fragment `ref` under the current element.
  TreeBuilder& Virtual(FragmentId ref);

  /// Id of the innermost open element (kNullNode before the first Open).
  NodeId current() const;

  /// Depth of open elements.
  size_t open_depth() const { return open_.size(); }

  /// Finishes construction. All elements must have been closed.
  Tree Finish() &&;

 private:
  Tree tree_;
  std::vector<NodeId> open_;
};

}  // namespace paxml

#endif  // PAXML_XML_BUILDER_H_
