// A small, dependency-free XML parser producing paxml Trees.
//
// Supported: elements, attributes, character data, CDATA sections, comments,
// processing instructions (skipped), XML declaration, DOCTYPE (skipped), the
// five predefined entities and numeric character references. Namespaces are
// treated literally (prefix kept in the label). This covers everything the
// XMark-style workloads and the paper's examples need.
//
// Virtual nodes (fragment placeholders) serialize as
//   <paxml-virtual ref="<fragment-id>"/>
// and are recognized back by the parser, so fragments ship as plain XML.

#ifndef PAXML_XML_PARSER_H_
#define PAXML_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "xml/tree.h"

namespace paxml {

/// Element name under which virtual nodes round-trip through XML text.
inline constexpr std::string_view kVirtualElementName = "paxml-virtual";
inline constexpr std::string_view kVirtualRefAttribute = "ref";

struct XmlParseOptions {
  /// Drop text nodes that are entirely whitespace (defaults on: layout
  /// whitespace is noise for query evaluation).
  bool skip_whitespace_text = true;

  /// Recognize <paxml-virtual ref="N"/> as virtual nodes.
  bool recognize_virtual_nodes = true;

  /// Symbol table for the resulting tree (nullptr -> process-wide).
  std::shared_ptr<SymbolTable> symbols;
};

/// Parses one XML document into a Tree.
Result<Tree> ParseXml(std::string_view input, const XmlParseOptions& options = {});

}  // namespace paxml

#endif  // PAXML_XML_PARSER_H_
