#include "xml/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace paxml {
namespace {

/// Recursive-descent XML parser over a string_view. Tracks offsets for error
/// messages. Errors are reported via Status; no exceptions.
class XmlParser {
 public:
  XmlParser(std::string_view input, const XmlParseOptions& options)
      : in_(input), options_(options), tree_(options.symbols) {}

  Result<Tree> Parse() {
    SkipProlog();
    PAXML_RETURN_NOT_OK(ParseElement(kNullNode));
    SkipMisc();
    if (pos_ != in_.size()) {
      return Error("trailing content after document element");
    }
    return std::move(tree_);
  }

 private:
  // ---- Character-level helpers ------------------------------------------

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return in_.compare(pos_, s.size(), s) == 0;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(
        StringFormat("%s at offset %zu", what.c_str(), pos_));
  }

  // ---- Prolog / misc -----------------------------------------------------

  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else if (LookingAt("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    size_t found = in_.find(terminator, pos_);
    pos_ = (found == std::string_view::npos) ? in_.size()
                                             : found + terminator.size();
  }

  void SkipDoctype() {
    // DOCTYPE may contain an internal subset in [...]; skip to matching '>'.
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = in_[pos_++];
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) return;
    }
  }

  // ---- Names, attributes, references -------------------------------------

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string_view> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return in_.substr(start, pos_ - start);
  }

  /// Decodes entity/char references in raw character data.
  Result<std::string> DecodeText(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out.push_back('&');
      } else if (ent == "lt") {
        out.push_back('<');
      } else if (ent == "gt") {
        out.push_back('>');
      } else if (ent == "quot") {
        out.push_back('"');
      } else if (ent == "apos") {
        out.push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        int base = 10;
        std::string digits(ent.substr(1));
        if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
          base = 16;
          digits.erase(0, 1);
        }
        char* end = nullptr;
        long code = std::strtol(digits.c_str(), &end, base);
        if (end != digits.c_str() + digits.size() || code <= 0 || code > 0x10ffff) {
          return Status::ParseError("bad character reference &" +
                                    std::string(ent) + ";");
        }
        AppendUtf8(&out, static_cast<uint32_t>(code));
      } else {
        return Status::ParseError("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return out;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  struct RawAttribute {
    std::string_view name;
    std::string value;
  };

  Result<std::vector<RawAttribute>> ParseAttributes() {
    std::vector<RawAttribute> attrs;
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return attrs;
      PAXML_ASSIGN_OR_RETURN(std::string_view name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      const char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      PAXML_ASSIGN_OR_RETURN(std::string value,
                             DecodeText(in_.substr(start, pos_ - start)));
      ++pos_;  // closing quote
      attrs.push_back(RawAttribute{name, std::move(value)});
    }
  }

  // ---- Elements -----------------------------------------------------------

  Status ParseElement(NodeId parent) {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    ++pos_;
    PAXML_ASSIGN_OR_RETURN(std::string_view name, ParseName());
    PAXML_ASSIGN_OR_RETURN(std::vector<RawAttribute> attrs, ParseAttributes());

    // Virtual-node placeholder?
    if (options_.recognize_virtual_nodes && name == kVirtualElementName) {
      return ParseVirtualNode(parent, attrs);
    }

    const NodeId self = tree_.AddElement(parent, name);
    for (const auto& a : attrs) tree_.AddAttribute(self, a.name, a.value);

    SkipWhitespace();
    if (LookingAt("/>")) {
      pos_ += 2;
      return Status::OK();
    }
    if (AtEnd() || Peek() != '>') return Error("expected '>'");
    ++pos_;

    PAXML_RETURN_NOT_OK(ParseContent(self));

    // Closing tag: ParseContent stops right before "</".
    pos_ += 2;
    PAXML_ASSIGN_OR_RETURN(std::string_view close_name, ParseName());
    if (close_name != name) {
      return Error("mismatched closing tag </" + std::string(close_name) +
                   "> for <" + std::string(name) + ">");
    }
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("expected '>' in closing tag");
    ++pos_;
    return Status::OK();
  }

  Status ParseVirtualNode(NodeId parent, const std::vector<RawAttribute>& attrs) {
    if (parent == kNullNode) {
      return Error("virtual node cannot be the document root");
    }
    FragmentId ref = kNullFragment;
    for (const auto& a : attrs) {
      if (a.name == kVirtualRefAttribute) {
        auto n = ParseNumber(a.value);
        if (!n || *n < 0) return Error("bad virtual node ref");
        ref = static_cast<FragmentId>(*n);
      }
    }
    if (ref == kNullFragment) return Error("virtual node without ref");
    tree_.AddVirtual(parent, ref);
    SkipWhitespace();
    if (LookingAt("/>")) {
      pos_ += 2;
      return Status::OK();
    }
    // Tolerate the non-self-closing form <paxml-virtual ref="1"></paxml-virtual>.
    if (!AtEnd() && Peek() == '>') {
      ++pos_;
      SkipWhitespace();
      if (!LookingAt("</")) return Error("virtual node must be empty");
      pos_ += 2;
      PAXML_ASSIGN_OR_RETURN(std::string_view close_name, ParseName());
      if (close_name != kVirtualElementName) {
        return Error("mismatched virtual close tag");
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != '>') return Error("expected '>'");
      ++pos_;
      return Status::OK();
    }
    return Error("malformed virtual node");
  }

  Status ParseContent(NodeId self) {
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      if (!options_.skip_whitespace_text || !IsAllWhitespace(pending_text)) {
        tree_.AddText(self, pending_text);
      }
      pending_text.clear();
    };

    for (;;) {
      if (AtEnd()) return Error("unexpected end of input inside element");
      if (LookingAt("</")) {
        flush_text();
        return Status::OK();
      }
      if (LookingAt("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        pos_ += 9;
        size_t end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        pending_text.append(in_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<?")) {
        SkipUntil("?>");
        continue;
      }
      if (Peek() == '<') {
        flush_text();
        PAXML_RETURN_NOT_OK(ParseElement(self));
        continue;
      }
      // Character data up to the next markup.
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      PAXML_ASSIGN_OR_RETURN(std::string decoded,
                             DecodeText(in_.substr(start, pos_ - start)));
      pending_text.append(decoded);
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  XmlParseOptions options_;
  Tree tree_;
};

}  // namespace

Result<Tree> ParseXml(std::string_view input, const XmlParseOptions& options) {
  XmlParser parser(input, options);
  return parser.Parse();
}

}  // namespace paxml
