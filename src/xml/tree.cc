#include "xml/tree.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {

Tree::Tree(std::shared_ptr<SymbolTable> symbols)
    : symbols_(symbols ? std::move(symbols) : SymbolTable::Shared()) {}

Tree Tree::Clone() const {
  Tree copy(symbols_);
  copy.nodes_ = nodes_;
  copy.texts_ = texts_;
  copy.attributes_ = attributes_;
  return copy;
}

NodeId Tree::NewNode(NodeId parent, NodeKind kind) {
  if (parent == kNullNode) {
    PAXML_CHECK(nodes_.empty());  // only the first node may be parentless
  } else {
    PAXML_CHECK_LT(static_cast<size_t>(parent), nodes_.size());
    PAXML_CHECK(nodes_[static_cast<size_t>(parent)].kind == NodeKind::kElement);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.parent = parent;
  n.kind = kind;
  nodes_.push_back(n);
  if (parent != kNullNode) {
    Node& p = nodes_[static_cast<size_t>(parent)];
    if (p.last_child == kNullNode) {
      p.first_child = p.last_child = id;
    } else {
      nodes_[static_cast<size_t>(p.last_child)].next_sibling = id;
      p.last_child = id;
    }
  }
  return id;
}

NodeId Tree::AddElement(NodeId parent, std::string_view label) {
  return AddElement(parent, symbols_->Intern(label));
}

NodeId Tree::AddElement(NodeId parent, Symbol label) {
  const NodeId id = NewNode(parent, NodeKind::kElement);
  nodes_[static_cast<size_t>(id)].label = label;
  return id;
}

NodeId Tree::AddText(NodeId parent, std::string_view text) {
  PAXML_CHECK_NE(parent, kNullNode);
  const NodeId id = NewNode(parent, NodeKind::kText);
  nodes_[static_cast<size_t>(id)].text_index = static_cast<int32_t>(texts_.size());
  texts_.emplace_back(text);
  return id;
}

NodeId Tree::AddVirtual(NodeId parent, FragmentId ref) {
  PAXML_CHECK_NE(parent, kNullNode);
  const NodeId id = NewNode(parent, NodeKind::kVirtual);
  nodes_[static_cast<size_t>(id)].fragment_ref = ref;
  return id;
}

void Tree::AddAttribute(NodeId node, std::string_view name,
                        std::string_view value) {
  PAXML_CHECK(IsElement(node));
  attributes_[node].push_back(
      Attribute{symbols_->Intern(name), std::string(value)});
}

const std::string& Tree::LabelName(NodeId id) const {
  PAXML_CHECK(IsElement(id));
  return symbols_->Name(label(id));
}

std::string_view Tree::text(NodeId id) const {
  PAXML_CHECK(IsText(id));
  return texts_[static_cast<size_t>(node(id).text_index)];
}

const std::vector<Attribute>& Tree::attributes(NodeId node) const {
  static const std::vector<Attribute> kNone;
  auto it = attributes_.find(node);
  return it == attributes_.end() ? kNone : it->second;
}

bool Tree::HasAttributes(NodeId node) const {
  return attributes_.find(node) != attributes_.end();
}

std::string Tree::DirectText(NodeId id) const {
  std::string out;
  for (NodeId c : children(id)) {
    if (IsText(c)) out.append(text(c));
  }
  return out;
}

bool Tree::HasTextChild(NodeId id, std::string_view value) const {
  for (NodeId c : children(id)) {
    if (IsText(c) && text(c) == value) return true;
  }
  return false;
}

std::optional<double> Tree::NumericValue(NodeId id) const {
  for (NodeId c : children(id)) {
    if (!IsText(c)) continue;
    if (auto v = ParseNumber(text(c))) return v;
  }
  return std::nullopt;
}

size_t Tree::ChildCount(NodeId id) const {
  size_t n = 0;
  for (NodeId c = first_child(id); c != kNullNode; c = next_sibling(c)) ++n;
  return n;
}

std::vector<NodeId> Tree::SubtreeIds(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    out.push_back(v);
    // Push children reversed so they pop in document order.
    std::vector<NodeId> kids;
    for (NodeId c : children(v)) kids.push_back(c);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

size_t Tree::SubtreeSize(NodeId id) const {
  size_t n = 0;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    ++n;
    for (NodeId c : children(v)) stack.push_back(c);
  }
  return n;
}

int Tree::Depth(NodeId id) const {
  int d = 0;
  for (NodeId p = parent(id); p != kNullNode; p = parent(p)) ++d;
  return d;
}

std::string Tree::LabelPath(NodeId id, bool inclusive) const {
  std::vector<std::string> steps;
  NodeId v = inclusive ? id : parent(id);
  for (; v != kNullNode; v = parent(v)) {
    if (IsElement(v)) steps.push_back(LabelName(v));
  }
  std::reverse(steps.begin(), steps.end());
  return Join(steps, "/");
}

std::vector<NodeId> Tree::VirtualNodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (IsVirtual(id)) out.push_back(id);
  }
  return out;
}

Status Tree::Validate() const {
  if (nodes_.empty()) return Status::OK();
  size_t reachable = 0;
  std::vector<NodeId> stack = {root()};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    if (v < 0 || static_cast<size_t>(v) >= nodes_.size()) {
      return Status::Internal("node id out of range");
    }
    if (seen[static_cast<size_t>(v)]) {
      return Status::Internal("cycle or shared node detected");
    }
    seen[static_cast<size_t>(v)] = true;
    ++reachable;
    const Node& n = node(v);
    if (n.kind != NodeKind::kElement && n.first_child != kNullNode) {
      return Status::Internal("non-element node has children");
    }
    if (n.kind == NodeKind::kElement && n.label == kInvalidSymbol) {
      return Status::Internal("element without label");
    }
    for (NodeId c = n.first_child; c != kNullNode; c = next_sibling(c)) {
      if (parent(c) != v) return Status::Internal("parent/child mismatch");
      stack.push_back(c);
    }
  }
  if (reachable != nodes_.size()) {
    return Status::Internal("unreachable nodes in arena");
  }
  if (node(root()).parent != kNullNode) {
    return Status::Internal("root has a parent");
  }
  return Status::OK();
}

}  // namespace paxml
