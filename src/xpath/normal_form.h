// The paper's query normal form (Section 2.2).
//
// Every class-X query is rewritten as β1/…/βn where each βi is one of
//   A      — a label step,
//   *      — a wildcard step,
//   //     — a descendant-or-self step,
//   ε[q]   — a self step carrying a (normalized) qualifier.
//
// Qualifier normalization pushes text()/val() tests into trailing ε steps
// (normalize(Q/text()='s') = normalize(Q)/ε[text()='s']) and merges runs of
// consecutive ε steps into one (ε[q1]/ε[q2] -> ε[q1 ∧ q2]).
//
// NormalPath with an empty step list denotes ε (the context itself).

#ifndef PAXML_XPATH_NORMAL_FORM_H_
#define PAXML_XPATH_NORMAL_FORM_H_

#include <memory>
#include <string>
#include <vector>

#include "xpath/ast.h"

namespace paxml {

struct NormalQual;

enum class StepKind : uint8_t {
  kLabel,     ///< A
  kWildcard,  ///< *
  kDescend,   ///< //
  kSelf,      ///< ε[q] (qual may be null for a bare trailing ε)
};

/// One β step of the normal form. Copyable: qualifiers are immutable and
/// shared.
struct NormalStep {
  StepKind kind;
  std::string label;                       ///< kLabel only
  std::shared_ptr<const NormalQual> qual;  ///< kSelf only (may be null)
};

/// A normalized path β1/…/βn. Empty == ε.
struct NormalPath {
  std::vector<NormalStep> steps;

  bool IsSelf() const { return steps.empty(); }
};

enum class NormalQualKind : uint8_t {
  kPath,    ///< existential normalized path
  kTextEq,  ///< bare test on the context node: has a text child == text
  kValCmp,  ///< bare test: has a text child with numeric value `op number`
  kNot,
  kAnd,
  kOr,
};

/// A normalized qualifier expression. Immutable after construction.
struct NormalQual {
  NormalQualKind kind;
  NormalPath path;                          ///< kPath
  std::string text;                         ///< kTextEq
  CmpOp op = CmpOp::kEq;                    ///< kValCmp
  double number = 0;                        ///< kValCmp
  std::shared_ptr<const NormalQual> left;   ///< kNot/kAnd/kOr
  std::shared_ptr<const NormalQual> right;  ///< kAnd/kOr
};

/// Rewrites a parsed query into normal form. Runs in linear time in |Q|.
NormalPath Normalize(const PathExpr& query);

/// Normalizes a standalone qualifier.
std::shared_ptr<const NormalQual> NormalizeQual(const QualExpr& qual);

/// Printers ('ε' rendered as '.'); output re-parses to the same normal form.
std::string ToString(const NormalPath& path);
std::string ToString(const NormalQual& qual);

/// The selection path of a normalized query: qualifiers struck out
/// (Section 2.2), e.g. //broker[..]/name -> "//broker/name".
std::string SelectionPathString(const NormalPath& path);

}  // namespace paxml

#endif  // PAXML_XPATH_NORMAL_FORM_H_
