// Abstract syntax of the XPath fragment X (Section 2.2 of the paper):
//
//   Q := ε | A | * | Q//Q | Q/Q | Q[q]
//   q := Q | Q/text() = str | Q/val() op num | ¬q | q ∧ q | q ∨ q
//
// This class covers the downward axes (self, child, descendant-or-self),
// wildcards and Boolean qualifiers with string and numeric comparisons. It
// subsumes twig queries and the Boolean XPath of ParBoX (a query [q] with an
// empty selection path is exactly a Boolean query).

#ifndef PAXML_XPATH_AST_H_
#define PAXML_XPATH_AST_H_

#include <memory>
#include <string>

namespace paxml {

struct QualExpr;

/// Comparison operators allowed in val() qualifiers.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Renders "=", "!=", "<", "<=", ">", ">=".
const char* CmpOpToString(CmpOp op);

/// True iff `lhs op rhs` holds.
bool EvalCmp(CmpOp op, double lhs, double rhs);

enum class PathKind : uint8_t {
  kSelf,        ///< ε
  kLabel,       ///< tag A
  kWildcard,    ///< *
  kChild,       ///< left / right
  kDescendant,  ///< left // right
  kQualified,   ///< left [qual]
};

/// A path expression node.
struct PathExpr {
  PathKind kind;
  std::string label;                 ///< kLabel only
  std::unique_ptr<PathExpr> left;    ///< kChild/kDescendant/kQualified
  std::unique_ptr<PathExpr> right;   ///< kChild/kDescendant
  std::unique_ptr<QualExpr> qual;    ///< kQualified

  static std::unique_ptr<PathExpr> Self();
  static std::unique_ptr<PathExpr> Label(std::string name);
  static std::unique_ptr<PathExpr> Wildcard();
  static std::unique_ptr<PathExpr> Child(std::unique_ptr<PathExpr> l,
                                         std::unique_ptr<PathExpr> r);
  static std::unique_ptr<PathExpr> Descendant(std::unique_ptr<PathExpr> l,
                                              std::unique_ptr<PathExpr> r);
  static std::unique_ptr<PathExpr> Qualified(std::unique_ptr<PathExpr> l,
                                             std::unique_ptr<QualExpr> q);

  std::unique_ptr<PathExpr> Clone() const;
};

enum class QualKind : uint8_t {
  kPath,    ///< existential path: [Q]
  kTextEq,  ///< [Q/text() = "str"]   (Q may be ε: [text() = "str"])
  kValCmp,  ///< [Q/val() op num]
  kNot,
  kAnd,
  kOr,
};

/// A qualifier expression node.
struct QualExpr {
  QualKind kind;
  std::unique_ptr<PathExpr> path;   ///< kPath/kTextEq/kValCmp (never null)
  std::string text;                 ///< kTextEq
  CmpOp op = CmpOp::kEq;            ///< kValCmp
  double number = 0;                ///< kValCmp
  std::unique_ptr<QualExpr> left;   ///< kNot/kAnd/kOr
  std::unique_ptr<QualExpr> right;  ///< kAnd/kOr

  static std::unique_ptr<QualExpr> Path(std::unique_ptr<PathExpr> p);
  static std::unique_ptr<QualExpr> TextEq(std::unique_ptr<PathExpr> p,
                                          std::string value);
  static std::unique_ptr<QualExpr> ValCmp(std::unique_ptr<PathExpr> p, CmpOp op,
                                          double value);
  static std::unique_ptr<QualExpr> Not(std::unique_ptr<QualExpr> q);
  static std::unique_ptr<QualExpr> And(std::unique_ptr<QualExpr> l,
                                       std::unique_ptr<QualExpr> r);
  static std::unique_ptr<QualExpr> Or(std::unique_ptr<QualExpr> l,
                                      std::unique_ptr<QualExpr> r);

  std::unique_ptr<QualExpr> Clone() const;
};

/// Unparses an AST back to query syntax (parse(ToString(x)) == x).
std::string ToString(const PathExpr& path);
std::string ToString(const QualExpr& qual);

}  // namespace paxml

#endif  // PAXML_XPATH_AST_H_
