// Compiled query vectors: the paper's SVect(Q) and QVect(Q) (Section 2.2).
//
// A CompiledQuery decouples the *selection path* of a query from its
// *qualifiers* and compiles both into flat vectors whose entries are
// evaluated per node:
//
// QVect — qualifier plane (Entry). Entries are suffix-structured paths and
// leaf tests, topologically ordered (an entry's `rest` and `qual` refer only
// to smaller indices). The value of entry e at node v, QV_v(e), means:
//
//    "e's first-step test matches v itself, v satisfies e's qualifiers, and
//     the rest of e's path matches below v"
//
// exactly the semantics of Example 3.1 in the paper (e.g. the entry
// market/q7 is true at a market node that has a matching name descendant
// chain; the entry [text()="us"] is true at a *text node* carrying "us").
// Three aggregates make the bottom-up computation local:
//    QCV_v(e)  = OR over children u of QV_u(e)        ("some child")
//    QDV_v(e)  = QV_v(e) OR (OR over children of QDV) ("desc-or-self")
//    and "some proper descendant" = OR over children of QDV_u(e).
//
// Qualifier expressions (QualNode) combine entry lookups through an axis:
//    kChild            -> QCV_v(entry)
//    kProperDescendant -> OR_{child u} QDV_u(entry)
//    kDescendantOrSelf -> QDV_v(entry)
//    kSelf             -> QV_v(entry)
// with kAnd/kOr/kNot/kTrue composing pointwise at v.
//
// SVect — selection plane (SelEntry). Entry i denotes the prefix η1/…/ηi of
// the selection path; SV_v(i) means "v is reachable from the document node
// via that prefix". Entry 0 is the document-node context (carrying any
// leading qualifier, which — following the paper's convention of evaluating
// queries at the root of T — is tested at the root element). Recurrences
// (Procedure topDown, Fig. 4):
//    label/wildcard i: SV_v(i) = SV_parent(i-1) AND term(v, ηi) AND qual_i(v)
//    descend i:        SV_v(i) = SV_v(i-1) OR SV_parent(i)
//    self-filter i:    SV_v(i) = SV_v(i-1) AND qual_i(v)
// A node is an answer iff SV_v(last) holds (empty selection = Boolean query:
// the answer is the root element iff the root qualifier holds).
//
// Consecutive '//' steps are collapsed (descendant-or-self is idempotent);
// ε[q] steps merge into the preceding label/wildcard entry (the paper's
// assocQual) and become kSelfFilter entries after '//'.

#ifndef PAXML_XPATH_QUERY_PLAN_H_
#define PAXML_XPATH_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/symbol_table.h"
#include "xpath/normal_form.h"

namespace paxml {

/// How a qualifier atom (or a path entry's rest) looks below/at a node.
enum class Axis : uint8_t {
  kNone,              ///< no rest: the path ends here
  kChild,             ///< some child
  kProperDescendant,  ///< some descendant at depth >= 1
  kDescendantOrSelf,  ///< the node itself or some descendant
  kSelf,              ///< the node itself (qualifier atoms only)
};

/// Node test of a QVect entry.
enum class TestKind : uint8_t {
  kLabel,     ///< element with the given label
  kWildcard,  ///< any element
  kAnyNode,   ///< any node (from ε steps)
  kTextEq,    ///< text node with exact value
  kValCmp,    ///< text node with numeric value `op number`
};

enum class QualNodeKind : uint8_t { kTrue, kAtom, kAnd, kOr, kNot };

enum class SelKind : uint8_t {
  kRoot,        ///< entry 0: document-node context
  kLabel,       ///< child step with label
  kWildcard,    ///< child step, any element
  kDescend,     ///< '//' closure entry
  kSelfFilter,  ///< ε[q] surviving after '//'
};

/// A compiled class-X query. Immutable once built; safe to share across
/// threads (sites evaluate the same query in parallel).
class CompiledQuery {
 public:
  struct Entry {
    TestKind test;
    Symbol label = kInvalidSymbol;  ///< kLabel
    std::string text;               ///< kTextEq
    CmpOp op = CmpOp::kEq;          ///< kValCmp
    double number = 0;              ///< kValCmp
    int qual = -1;                  ///< QualNode evaluated at v (-1: none)
    Axis rest_axis = Axis::kNone;
    int rest = -1;                  ///< entry index of the path suffix
  };

  struct QualNode {
    QualNodeKind kind;
    Axis axis = Axis::kNone;  ///< kAtom
    int entry = -1;           ///< kAtom
    int left = -1;            ///< kAnd/kOr/kNot
    int right = -1;           ///< kAnd/kOr
  };

  struct SelEntry {
    SelKind kind;
    Symbol label = kInvalidSymbol;  ///< kLabel
    int qual = -1;                  ///< QualNode (assocQual), -1: none
  };

  /// QVect: topologically ordered qualifier entries.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Qualifier expression nodes (referenced by Entry::qual, SelEntry::qual).
  const std::vector<QualNode>& qual_nodes() const { return qual_nodes_; }

  /// SVect: selection entries; [0] is always the kRoot context entry.
  const std::vector<SelEntry>& selection() const { return selection_; }

  /// Number of selection entries including the root context.
  size_t selection_size() const { return selection_.size(); }

  /// True iff any qualifier occurs anywhere in the query. Qualifier-free
  /// queries skip the qualifier stage entirely (and, with XPath-annotated
  /// fragment trees, the final visit as well — Section 5).
  bool has_qualifiers() const { return has_qualifiers_; }

  /// True iff the selection path contains a '//' step (affects how many
  /// fragments XPath-annotation pruning can rule out — Section 6).
  bool selection_has_descendant() const { return selection_has_descendant_; }

  /// True iff the selection path is empty (a Boolean query in the sense of
  /// ParBoX: the answer is the root element or nothing).
  bool IsBooleanQuery() const { return selection_.size() == 1; }

  const std::string& source() const { return source_; }
  const std::string& normal_form() const { return normal_form_; }
  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  /// Debug rendering of all vectors.
  std::string DebugString() const;

  /// Compiles a normalized query against `symbols`.
  static CompiledQuery Compile(const NormalPath& normal,
                               std::shared_ptr<SymbolTable> symbols,
                               std::string source = {});

 private:
  friend class QueryCompiler;

  std::vector<Entry> entries_;
  std::vector<QualNode> qual_nodes_;
  std::vector<SelEntry> selection_;
  bool has_qualifiers_ = false;
  bool selection_has_descendant_ = false;
  std::string source_;
  std::string normal_form_;
  std::shared_ptr<SymbolTable> symbols_;
};

/// Parse + normalize + compile in one call.
Result<CompiledQuery> CompileXPath(std::string_view query,
                                   std::shared_ptr<SymbolTable> symbols = nullptr);

}  // namespace paxml

#endif  // PAXML_XPATH_QUERY_PLAN_H_
