#include "xpath/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace paxml {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kDoubleSlash:
      return "'//'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kAnd:
      return "'&&'";
    case TokenKind::kOr:
      return "'||'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kName:
      return "name";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

}  // namespace

Result<std::vector<Token>> LexXPath(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t offset, std::string text = {},
                  double number = 0) {
    out.push_back(Token{kind, std::move(text), number, offset});
  };

  while (i < in.size()) {
    const char c = in[i];
    const size_t at = i;
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    switch (c) {
      case '/':
        if (i + 1 < in.size() && in[i + 1] == '/') {
          push(TokenKind::kDoubleSlash, at);
          i += 2;
        } else {
          push(TokenKind::kSlash, at);
          ++i;
        }
        continue;
      case '*':
        push(TokenKind::kStar, at);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, at);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, at);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, at);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, at);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, at);
        ++i;
        continue;
      case '!':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokenKind::kNe, at);
          i += 2;
        } else {
          push(TokenKind::kBang, at);
          ++i;
        }
        continue;
      case '<':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokenKind::kLe, at);
          i += 2;
        } else if (i + 1 < in.size() && in[i + 1] == '>') {
          push(TokenKind::kNe, at);
          i += 2;
        } else {
          push(TokenKind::kLt, at);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokenKind::kGe, at);
          i += 2;
        } else {
          push(TokenKind::kGt, at);
          ++i;
        }
        continue;
      case '&':
        if (i + 1 < in.size() && in[i + 1] == '&') {
          push(TokenKind::kAnd, at);
          i += 2;
          continue;
        }
        return Status::ParseError(StringFormat("stray '&' at offset %zu", at));
      case '|':
        if (i + 1 < in.size() && in[i + 1] == '|') {
          push(TokenKind::kOr, at);
          i += 2;
          continue;
        }
        return Status::ParseError(StringFormat("stray '|' at offset %zu", at));
      case '\'':
      case '"': {
        const char quote = c;
        size_t j = i + 1;
        while (j < in.size() && in[j] != quote) ++j;
        if (j >= in.size()) {
          return Status::ParseError(
              StringFormat("unterminated string at offset %zu", at));
        }
        push(TokenKind::kString, at, std::string(in.substr(i + 1, j - i - 1)));
        i = j + 1;
        continue;
      }
      default:
        break;
    }
    if (c == '.' && (i + 1 >= in.size() ||
                     !std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      push(TokenKind::kDot, at);
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
        ((c == '-' || c == '+') && i + 1 < in.size() &&
         (std::isdigit(static_cast<unsigned char>(in[i + 1])) ||
          in[i + 1] == '.'))) {
      size_t j = i;
      if (in[j] == '-' || in[j] == '+') ++j;
      while (j < in.size() &&
             (std::isdigit(static_cast<unsigned char>(in[j])) || in[j] == '.')) {
        ++j;
      }
      auto value = ParseNumber(in.substr(i, j - i));
      if (!value) {
        return Status::ParseError(
            StringFormat("bad number at offset %zu", at));
      }
      push(TokenKind::kNumber, at, std::string(in.substr(i, j - i)), *value);
      i = j;
      continue;
    }
    if (IsNameStart(c)) {
      size_t j = i;
      while (j < in.size() && IsNameChar(in[j])) ++j;
      push(TokenKind::kName, at, std::string(in.substr(i, j - i)));
      i = j;
      continue;
    }
    return Status::ParseError(
        StringFormat("unexpected character '%c' at offset %zu", c, at));
  }
  push(TokenKind::kEnd, in.size());
  return out;
}

}  // namespace paxml
