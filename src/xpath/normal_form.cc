#include "xpath/normal_form.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {
namespace {

std::shared_ptr<const NormalQual> MakeAnd(std::shared_ptr<const NormalQual> a,
                                          std::shared_ptr<const NormalQual> b) {
  if (!a) return b;
  if (!b) return a;
  auto q = std::make_shared<NormalQual>();
  q->kind = NormalQualKind::kAnd;
  q->left = std::move(a);
  q->right = std::move(b);
  return q;
}

/// Appends `step` to `out`, applying the ε-merging rules:
///  - a bare ε (no qualifier) is the identity and is dropped,
///  - consecutive ε[q] steps merge into one ε[q1 ∧ q2].
void AppendStep(NormalPath* out, NormalStep step) {
  if (step.kind == StepKind::kSelf) {
    if (!step.qual) return;  // bare ε: identity
    if (!out->steps.empty() && out->steps.back().kind == StepKind::kSelf) {
      NormalStep& prev = out->steps.back();
      prev.qual = MakeAnd(prev.qual, step.qual);
      return;
    }
  }
  out->steps.push_back(std::move(step));
}

void AppendPath(NormalPath* out, NormalPath&& in) {
  for (NormalStep& s : in.steps) AppendStep(out, std::move(s));
}

NormalPath NormalizePath(const PathExpr& p);

std::shared_ptr<const NormalQual> NormalizeQualExpr(const QualExpr& q) {
  switch (q.kind) {
    case QualKind::kPath: {
      auto out = std::make_shared<NormalQual>();
      out->kind = NormalQualKind::kPath;
      out->path = NormalizePath(*q.path);
      return out;
    }
    case QualKind::kTextEq: {
      // normalize(Q/text()='s') = normalize(Q)/ε[text()='s']
      auto test = std::make_shared<NormalQual>();
      test->kind = NormalQualKind::kTextEq;
      test->text = q.text;
      auto out = std::make_shared<NormalQual>();
      out->kind = NormalQualKind::kPath;
      out->path = NormalizePath(*q.path);
      AppendStep(&out->path, NormalStep{StepKind::kSelf, {}, std::move(test)});
      return out;
    }
    case QualKind::kValCmp: {
      auto test = std::make_shared<NormalQual>();
      test->kind = NormalQualKind::kValCmp;
      test->op = q.op;
      test->number = q.number;
      auto out = std::make_shared<NormalQual>();
      out->kind = NormalQualKind::kPath;
      out->path = NormalizePath(*q.path);
      AppendStep(&out->path, NormalStep{StepKind::kSelf, {}, std::move(test)});
      return out;
    }
    case QualKind::kNot: {
      auto out = std::make_shared<NormalQual>();
      out->kind = NormalQualKind::kNot;
      out->left = NormalizeQualExpr(*q.left);
      return out;
    }
    case QualKind::kAnd:
    case QualKind::kOr: {
      auto out = std::make_shared<NormalQual>();
      out->kind = q.kind == QualKind::kAnd ? NormalQualKind::kAnd
                                           : NormalQualKind::kOr;
      out->left = NormalizeQualExpr(*q.left);
      out->right = NormalizeQualExpr(*q.right);
      return out;
    }
  }
  PAXML_CHECK(false);
  return nullptr;
}

NormalPath NormalizePath(const PathExpr& p) {
  NormalPath out;
  switch (p.kind) {
    case PathKind::kSelf:
      return out;  // ε == empty step list
    case PathKind::kLabel:
      out.steps.push_back(NormalStep{StepKind::kLabel, p.label, nullptr});
      return out;
    case PathKind::kWildcard:
      out.steps.push_back(NormalStep{StepKind::kWildcard, {}, nullptr});
      return out;
    case PathKind::kChild: {
      out = NormalizePath(*p.left);
      AppendPath(&out, NormalizePath(*p.right));
      return out;
    }
    case PathKind::kDescendant: {
      out = NormalizePath(*p.left);
      out.steps.push_back(NormalStep{StepKind::kDescend, {}, nullptr});
      // ε-merging must not merge across the //, so append directly.
      NormalPath rhs = NormalizePath(*p.right);
      for (NormalStep& s : rhs.steps) AppendStep(&out, std::move(s));
      return out;
    }
    case PathKind::kQualified: {
      out = NormalizePath(*p.left);
      AppendStep(&out,
                 NormalStep{StepKind::kSelf, {}, NormalizeQualExpr(*p.qual)});
      return out;
    }
  }
  PAXML_CHECK(false);
  return out;
}

void PrintQual(const NormalQual& q, std::string* out, int parent_prec);

void PrintPath(const NormalPath& p, std::string* out) {
  if (p.IsSelf()) {
    out->push_back('.');
    return;
  }
  bool need_sep = false;
  for (const NormalStep& s : p.steps) {
    switch (s.kind) {
      case StepKind::kDescend:
        out->append("//");
        need_sep = false;
        continue;
      case StepKind::kLabel:
        if (need_sep) out->push_back('/');
        out->append(s.label);
        break;
      case StepKind::kWildcard:
        if (need_sep) out->push_back('/');
        out->push_back('*');
        break;
      case StepKind::kSelf:
        if (need_sep) out->push_back('/');
        out->push_back('.');
        if (s.qual) {
          out->push_back('[');
          PrintQual(*s.qual, out, 0);
          out->push_back(']');
        }
        break;
    }
    need_sep = true;
  }
}

void PrintQual(const NormalQual& q, std::string* out, int parent_prec) {
  switch (q.kind) {
    case NormalQualKind::kPath:
      PrintPath(q.path, out);
      return;
    case NormalQualKind::kTextEq:
      out->append("text() = \"");
      out->append(q.text);
      out->append("\"");
      return;
    case NormalQualKind::kValCmp:
      out->append("val() ");
      out->append(CmpOpToString(q.op));
      out->push_back(' ');
      out->append(StringFormat("%g", q.number));
      return;
    case NormalQualKind::kNot:
      out->append("not(");
      PrintQual(*q.left, out, 0);
      out->push_back(')');
      return;
    case NormalQualKind::kAnd: {
      const bool paren = parent_prec > 2;
      if (paren) out->push_back('(');
      PrintQual(*q.left, out, 2);
      out->append(" and ");
      PrintQual(*q.right, out, 2);
      if (paren) out->push_back(')');
      return;
    }
    case NormalQualKind::kOr: {
      const bool paren = parent_prec > 1;
      if (paren) out->push_back('(');
      PrintQual(*q.left, out, 1);
      out->append(" or ");
      PrintQual(*q.right, out, 1);
      if (paren) out->push_back(')');
      return;
    }
  }
}

}  // namespace

NormalPath Normalize(const PathExpr& query) { return NormalizePath(query); }

std::shared_ptr<const NormalQual> NormalizeQual(const QualExpr& qual) {
  return NormalizeQualExpr(qual);
}

std::string ToString(const NormalPath& path) {
  std::string out;
  PrintPath(path, &out);
  return out;
}

std::string ToString(const NormalQual& qual) {
  std::string out;
  PrintQual(qual, &out, 0);
  return out;
}

std::string SelectionPathString(const NormalPath& path) {
  std::string out;
  bool need_sep = false;
  for (const NormalStep& s : path.steps) {
    switch (s.kind) {
      case StepKind::kDescend:
        out.append("//");
        need_sep = false;
        break;
      case StepKind::kLabel:
        if (need_sep) out.push_back('/');
        out.append(s.label);
        need_sep = true;
        break;
      case StepKind::kWildcard:
        if (need_sep) out.push_back('/');
        out.push_back('*');
        need_sep = true;
        break;
      case StepKind::kSelf:
        break;  // struck out
    }
  }
  if (out.empty()) return ".";
  return out;
}

}  // namespace paxml
