// Recursive-descent parser for the XPath fragment X.
//
// Accepted syntax (examples from the paper):
//   /sites/site/people/person
//   //broker[//stock/code/text() = "goog"]/name
//   /sites/site/people/person[profile/age > 20 and address/country = "US"]
//   client[country/text() = "US"]/broker[market/name/text() = "nasdaq"]/name
//
// Notes:
//  * Queries are evaluated from the document node (the conceptual parent of
//    the root element), so a leading '/' is optional and '/a' == 'a'.
//  * Inside qualifiers, a leading '/' is treated as relative to the context
//    node (the paper's Fig. 7 writes "[/profile/age > 20]" with that intent).
//  * Qualifier operators: 'and'/'&&'/'∧-style', 'or'/'||', 'not(...)'/'!'.
//  * val() comparisons accept =, !=, <>, <, <=, >, >=. In XMark-style data a
//    qualifier like "age > 20" is sugar for "age/val() > 20".
//  * text() and val() may be applied to the context itself:
//    [text() = "x"], [val() >= 7].

#ifndef PAXML_XPATH_PARSER_H_
#define PAXML_XPATH_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace paxml {

/// Parses a full class-X query. Returns kParseError on malformed input.
Result<std::unique_ptr<PathExpr>> ParseXPath(std::string_view query);

/// Parses a standalone qualifier expression (without the surrounding [ ]).
Result<std::unique_ptr<QualExpr>> ParseXPathQualifier(std::string_view qual);

}  // namespace paxml

#endif  // PAXML_XPATH_PARSER_H_
