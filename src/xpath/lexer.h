// Tokenizer for class-X XPath expressions.

#ifndef PAXML_XPATH_LEXER_H_
#define PAXML_XPATH_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace paxml {

enum class TokenKind : uint8_t {
  kSlash,        // /
  kDoubleSlash,  // //
  kStar,         // *
  kDot,          // .
  kLBracket,     // [
  kRBracket,     // ]
  kLParen,       // (
  kRParen,       // )
  kEq,           // =
  kNe,           // != or <>
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kAnd,          // && (keyword 'and' arrives as kName)
  kOr,           // ||
  kBang,         // !
  kName,         // NCName
  kString,       // 'str' or "str" literal (value decoded)
  kNumber,       // decimal literal
  kEnd,          // end of input
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;    ///< name or decoded string literal
  double number = 0;   ///< kNumber
  size_t offset = 0;   ///< byte offset in the source, for error messages
};

/// Tokenizes `input`; the result always ends with a kEnd token.
Result<std::vector<Token>> LexXPath(std::string_view input);

}  // namespace paxml

#endif  // PAXML_XPATH_LEXER_H_
