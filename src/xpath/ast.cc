#include "xpath/ast.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, double lhs, double rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

// ---- PathExpr factories ----------------------------------------------------

std::unique_ptr<PathExpr> PathExpr::Self() {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kSelf;
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Label(std::string name) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kLabel;
  p->label = std::move(name);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Wildcard() {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kWildcard;
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Child(std::unique_ptr<PathExpr> l,
                                          std::unique_ptr<PathExpr> r) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kChild;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Descendant(std::unique_ptr<PathExpr> l,
                                               std::unique_ptr<PathExpr> r) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kDescendant;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Qualified(std::unique_ptr<PathExpr> l,
                                              std::unique_ptr<QualExpr> q) {
  auto p = std::make_unique<PathExpr>();
  p->kind = PathKind::kQualified;
  p->left = std::move(l);
  p->qual = std::move(q);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Clone() const {
  auto p = std::make_unique<PathExpr>();
  p->kind = kind;
  p->label = label;
  if (left) p->left = left->Clone();
  if (right) p->right = right->Clone();
  if (qual) p->qual = qual->Clone();
  return p;
}

// ---- QualExpr factories ----------------------------------------------------

std::unique_ptr<QualExpr> QualExpr::Path(std::unique_ptr<PathExpr> p) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kPath;
  q->path = std::move(p);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::TextEq(std::unique_ptr<PathExpr> p,
                                           std::string value) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kTextEq;
  q->path = std::move(p);
  q->text = std::move(value);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::ValCmp(std::unique_ptr<PathExpr> p,
                                           CmpOp op, double value) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kValCmp;
  q->path = std::move(p);
  q->op = op;
  q->number = value;
  return q;
}

std::unique_ptr<QualExpr> QualExpr::Not(std::unique_ptr<QualExpr> inner) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kNot;
  q->left = std::move(inner);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::And(std::unique_ptr<QualExpr> l,
                                        std::unique_ptr<QualExpr> r) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kAnd;
  q->left = std::move(l);
  q->right = std::move(r);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::Or(std::unique_ptr<QualExpr> l,
                                       std::unique_ptr<QualExpr> r) {
  auto q = std::make_unique<QualExpr>();
  q->kind = QualKind::kOr;
  q->left = std::move(l);
  q->right = std::move(r);
  return q;
}

std::unique_ptr<QualExpr> QualExpr::Clone() const {
  auto q = std::make_unique<QualExpr>();
  q->kind = kind;
  if (path) q->path = path->Clone();
  q->text = text;
  q->op = op;
  q->number = number;
  if (left) q->left = left->Clone();
  if (right) q->right = right->Clone();
  return q;
}

// ---- Printing ---------------------------------------------------------------

namespace {

void PrintPath(const PathExpr& p, std::string* out);

void PrintQual(const QualExpr& q, std::string* out, int parent_prec) {
  switch (q.kind) {
    case QualKind::kPath:
      PrintPath(*q.path, out);
      return;
    case QualKind::kTextEq:
      if (q.path->kind != PathKind::kSelf) {
        PrintPath(*q.path, out);
        out->push_back('/');
      }
      out->append("text() = \"");
      out->append(q.text);
      out->append("\"");
      return;
    case QualKind::kValCmp:
      if (q.path->kind != PathKind::kSelf) {
        PrintPath(*q.path, out);
        out->push_back('/');
      }
      out->append("val() ");
      out->append(CmpOpToString(q.op));
      out->push_back(' ');
      out->append(StringFormat("%g", q.number));
      return;
    case QualKind::kNot:
      out->append("not(");
      PrintQual(*q.left, out, 0);
      out->push_back(')');
      return;
    case QualKind::kAnd: {
      const bool paren = parent_prec > 2;
      if (paren) out->push_back('(');
      PrintQual(*q.left, out, 2);
      out->append(" and ");
      PrintQual(*q.right, out, 2);
      if (paren) out->push_back(')');
      return;
    }
    case QualKind::kOr: {
      const bool paren = parent_prec > 1;
      if (paren) out->push_back('(');
      PrintQual(*q.left, out, 1);
      out->append(" or ");
      PrintQual(*q.right, out, 1);
      if (paren) out->push_back(')');
      return;
    }
  }
}

void PrintPath(const PathExpr& p, std::string* out) {
  switch (p.kind) {
    case PathKind::kSelf:
      out->push_back('.');
      return;
    case PathKind::kLabel:
      out->append(p.label);
      return;
    case PathKind::kWildcard:
      out->push_back('*');
      return;
    case PathKind::kChild:
      PrintPath(*p.left, out);
      out->push_back('/');
      PrintPath(*p.right, out);
      return;
    case PathKind::kDescendant:
      PrintPath(*p.left, out);
      out->append("//");
      PrintPath(*p.right, out);
      return;
    case PathKind::kQualified:
      PrintPath(*p.left, out);
      out->push_back('[');
      PrintQual(*p.qual, out, 0);
      out->push_back(']');
      return;
  }
}

}  // namespace

std::string ToString(const PathExpr& path) {
  std::string out;
  PrintPath(path, &out);
  return out;
}

std::string ToString(const QualExpr& qual) {
  std::string out;
  PrintQual(qual, &out, 0);
  return out;
}

}  // namespace paxml
