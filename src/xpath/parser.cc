#include "xpath/parser.h"

#include <vector>

#include "common/string_util.h"
#include "xpath/lexer.h"

namespace paxml {
namespace {

/// Token-stream parser. Grammar (qualifier precedence: or < and < not):
///
///   query    := ['/' | '//'] relpath | '/'
///   relpath  := step (('/' | '//') step)*
///   step     := ('*' | '.' | NAME) ('[' qual ']')*
///   qual     := orExpr
///   orExpr   := andExpr (('or' | '||') andExpr)*
///   andExpr  := notExpr (('and' | '&&') notExpr)*
///   notExpr  := ('not' '(' qual ')') | '!' notExpr | primary
///   primary  := '(' qual ')' | pathTest
///   pathTest := relpath-in-qual [cmp rhs]       (see ParseQualPath)
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<PathExpr>> ParseQuery() {
    std::unique_ptr<PathExpr> path;
    if (Check(TokenKind::kSlash)) {
      Advance();
      if (Check(TokenKind::kEnd)) return PathExpr::Self();  // bare "/" = root
      PAXML_ASSIGN_OR_RETURN(path, ParseRelPath());
    } else if (Check(TokenKind::kDoubleSlash)) {
      Advance();
      PAXML_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> rest, ParseRelPath());
      path = PathExpr::Descendant(PathExpr::Self(), std::move(rest));
    } else {
      PAXML_ASSIGN_OR_RETURN(path, ParseRelPath());
    }
    if (!Check(TokenKind::kEnd)) {
      return Error("trailing tokens after query");
    }
    return path;
  }

  Result<std::unique_ptr<QualExpr>> ParseStandaloneQualifier() {
    PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> q, ParseQual());
    if (!Check(TokenKind::kEnd)) {
      return Error("trailing tokens after qualifier");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return tokens_[i < tokens_.size() ? i : tokens_.size() - 1];
  }
  bool Check(TokenKind kind, size_t ahead = 0) const {
    return Peek(ahead).kind == kind;
  }
  bool CheckName(std::string_view name) const {
    return Check(TokenKind::kName) && Peek().text == name;
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(StringFormat("%s at offset %zu (found %s)",
                                           what.c_str(), Peek().offset,
                                           TokenKindToString(Peek().kind)));
  }

  /// True if the current token can begin a path step.
  bool AtStepStart() const {
    return Check(TokenKind::kName) || Check(TokenKind::kStar) ||
           Check(TokenKind::kDot);
  }

  // ---- Paths ---------------------------------------------------------------

  Result<std::unique_ptr<PathExpr>> ParseStep() {
    std::unique_ptr<PathExpr> step;
    if (Match(TokenKind::kStar)) {
      step = PathExpr::Wildcard();
    } else if (Match(TokenKind::kDot)) {
      step = PathExpr::Self();
    } else if (Check(TokenKind::kName)) {
      step = PathExpr::Label(Advance().text);
    } else {
      return Error("expected step (name, '*' or '.')");
    }
    while (Match(TokenKind::kLBracket)) {
      PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> q, ParseQual());
      if (!Match(TokenKind::kRBracket)) return Error("expected ']'");
      step = PathExpr::Qualified(std::move(step), std::move(q));
    }
    return step;
  }

  Result<std::unique_ptr<PathExpr>> ParseRelPath() {
    PAXML_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> path, ParseStep());
    for (;;) {
      if (Check(TokenKind::kSlash) && AtStepStartAfterSeparator()) {
        Advance();
        PAXML_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> rhs, ParseStep());
        path = PathExpr::Child(std::move(path), std::move(rhs));
      } else if (Check(TokenKind::kDoubleSlash) && AtStepStartAfterSeparator()) {
        Advance();
        PAXML_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> rhs, ParseStep());
        path = PathExpr::Descendant(std::move(path), std::move(rhs));
      } else {
        return path;
      }
    }
  }

  /// After '/' or '//', a step must follow (otherwise the separator belongs
  /// to an enclosing construct such as "a/text() = ...").
  bool AtStepStartAfterSeparator() const {
    // text() and val() are function tests, not steps.
    if (Check(TokenKind::kName, 1) && Check(TokenKind::kLParen, 2) &&
        (Peek(1).text == "text" || Peek(1).text == "val")) {
      return false;
    }
    return Check(TokenKind::kName, 1) || Check(TokenKind::kStar, 1) ||
           Check(TokenKind::kDot, 1);
  }

  // ---- Qualifiers ------------------------------------------------------------

  Result<std::unique_ptr<QualExpr>> ParseQual() { return ParseOr(); }

  Result<std::unique_ptr<QualExpr>> ParseOr() {
    PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> lhs, ParseAnd());
    while (Check(TokenKind::kOr) || CheckName("or")) {
      Advance();
      PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> rhs, ParseAnd());
      lhs = QualExpr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<QualExpr>> ParseAnd() {
    PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> lhs, ParseNot());
    while (Check(TokenKind::kAnd) || CheckName("and")) {
      Advance();
      PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> rhs, ParseNot());
      lhs = QualExpr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<QualExpr>> ParseNot() {
    if (Match(TokenKind::kBang)) {
      PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> inner, ParseNot());
      return QualExpr::Not(std::move(inner));
    }
    if (CheckName("not") && Check(TokenKind::kLParen, 1)) {
      Advance();  // not
      Advance();  // (
      PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> inner, ParseQual());
      if (!Match(TokenKind::kRParen)) return Error("expected ')' after not(");
      return QualExpr::Not(std::move(inner));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<QualExpr>> ParsePrimary() {
    if (Match(TokenKind::kLParen)) {
      PAXML_ASSIGN_OR_RETURN(std::unique_ptr<QualExpr> inner, ParseQual());
      if (!Match(TokenKind::kRParen)) return Error("expected ')'");
      return inner;
    }
    return ParseQualPath();
  }

  /// Reads a comparison operator token, if present.
  std::optional<CmpOp> MatchCmp() {
    switch (Peek().kind) {
      case TokenKind::kEq:
        Advance();
        return CmpOp::kEq;
      case TokenKind::kNe:
        Advance();
        return CmpOp::kNe;
      case TokenKind::kLt:
        Advance();
        return CmpOp::kLt;
      case TokenKind::kLe:
        Advance();
        return CmpOp::kLe;
      case TokenKind::kGt:
        Advance();
        return CmpOp::kGt;
      case TokenKind::kGe:
        Advance();
        return CmpOp::kGe;
      default:
        return std::nullopt;
    }
  }

  /// True if the upcoming tokens are `text ( )` or `val ( )`.
  bool AtFunc(std::string_view name) const {
    return Check(TokenKind::kName) && Peek().text == name &&
           Check(TokenKind::kLParen, 1) && Check(TokenKind::kRParen, 2);
  }

  Result<std::unique_ptr<QualExpr>> FinishTextTest(std::unique_ptr<PathExpr> path) {
    pos_ += 3;  // text ( )
    if (!Match(TokenKind::kEq)) return Error("expected '=' after text()");
    if (!Check(TokenKind::kString)) return Error("expected string literal");
    std::string value = Advance().text;
    return QualExpr::TextEq(std::move(path), std::move(value));
  }

  Result<std::unique_ptr<QualExpr>> FinishValTest(std::unique_ptr<PathExpr> path) {
    pos_ += 3;  // val ( )
    std::optional<CmpOp> op = MatchCmp();
    if (!op) return Error("expected comparison operator after val()");
    if (!Check(TokenKind::kNumber)) return Error("expected number");
    double value = Advance().number;
    return QualExpr::ValCmp(std::move(path), *op, value);
  }

  /// Parses a qualifier atom: a path, optionally ending in /text()=str or
  /// /val() op num, or comparison sugar `path = "str"` / `path op num`.
  Result<std::unique_ptr<QualExpr>> ParseQualPath() {
    // Leading separators inside qualifiers are treated as relative
    // (see header notes; matches the paper's Fig. 7 usage).
    bool leading_descendant = false;
    if (Match(TokenKind::kSlash)) {
      // relative; nothing to do
    } else if (Match(TokenKind::kDoubleSlash)) {
      leading_descendant = true;
    }

    if (AtFunc("text")) return FinishTextTest(PathExpr::Self());
    if (AtFunc("val")) return FinishValTest(PathExpr::Self());

    PAXML_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> path, ParseStep());
    if (leading_descendant) {
      path = PathExpr::Descendant(PathExpr::Self(), std::move(path));
    }
    for (;;) {
      if (Check(TokenKind::kSlash)) {
        if (Check(TokenKind::kName, 1) && Check(TokenKind::kLParen, 2)) {
          if (Peek(1).text == "text") {
            Advance();  // '/'
            return FinishTextTest(std::move(path));
          }
          if (Peek(1).text == "val") {
            Advance();  // '/'
            return FinishValTest(std::move(path));
          }
        }
        if (!AtStepStartAfterSeparator()) break;
        Advance();
        PAXML_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> rhs, ParseStep());
        path = PathExpr::Child(std::move(path), std::move(rhs));
        continue;
      }
      if (Check(TokenKind::kDoubleSlash) && AtStepStartAfterSeparator()) {
        Advance();
        PAXML_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> rhs, ParseStep());
        path = PathExpr::Descendant(std::move(path), std::move(rhs));
        continue;
      }
      break;
    }

    // Comparison sugar: `country = "US"` == `country/text() = "US"`,
    //                   `age > 20`       == `age/val() > 20`.
    if (Check(TokenKind::kEq) && Check(TokenKind::kString, 1)) {
      Advance();
      std::string value = Advance().text;
      return QualExpr::TextEq(std::move(path), std::move(value));
    }
    if (std::optional<CmpOp> op = MatchCmp()) {
      if (!Check(TokenKind::kNumber)) return Error("expected number after comparison");
      double value = Advance().number;
      return QualExpr::ValCmp(std::move(path), *op, value);
    }
    return QualExpr::Path(std::move(path));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<PathExpr>> ParseXPath(std::string_view query) {
  PAXML_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexXPath(query));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<std::unique_ptr<QualExpr>> ParseXPathQualifier(std::string_view qual) {
  PAXML_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexXPath(qual));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneQualifier();
}

}  // namespace paxml
