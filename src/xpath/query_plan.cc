#include "xpath/query_plan.h"

#include <map>
#include <tuple>

#include "common/logging.h"
#include "common/string_util.h"
#include "xpath/parser.h"

namespace paxml {

/// Builds the entry/qual-node/selection vectors from a normal form.
class QueryCompiler {
 public:
  QueryCompiler(const NormalPath& normal, std::shared_ptr<SymbolTable> symbols,
                std::string source)
      : normal_(normal), q_() {
    q_.symbols_ = symbols ? std::move(symbols) : SymbolTable::Shared();
    q_.source_ = std::move(source);
    q_.normal_form_ = ToString(normal);
  }

  CompiledQuery Run() {
    CompileSelection();
    return std::move(q_);
  }

 private:
  using Entry = CompiledQuery::Entry;
  using QualNode = CompiledQuery::QualNode;
  using SelEntry = CompiledQuery::SelEntry;

  // ---- Entry interning -----------------------------------------------------

  /// Structural key for entry dedup; strings keep the key total.
  std::string EntryKey(const Entry& e) const {
    return StringFormat("%d|%u|%s|%d|%g|%d|%d|%d", static_cast<int>(e.test),
                        e.label, e.text.c_str(), static_cast<int>(e.op),
                        e.number, e.qual, static_cast<int>(e.rest_axis), e.rest);
  }

  int InternEntry(Entry e) {
    std::string key = EntryKey(e);
    auto it = entry_index_.find(key);
    if (it != entry_index_.end()) return it->second;
    const int id = static_cast<int>(q_.entries_.size());
    q_.entries_.push_back(std::move(e));
    entry_index_.emplace(std::move(key), id);
    return id;
  }

  std::string QualKey(const QualNode& n) const {
    return StringFormat("%d|%d|%d|%d|%d", static_cast<int>(n.kind),
                        static_cast<int>(n.axis), n.entry, n.left, n.right);
  }

  int InternQualNode(QualNode n) {
    std::string key = QualKey(n);
    auto it = qual_index_.find(key);
    if (it != qual_index_.end()) return it->second;
    const int id = static_cast<int>(q_.qual_nodes_.size());
    q_.qual_nodes_.push_back(n);
    qual_index_.emplace(std::move(key), id);
    return id;
  }

  /// The always-true entry: matches any node with no further constraints.
  int TrueEntry() {
    Entry e;
    e.test = TestKind::kAnyNode;
    return InternEntry(e);
  }

  // ---- Qualifier compilation ----------------------------------------------

  int CompileQual(const NormalQual& nq) {
    q_.has_qualifiers_ = true;
    QualNode node;
    switch (nq.kind) {
      case NormalQualKind::kTextEq: {
        // Bare test on the context: some text *child* equals the string.
        // Encoded through a text-node entry so that fragmentation between an
        // element and its text children still resolves through variables.
        Entry e;
        e.test = TestKind::kTextEq;
        e.text = nq.text;
        node.kind = QualNodeKind::kAtom;
        node.axis = Axis::kChild;
        node.entry = InternEntry(std::move(e));
        return InternQualNode(node);
      }
      case NormalQualKind::kValCmp: {
        Entry e;
        e.test = TestKind::kValCmp;
        e.op = nq.op;
        e.number = nq.number;
        node.kind = QualNodeKind::kAtom;
        node.axis = Axis::kChild;
        node.entry = InternEntry(std::move(e));
        return InternQualNode(node);
      }
      case NormalQualKind::kPath:
        return CompilePathAtom(nq.path);
      case NormalQualKind::kNot:
        node.kind = QualNodeKind::kNot;
        node.left = CompileQual(*nq.left);
        return InternQualNode(node);
      case NormalQualKind::kAnd:
      case NormalQualKind::kOr:
        node.kind = nq.kind == NormalQualKind::kAnd ? QualNodeKind::kAnd
                                                    : QualNodeKind::kOr;
        node.left = CompileQual(*nq.left);
        node.right = CompileQual(*nq.right);
        return InternQualNode(node);
    }
    PAXML_CHECK(false);
    return -1;
  }

  /// Conjunction of qualifiers collected from consecutive ε[q] steps.
  int CompileQualConj(const std::vector<const NormalQual*>& quals) {
    int acc = -1;
    for (const NormalQual* nq : quals) {
      int id = CompileQual(*nq);
      if (acc == -1) {
        acc = id;
      } else {
        QualNode n;
        n.kind = QualNodeKind::kAnd;
        n.left = acc;
        n.right = id;
        acc = InternQualNode(n);
      }
    }
    return acc;
  }

  /// Existential path atom [p] evaluated at a context node.
  int CompilePathAtom(const NormalPath& p) {
    QualNode node;
    if (p.steps.empty()) {
      // [.] — vacuously true.
      node.kind = QualNodeKind::kTrue;
      return InternQualNode(node);
    }
    node.kind = QualNodeKind::kAtom;
    if (p.steps[0].kind == StepKind::kDescend) {
      auto [axis, rest] = DescTransition(p.steps, 1);
      node.axis = axis;
      node.entry = rest;
    } else if (p.steps[0].kind == StepKind::kSelf) {
      node.axis = Axis::kSelf;
      node.entry = BuildPathFrom(p.steps, 0);
    } else {
      node.axis = Axis::kChild;
      node.entry = BuildPathFrom(p.steps, 0);
    }
    return InternQualNode(node);
  }

  /// Suffix entry for steps[i..): steps[i] is matched at the node itself.
  int BuildPathFrom(const std::vector<NormalStep>& steps, size_t i) {
    if (i >= steps.size()) return TrueEntry();

    if (steps[i].kind == StepKind::kDescend) {
      // Position inside a '//' hop: "the remainder matches from my
      // descendant-or-self closure".
      auto [axis, rest] = DescTransition(steps, i + 1);
      Entry e;
      e.test = TestKind::kAnyNode;
      e.rest_axis = axis;
      e.rest = rest;
      return InternEntry(std::move(e));
    }

    Entry e;
    std::vector<const NormalQual*> quals;
    switch (steps[i].kind) {
      case StepKind::kLabel:
        e.test = TestKind::kLabel;
        e.label = q_.symbols_->Intern(steps[i].label);
        break;
      case StepKind::kWildcard:
        e.test = TestKind::kWildcard;
        break;
      case StepKind::kSelf:
        e.test = TestKind::kAnyNode;
        if (steps[i].qual) quals.push_back(steps[i].qual.get());
        break;
      case StepKind::kDescend:
        PAXML_CHECK(false);
        break;
    }
    size_t j = i + 1;
    // ε[q] steps directly after a node test attach to it (normalization has
    // already merged consecutive ε steps, but label/ε sequences arrive here).
    while (j < steps.size() && steps[j].kind == StepKind::kSelf) {
      if (steps[j].qual) quals.push_back(steps[j].qual.get());
      ++j;
    }
    e.qual = CompileQualConj(quals);
    if (j >= steps.size()) {
      e.rest_axis = Axis::kNone;
    } else if (steps[j].kind == StepKind::kDescend) {
      auto [axis, rest] = DescTransition(steps, j + 1);
      e.rest_axis = axis;
      e.rest = rest;
    } else {
      e.rest_axis = Axis::kChild;
      e.rest = BuildPathFrom(steps, j);
    }
    return InternEntry(std::move(e));
  }

  /// Transition after consuming one '//': how the remainder anchors.
  /// Returns {axis, suffix entry}. Directly consecutive '//' steps collapse
  /// (descendant-or-self is idempotent).
  std::pair<Axis, int> DescTransition(const std::vector<NormalStep>& steps,
                                      size_t k) {
    while (k < steps.size() && steps[k].kind == StepKind::kDescend) ++k;
    if (k >= steps.size()) {
      // Trailing '//': the closure itself is the match set; it is never
      // empty (it contains the current node), so the suffix is 'any node'
      // reached via descendant-or-self.
      return {Axis::kDescendantOrSelf, TrueEntry()};
    }
    if (steps[k].kind == StepKind::kSelf) {
      // '//ε[q]…' filters the closure set, which includes the current node.
      return {Axis::kDescendantOrSelf, BuildPathFrom(steps, k)};
    }
    // '//A…': A matches a child of the closure = a proper descendant.
    return {Axis::kProperDescendant, BuildPathFrom(steps, k)};
  }

  // ---- Selection compilation ----------------------------------------------

  void CompileSelection() {
    const std::vector<NormalStep>& steps = normal_.steps;
    size_t i = 0;

    // Leading ε[q] steps attach to the root-context entry.
    std::vector<const NormalQual*> root_quals;
    while (i < steps.size() && steps[i].kind == StepKind::kSelf) {
      if (steps[i].qual) root_quals.push_back(steps[i].qual.get());
      ++i;
    }
    SelEntry root;
    root.kind = SelKind::kRoot;
    root.qual = CompileQualConj(root_quals);
    q_.selection_.push_back(root);

    while (i < steps.size()) {
      const NormalStep& s = steps[i];
      switch (s.kind) {
        case StepKind::kLabel:
        case StepKind::kWildcard: {
          SelEntry e;
          e.kind = s.kind == StepKind::kLabel ? SelKind::kLabel
                                              : SelKind::kWildcard;
          if (s.kind == StepKind::kLabel) {
            e.label = q_.symbols_->Intern(s.label);
          }
          ++i;
          std::vector<const NormalQual*> quals;
          while (i < steps.size() && steps[i].kind == StepKind::kSelf) {
            if (steps[i].qual) quals.push_back(steps[i].qual.get());
            ++i;
          }
          e.qual = CompileQualConj(quals);
          q_.selection_.push_back(e);
          break;
        }
        case StepKind::kDescend: {
          q_.selection_has_descendant_ = true;
          // Collapse directly consecutive '//' steps.
          while (i < steps.size() && steps[i].kind == StepKind::kDescend) ++i;
          SelEntry e;
          e.kind = SelKind::kDescend;
          q_.selection_.push_back(e);
          // ε[q] after '//' survives as a self-filter entry.
          std::vector<const NormalQual*> quals;
          while (i < steps.size() && steps[i].kind == StepKind::kSelf) {
            if (steps[i].qual) quals.push_back(steps[i].qual.get());
            ++i;
          }
          if (!quals.empty()) {
            SelEntry f;
            f.kind = SelKind::kSelfFilter;
            f.qual = CompileQualConj(quals);
            q_.selection_.push_back(f);
          }
          break;
        }
        case StepKind::kSelf:
          // Only possible mid-path right after kLabel/kWildcard/kDescend,
          // which the branches above consume.
          PAXML_CHECK(false);
          break;
      }
    }
  }

  const NormalPath& normal_;
  CompiledQuery q_;
  std::map<std::string, int> entry_index_;
  std::map<std::string, int> qual_index_;
};

CompiledQuery CompiledQuery::Compile(const NormalPath& normal,
                                     std::shared_ptr<SymbolTable> symbols,
                                     std::string source) {
  QueryCompiler compiler(normal, std::move(symbols), std::move(source));
  return compiler.Run();
}

namespace {

const char* AxisName(Axis a) {
  switch (a) {
    case Axis::kNone:
      return "none";
    case Axis::kChild:
      return "child";
    case Axis::kProperDescendant:
      return "desc";
    case Axis::kDescendantOrSelf:
      return "dos";
    case Axis::kSelf:
      return "self";
  }
  return "?";
}

}  // namespace

std::string CompiledQuery::DebugString() const {
  std::string out;
  out += "query: " + source_ + "\n";
  out += "normal form: " + normal_form_ + "\n";
  out += StringFormat("QVect (%zu entries):\n", entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += StringFormat("  e%zu: ", i);
    switch (e.test) {
      case TestKind::kLabel:
        out += "label=" + symbols_->Name(e.label);
        break;
      case TestKind::kWildcard:
        out += "*";
        break;
      case TestKind::kAnyNode:
        out += ".";
        break;
      case TestKind::kTextEq:
        out += "text=\"" + e.text + "\"";
        break;
      case TestKind::kValCmp:
        out += StringFormat("val %s %g", CmpOpToString(e.op), e.number);
        break;
    }
    if (e.qual >= 0) out += StringFormat(" qual=n%d", e.qual);
    if (e.rest_axis != Axis::kNone) {
      out += StringFormat(" -%s-> e%d", AxisName(e.rest_axis), e.rest);
    }
    out += "\n";
  }
  out += StringFormat("qual nodes (%zu):\n", qual_nodes_.size());
  for (size_t i = 0; i < qual_nodes_.size(); ++i) {
    const QualNode& n = qual_nodes_[i];
    switch (n.kind) {
      case QualNodeKind::kTrue:
        out += StringFormat("  n%zu: true\n", i);
        break;
      case QualNodeKind::kAtom:
        out += StringFormat("  n%zu: atom %s e%d\n", i, AxisName(n.axis),
                            n.entry);
        break;
      case QualNodeKind::kAnd:
        out += StringFormat("  n%zu: n%d and n%d\n", i, n.left, n.right);
        break;
      case QualNodeKind::kOr:
        out += StringFormat("  n%zu: n%d or n%d\n", i, n.left, n.right);
        break;
      case QualNodeKind::kNot:
        out += StringFormat("  n%zu: not n%d\n", i, n.left);
        break;
    }
  }
  out += StringFormat("SVect (%zu entries):\n", selection_.size());
  for (size_t i = 0; i < selection_.size(); ++i) {
    const SelEntry& s = selection_[i];
    out += StringFormat("  s%zu: ", i);
    switch (s.kind) {
      case SelKind::kRoot:
        out += "<root>";
        break;
      case SelKind::kLabel:
        out += symbols_->Name(s.label);
        break;
      case SelKind::kWildcard:
        out += "*";
        break;
      case SelKind::kDescend:
        out += "//";
        break;
      case SelKind::kSelfFilter:
        out += ".[]";
        break;
    }
    if (s.qual >= 0) out += StringFormat(" qual=n%d", s.qual);
    out += "\n";
  }
  return out;
}

Result<CompiledQuery> CompileXPath(std::string_view query,
                                   std::shared_ptr<SymbolTable> symbols) {
  PAXML_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> ast, ParseXPath(query));
  NormalPath normal = Normalize(*ast);
  return CompiledQuery::Compile(normal, std::move(symbols), std::string(query));
}

}  // namespace paxml
