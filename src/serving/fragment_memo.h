// Fragment-stage memo: cross-run reuse of per-fragment partial answers.
//
// The unit of reuse is one memoizable site-side delivery — a lane envelope
// in the sense of runtime/site_driver.h (every part a site-side kind,
// consistently addressed to one fragment). Handlers are deterministic and
// their mutable state is confined to per-fragment slots (the
// MessageHandlers threading contract), so the reply set of the k-th lane
// delivery to a fragment is a pure function of (run fingerprint, fragment,
// data epoch, k) — which is exactly the memo key. A later run with the same
// fingerprint replays the recorded replies through Transport::Send instead
// of evaluating: answers, visits and every per-edge byte count stay
// bit-identical to the uncached run (a memo hit changes *when* work
// happened, never what the protocol carried), and the skipped compute is
// reported through the new RunStats memo_* fields (sim/stats.h).
//
// FragmentMemo is the shared, thread-safe LRU store (one per engine or per
// paxml_site process; share only across engines over the same cluster —
// the epoch in the key is that cluster's). MemoSession is one run's cursor
// over it, held by the run's SiteDriver: per fragment it replays memo
// entries step by step until the first divergence (entry missing or request
// digest mismatch), then switches that fragment to evaluate mode — the
// driver rebuilds the fragment's handler state by re-delivering the
// retained request prefix, and records fresh entries from there
// (DESIGN.md §12).

#ifndef PAXML_SERVING_FRAGMENT_MEMO_H_
#define PAXML_SERVING_FRAGMENT_MEMO_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/transport.h"
#include "sim/stats.h"

namespace paxml {

/// Content identity of an envelope for memo validation: FNV-1a over
/// routing, category, accounting flags and every part's kind/fragment/
/// bytes. The run id is excluded — the same request re-stamped for a new
/// run must match.
uint64_t EnvelopeDigest(const Envelope& env);

/// Thread-safe LRU store of recorded (request -> replies) fragment stages.
class FragmentMemo {
 public:
  struct Entry {
    uint64_t request_digest = 0;
    /// The replies the request's delivery sent, in send order. Stored with
    /// the recording run's stamp; replay restamps them.
    std::vector<Envelope> replies;
    double seconds = 0;       ///< site compute the delivery cost
    uint64_t reply_bytes = 0; ///< accounted payload bytes of `replies`
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit FragmentMemo(size_t capacity = 4096);

  /// Copies the entry under `key` into `*out` if present *and* its recorded
  /// request digest equals `request_digest` (a mismatch is a miss: the
  /// request stream diverged, e.g. a down-envelope whose content depends on
  /// earlier replies of a different run).
  bool Lookup(const std::string& key, uint64_t request_digest, Entry* out);

  void Insert(const std::string& key, Entry entry);

  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruEntry = std::pair<std::string, Entry>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<LruEntry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<LruEntry>::iterator> index_;
  Stats stats_;
};

/// One run's cursor over a FragmentMemo. Thread-safe (a pooled transport
/// delivers different sites of a round concurrently); per-fragment
/// sequencing needs no ordering beyond that because a fragment lives on
/// exactly one site, whose memoized walk is serial.
class MemoSession {
 public:
  /// `fingerprint` is RunFingerprint(spec) (serving/fingerprint.h);
  /// `epoch` the cluster's data_epoch() when the run opened.
  MemoSession(std::shared_ptr<FragmentMemo> memo, std::string fingerprint,
              uint64_t epoch);

  /// Consults the memo for the fragment's next step. On a hit, fills
  /// `*replies` (copies; caller restamps run ids and sends them), retains
  /// the request for later recovery, and returns true. On a miss, returns
  /// false and — on the *first* miss of a fragment that had hits — moves
  /// the retained request prefix into `*recover`: the caller must re-deliver
  /// it through a discard plane to rebuild the fragment's handler state
  /// before evaluating. Subsequent calls for that fragment return false
  /// with `*recover` empty (evaluate mode).
  bool Lookup(FragmentId fragment, const Envelope& request,
              std::vector<Envelope>* replies, std::vector<Envelope>* recover);

  /// Records the fragment's next step (evaluate mode only): the request's
  /// digest, its reply set and the compute it cost.
  void Record(FragmentId fragment, const Envelope& request,
              std::vector<Envelope> replies, double seconds);

  /// Savings accumulated since the last take (drained into RunStats by the
  /// run's round loop).
  MemoSavings TakeSavings();

  const std::string& fingerprint() const { return fingerprint_; }

 private:
  struct FragmentTrack {
    uint64_t next_step = 0;
    bool replaying = true;
    std::vector<Envelope> retained;  ///< memo-served requests, for recovery
  };

  std::string Key(FragmentId fragment, uint64_t step) const;

  const std::shared_ptr<FragmentMemo> memo_;
  const std::string fingerprint_;
  const uint64_t epoch_;

  std::mutex mu_;
  std::map<FragmentId, FragmentTrack> tracks_;
  MemoSavings savings_;
};

}  // namespace paxml

#endif  // PAXML_SERVING_FRAGMENT_MEMO_H_
