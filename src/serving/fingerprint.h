// Canonical query fingerprints: the serving layer's cache keys.
//
// Two submissions share serving-layer state exactly when they would run the
// same protocol over the same data: same workload family, same algorithm,
// same site-visible options and the same canonical query text. The
// fingerprint packs all of that into one string; the answer cache appends
// the cluster's data epoch (sim/cluster.h) and the fragment memo appends
// (fragment, step) on top (DESIGN.md §12).
//
// Canonicalization is deliberately conservative — whitespace-only. It
// collapses runs of whitespace outside string literals to one space and
// trims the ends, so `//a [ b ]` and `//a[b]` still differ (they may or may
// not parse the same; the cache must never guess) while `//a[b]` and
// ` //a[b] ` share an entry. Whitespace inside quotes is preserved:
// `[c="A B"]` and `[c="A  B"]` are different queries.

#ifndef PAXML_SERVING_FINGERPRINT_H_
#define PAXML_SERVING_FINGERPRINT_H_

#include <string>
#include <string_view>

#include "runtime/transport.h"

namespace paxml {

/// `query` with outside-quote whitespace runs collapsed to single spaces
/// and leading/trailing whitespace removed.
std::string CanonicalQueryText(std::string_view query);

/// The full serving-layer identity of a run:
///   `<family>|<algorithm>|a<0|1>|s<ship_mode>|<canonical query>`.
/// Family and algorithm come first so colliding query texts of different
/// workloads ("xml" vs "graph") can never share an entry.
std::string RunFingerprint(const RunSpec& spec);

}  // namespace paxml

#endif  // PAXML_SERVING_FINGERPRINT_H_
