#include "serving/fragment_memo.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace paxml {

namespace {

inline void HashBytes(uint64_t* h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ULL;  // FNV-1a prime
  }
}

template <typename T>
inline void HashValue(uint64_t* h, T v) {
  HashBytes(h, &v, sizeof(v));
}

}  // namespace

uint64_t EnvelopeDigest(const Envelope& env) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  HashValue(&h, env.from);
  HashValue(&h, env.to);
  HashValue(&h, static_cast<uint8_t>(env.category));
  HashValue(&h, static_cast<uint8_t>(env.accounted));
  HashValue(&h, env.phantom_bytes);
  for (const WirePart& part : env.parts) {
    HashValue(&h, static_cast<uint8_t>(part.kind));
    HashValue(&h, part.fragment);
    HashValue(&h, static_cast<uint8_t>(part.accounted));
    HashValue(&h, static_cast<uint64_t>(part.bytes.size()));
    HashBytes(&h, part.bytes.data(), part.bytes.size());
  }
  return h;
}

FragmentMemo::FragmentMemo(size_t capacity) : capacity_(capacity) {
  PAXML_CHECK_GT(capacity_, 0u);
}

bool FragmentMemo::Lookup(const std::string& key, uint64_t request_digest,
                          Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || it->second->second.request_digest != request_digest) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  return true;
}

void FragmentMemo::Insert(const std::string& key, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = index_.find(key); it != index_.end()) {
    // Two runs raced to record the same step; the entries agree (determinism)
    // so keep the incumbent and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

FragmentMemo::Stats FragmentMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t FragmentMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

MemoSession::MemoSession(std::shared_ptr<FragmentMemo> memo,
                         std::string fingerprint, uint64_t epoch)
    : memo_(std::move(memo)),
      fingerprint_(std::move(fingerprint)),
      epoch_(epoch) {
  PAXML_CHECK(memo_ != nullptr);
}

std::string MemoSession::Key(FragmentId fragment, uint64_t step) const {
  return fingerprint_ +
         StringFormat("#f%d:e%llu:s%llu", fragment,
                      static_cast<unsigned long long>(epoch_),
                      static_cast<unsigned long long>(step));
}

bool MemoSession::Lookup(FragmentId fragment, const Envelope& request,
                         std::vector<Envelope>* replies,
                         std::vector<Envelope>* recover) {
  std::lock_guard<std::mutex> lock(mu_);
  FragmentTrack& track = tracks_[fragment];
  if (!track.replaying) return false;
  FragmentMemo::Entry entry;
  if (!memo_->Lookup(Key(fragment, track.next_step), EnvelopeDigest(request),
                     &entry)) {
    track.replaying = false;
    *recover = std::move(track.retained);
    track.retained.clear();
    return false;
  }
  track.retained.push_back(request);
  ++track.next_step;
  savings_.fragment_hits += 1;
  savings_.saved_bytes += entry.reply_bytes;
  savings_.saved_seconds += entry.seconds;
  *replies = std::move(entry.replies);
  return true;
}

void MemoSession::Record(FragmentId fragment, const Envelope& request,
                         std::vector<Envelope> replies, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  FragmentTrack& track = tracks_[fragment];
  PAXML_CHECK(!track.replaying);  // Record follows a Lookup miss
  uint64_t reply_bytes = 0;
  for (const Envelope& r : replies) reply_bytes += r.WireBytes();
  memo_->Insert(Key(fragment, track.next_step),
                FragmentMemo::Entry{EnvelopeDigest(request), std::move(replies),
                                    seconds, reply_bytes});
  ++track.next_step;
}

MemoSavings MemoSession::TakeSavings() {
  std::lock_guard<std::mutex> lock(mu_);
  MemoSavings out = savings_;
  savings_ = MemoSavings{};
  return out;
}

}  // namespace paxml
