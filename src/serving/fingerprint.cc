#include "serving/fingerprint.h"

#include <cctype>

#include "common/string_util.h"

namespace paxml {

std::string CanonicalQueryText(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  char quote = '\0';       // the open quote character, or 0 outside quotes
  bool pending_gap = false;  // a whitespace run awaits its single space
  for (char c : query) {
    if (quote == '\0' && std::isspace(static_cast<unsigned char>(c))) {
      pending_gap = true;
      continue;
    }
    if (pending_gap) {
      if (!out.empty()) out += ' ';  // leading whitespace trims away
      pending_gap = false;
    }
    out += c;
    if (quote == '\0') {
      if (c == '"' || c == '\'') quote = c;
    } else if (c == quote) {
      quote = '\0';
    }
  }
  return out;  // trailing whitespace left pending_gap set — dropped
}

std::string RunFingerprint(const RunSpec& spec) {
  return StringFormat("%s|%s|a%d|s%u|", spec.family.c_str(),
                      spec.algorithm.c_str(), spec.use_annotations ? 1 : 0,
                      static_cast<unsigned>(spec.ship_mode)) +
         CanonicalQueryText(spec.query);
}

}  // namespace paxml
