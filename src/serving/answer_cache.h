// The serving layer's answer cache: completed DistributedResults keyed by
// (run fingerprint, data epoch), with single-flight coalescing.
//
// Engine::Submit consults the cache at admission (core/engine.h). A hit
// hands back the cached answers in zero rounds and zero wire bytes; a miss
// registers an in-flight *leader* so that concurrent identical submissions
// become *followers* of the same flight instead of duplicate runs. When the
// leader's evaluation completes, Publish installs the result and wakes every
// follower; a failed leader Aborts the flight and followers observe the
// leader's status (errors are never cached — the next submission retries).
//
// The cache stores results, not handles: each hit deep-copies the answer
// vector into the caller's report, so cached and uncached sessions are
// bit-identical from the client's point of view (tested property). Eviction
// is LRU by entry count. Thread-safe; one instance may be shared by many
// engines (cross-workload isolation comes from the family component of the
// key — serving_test covers the colliding-fingerprint case).

#ifndef PAXML_SERVING_ANSWER_CACHE_H_
#define PAXML_SERVING_ANSWER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/distributed_result.h"

namespace paxml {

class AnswerCache {
 public:
  /// One in-flight evaluation. Followers attach completion callbacks; the
  /// leader completes the flight through Publish/Abort. Exposed so the
  /// engine can hold the flight across the queued run's lifetime.
  struct Flight {
    std::mutex mu;
    bool done = false;
    std::shared_ptr<const DistributedResult> result;  // null on failure
    Status failure = Status::OK();
    std::vector<std::function<void()>> waiters;

    /// Runs `fn` when the flight completes — immediately if it already has.
    /// `fn` must not re-enter the flight.
    void AddWaiter(std::function<void()> fn);
  };

  enum class Role : uint8_t {
    kHit,       ///< cached result available now
    kLeader,    ///< caller must evaluate, then Publish or Abort
    kFollower,  ///< an identical query is in flight; wait on `flight`
  };

  struct Ticket {
    Role role;
    std::shared_ptr<const DistributedResult> cached;  ///< set iff kHit
    std::shared_ptr<Flight> flight;  ///< set for kLeader and kFollower
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;     ///< leader admissions (actual evaluations)
    uint64_t coalesced = 0;  ///< follower admissions (runs saved in flight)
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit AnswerCache(size_t capacity = 1024);

  /// Admission: classify `key` as hit, leader or follower (see Role).
  Ticket Begin(const std::string& key);

  /// Leader success: cache `result` under `key`, retire the flight and wake
  /// followers. The flight must be the one Begin returned for `key`.
  void Publish(const std::shared_ptr<Flight>& flight, const std::string& key,
               std::shared_ptr<const DistributedResult> result);

  /// Leader failure: retire the flight without caching; followers observe
  /// `failure`.
  void Abort(const std::shared_ptr<Flight>& flight, const std::string& key,
             const Status& failure);

  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using LruEntry = std::pair<std::string, std::shared_ptr<const DistributedResult>>;

  /// Completes the flight and runs its waiters. Called *outside* mu_ —
  /// waiters re-enter the engine.
  static void Complete(const std::shared_ptr<Flight>& flight,
                       std::shared_ptr<const DistributedResult> result,
                       const Status& failure);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<LruEntry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<LruEntry>::iterator> index_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  Stats stats_;
};

}  // namespace paxml

#endif  // PAXML_SERVING_ANSWER_CACHE_H_
