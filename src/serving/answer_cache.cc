#include "serving/answer_cache.h"

#include "common/logging.h"

namespace paxml {

void AnswerCache::Flight::AddWaiter(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!done) {
      waiters.push_back(std::move(fn));
      return;
    }
  }
  fn();
}

AnswerCache::AnswerCache(size_t capacity) : capacity_(capacity) {
  PAXML_CHECK_GT(capacity_, 0u);
}

AnswerCache::Ticket AnswerCache::Begin(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = index_.find(key); it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return Ticket{Role::kHit, it->second->second, nullptr};
  }
  if (auto it = flights_.find(key); it != flights_.end()) {
    ++stats_.coalesced;
    return Ticket{Role::kFollower, nullptr, it->second};
  }
  ++stats_.misses;
  auto flight = std::make_shared<Flight>();
  flights_.emplace(key, flight);
  return Ticket{Role::kLeader, nullptr, flight};
}

void AnswerCache::Publish(const std::shared_ptr<Flight>& flight,
                          const std::string& key,
                          std::shared_ptr<const DistributedResult> result) {
  PAXML_CHECK(flight != nullptr);
  PAXML_CHECK(result != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    flights_.erase(key);
    // A racing Begin between the leader's completion and this Publish may
    // have installed the entry already (it would have been a follower of
    // this very flight, so the results agree); just refresh recency then.
    if (auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->second = result;
    } else {
      lru_.emplace_front(key, result);
      index_[key] = lru_.begin();
      ++stats_.insertions;
      if (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
  }
  Complete(flight, std::move(result), Status::OK());
}

void AnswerCache::Abort(const std::shared_ptr<Flight>& flight,
                        const std::string& key, const Status& failure) {
  PAXML_CHECK(flight != nullptr);
  PAXML_CHECK(!failure.ok());
  {
    std::lock_guard<std::mutex> lock(mu_);
    flights_.erase(key);
  }
  Complete(flight, nullptr, failure);
}

AnswerCache::Stats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void AnswerCache::Complete(const std::shared_ptr<Flight>& flight,
                           std::shared_ptr<const DistributedResult> result,
                           const Status& failure) {
  std::vector<std::function<void()>> waiters;
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    PAXML_CHECK(!flight->done);  // one Publish/Abort per flight
    flight->done = true;
    flight->result = std::move(result);
    flight->failure = failure;
    waiters.swap(flight->waiters);
  }
  for (auto& fn : waiters) fn();
}

}  // namespace paxml
