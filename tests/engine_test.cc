// Tests for the session-based engine API (core/engine.h): Engine::Submit +
// QueryHandle::{Wait,TryGet,Cancel} on both transport backends, equivalence
// with sequential evaluation, priority-ordered admission, cancellation
// (queued and mid-run) and deadline expiry — each yielding its distinct
// error status while concurrent runs' answers and accounting stay
// byte-for-byte untouched (invariant 5, DESIGN.md §6/§7).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "fragment/fragmenter.h"
#include "test_util.h"

namespace paxml {
namespace {

using std::chrono::milliseconds;

class EngineTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override {
    Tree t = testing::BuildClienteleTree();
    auto doc = FragmentByCuts(t, testing::ClienteleCuts(t));
    ASSERT_TRUE(doc.ok());
    doc_ = std::make_shared<FragmentedDocument>(std::move(doc).ValueOrDie());
    cluster_ = std::make_unique<Cluster>(doc_, 4);
    cluster_->PlaceRootAndSpread();

    // A second cluster over the same document whose rounds sleep out a
    // modeled network delay: slow enough that a test can cancel or expire
    // an evaluation before it finishes, without any algorithm changes.
    ClusterOptions slow;
    NetworkCostModel net;
    net.latency_seconds = 0.05;  // 50 ms per message: rounds take seconds
    slow.simulated_network = net;
    slow_cluster_ = std::make_unique<Cluster>(doc_, 4, slow);
    slow_cluster_->PlaceRootAndSpread();
  }

  EngineConfig Config(size_t depth) const {
    EngineConfig config;
    config.depth = depth;
    config.transport = GetParam();
    return config;
  }

  std::shared_ptr<FragmentedDocument> doc_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Cluster> slow_cluster_;
};

const char* kQueryA = "clientele/client/broker/name";
const char* kQueryB = "//stock/code";
const char* kQueryC = "//market[name/text() = \"NASDAQ\"]/stock/code";

// ---- Submit / Wait / TryGet -------------------------------------------------

// The acceptance property: concurrent submissions over one Engine produce
// answers, visit counts and per-edge byte totals identical to sequential
// evaluation.
TEST_P(EngineTest, ConcurrentSubmissionsMatchSequential) {
  std::vector<std::string> stream;
  for (int rep = 0; rep < 2; ++rep) {
    for (const char* q : {kQueryA, kQueryB, kQueryC}) stream.push_back(q);
  }

  EngineOptions options;
  options.transport = GetParam();
  std::vector<Result<DistributedResult>> sequential;
  for (const auto& q : stream) {
    sequential.push_back(EvaluateDistributed(*cluster_, q, options));
  }

  Engine engine(*cluster_, Config(4));
  std::vector<QueryHandle> handles;
  for (const auto& q : stream) handles.push_back(engine.Submit(q));

  for (size_t i = 0; i < stream.size(); ++i) {
    const QueryReport& report = handles[i].Wait();
    ASSERT_TRUE(sequential[i].ok()) << stream[i];
    ASSERT_TRUE(report.result.ok()) << stream[i] << ": "
                                    << report.result.status();
    EXPECT_EQ(report.result->answers, sequential[i]->answers) << stream[i];
    EXPECT_EQ(report.result->stats.edges, sequential[i]->stats.edges)
        << stream[i];
    EXPECT_EQ(report.result->stats.total_bytes,
              sequential[i]->stats.total_bytes)
        << stream[i];
    EXPECT_EQ(report.result->stats.rounds, sequential[i]->stats.rounds)
        << stream[i];
    // The report mirrors the run: rounds and stats snapshot match.
    EXPECT_EQ(report.rounds, report.result->stats.rounds);
    EXPECT_EQ(report.stats.total_bytes, report.result->stats.total_bytes);
    EXPECT_GE(report.latency_seconds, report.queue_seconds);
  }
  // Every run was closed on its way out.
  EXPECT_EQ(engine.transport().open_run_count(), 0u);
}

TEST_P(EngineTest, TryGetIsNullUntilCompletion) {
  Engine engine(*cluster_, Config(1));
  QueryHandle handle = engine.Submit(kQueryA);
  // Poll until done; TryGet never blocks.
  const QueryReport* report = handle.TryGet();
  while (report == nullptr) {
    std::this_thread::sleep_for(milliseconds(1));
    report = handle.TryGet();
  }
  EXPECT_TRUE(report->result.ok()) << report->result.status();
  EXPECT_EQ(report, &handle.Wait());  // same report, now settled
}

// ---- Per-round progress on the handle ---------------------------------------

// Progress is live: with 50 ms of modeled latency per message the driver
// spends long stretches sleeping out the network between rounds, so a
// client polling the handle must see completed rounds (and their accounted
// bytes) while TryGet() is still null.
TEST_P(EngineTest, ProgressIsVisibleBeforeWaitResolves) {
  Engine engine(*slow_cluster_, Config(1));
  QueryHandle handle = engine.Submit(kQueryA);

  RunProgress before_done;
  bool observed_before_done = false;
  while (handle.TryGet() == nullptr) {
    RunProgress p = handle.Progress();
    if (p.rounds > 0) {
      before_done = p;
      observed_before_done = true;
    }
    std::this_thread::sleep_for(milliseconds(1));
  }
  const QueryReport& report = handle.Wait();
  ASSERT_TRUE(report.result.ok()) << report.result.status();
  EXPECT_TRUE(observed_before_done);
  EXPECT_GT(before_done.bytes, 0u);
  EXPECT_GT(before_done.messages, 0u);
  EXPECT_LE(before_done.rounds, report.stats.rounds);
  EXPECT_LE(before_done.bytes, report.stats.total_bytes);
}

// Once the query completes, the last published progress is exactly the
// final accounting (and a still-queued query reports all zeroes).
TEST_P(EngineTest, ProgressMatchesFinalStats) {
  Engine engine(*cluster_, Config(2));
  QueryHandle handle = engine.Submit(kQueryB);
  EXPECT_EQ(QueryHandle(handle).Progress(), handle.Progress());  // copyable
  const QueryReport& report = handle.Wait();
  ASSERT_TRUE(report.result.ok());
  const RunProgress progress = handle.Progress();
  EXPECT_EQ(progress.rounds, report.stats.rounds);
  EXPECT_EQ(progress.messages, report.stats.total_messages);
  EXPECT_EQ(progress.envelopes, report.stats.total_envelopes);
  EXPECT_EQ(progress.bytes, report.stats.total_bytes);
}

TEST_P(EngineTest, CompileErrorsSurfaceInTheReport) {
  Engine engine(*cluster_, Config(2));
  QueryHandle bad = engine.Submit("this is not xpath ((");
  QueryHandle good = engine.Submit(kQueryA);
  EXPECT_FALSE(bad.Wait().result.ok());
  EXPECT_TRUE(good.Wait().result.ok()) << good.Wait().result.status();
}

// ---- Cancellation -----------------------------------------------------------

TEST_P(EngineTest, CancelWhileQueuedYieldsCancelledWithoutRunning) {
  // Depth 1: the slow query occupies the only driver, so the second
  // submission is still queued when the cancel lands.
  Engine engine(*slow_cluster_, Config(1));
  QueryHandle running = engine.Submit(kQueryA);
  QueryHandle queued = engine.Submit(kQueryB);
  EXPECT_TRUE(queued.Cancel());

  const QueryReport& report = queued.Wait();
  EXPECT_EQ(report.result.status().code(), StatusCode::kCancelled);
  // Rejected at admission: the query never opened a run — no rounds, no
  // traffic, no visits.
  EXPECT_EQ(report.rounds, 0);
  EXPECT_EQ(report.stats.total_bytes, 0u);
  EXPECT_EQ(report.stats.total_visits(), 0u);

  // The run it was queued behind is untouched.
  EXPECT_TRUE(running.Wait().result.ok()) << running.Wait().result.status();
}

TEST_P(EngineTest, CancelMidRunUnwindsWithoutDisturbingConcurrentRuns) {
  Engine engine(*slow_cluster_, Config(3));
  QueryHandle victim = engine.Submit(kQueryA);
  QueryHandle survivor = engine.Submit(kQueryB);

  // Let the victim get into its (seconds-long, network-delayed) rounds,
  // then cancel it mid-flight.
  std::this_thread::sleep_for(milliseconds(100));
  victim.Cancel();
  const QueryReport& cancelled = victim.Wait();
  EXPECT_EQ(cancelled.result.status().code(), StatusCode::kCancelled);

  // Invariant 5: the concurrent run's answers and accounting are
  // byte-for-byte those of an isolated sequential evaluation.
  EngineOptions options;
  options.transport = GetParam();
  auto baseline = EvaluateDistributed(*cluster_, kQueryB, options);
  ASSERT_TRUE(baseline.ok());
  const QueryReport& kept = survivor.Wait();
  ASSERT_TRUE(kept.result.ok()) << kept.result.status();
  EXPECT_EQ(kept.result->answers, baseline->answers);
  EXPECT_EQ(kept.result->stats.edges, baseline->stats.edges);
  EXPECT_EQ(kept.result->stats.total_bytes, baseline->stats.total_bytes);
  EXPECT_EQ(kept.result->stats.total_messages, baseline->stats.total_messages);

  // And the engine keeps serving: a fresh submission on the same (fast)
  // engine is unaffected by the aborted run's discarded mail.
  Engine fresh(*cluster_, Config(2));
  QueryHandle after = fresh.Submit(kQueryA);
  ASSERT_TRUE(after.Wait().result.ok()) << after.Wait().result.status();
}

TEST_P(EngineTest, CancelAfterCompletionReturnsFalse) {
  Engine engine(*cluster_, Config(1));
  QueryHandle handle = engine.Submit(kQueryA);
  const QueryReport& report = handle.Wait();
  ASSERT_TRUE(report.result.ok());
  EXPECT_FALSE(handle.Cancel());
  // The settled report is not disturbed by the late cancel.
  EXPECT_TRUE(handle.Wait().result.ok());
}

// ---- Deadlines --------------------------------------------------------------

TEST_P(EngineTest, AlreadyExpiredDeadlineIsRejectedAtAdmission) {
  Engine engine(*cluster_, Config(2));
  SubmitOptions expired;
  expired.deadline = milliseconds(0);  // expires at submission
  QueryHandle dead = engine.Submit(kQueryA, expired);
  QueryHandle live = engine.Submit(kQueryB);

  const QueryReport& report = dead.Wait();
  EXPECT_EQ(report.result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(report.rounds, 0);
  EXPECT_EQ(report.stats.total_bytes, 0u);
  EXPECT_TRUE(live.Wait().result.ok()) << live.Wait().result.status();
}

TEST_P(EngineTest, DeadlineExpiryMidRunUnwindsAtARoundBoundary) {
  Engine engine(*slow_cluster_, Config(2));
  SubmitOptions tight;
  tight.deadline = milliseconds(150);  // the delayed rounds take seconds
  QueryHandle expiring = engine.Submit(kQueryA, tight);
  QueryHandle unbounded = engine.Submit(kQueryB);

  const QueryReport& report = expiring.Wait();
  EXPECT_EQ(report.result.status().code(), StatusCode::kDeadlineExceeded);
  // The concurrent, deadline-free run is untouched.
  EngineOptions options;
  options.transport = GetParam();
  auto baseline = EvaluateDistributed(*cluster_, kQueryB, options);
  ASSERT_TRUE(baseline.ok());
  const QueryReport& kept = unbounded.Wait();
  ASSERT_TRUE(kept.result.ok()) << kept.result.status();
  EXPECT_EQ(kept.result->answers, baseline->answers);
  EXPECT_EQ(kept.result->stats.edges, baseline->stats.edges);
}

// ---- Priorities -------------------------------------------------------------

TEST_P(EngineTest, HigherPriorityIsAdmittedFirst) {
  // Depth 1 over the slow cluster: while the first query runs, the other
  // two wait in the queue — the high-priority one must be admitted first
  // even though it was submitted last.
  Engine engine(*slow_cluster_, Config(1));
  QueryHandle first = engine.Submit(kQueryA);
  SubmitOptions low;
  low.priority = 0;
  SubmitOptions high;
  high.priority = 10;
  QueryHandle background = engine.Submit(kQueryB, low);
  QueryHandle urgent = engine.Submit(kQueryC, high);

  const QueryReport& urgent_report = urgent.Wait();
  const QueryReport& background_report = background.Wait();
  ASSERT_TRUE(first.Wait().result.ok());
  ASSERT_TRUE(urgent_report.result.ok()) << urgent_report.result.status();
  ASSERT_TRUE(background_report.result.ok())
      << background_report.result.status();
  // Admission order shows up as queue time: the urgent query left the
  // queue while the background one was still waiting behind it.
  EXPECT_LT(urgent_report.queue_seconds, background_report.queue_seconds);
}

INSTANTIATE_TEST_SUITE_P(Backends, EngineTest,
                         ::testing::Values(TransportKind::kSync,
                                           TransportKind::kPooled),
                         [](const ::testing::TestParamInfo<TransportKind>& i) {
                           return i.param == TransportKind::kSync ? "Sync"
                                                                  : "Pooled";
                         });

// ---- Engine lifecycle -------------------------------------------------------

TEST(EngineLifecycleTest, DestructionDrainsInFlightWork) {
  Tree t = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(t, testing::ClienteleCuts(t));
  ASSERT_TRUE(doc.ok());
  auto shared = std::make_shared<FragmentedDocument>(std::move(doc).ValueOrDie());
  Cluster cluster(shared, 4);
  cluster.PlaceRootAndSpread();

  QueryHandle handle;
  EXPECT_FALSE(handle.valid());
  {
    EngineConfig config;
    config.depth = 2;
    Engine engine(cluster, config);
    handle = engine.Submit("clientele/client/broker/name");
    EXPECT_TRUE(handle.valid());
  }  // engine destroyed: drains first
  ASSERT_NE(handle.TryGet(), nullptr);  // completed, not abandoned
  EXPECT_TRUE(handle.TryGet()->result.ok()) << handle.TryGet()->result.status();
}

TEST(EngineLifecycleTest, PrecompiledSubmissionsEvaluate) {
  Tree t = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(t, testing::ClienteleCuts(t));
  ASSERT_TRUE(doc.ok());
  auto shared = std::make_shared<FragmentedDocument>(std::move(doc).ValueOrDie());
  Cluster cluster(shared, 4);
  cluster.PlaceRootAndSpread();

  auto compiled = CompileXPath("//stock/code", shared->symbols());
  ASSERT_TRUE(compiled.ok());
  Engine engine(cluster, {});
  // Wait()'s reference lives as long as a handle to the query does — keep
  // the handle, not just the reference.
  QueryHandle handle = engine.Submit(*compiled);
  const QueryReport& report = handle.Wait();
  ASSERT_TRUE(report.result.ok()) << report.result.status();
  auto direct = EvaluateDistributed(cluster, *compiled);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(report.result->answers, direct->answers);
}

}  // namespace
}  // namespace paxml
