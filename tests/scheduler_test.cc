// Tests for the shared WorkerPool and the multi-query scheduler: per-batch
// completion latches (reentrancy), round-robin fairness across batches,
// stream-depth admission, and the EvalBatch engine surface (per-query
// errors, shared pool reuse, simulated network delay).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "fragment/fragmenter.h"
#include "runtime/query_scheduler.h"
#include "runtime/worker_pool.h"
#include "test_util.h"

namespace paxml {
namespace {

// ---- WorkerPool -------------------------------------------------------------

TEST(WorkerPoolTest, RunAllExecutesEveryTaskAndBlocks) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) tasks.push_back([&] { ++ran; });
  pool.RunAll(std::move(tasks));
  // RunAll returned => every task has finished, not merely been queued.
  EXPECT_EQ(ran.load(), 20);
  pool.RunAll({});  // empty batch is a no-op
}

// The bug the pool extraction fixes: completion state is per batch, so any
// number of threads may run batches concurrently. With the old shared
// inflight_ counter this configuration deadlocked or woke callers early.
TEST(WorkerPoolTest, ConcurrentBatchesEachWaitOnTheirOwnLatch) {
  WorkerPool pool(2);
  constexpr int kCallers = 6;
  constexpr int kBatches = 20;
  constexpr int kTasksPerBatch = 5;
  std::vector<std::thread> callers;
  std::vector<std::atomic<int>> ran(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int b = 0; b < kBatches; ++b) {
        std::atomic<int> batch_ran{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < kTasksPerBatch; ++i) {
          tasks.push_back([&] {
            ++batch_ran;
            ++ran[t];
          });
        }
        pool.RunAll(std::move(tasks));
        // The latch property: when RunAll returns, *this* batch is done,
        // whatever the other five callers are doing.
        ASSERT_EQ(batch_ran.load(), kTasksPerBatch);
      }
    });
  }
  for (auto& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(ran[t].load(), kBatches * kTasksPerBatch);
  }
}

// Round-robin across batches: a single worker alternates between two
// queued batches instead of draining the first before touching the second,
// so a wide round cannot starve a concurrent query's round.
TEST(WorkerPoolTest, ServesConcurrentBatchesRoundRobin) {
  WorkerPool pool(1);
  std::mutex order_mu;
  std::vector<char> order;

  std::vector<std::function<void()>> batch_a;
  for (int i = 0; i < 4; ++i) {
    batch_a.push_back([&, i] {
      if (i == 0) {
        // Hold the only worker until batch B is queued behind batch A's
        // remaining tasks (A itself still counts: 3 tasks are unstarted).
        while (pool.queued_batch_count() < 2) std::this_thread::yield();
      }
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back('A');
    });
  }
  std::thread caller_a([&] { pool.RunAll(std::move(batch_a)); });

  std::vector<std::function<void()>> batch_b;
  for (int i = 0; i < 3; ++i) {
    batch_b.push_back([&] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back('B');
    });
  }
  std::thread caller_b([&] { pool.RunAll(std::move(batch_b)); });
  caller_a.join();
  caller_b.join();

  ASSERT_EQ(order.size(), 7u);
  const std::string trace(order.begin(), order.end());
  const size_t first_b = trace.find('B');
  const size_t last_a = trace.rfind('A');
  ASSERT_NE(first_b, std::string::npos);
  // FIFO service would drain A completely first ("AAAABBB"); round-robin
  // interleaves, so some B task runs before A's last task.
  EXPECT_LT(first_b, last_a) << "batch B was starved behind batch A: "
                             << trace;
}

// ---- QueryScheduler ---------------------------------------------------------

TEST(QuerySchedulerTest, RunsEveryJobWithinDepth) {
  constexpr size_t kDepth = 3;
  QueryScheduler scheduler(kDepth);
  EXPECT_EQ(scheduler.depth(), kDepth);

  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 24; ++i) {
    scheduler.Submit([&] {
      const int now = ++running;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --running;
      ++done;
    });
  }
  scheduler.Wait();
  EXPECT_EQ(done.load(), 24);
  EXPECT_LE(peak.load(), static_cast<int>(kDepth));
}

TEST(QuerySchedulerTest, WaitIsReusableAcrossSubmissionWaves) {
  QueryScheduler scheduler(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) scheduler.Submit([&] { ++done; });
  scheduler.Wait();
  EXPECT_EQ(done.load(), 4);
  for (int i = 0; i < 4; ++i) scheduler.Submit([&] { ++done; });
  scheduler.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(QuerySchedulerTest, DepthZeroIsClampedToOne) {
  QueryScheduler scheduler(0);
  EXPECT_EQ(scheduler.depth(), 1u);
  std::atomic<int> done{0};
  scheduler.Submit([&] { ++done; });
  scheduler.Wait();
  EXPECT_EQ(done.load(), 1);
}

// Admission is by descending priority, ties in submission order — not FIFO.
// A gate job holds the single driver while the queue fills, so the
// admission order of the queued jobs is observed deterministically.
TEST(QuerySchedulerTest, PriorityOverridesSubmissionOrder) {
  QueryScheduler scheduler(1);
  std::atomic<bool> release{false};
  std::mutex order_mu;
  std::vector<std::string> order;
  auto record = [&](const char* name) {
    return [&, name] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
    };
  };

  std::atomic<bool> gate_running{false};
  scheduler.Submit([&] {
    gate_running = true;
    while (!release.load()) std::this_thread::yield();
  });
  // Only queue once the gate holds the driver — otherwise the driver could
  // pick the high-priority job first, before the gate was even admitted.
  while (!gate_running.load()) std::this_thread::yield();
  // Queue while the driver is held: two low-priority, then one high.
  QueryScheduler::Job low1;
  low1.run = record("low1");
  QueryScheduler::Job low2;
  low2.run = record("low2");
  QueryScheduler::Job high;
  high.run = record("high");
  high.priority = 10;
  scheduler.Submit(std::move(low1));
  scheduler.Submit(std::move(low2));
  scheduler.Submit(std::move(high));
  EXPECT_EQ(scheduler.queued_count(), 3u);

  release = true;
  scheduler.Wait();
  EXPECT_EQ(order,
            (std::vector<std::string>{"high", "low1", "low2"}));
}

// Within one priority band admission is earliest-deadline-first: a nearer
// deadline wins, any deadline beats none, and only the remaining ties fall
// back to submission order.
TEST(QuerySchedulerTest, EarliestDeadlineFirstWithinPriorityBand) {
  QueryScheduler scheduler(1);
  std::atomic<bool> release{false};
  std::atomic<bool> gate_running{false};
  scheduler.Submit([&] {
    gate_running = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!gate_running.load()) std::this_thread::yield();

  std::mutex order_mu;
  std::vector<std::string> order;
  auto record = [&](const char* name) {
    return [&, name] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
    };
  };
  // Deadlines generous enough that nothing expires while queued.
  const auto now = std::chrono::steady_clock::now();
  QueryScheduler::Job no_deadline;
  no_deadline.run = record("no-deadline");
  QueryScheduler::Job far;
  far.deadline = now + std::chrono::hours(2);
  far.run = record("far");
  QueryScheduler::Job near;
  near.deadline = now + std::chrono::hours(1);
  near.run = record("near");
  // A higher band ignores deadlines below it entirely.
  QueryScheduler::Job high;
  high.priority = 5;
  high.run = record("high");
  scheduler.Submit(std::move(no_deadline));
  scheduler.Submit(std::move(far));
  scheduler.Submit(std::move(near));
  scheduler.Submit(std::move(high));

  release = true;
  scheduler.Wait();
  EXPECT_EQ(order, (std::vector<std::string>{"high", "near", "far",
                                             "no-deadline"}));
}

// Dead-on-arrival work is reaped ahead of priority selection: an expired
// job must not wait behind higher-priority queued work for its verdict.
TEST(QuerySchedulerTest, ExpiredJobsAreReapedAheadOfPrioritySelection) {
  QueryScheduler scheduler(1);
  std::atomic<bool> release{false};
  std::atomic<bool> gate_running{false};
  scheduler.Submit([&] {
    gate_running = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!gate_running.load()) std::this_thread::yield();

  std::mutex order_mu;
  std::vector<std::string> order;
  QueryScheduler::Job high;
  high.priority = 10;
  high.run = [&] {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("high-ran");
  };
  QueryScheduler::Job expired;
  expired.deadline = std::chrono::steady_clock::now();
  expired.run = [&] {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("expired-ran");  // must never happen
  };
  expired.reject = [&](const Status& s) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(s.code() == StatusCode::kDeadlineExceeded
                        ? "expired-rejected"
                        : "expired-wrong-status");
  };
  scheduler.Submit(std::move(high));
  scheduler.Submit(std::move(expired));

  release = true;
  scheduler.Wait();
  EXPECT_EQ(order,
            (std::vector<std::string>{"expired-rejected", "high-ran"}));
}

TEST(QuerySchedulerTest, ExpiredDeadlineJobsAreRejectedNotRun) {
  QueryScheduler scheduler(1);
  std::atomic<bool> ran{false};
  Status rejection;
  std::mutex mu;

  QueryScheduler::Job job;
  job.run = [&] { ran = true; };
  job.reject = [&](const Status& s) {
    std::lock_guard<std::mutex> lock(mu);
    rejection = s;
  };
  job.deadline = std::chrono::steady_clock::now();  // already expired
  scheduler.Submit(std::move(job));
  scheduler.Wait();

  EXPECT_FALSE(ran.load());
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(rejection.code(), StatusCode::kDeadlineExceeded);
}

TEST(QuerySchedulerTest, CancelledQueuedJobsAreRejectedNotRun) {
  QueryScheduler scheduler(1);
  std::atomic<bool> ran{false};
  Status rejection;
  std::mutex mu;

  QueryScheduler::Job job;
  job.run = [&] { ran = true; };
  job.reject = [&](const Status& s) {
    std::lock_guard<std::mutex> lock(mu);
    rejection = s;
  };
  job.cancelled = [] { return true; };
  scheduler.Submit(std::move(job));
  scheduler.Wait();

  EXPECT_FALSE(ran.load());
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(rejection.code(), StatusCode::kCancelled);
}

// Wait() covers reject callbacks: a rejected job's verdict must be fully
// delivered (not merely scheduled) by the time Wait() returns — the reaped
// job counts as in-flight work across its callback.
TEST(QuerySchedulerTest, WaitCoversRejectCallbacks) {
  QueryScheduler scheduler(1);
  std::atomic<bool> rejected{false};
  QueryScheduler::Job job;
  job.deadline = std::chrono::steady_clock::now();  // dead on arrival
  job.reject = [&](const Status&) {
    // Widen the race window: with the bug, Wait() returned while this
    // callback was still running.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rejected = true;
  };
  scheduler.Submit(std::move(job));
  scheduler.Wait();
  EXPECT_TRUE(rejected.load());
}

// Saturation-adaptive admission: while the shared pool's queued-batch
// backlog exceeds its worker count, the scheduler sheds admission slots
// (floor 1) instead of piling more concurrent rounds onto it.
TEST(QuerySchedulerTest, AdmissionLimitShrinksUnderPoolSaturation) {
  auto pool = std::make_shared<WorkerPool>(1);
  QueryScheduler scheduler(4, pool);
  EXPECT_EQ(scheduler.admission_limit(), 4u);

  std::atomic<bool> release{false};
  // Batch A: one task pins the only worker, one stays queued (backlog 1).
  std::thread caller_a([&] {
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&] {
      while (!release.load()) std::this_thread::yield();
    });
    tasks.push_back([] {});
    pool->RunAll(std::move(tasks));
  });
  // Batch B: queued behind the pinned worker (backlog 2 > 1 worker).
  std::thread caller_b([&] {
    while (pool->queued_batch_count() < 1) std::this_thread::yield();
    pool->RunAll({[] {}});
  });

  // Wait for both batches to be queued, then observe the shrunken limit:
  // backlog 2, workers 1 → one slot shed.
  while (pool->queued_batch_count() < 2) std::this_thread::yield();
  EXPECT_EQ(scheduler.admission_limit(), 3u);

  release = true;
  caller_a.join();
  caller_b.join();
  EXPECT_EQ(scheduler.admission_limit(), 4u);
}

// ---- EvalBatch --------------------------------------------------------------

class EvalBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tree t = testing::BuildClienteleTree();
    auto doc = FragmentByCuts(t, testing::ClienteleCuts(t));
    ASSERT_TRUE(doc.ok());
    doc_ = std::make_shared<FragmentedDocument>(std::move(doc).ValueOrDie());
    cluster_ = std::make_unique<Cluster>(doc_, 4);
    cluster_->PlaceRootAndSpread();
  }

  std::shared_ptr<FragmentedDocument> doc_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(EvalBatchTest, PerQueryErrorsDoNotDisturbTheStream) {
  std::vector<std::string> stream = {
      "clientele/client/broker/name",
      "this is not xpath ((",
      "//stock/code",
  };
  std::vector<double> latencies;
  auto results = EvalBatch(*cluster_, stream, {}, 2, &latencies);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(latencies.size(), 3u);

  EXPECT_TRUE(results[0].ok()) << results[0].status();
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok()) << results[2].status();

  auto lone = EvaluateDistributed(*cluster_, stream[2]);
  ASSERT_TRUE(lone.ok());
  EXPECT_EQ(results[2]->answers, lone->answers);
}

TEST_F(EvalBatchTest, EmptyStreamIsANoOp) {
  EXPECT_TRUE(EvalBatch(*cluster_, {}).empty());
}

TEST_F(EvalBatchTest, SharedPoolServesRepeatedBatches) {
  // The cluster hands every pooled consumer the same WorkerPool: a stream
  // of batches must not spawn per-run pools.
  auto pool = cluster_->worker_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(cluster_->worker_pool().get(), pool.get());

  EngineOptions options;
  options.transport = TransportKind::kPooled;
  std::vector<std::string> stream(6, "clientele/client/broker/name");
  for (int wave = 0; wave < 3; ++wave) {
    auto results = EvalBatch(*cluster_, stream, options, 3);
    for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status();
  }
}

// A cluster that realizes network delay still computes identical results —
// the model only stretches wall time.
TEST_F(EvalBatchTest, SimulatedNetworkDelayDoesNotChangeAnswers) {
  ClusterOptions options;
  options.simulated_network = NetworkCostModel{};  // the paper's LAN
  Cluster delayed(doc_, 4, options);
  delayed.PlaceRootAndSpread();

  const std::string query = "clientele/client/broker/name";
  auto plain = EvaluateDistributed(*cluster_, query);
  auto slowed = EvaluateDistributed(delayed, query);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(slowed.ok());
  EXPECT_EQ(plain->answers, slowed->answers);
  EXPECT_EQ(plain->stats.total_bytes, slowed->stats.total_bytes);
  EXPECT_EQ(plain->stats.edges, slowed->stats.edges);
}

}  // namespace
}  // namespace paxml
