#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/engine.h"
#include "eval/centralized.h"
#include "fragment/fragmenter.h"
#include "fragment/storage.h"
#include "test_util.h"
#include "xml/serializer.h"

namespace paxml {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() {
    dir_ = fs::temp_directory_path() /
           ("paxml_storage_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  ~StorageTest() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(StorageTest, SaveLoadRoundTrip) {
  Tree tree = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(tree, testing::ClienteleCuts(tree));
  ASSERT_TRUE(doc.ok());

  ASSERT_TRUE(SaveDocument(*doc, dir_.string()).ok());
  EXPECT_TRUE(fs::exists(dir_ / "manifest.paxml"));
  EXPECT_TRUE(fs::exists(dir_ / "fragment_0.xml"));
  EXPECT_TRUE(fs::exists(dir_ / "fragment_4.xml"));

  auto loaded = LoadDocument(dir_.string(), std::make_shared<SymbolTable>());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), doc->size());
  EXPECT_TRUE(loaded->Validate().ok()) << loaded->Validate();

  // Structure, annotations and source ids survive.
  for (size_t f = 0; f < doc->size(); ++f) {
    EXPECT_EQ(loaded->fragment(f).parent, doc->fragment(f).parent);
    EXPECT_EQ(loaded->fragment(f).source_ids, doc->fragment(f).source_ids);
    EXPECT_EQ(loaded->fragment(f).AnnotationString(*loaded->symbols()),
              doc->fragment(f).AnnotationString(*doc->symbols()));
  }
  EXPECT_EQ(SerializeXml(loaded->Assemble()), SerializeXml(tree));
}

TEST_F(StorageTest, LoadedDocumentEvaluatesIdentically) {
  Tree tree = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(tree, testing::ClienteleCuts(tree));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(SaveDocument(*doc, dir_.string()).ok());

  auto symbols = std::make_shared<SymbolTable>();
  auto loaded_r = LoadDocument(dir_.string(), symbols);
  ASSERT_TRUE(loaded_r.ok());
  auto loaded =
      std::make_shared<FragmentedDocument>(std::move(loaded_r).ValueOrDie());

  Cluster cluster(loaded, 3);
  const char* query =
      "//broker[//stock/code/text() = \"GOOG\"]/name";
  auto compiled = CompileXPath(query, symbols);
  ASSERT_TRUE(compiled.ok());
  EngineOptions eo;
  eo.algorithm = DistributedAlgorithm::kPaX2;
  auto r = EvaluateDistributed(cluster, *compiled, eo);
  ASSERT_TRUE(r.ok()) << r.status();

  auto expected = EvaluateCentralized(tree, query);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->ToSourceIds(*loaded), expected->answers);
}

TEST_F(StorageTest, RandomDocumentsRoundTrip) {
  Rng rng(31);
  for (int iter = 0; iter < 5; ++iter) {
    fs::path sub = dir_ / std::to_string(iter);
    Tree tree = testing::RandomTree(&rng, 80 + rng.NextBounded(100));
    auto doc = FragmentRandomly(tree, 1 + rng.NextBounded(6), &rng);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(SaveDocument(*doc, sub.string()).ok());
    auto loaded = LoadDocument(sub.string(), std::make_shared<SymbolTable>());
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(SerializeXml(loaded->Assemble()), SerializeXml(tree));
  }
}

TEST_F(StorageTest, LoadMissingDirectoryFails) {
  auto r = LoadDocument((dir_ / "nope").string());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, LoadRejectsCorruptManifest) {
  Tree tree = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(tree, testing::ClienteleCuts(tree));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(SaveDocument(*doc, dir_.string()).ok());

  {
    std::ofstream out(dir_ / "manifest.paxml", std::ios::trunc);
    out << "not-a-manifest 1\n";
  }
  auto r = LoadDocument(dir_.string());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(StorageTest, LoadRejectsMissingFragmentFile) {
  Tree tree = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(tree, testing::ClienteleCuts(tree));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(SaveDocument(*doc, dir_.string()).ok());
  fs::remove(dir_ / "fragment_2.xml");
  auto r = LoadDocument(dir_.string());
  EXPECT_FALSE(r.ok());
}

TEST_F(StorageTest, LoadRejectsTamperedFragmentXml) {
  Tree tree = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(tree, testing::ClienteleCuts(tree));
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(SaveDocument(*doc, dir_.string()).ok());
  {
    std::ofstream out(dir_ / "fragment_1.xml", std::ios::trunc);
    out << "<broken>";
  }
  auto r = LoadDocument(dir_.string());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace paxml
