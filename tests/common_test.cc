#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace paxml {
namespace {

// ---- Status -------------------------------------------------------------------

TEST(StatusTest, OkIsDefaultAndCheap) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
  EXPECT_EQ(s, Status::OK());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "parse-error: bad token");
}

TEST(StatusTest, CopyIsShallowAndEqualCompares) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Status::NotFound("y"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    PAXML_RETURN_NOT_OK(Status::Internal("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
}

// ---- Result -------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("x");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    PAXML_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

// ---- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, WeightedRespectsZeros) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    size_t pick = rng.NextWeighted({0.0, 1.0, 0.0});
    EXPECT_EQ(pick, 1u);
  }
  EXPECT_EQ(rng.NextWeighted({}), 0u);
  EXPECT_EQ(rng.NextWeighted({0.0, 0.0}), 0u);
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(77);
  Rng b = a.Fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ---- String utils ----------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a//b/", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
  EXPECT_EQ(Split("", '/').size(), 1u);
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringUtilTest, StripAndWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_TRUE(IsAllWhitespace(" \t\n"));
  EXPECT_TRUE(IsAllWhitespace(""));
  EXPECT_FALSE(IsAllWhitespace(" x "));
}

TEST(StringUtilTest, ParseNumber) {
  EXPECT_DOUBLE_EQ(*ParseNumber("42"), 42.0);
  EXPECT_DOUBLE_EQ(*ParseNumber("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*ParseNumber("  7 "), 7.0);
  EXPECT_FALSE(ParseNumber("x").has_value());
  EXPECT_FALSE(ParseNumber("3x").has_value());
  EXPECT_FALSE(ParseNumber("").has_value());
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("NASDAQ", "nasdaq"));
  EXPECT_FALSE(EqualsIgnoreCase("NASDAQ", "nasdaq2"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&'\"c"), "a&lt;b&gt;&amp;&apos;&quot;c");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%s", std::string(500, 'a').c_str()),
            std::string(500, 'a'));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(5 * 1024 * 1024ULL), "5.0 MB");
}

}  // namespace
}  // namespace paxml
