#include <gtest/gtest.h>

#include "fragment/fragmenter.h"
#include "sim/cluster.h"
#include "test_util.h"

namespace paxml {
namespace {

std::shared_ptr<FragmentedDocument> MakeDoc() {
  Tree t = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(t, testing::ClienteleCuts(t));
  PAXML_CHECK(doc.ok());
  return std::make_shared<FragmentedDocument>(std::move(doc).ValueOrDie());
}

TEST(ClusterTest, RoundRobinPlacement) {
  Cluster c(MakeDoc(), 2);
  EXPECT_EQ(c.site_of(0), 0);
  EXPECT_EQ(c.site_of(1), 1);
  EXPECT_EQ(c.site_of(2), 0);
  EXPECT_EQ(c.site_of(3), 1);
  EXPECT_EQ(c.site_of(4), 0);
  EXPECT_EQ(c.fragments_at(0).size(), 3u);
  EXPECT_EQ(c.fragments_at(1).size(), 2u);
  EXPECT_EQ(c.query_site(), 0);
}

TEST(ClusterTest, RootAndSpreadKeepsRootAtSiteZero) {
  Cluster c(MakeDoc(), 3);
  c.PlaceRootAndSpread();
  EXPECT_EQ(c.site_of(0), 0);
  for (FragmentId f = 1; f <= 4; ++f) EXPECT_NE(c.site_of(f), 0) << f;
}

TEST(ClusterTest, ExplicitPlacementAndErrors) {
  Cluster c(MakeDoc(), 2);
  EXPECT_TRUE(c.Place(3, 1).ok());
  EXPECT_EQ(c.site_of(3), 1);
  // Re-placing moves the fragment (no duplicates in per-site lists).
  EXPECT_TRUE(c.Place(3, 0).ok());
  size_t count = 0;
  for (FragmentId f : c.fragments_at(0)) {
    if (f == 3) ++count;
  }
  EXPECT_EQ(count, 1u);
  for (FragmentId f : c.fragments_at(1)) EXPECT_NE(f, 3);

  EXPECT_FALSE(c.Place(99, 0).ok());
  EXPECT_FALSE(c.Place(0, 7).ok());
  EXPECT_FALSE(c.Place(-1, 0).ok());
}

TEST(NetworkCostModelTest, TransferSeconds) {
  NetworkCostModel net;
  net.latency_seconds = 0.001;
  net.bandwidth_bytes_per_second = 1000;
  // 3 messages, 500 bytes: 3ms latency + 0.5s transfer.
  EXPECT_DOUBLE_EQ(net.TransferSeconds(3, 500), 0.003 + 0.5);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(0, 0), 0.0);
}

TEST(NetworkCostModelTest, ValidityContract) {
  EXPECT_TRUE(NetworkCostModel{}.Valid());

  NetworkCostModel ideal;
  ideal.latency_seconds = 0;  // an ideal network is a valid model...
  EXPECT_TRUE(ideal.Valid());

  NetworkCostModel zero_bw;
  zero_bw.bandwidth_bytes_per_second = 0;  // ...a zero-bandwidth one is not
  EXPECT_FALSE(zero_bw.Valid());

  NetworkCostModel negative_latency;
  negative_latency.latency_seconds = -0.1;
  EXPECT_FALSE(negative_latency.Valid());
}

// A zero bandwidth used to flow through TransferSeconds as a silent
// division by zero, turning every derived elapsed-time metric into inf.
TEST(NetworkCostModelDeathTest, ZeroBandwidthAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  NetworkCostModel broken;
  broken.bandwidth_bytes_per_second = 0;
  EXPECT_DEATH(broken.TransferSeconds(1, 100), "Valid");
}

TEST(RunStatsTest, VisitAggregates) {
  RunStats s;
  s.per_site.resize(3);
  s.per_site[0].visits = 2;
  s.per_site[2].visits = 1;
  EXPECT_EQ(s.max_visits(), 2);
  EXPECT_EQ(s.total_visits(), 3u);
}

TEST(RunStatsTest, ToStringMentionsSitesAndEdges) {
  RunStats s;
  s.per_site.resize(2);
  s.per_site[0].visits = 1;
  s.per_site[1].visits = 1;
  s.edges[{0, 1}] = EdgeStats{3, 1024};
  std::string out = s.ToString();
  EXPECT_NE(out.find("site 0"), std::string::npos);
  EXPECT_NE(out.find("site 1"), std::string::npos);
  EXPECT_NE(out.find("max-visits=1"), std::string::npos);
  EXPECT_NE(out.find("edge 0->1"), std::string::npos);
}

}  // namespace
}  // namespace paxml
