#include <gtest/gtest.h>

#include <atomic>

#include "fragment/fragmenter.h"
#include "sim/cluster.h"
#include "test_util.h"

namespace paxml {
namespace {

std::shared_ptr<FragmentedDocument> MakeDoc() {
  Tree t = testing::BuildClienteleTree();
  auto doc = FragmentByCuts(t, testing::ClienteleCuts(t));
  PAXML_CHECK(doc.ok());
  return std::make_shared<FragmentedDocument>(std::move(doc).ValueOrDie());
}

TEST(ClusterTest, RoundRobinPlacement) {
  Cluster c(MakeDoc(), 2);
  EXPECT_EQ(c.site_of(0), 0);
  EXPECT_EQ(c.site_of(1), 1);
  EXPECT_EQ(c.site_of(2), 0);
  EXPECT_EQ(c.site_of(3), 1);
  EXPECT_EQ(c.site_of(4), 0);
  EXPECT_EQ(c.fragments_at(0).size(), 3u);
  EXPECT_EQ(c.fragments_at(1).size(), 2u);
  EXPECT_EQ(c.query_site(), 0);
}

TEST(ClusterTest, RootAndSpreadKeepsRootAtSiteZero) {
  Cluster c(MakeDoc(), 3);
  c.PlaceRootAndSpread();
  EXPECT_EQ(c.site_of(0), 0);
  for (FragmentId f = 1; f <= 4; ++f) EXPECT_NE(c.site_of(f), 0) << f;
}

TEST(ClusterTest, ExplicitPlacementAndErrors) {
  Cluster c(MakeDoc(), 2);
  EXPECT_TRUE(c.Place(3, 1).ok());
  EXPECT_EQ(c.site_of(3), 1);
  // Re-placing moves the fragment (no duplicates in per-site lists).
  EXPECT_TRUE(c.Place(3, 0).ok());
  size_t count = 0;
  for (FragmentId f : c.fragments_at(0)) {
    if (f == 3) ++count;
  }
  EXPECT_EQ(count, 1u);
  for (FragmentId f : c.fragments_at(1)) EXPECT_NE(f, 3);

  EXPECT_FALSE(c.Place(99, 0).ok());
  EXPECT_FALSE(c.Place(0, 7).ok());
  EXPECT_FALSE(c.Place(-1, 0).ok());
}

TEST(QueryRunTest, RoundCountsVisitsAndTimes) {
  auto doc = MakeDoc();
  Cluster c(doc, 3, ClusterOptions{.parallel_execution = false});
  QueryRun run(&c);
  run.Round("r1", {0, 2}, [](SiteId) {});
  run.Round("r2", {0}, [](SiteId) {});
  const RunStats& s = run.stats();
  EXPECT_EQ(s.rounds, 2);
  EXPECT_EQ(s.per_site[0].visits, 2);
  EXPECT_EQ(s.per_site[1].visits, 0);
  EXPECT_EQ(s.per_site[2].visits, 1);
  EXPECT_EQ(s.max_visits(), 2);
  EXPECT_EQ(s.total_visits(), 3u);
}

TEST(QueryRunTest, ParallelRoundRunsAllSites) {
  auto doc = MakeDoc();
  Cluster c(doc, 4, ClusterOptions{.parallel_execution = true});
  QueryRun run(&c);
  std::atomic<int> executed{0};
  run.Round("r", {0, 1, 2, 3}, [&](SiteId) { ++executed; });
  EXPECT_EQ(executed.load(), 4);
  EXPECT_EQ(run.stats().total_visits(), 4u);
}

TEST(QueryRunTest, MessageAccounting) {
  auto doc = MakeDoc();
  Cluster c(doc, 3);
  QueryRun run(&c);
  run.Send(0, 1, 100);
  run.Send(1, 0, 50);
  run.SendAnswer(2, 0, 30);
  run.ShipData(1, 0, 1000);
  const RunStats& s = run.stats();
  EXPECT_EQ(s.total_messages, 4u);
  EXPECT_EQ(s.total_bytes, 1180u);
  EXPECT_EQ(s.answer_bytes, 30u);
  EXPECT_EQ(s.data_bytes_shipped, 1000u);
  EXPECT_EQ(s.per_site[0].bytes_sent, 100u);
  EXPECT_EQ(s.per_site[0].bytes_received, 1080u);
  EXPECT_EQ(s.per_site[1].messages_sent, 2u);
  EXPECT_EQ(s.per_site[1].messages_received, 1u);
}

TEST(QueryRunTest, SitesOfDeduplicates) {
  auto doc = MakeDoc();
  Cluster c(doc, 2);  // round robin: F0,F2,F4 -> S0; F1,F3 -> S1
  QueryRun run(&c);
  std::vector<SiteId> sites = run.SitesOf({0, 2, 4});
  EXPECT_EQ(sites, (std::vector<SiteId>{0}));
  EXPECT_EQ(run.AllSites(), (std::vector<SiteId>{0, 1}));
}

TEST(QueryRunTest, CoordinatorTimeAccumulates) {
  auto doc = MakeDoc();
  Cluster c(doc, 1);
  QueryRun run(&c);
  run.Coordinator([] {
    volatile int x = 0;
    for (int i = 0; i < 100000; ++i) x = x + i;
  });
  EXPECT_GT(run.stats().coordinator_seconds, 0.0);
}

TEST(NetworkCostModelTest, TransferSeconds) {
  NetworkCostModel net;
  net.latency_seconds = 0.001;
  net.bandwidth_bytes_per_second = 1000;
  // 3 messages, 500 bytes: 3ms latency + 0.5s transfer.
  EXPECT_DOUBLE_EQ(net.TransferSeconds(3, 500), 0.003 + 0.5);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(0, 0), 0.0);
}

TEST(RunStatsTest, ToStringMentionsSites) {
  auto doc = MakeDoc();
  Cluster c(doc, 2);
  QueryRun run(&c);
  run.Round("r", {0, 1}, [](SiteId) {});
  std::string s = run.stats().ToString();
  EXPECT_NE(s.find("site 0"), std::string::npos);
  EXPECT_NE(s.find("site 1"), std::string::npos);
  EXPECT_NE(s.find("max-visits=1"), std::string::npos);
}

}  // namespace
}  // namespace paxml
