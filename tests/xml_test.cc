#include <gtest/gtest.h>

#include "test_util.h"
#include "xml/builder.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tree.h"

namespace paxml {
namespace {

TEST(SymbolTableTest, InternIsStableAndDense) {
  SymbolTable table;
  Symbol a = table.Intern("alpha");
  Symbol b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, table.Intern("alpha"));
  EXPECT_EQ(table.Name(a), "alpha");
  EXPECT_EQ(table.Name(b), "beta");
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Lookup("gamma"), kInvalidSymbol);
  EXPECT_EQ(table.Lookup("beta"), b);
}

TEST(TreeTest, BuildAndNavigate) {
  Tree t(std::make_shared<SymbolTable>());
  NodeId root = t.AddElement(kNullNode, "a");
  NodeId b = t.AddElement(root, "b");
  NodeId c = t.AddElement(root, "c");
  NodeId txt = t.AddText(b, "hello");

  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.parent(b), root);
  EXPECT_EQ(t.first_child(root), b);
  EXPECT_EQ(t.next_sibling(b), c);
  EXPECT_EQ(t.next_sibling(c), kNullNode);
  EXPECT_TRUE(t.IsText(txt));
  EXPECT_EQ(t.text(txt), "hello");
  EXPECT_EQ(t.LabelName(root), "a");
  EXPECT_EQ(t.ChildCount(root), 2u);
  EXPECT_EQ(t.Depth(txt), 2);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, DirectTextAndNumericValue) {
  TreeBuilder b;
  b.Open("root");
  b.Open("age").Text("42").Close();
  b.Open("name").Text("An").Text("na").Close();
  b.Open("empty").Close();
  b.Close();  // root
  Tree t = std::move(b).Finish();

  NodeId age = t.first_child(t.root());
  NodeId name = t.next_sibling(age);
  NodeId empty = t.next_sibling(name);
  EXPECT_EQ(t.DirectText(age), "42");
  EXPECT_EQ(t.DirectText(name), "Anna");
  EXPECT_EQ(t.DirectText(empty), "");
  ASSERT_TRUE(t.NumericValue(age).has_value());
  EXPECT_DOUBLE_EQ(*t.NumericValue(age), 42.0);
  EXPECT_FALSE(t.NumericValue(name).has_value());
  EXPECT_TRUE(t.HasTextChild(age, "42"));
  EXPECT_FALSE(t.HasTextChild(age, "41"));
}

TEST(TreeTest, VirtualNodes) {
  TreeBuilder b;
  b.Open("root").Virtual(7).Open("x").Close();
  b.Close();
  Tree t = std::move(b).Finish();
  std::vector<NodeId> virtuals = t.VirtualNodes();
  ASSERT_EQ(virtuals.size(), 1u);
  EXPECT_TRUE(t.IsVirtual(virtuals[0]));
  EXPECT_EQ(t.fragment_ref(virtuals[0]), 7);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, SubtreeAndLabelPath) {
  Tree t = testing::BuildClienteleTree();
  EXPECT_TRUE(t.Validate().ok());
  NodeId anna_client = t.first_child(t.root());
  EXPECT_EQ(t.LabelPath(anna_client), "clientele/client");
  EXPECT_EQ(t.SubtreeSize(t.root()), t.size());
  EXPECT_EQ(t.SubtreeIds(t.root()).size(), t.size());
}

TEST(TreeTest, CloneIsDeep) {
  Tree t = testing::BuildClienteleTree();
  Tree copy = t.Clone();
  EXPECT_EQ(copy.size(), t.size());
  copy.AddElement(copy.root(), "extra");
  EXPECT_EQ(copy.size(), t.size() + 1);
}

// ---- Parser -----------------------------------------------------------------

TEST(XmlParserTest, ParsesSimpleDocument) {
  auto r = ParseXml("<a><b>hi</b><c/></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  const Tree& t = *r;
  EXPECT_EQ(t.LabelName(t.root()), "a");
  EXPECT_EQ(t.ChildCount(t.root()), 2u);
  NodeId b = t.first_child(t.root());
  EXPECT_EQ(t.DirectText(b), "hi");
}

TEST(XmlParserTest, SkipsWhitespaceTextByDefault) {
  auto r = ParseXml("<a>\n  <b> x </b>\n</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ChildCount(r->root()), 1u);  // only <b>
  XmlParseOptions opts;
  opts.skip_whitespace_text = false;
  auto keep = ParseXml("<a>\n  <b> x </b>\n</a>", opts);
  ASSERT_TRUE(keep.ok());
  EXPECT_EQ(keep->ChildCount(keep->root()), 3u);
}

TEST(XmlParserTest, DecodesEntitiesAndCdata) {
  auto r = ParseXml("<a>&lt;x&gt; &amp; <![CDATA[<raw>]]> &#65;&#x42;</a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->DirectText(r->root()), "<x> & <raw> AB");
}

TEST(XmlParserTest, ParsesAttributes) {
  auto r = ParseXml("<a id=\"1\" name='x &amp; y'><b k=\"v\"/></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  const auto& attrs = r->attributes(r->root());
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(r->symbols()->Name(attrs[0].name), "id");
  EXPECT_EQ(attrs[0].value, "1");
  EXPECT_EQ(attrs[1].value, "x & y");
}

TEST(XmlParserTest, SkipsPrologCommentsDoctype) {
  auto r = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]>"
      "<!-- hi --><a><!-- inner --><b/></a><!-- post -->");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ChildCount(r->root()), 1u);
}

TEST(XmlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());
  EXPECT_FALSE(ParseXml("plain text").ok());
  EXPECT_FALSE(ParseXml("<a attr></a>").ok());
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());
}

TEST(XmlParserTest, VirtualNodeRoundTrip) {
  TreeBuilder b;
  b.Open("root").LeafText("x", "1").Virtual(3).Close();
  Tree t = std::move(b).Finish();
  std::string xml = SerializeXml(t);
  EXPECT_NE(xml.find("paxml-virtual"), std::string::npos);
  auto r = ParseXml(xml);
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<NodeId> virtuals = r->VirtualNodes();
  ASSERT_EQ(virtuals.size(), 1u);
  EXPECT_EQ(r->fragment_ref(virtuals[0]), 3);
}

// ---- Serializer ---------------------------------------------------------------

TEST(XmlSerializerTest, RoundTripsClientele) {
  Tree t = testing::BuildClienteleTree();
  std::string xml = SerializeXml(t);
  auto r = ParseXml(xml);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), t.size());
  EXPECT_EQ(SerializeXml(*r), xml);
}

TEST(XmlSerializerTest, EscapesSpecialCharacters) {
  TreeBuilder b;
  b.Open("a").Text("x < y & z").Close();
  Tree t = std::move(b).Finish();
  std::string xml = SerializeXml(t);
  EXPECT_EQ(xml, "<a>x &lt; y &amp; z</a>");
  auto r = ParseXml(xml);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->DirectText(r->root()), "x < y & z");
}

TEST(XmlSerializerTest, SerializedSizeMatchesDefaultOutput) {
  Tree t = testing::BuildClienteleTree();
  EXPECT_EQ(SerializedSize(t), SerializeXml(t).size());

  TreeBuilder b;
  b.Open("r").Attr("k", "v<w").Virtual(12).LeafText("t", "a&b").Leaf("e");
  b.Close();
  Tree t2 = std::move(b).Finish();
  EXPECT_EQ(SerializedSize(t2), SerializeXml(t2).size());
}

TEST(XmlSerializerTest, IndentedOutputReparses) {
  Tree t = testing::BuildClienteleTree();
  std::string pretty = SerializeXml(t, kNullNode, {.indent = true});
  auto r = ParseXml(pretty);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), t.size());
}

TEST(XmlSerializerTest, SubtreeSerialization) {
  Tree t = testing::BuildClienteleTree();
  NodeId anna = t.first_child(t.root());
  std::string xml = SerializeXml(t, anna);
  EXPECT_EQ(xml.rfind("<client>", 0), 0u);
  auto r = ParseXml(xml);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->LabelName(r->root()), "client");
}

// ---- Builder -----------------------------------------------------------------

TEST(TreeBuilderTest, LeafHelpers) {
  TreeBuilder b;
  b.Open("r").LeafNumber("i", 42).LeafNumber("f", 2.5).Leaf("e").Close();
  Tree t = std::move(b).Finish();
  NodeId i = t.first_child(t.root());
  NodeId f = t.next_sibling(i);
  EXPECT_EQ(t.DirectText(i), "42");  // integral: no trailing .0
  EXPECT_EQ(t.DirectText(f), "2.5");
}

}  // namespace
}  // namespace paxml
