#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "core/parbox.h"
#include "eval/centralized.h"
#include "fragment/fragmenter.h"
#include "test_util.h"

namespace paxml {
namespace {

using testing::BuildClienteleTree;
using testing::ClienteleCuts;
using testing::PropertyQueryBattery;
using testing::RandomTree;

/// Shared fixture: the paper's clientele tree, fragmented per Fig. 1 and
/// placed on four sites per Fig. 2 (S0: F0, S1: F1, S2: F2 + Kim's market,
/// S3: Lisa's client).
class DistributedClienteleTest : public ::testing::Test {
 protected:
  DistributedClienteleTest() : tree_(BuildClienteleTree()) {
    auto doc = FragmentByCuts(tree_, ClienteleCuts(tree_));
    PAXML_CHECK(doc.ok());
    doc_ = std::make_shared<FragmentedDocument>(std::move(doc).ValueOrDie());
    cluster_ = std::make_unique<Cluster>(doc_, 4);
    PAXML_CHECK(cluster_->Place(0, 0).ok());
    PAXML_CHECK(cluster_->Place(1, 1).ok());
    PAXML_CHECK(cluster_->Place(2, 2).ok());
    PAXML_CHECK(cluster_->Place(3, 2).ok());
    PAXML_CHECK(cluster_->Place(4, 3).ok());
  }

  std::vector<NodeId> Centralized(const std::string& query) {
    auto r = EvaluateCentralized(tree_, query);
    PAXML_CHECK(r.ok());
    return r->answers;
  }

  DistributedResult Run(const std::string& query, DistributedAlgorithm algo,
                        bool annotations = false) {
    auto compiled = CompileXPath(query, doc_->symbols());
    PAXML_CHECK(compiled.ok());
    EngineOptions options;
    options.algorithm = algo;
    options.pax.use_annotations = annotations;
    auto r = EvaluateDistributed(*cluster_, *compiled, options);
    PAXML_CHECK(r.ok());
    return std::move(r).ValueOrDie();
  }

  void ExpectAllAlgorithmsAgree(const std::string& query) {
    const std::vector<NodeId> expected = Centralized(query);
    for (auto algo : {DistributedAlgorithm::kPaX3, DistributedAlgorithm::kPaX2,
                      DistributedAlgorithm::kNaiveCentralized}) {
      for (bool xa : {false, true}) {
        if (algo == DistributedAlgorithm::kNaiveCentralized && xa) continue;
        DistributedResult r = Run(query, algo, xa);
        EXPECT_EQ(r.ToSourceIds(*doc_), expected)
            << AlgorithmName(algo) << (xa ? "-XA" : "-NA") << " on " << query;
      }
    }
  }

  Tree tree_;
  std::shared_ptr<FragmentedDocument> doc_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(DistributedClienteleTest, PaperExample21AllAlgorithms) {
  ExpectAllAlgorithmsAgree(
      "clientele/client[country/text() = \"US\"]/"
      "broker[market/name/text() = \"NASDAQ\"]/name");
}

TEST_F(DistributedClienteleTest, QueryBatteryAllAlgorithms) {
  const std::vector<std::string> queries = {
      "clientele/client/name",
      "clientele/client/broker/name",
      "//stock/code",
      "//broker[//stock/code/text() = \"GOOG\" and "
      "not(//stock/code/text() = \"YHOO\")]/name",
      "//market[name/text() = \"NASDAQ\"]/stock/code",
      "//stock[buy/val() > 300]/code",
      "clientele/client[not(country/text() = \"US\")]/name",
      "clientele/*/broker",
      "clientele//qt",
      "//market/name[text() = \"NASDAQ\"]",
      "clientele/client[name]/country",
      "//.[code]",
  };
  for (const std::string& q : queries) ExpectAllAlgorithmsAgree(q);
}

TEST_F(DistributedClienteleTest, BooleanQueryViaParBoX) {
  auto compiled = CompileXPath(".[//stock/code/text() = \"GOOG\"]",
                               doc_->symbols());
  ASSERT_TRUE(compiled.ok());
  auto r = EvaluateParBoX(*cluster_, *compiled);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->value);
  // ParBoX: every site visited exactly once.
  EXPECT_EQ(r->stats.max_visits(), 1);
  EXPECT_EQ(r->stats.rounds, 1);

  auto compiled2 = CompileXPath(".[//stock/code/text() = \"MSFT\"]",
                                doc_->symbols());
  ASSERT_TRUE(compiled2.ok());
  auto r2 = EvaluateParBoX(*cluster_, *compiled2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->value);
}

TEST_F(DistributedClienteleTest, ParBoXRejectsDataSelectingQueries) {
  auto compiled = CompileXPath("//broker/name", doc_->symbols());
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(EvaluateParBoX(*cluster_, *compiled).ok());
}

TEST_F(DistributedClienteleTest, BooleanQueryThroughPaxDelegation) {
  for (auto algo : {DistributedAlgorithm::kPaX3, DistributedAlgorithm::kPaX2}) {
    DistributedResult r = Run(".[//stock/code/text() = \"GOOG\"]", algo);
    ASSERT_EQ(r.answers.size(), 1u);
    EXPECT_EQ(r.answers[0], (GlobalNodeId{0, doc_->fragment(0).tree.root()}));
    EXPECT_EQ(r.stats.max_visits(), 1);
  }
}

// ---- The paper's visit guarantees (Sections 3, 4, 5) --------------------------

TEST_F(DistributedClienteleTest, PaX3VisitBounds) {
  // With qualifiers: three rounds, each site <= 3 visits.
  DistributedResult with_quals =
      Run("clientele/client[country/text() = \"US\"]/broker/name",
          DistributedAlgorithm::kPaX3);
  EXPECT_LE(with_quals.stats.max_visits(), 3);
  EXPECT_GE(with_quals.stats.rounds, 2);

  // Qualifier-free: stage 1 skipped, <= 2 visits.
  DistributedResult no_quals =
      Run("clientele/client/broker/name", DistributedAlgorithm::kPaX3);
  EXPECT_LE(no_quals.stats.max_visits(), 2);
}

TEST_F(DistributedClienteleTest, PaX2VisitBounds) {
  DistributedResult with_quals =
      Run("clientele/client[country/text() = \"US\"]/broker/name",
          DistributedAlgorithm::kPaX2);
  EXPECT_LE(with_quals.stats.max_visits(), 2);

  DistributedResult no_quals =
      Run("clientele/client/broker/name", DistributedAlgorithm::kPaX2);
  EXPECT_LE(no_quals.stats.max_visits(), 2);
}

TEST_F(DistributedClienteleTest, AnnotationsGiveSingleVisitForQualifierFree) {
  // Section 5: with XPath annotations and no qualifiers, stack inits are
  // concrete, so no candidates arise and one visit suffices.
  for (auto algo : {DistributedAlgorithm::kPaX3, DistributedAlgorithm::kPaX2}) {
    DistributedResult r =
        Run("clientele/client/broker/name", algo, /*annotations=*/true);
    EXPECT_EQ(r.stats.max_visits(), 1) << AlgorithmName(algo);
  }
}

TEST_F(DistributedClienteleTest, AnnotationsPruneIrrelevantSites) {
  // client/name touches only F0 and Lisa's fragment (Example 5.1): sites
  // S1 and S2 are never visited with annotations on.
  DistributedResult r = Run("clientele/client/name",
                            DistributedAlgorithm::kPaX2, /*annotations=*/true);
  EXPECT_EQ(r.stats.per_site[1].visits, 0);
  EXPECT_EQ(r.stats.per_site[2].visits, 0);
  EXPECT_GE(r.stats.per_site[0].visits, 1);
  EXPECT_GE(r.stats.per_site[3].visits, 1);
}

// ---- Communication guarantees (Section 3.4) -----------------------------------

TEST_F(DistributedClienteleTest, PartialEvaluationShipsNoTreeData) {
  DistributedResult pax = Run(
      "clientele/client[country/text() = \"US\"]/broker/name",
      DistributedAlgorithm::kPaX2);
  EXPECT_EQ(pax.stats.data_bytes_shipped, 0u);
  EXPECT_GT(pax.stats.answer_bytes, 0u);

  DistributedResult naive = Run(
      "clientele/client[country/text() = \"US\"]/broker/name",
      DistributedAlgorithm::kNaiveCentralized);
  EXPECT_GT(naive.stats.data_bytes_shipped, 0u);
  // The naive baseline ships (nearly) the whole document.
  EXPECT_GT(naive.stats.data_bytes_shipped, pax.stats.total_bytes);
}

TEST_F(DistributedClienteleTest, TrafficIndependentOfDataSize) {
  // Grow the per-client payload 8x: PaX traffic (minus answers) must not
  // grow with it. Build a bigger clientele by duplicating stocks.
  TreeBuilder b(std::make_shared<SymbolTable>());
  b.Open("clientele");
  for (int c = 0; c < 3; ++c) {
    b.Open("client");
    b.LeafText("name", c == 0 ? "Anna" : (c == 1 ? "Kim" : "Lisa"));
    b.LeafText("country", c == 2 ? "Canada" : "US");
    b.Open("broker");
    b.LeafText("name", "B");
    b.Open("market");
    b.LeafText("name", "NASDAQ");
    for (int s = 0; s < 40; ++s) {
      b.Open("stock");
      b.LeafText("code", s % 2 ? "GOOG" : "YHOO");
      b.LeafNumber("buy", 100 + s);
      b.LeafNumber("qt", s);
      b.Close();
    }
    b.Close().Close().Close();
  }
  b.Close();
  Tree big = std::move(b).Finish();

  auto make_cluster = [&](const Tree& t) {
    auto doc_r = FragmentBySubtrees(t, t.root());
    PAXML_CHECK(doc_r.ok());
    auto doc = std::make_shared<FragmentedDocument>(std::move(doc_r).ValueOrDie());
    return std::make_unique<Cluster>(doc, 4);
  };

  auto small_cluster = make_cluster(tree_);
  auto big_cluster = make_cluster(big);

  const std::string query =
      ".[//stock/code/text() = \"GOOG\"]";  // Boolean: |ans| plays no role
  auto qs = CompileXPath(query, small_cluster->doc().symbols());
  auto qb = CompileXPath(query, big_cluster->doc().symbols());
  ASSERT_TRUE(qs.ok());
  ASSERT_TRUE(qb.ok());
  auto rs = EvaluateParBoX(*small_cluster, *qs);
  auto rb = EvaluateParBoX(*big_cluster, *qb);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rb.ok());
  // Same fragment-tree shape (root + 3 children), same query: identical
  // traffic despite ~8x more tree data.
  EXPECT_EQ(rs->stats.total_bytes, rb->stats.total_bytes);
}

// ---- Randomized equivalence: the soundness workhorse ---------------------------

struct PropertyCase {
  uint64_t seed;
};

class DistributedPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(DistributedPropertyTest, AllAlgorithmsMatchCentralized) {
  Rng rng(GetParam().seed);
  Tree tree = RandomTree(&rng, 60 + rng.NextBounded(240));
  auto doc_r = FragmentRandomly(tree, 1 + rng.NextBounded(9), &rng);
  ASSERT_TRUE(doc_r.ok());
  auto doc = std::make_shared<FragmentedDocument>(std::move(doc_r).ValueOrDie());
  const size_t sites = 1 + rng.NextBounded(5);
  ClusterOptions copts;
  copts.parallel_execution = rng.NextBool();
  Cluster cluster(doc, sites, copts);
  cluster.PlaceRootAndSpread();

  for (const std::string& query : PropertyQueryBattery()) {
    auto compiled = CompileXPath(query, tree.symbols());
    ASSERT_TRUE(compiled.ok()) << query;
    auto centralized = EvaluateCentralized(tree, *compiled);

    for (auto algo : {DistributedAlgorithm::kPaX3, DistributedAlgorithm::kPaX2,
                      DistributedAlgorithm::kNaiveCentralized}) {
      for (bool xa : {false, true}) {
        if (algo == DistributedAlgorithm::kNaiveCentralized && xa) continue;
        EngineOptions options;
        options.algorithm = algo;
        options.pax.use_annotations = xa;
        auto r = EvaluateDistributed(cluster, *compiled, options);
        ASSERT_TRUE(r.ok()) << AlgorithmName(algo) << " " << query << ": "
                            << r.status();
        EXPECT_EQ(r->ToSourceIds(*doc), centralized.answers)
            << AlgorithmName(algo) << (xa ? "-XA" : "-NA") << " seed "
            << GetParam().seed << " on " << query;
        EXPECT_LE(r->stats.max_visits(),
                  algo == DistributedAlgorithm::kPaX3 ? 3 : 2);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DistributedPropertyTest,
    ::testing::Values(PropertyCase{1}, PropertyCase{2}, PropertyCase{3},
                      PropertyCase{5}, PropertyCase{8}, PropertyCase{13},
                      PropertyCase{21}, PropertyCase{34}, PropertyCase{55},
                      PropertyCase{89}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed_" + std::to_string(info.param.seed);
    });

// ---- Degenerate placements ------------------------------------------------------

TEST_F(DistributedClienteleTest, SingleSiteCluster) {
  Cluster one(doc_, 1);
  auto compiled = CompileXPath("//stock/code", doc_->symbols());
  ASSERT_TRUE(compiled.ok());
  auto r = EvaluatePaX2(one, *compiled);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ToSourceIds(*doc_), Centralized("//stock/code"));
}

TEST_F(DistributedClienteleTest, EverySiteEmptyQueryAnswer) {
  DistributedResult r = Run("clientele/nonexistent/x",
                            DistributedAlgorithm::kPaX2);
  EXPECT_TRUE(r.answers.empty());
  EXPECT_EQ(r.stats.answer_bytes, 0u);
}

}  // namespace
}  // namespace paxml
