#include <gtest/gtest.h>

#include "eval/centralized.h"
#include "test_util.h"
#include "xml/builder.h"

namespace paxml {
namespace {

using testing::BuildClienteleTree;
using testing::PathsOf;
using testing::TextsOf;

class CentralizedTest : public ::testing::Test {
 protected:
  CentralizedTest() : tree_(BuildClienteleTree()) {}

  std::vector<std::string> Texts(const std::string& query) {
    auto r = EvaluateCentralized(tree_, query);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    if (!r.ok()) return {};
    return TextsOf(tree_, r->answers);
  }

  size_t Count(const std::string& query) {
    auto r = EvaluateCentralized(tree_, query);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status();
    return r.ok() ? r->answers.size() : 0;
  }

  Tree tree_;
};

TEST_F(CentralizedTest, SimplePaths) {
  EXPECT_EQ(Texts("clientele/client/name"),
            (std::vector<std::string>{"Anna", "Kim", "Lisa"}));
  EXPECT_EQ(Texts("/clientele/client/country"),
            (std::vector<std::string>{"Canada", "US", "US"}));
  EXPECT_EQ(Count("clientele"), 1u);
  EXPECT_EQ(Count("client"), 0u);  // root element is 'clientele'
}

TEST_F(CentralizedTest, PaperExample21) {
  // Example 2.1 (anchored at the root element): name of brokers of US
  // clients trading in NASDAQ.
  EXPECT_EQ(Texts("clientele/client[country/text() = \"US\"]/"
                  "broker[market/name/text() = \"NASDAQ\"]/name"),
            (std::vector<std::string>{"Bache", "E*trade"}));
}

TEST_F(CentralizedTest, PaperExample33RightmostClientFails) {
  // Lisa is in Canada: her broker's name is not selected.
  EXPECT_EQ(Texts("clientele/client[country/text() = \"Canada\"]/broker/name"),
            (std::vector<std::string>{"CIBC"}));
  EXPECT_EQ(Texts("clientele/client[country/text() = \"US\"]/broker/name"),
            (std::vector<std::string>{"Bache", "E*trade"}));
}

TEST_F(CentralizedTest, BooleanQueryFromIntroduction) {
  // Q = [//stock/code/text() = "GOOG"]: true at the root.
  auto r = EvaluateCentralized(tree_, ".[//stock/code/text() = \"GOOG\"]");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->answers.size(), 1u);
  EXPECT_EQ(r->answers[0], tree_.root());

  auto r2 = EvaluateCentralized(tree_, ".[//stock/code/text() = \"MSFT\"]");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->answers.empty());
}

TEST_F(CentralizedTest, QueryQ1FromIntroduction) {
  // Q1: brokers with GOOG but no YHOO.
  EXPECT_EQ(Texts("//broker[//stock/code/text() = \"GOOG\" and "
                  "not(//stock/code/text() = \"YHOO\")]/name"),
            (std::vector<std::string>{"Bache", "CIBC"}));
  // E*trade has both GOOG and YHOO.
  EXPECT_EQ(Texts("//broker[//stock/code/text() = \"GOOG\"]/name"),
            (std::vector<std::string>{"Bache", "CIBC", "E*trade"}));
}

TEST_F(CentralizedTest, DescendantSelection) {
  EXPECT_EQ(Count("//stock"), 5u);
  EXPECT_EQ(Count("//market"), 4u);
  EXPECT_EQ(Count("clientele//name"), 10u);  // 3 client + 3 broker + 4 market
  EXPECT_EQ(Count("//clientele"), 1u);
  EXPECT_EQ(Count("//client//code"), 5u);
}

TEST_F(CentralizedTest, WildcardSteps) {
  EXPECT_EQ(Count("clientele/*"), 3u);
  EXPECT_EQ(Count("clientele/*/name"), 3u);
  EXPECT_EQ(Count("clientele/client/*"), 9u);  // 3 x (name, country, broker)
  EXPECT_EQ(Count("*"), 1u);
  EXPECT_EQ(Count("*/*/broker"), 3u);  // clientele/client/broker via wildcards
  EXPECT_EQ(Count("*/*/*/market"), 4u);
}

TEST_F(CentralizedTest, ValueComparisons) {
  EXPECT_EQ(Texts("//stock[buy/val() > 300]/code"),
            (std::vector<std::string>{"GOOG", "GOOG", "GOOG"}));
  EXPECT_EQ(Texts("//stock[buy/val() <= 80]/code"),
            (std::vector<std::string>{"IBM", "YHOO"}));
  EXPECT_EQ(Texts("//stock[qt/val() = 90]/code"),
            (std::vector<std::string>{"GOOG"}));
  EXPECT_EQ(Count("//stock[buy/val() != 374]"), 4u);
  EXPECT_EQ(Texts("//market[stock/buy/val() >= 370 and stock/qt/val() >= "
                  "75]/name"),
            (std::vector<std::string>{"NASDAQ", "TSE"}));
}

TEST_F(CentralizedTest, ComparisonSugar) {
  EXPECT_EQ(Texts("//stock[code = \"YHOO\"]/buy"),
            (std::vector<std::string>{"33"}));
  EXPECT_EQ(Texts("//stock[buy > 300]/code"),
            (std::vector<std::string>{"GOOG", "GOOG", "GOOG"}));
}

TEST_F(CentralizedTest, NestedQualifiers) {
  EXPECT_EQ(Texts("clientele/client[broker[market[name/text() = "
                  "\"TSE\"]]]/name"),
            (std::vector<std::string>{"Lisa"}));
}

TEST_F(CentralizedTest, QualifierOnLastStep) {
  EXPECT_EQ(Texts("//market/name[text() = \"NASDAQ\"]"),
            (std::vector<std::string>{"NASDAQ", "NASDAQ"}));
}

TEST_F(CentralizedTest, OrAndNotQualifiers) {
  EXPECT_EQ(Texts("clientele/client[country/text() = \"Canada\" or "
                  "broker/name/text() = \"Bache\"]/name"),
            (std::vector<std::string>{"Kim", "Lisa"}));
  EXPECT_EQ(Texts("clientele/client[not(country/text() = \"US\")]/name"),
            (std::vector<std::string>{"Lisa"}));
}

TEST_F(CentralizedTest, SelfFilterAfterDescendant) {
  // //.[code] — any node having a code child: the five stocks.
  EXPECT_EQ(Count("//.[code]"), 5u);
  // Self filter with text test.
  EXPECT_EQ(Count("//.[text() = \"GOOG\"]"), 3u);  // the three code elements
}

TEST_F(CentralizedTest, TrailingDescendant) {
  // clientele/client//. — the descendant-or-self closure of the client
  // nodes: the clients themselves plus everything below them. The root's
  // children are exactly the three clients, so this is every node except the
  // root. (The surface grammar Q//Q needs an explicit ε on the right.)
  EXPECT_EQ(Count("clientele/client//."), tree_.size() - 1);
}

TEST_F(CentralizedTest, EmptyAnswerCases) {
  EXPECT_EQ(Count("clientele/market"), 0u);
  EXPECT_EQ(Count("//broker[name/text() = \"Nomura\"]"), 0u);
  EXPECT_EQ(Count("//stock[buy/val() > 1000]"), 0u);
}

TEST_F(CentralizedTest, QualifierFreeSkipsQualifierPass) {
  auto r = EvaluateCentralized(tree_, "clientele/client/name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.passes, 1);
  EXPECT_EQ(r->stats.qualifier_ops, 0u);

  auto r2 = EvaluateCentralized(tree_, "clientele/client[country]/name");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stats.passes, 2);
  EXPECT_GT(r2->stats.qualifier_ops, 0u);
}

TEST_F(CentralizedTest, AnswersAreInDocumentOrder) {
  auto r = EvaluateCentralized(tree_, "//name");
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->answers.size(); ++i) {
    EXPECT_LT(r->answers[i - 1], r->answers[i]);
  }
}

TEST_F(CentralizedTest, RootQualifier) {
  // Leading qualifier gates the whole query (evaluated at the root element).
  EXPECT_EQ(Count(".[//code]//stock"), 5u);
  EXPECT_EQ(Count(".[//nonexistent]//stock"), 0u);
}

TEST_F(CentralizedTest, TextNodesBehindElementsDontMatchLabels) {
  // Text nodes never match label or wildcard steps.
  EXPECT_EQ(Count("clientele/client/name/name"), 0u);
  EXPECT_EQ(Count("//name/*"), 0u);
}

// ---- Virtual nodes are inert in centralized evaluation ----------------------

TEST(CentralizedVirtualTest, VirtualNodesMatchNothing) {
  TreeBuilder b;
  b.Open("root").Open("a").LeafText("x", "1").Close().Virtual(1).Close();
  Tree t = std::move(b).Finish();
  auto r = EvaluateCentralized(t, "root/a/x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers.size(), 1u);
  auto r2 = EvaluateCentralized(t, "//x");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->answers.size(), 1u);
}

// ---- Empty / tiny trees -------------------------------------------------------

TEST(CentralizedEdgeTest, EmptyTree) {
  Tree t(std::make_shared<SymbolTable>());
  auto r = EvaluateCentralized(t, "a/b");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->answers.empty());
}

TEST(CentralizedEdgeTest, SingleNodeTree) {
  TreeBuilder b;
  b.Open("only").Close();
  Tree t = std::move(b).Finish();
  auto r = EvaluateCentralized(t, "only");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers.size(), 1u);
  auto r2 = EvaluateCentralized(t, ".[only]");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->answers.empty());  // root has no 'only' child
  auto r3 = EvaluateCentralized(t, ".");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->answers.size(), 1u);  // '.' selects the root element
}

TEST(CentralizedEdgeTest, ParseErrorPropagates) {
  Tree t = testing::BuildClienteleTree();
  auto r = EvaluateCentralized(t, "a[[");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace paxml
