#include <gtest/gtest.h>

#include "eval/centralized.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/serializer.h"

namespace paxml {
namespace {

TEST(XMarkGeneratorTest, DeterministicForSameSeed) {
  XMarkOptions options;
  options.seed = 7;
  Tree a = GenerateUniformSitesTree(50'000, 2, options);
  Tree b = GenerateUniformSitesTree(50'000, 2, options);
  EXPECT_EQ(SerializeXml(a), SerializeXml(b));
  options.seed = 8;
  Tree c = GenerateUniformSitesTree(50'000, 2, options);
  EXPECT_NE(SerializeXml(a), SerializeXml(c));
}

TEST(XMarkGeneratorTest, HitsByteTargetApproximately) {
  for (size_t target : {30'000u, 100'000u, 300'000u}) {
    Tree t = GenerateUniformSitesTree(target, 1, {});
    const size_t actual = SerializedSize(t);
    EXPECT_GT(actual, target * 80 / 100) << target;
    EXPECT_LT(actual, target * 130 / 100) << target;
  }
}

TEST(XMarkGeneratorTest, StructureMatchesVocabulary) {
  Tree t = GenerateUniformSitesTree(60'000, 3, {});
  ASSERT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.LabelName(t.root()), "sites");
  EXPECT_EQ(t.ChildCount(t.root()), 3u);
  for (NodeId site : t.children(t.root())) {
    EXPECT_EQ(t.LabelName(site), "site");
    std::vector<std::string> sections;
    for (NodeId c : t.children(site)) sections.push_back(t.LabelName(c));
    EXPECT_EQ(sections,
              (std::vector<std::string>{"regions", "categories", "people",
                                        "open_auctions", "closed_auctions"}));
  }
}

TEST(XMarkGeneratorTest, SiteContentStableAcrossBudgetVectors) {
  // Site i's content depends only on (seed, its own budget): growing the
  // document by appending sites does not perturb existing ones.
  XMarkOptions options;
  options.seed = 11;
  std::vector<SiteBudget> one = {SiteBudget::Uniform(40'000)};
  std::vector<SiteBudget> two = {SiteBudget::Uniform(40'000),
                                 SiteBudget::Uniform(20'000)};
  Tree a = GenerateSitesTree(one, options);
  Tree b = GenerateSitesTree(two, options);
  EXPECT_EQ(SerializeXml(a, a.first_child(a.root())),
            SerializeXml(b, b.first_child(b.root())));
}

TEST(XMarkGeneratorTest, ExperimentQueriesHaveSensibleSelectivity) {
  Tree t = GenerateUniformSitesTree(200'000, 2, {});
  auto count = [&](const char* q) {
    auto r = EvaluateCentralized(t, q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status();
    return r.ok() ? r->answers.size() : 0;
  };
  const size_t persons = count(xmark::kQ1);
  const size_t annotations = count(xmark::kQ2);
  const size_t cards_q3 = count(xmark::kQ3);
  const size_t cards_q4 = count(xmark::kQ4);
  EXPECT_GT(persons, 10u);
  EXPECT_GT(annotations, 10u);
  // Q3 filters persons: nonempty but a strict subset.
  EXPECT_GT(cards_q3, 0u);
  EXPECT_LT(cards_q3, persons);
  // Q4 ('//people') selects the same nodes as Q3 on this document shape.
  EXPECT_EQ(cards_q3, cards_q4);
}

TEST(XMarkGeneratorTest, SectionBudgetsAreRespected) {
  SiteBudget budget;
  budget.people = 50'000;
  budget.open_auctions = 10'000;
  budget.regions_namerica = 5'000;
  Tree t = GenerateSitesTree({budget}, {});
  NodeId site = t.first_child(t.root());
  std::unordered_map<std::string, size_t> section_bytes;
  for (NodeId c : t.children(site)) {
    section_bytes[t.LabelName(c)] = SerializedSize(t, c);
  }
  EXPECT_GT(section_bytes["people"], 45'000u);
  EXPECT_GT(section_bytes["people"], 3 * section_bytes["open_auctions"]);
  EXPECT_LT(section_bytes["categories"], 2'000u);
}

}  // namespace
}  // namespace paxml
