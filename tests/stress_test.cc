// Stress and adversarial-shape tests: extreme fragmentations (every element
// its own fragment), deep chains (deep fragment trees, long unification
// chains), wide fan-outs, and degenerate placements. All iterative
// traversals in the library must survive these without recursion-depth
// limits, and every algorithm must still agree with centralized evaluation.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/centralized.h"
#include "fragment/fragmenter.h"
#include "test_util.h"
#include "xml/builder.h"

namespace paxml {
namespace {

void ExpectAllAgree(const Tree& tree, std::shared_ptr<FragmentedDocument> doc,
                    Cluster& cluster, const std::string& query) {
  auto compiled = CompileXPath(query, tree.symbols());
  ASSERT_TRUE(compiled.ok()) << query;
  auto expected = EvaluateCentralized(tree, *compiled);
  for (auto algo : {DistributedAlgorithm::kPaX3, DistributedAlgorithm::kPaX2}) {
    for (bool xa : {false, true}) {
      EngineOptions options;
      options.algorithm = algo;
      options.pax.use_annotations = xa;
      auto r = EvaluateDistributed(cluster, *compiled, options);
      ASSERT_TRUE(r.ok()) << AlgorithmName(algo) << " " << query << ": "
                          << r.status();
      EXPECT_EQ(r->ToSourceIds(*doc), expected.answers)
          << AlgorithmName(algo) << (xa ? "-XA" : "-NA") << " " << query;
    }
  }
}

TEST(StressTest, EveryElementItsOwnFragment) {
  Tree tree = testing::BuildClienteleTree();
  std::vector<NodeId> cuts;
  for (NodeId v = 1; v < static_cast<NodeId>(tree.size()); ++v) {
    if (tree.IsElement(v)) cuts.push_back(v);
  }
  auto doc_r = FragmentByCuts(tree, cuts);
  ASSERT_TRUE(doc_r.ok());
  auto doc = std::make_shared<FragmentedDocument>(std::move(doc_r).ValueOrDie());
  // Every fragment holds exactly one element (plus text/virtual leaves).
  EXPECT_EQ(doc->size(), cuts.size() + 1);

  Cluster cluster(doc, 5);
  cluster.PlaceRootAndSpread();
  ExpectAllAgree(tree, doc, cluster, "//broker[market/name = \"NASDAQ\"]/name");
  ExpectAllAgree(tree, doc, cluster, "clientele/client/broker/market/stock/code");
  ExpectAllAgree(tree, doc, cluster, "//stock[buy/val() > 300]/qt");
  ExpectAllAgree(tree, doc, cluster, ".[//code/text() = \"IBM\"]");
}

TEST(StressTest, DeepChainFragmentedEveryFewNodes) {
  // A 300-deep chain a/b/a/b/... with text at the bottom; cut every 7 nodes:
  // the fragment tree is a 40+ deep chain, exercising long unification
  // chains in evalFT (z variables resolved through dozens of hops).
  TreeBuilder b(std::make_shared<SymbolTable>());
  const int depth = 300;
  for (int i = 0; i < depth; ++i) b.Open(i % 2 ? "b" : "a");
  b.Text("bottom");
  for (int i = 0; i < depth; ++i) b.Close();
  Tree tree = std::move(b).Finish();

  std::vector<NodeId> cuts;
  for (NodeId v = 7; v < static_cast<NodeId>(tree.size()) - 1; v += 7) {
    if (tree.IsElement(v)) cuts.push_back(v);
  }
  auto doc_r = FragmentByCuts(tree, cuts);
  ASSERT_TRUE(doc_r.ok());
  auto doc = std::make_shared<FragmentedDocument>(std::move(doc_r).ValueOrDie());
  ASSERT_GT(doc->size(), 40u);

  Cluster cluster(doc, 6);
  cluster.PlaceRootAndSpread();
  ExpectAllAgree(tree, doc, cluster, "//a[b]/b");
  ExpectAllAgree(tree, doc, cluster, "//b[.//a and text() = \"never\"]");
  ExpectAllAgree(tree, doc, cluster, "//.[text() = \"bottom\"]");
  ExpectAllAgree(tree, doc, cluster, ".[//b/a//b]");
}

TEST(StressTest, WideFanOut) {
  // 4000 children under one root, fragmented by size.
  TreeBuilder b(std::make_shared<SymbolTable>());
  b.Open("root");
  for (int i = 0; i < 4000; ++i) {
    b.Open(i % 3 == 0 ? "x" : "y");
    if (i % 5 == 0) b.Text(std::to_string(i % 100));
    b.Close();
  }
  b.Close();
  Tree tree = std::move(b).Finish();

  auto doc_r = FragmentBySize(tree, 500);
  ASSERT_TRUE(doc_r.ok());
  auto doc = std::make_shared<FragmentedDocument>(std::move(doc_r).ValueOrDie());
  Cluster cluster(doc, 4);
  ExpectAllAgree(tree, doc, cluster, "root/x");
  ExpectAllAgree(tree, doc, cluster, "root/x[val() < 50]");
  ExpectAllAgree(tree, doc, cluster, "root/*");
}

TEST(StressTest, AllFragmentsOnOneSiteAndMoreSitesThanFragments) {
  Tree tree = testing::BuildClienteleTree();
  auto doc_r = FragmentByCuts(tree, testing::ClienteleCuts(tree));
  ASSERT_TRUE(doc_r.ok());
  auto doc = std::make_shared<FragmentedDocument>(std::move(doc_r).ValueOrDie());

  {
    Cluster one(doc, 1);
    ExpectAllAgree(tree, doc, one, "//broker/name");
  }
  {
    Cluster many(doc, 16);  // more sites than fragments
    many.PlaceRootAndSpread();
    ExpectAllAgree(tree, doc, many, "//broker/name");
  }
  {
    // Adversarial placement: parent and child fragments interleaved across
    // two sites.
    Cluster two(doc, 2);
    ASSERT_TRUE(two.Place(0, 0).ok());
    ASSERT_TRUE(two.Place(1, 1).ok());
    ASSERT_TRUE(two.Place(2, 0).ok());
    ASSERT_TRUE(two.Place(3, 1).ok());
    ASSERT_TRUE(two.Place(4, 0).ok());
    ExpectAllAgree(tree, doc, two,
                   "clientele/client[country/text() = \"US\"]/broker/name");
  }
}

TEST(StressTest, ResidualFormulasStayCompact) {
  // The residuals shipped per fragment must stay O(|Q|)-ish even when the
  // fragment has many virtual children (the paper's communication bound
  // depends on it). 200 virtual children under one root.
  TreeBuilder b(std::make_shared<SymbolTable>());
  b.Open("root");
  for (int i = 0; i < 200; ++i) {
    b.Open("x");
    b.Open("y").Text("v").Close();
    b.Close();
  }
  b.Close();
  Tree tree = std::move(b).Finish();
  std::vector<NodeId> cuts;
  for (NodeId c : tree.children(tree.root())) cuts.push_back(c);
  auto doc_r = FragmentByCuts(tree, cuts);
  ASSERT_TRUE(doc_r.ok());
  auto doc = std::make_shared<FragmentedDocument>(std::move(doc_r).ValueOrDie());
  Cluster cluster(doc, 8);
  cluster.PlaceRootAndSpread();

  auto compiled = CompileXPath(".[//x[y/text() = \"v\"]]", tree.symbols());
  ASSERT_TRUE(compiled.ok());
  EngineOptions eo;
  eo.algorithm = DistributedAlgorithm::kPaX2;
  auto r = EvaluateDistributed(cluster, *compiled, eo);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answers.size(), 1u);
  // Traffic: the root fragment's residual is an OR over 200 child variables
  // — linear in |FT|, which the bound allows — but nowhere near |T|.
  EXPECT_LT(r->stats.total_bytes, 20'000u);
}

TEST(StressTest, LargeRandomMatrixQuickCheck) {
  // One bigger randomized round (kept out of the per-seed property suite to
  // bound runtime): 2000-node tree, 40 fragments, 7 sites.
  Rng rng(4242);
  Tree tree = testing::RandomTree(&rng, 2000);
  auto doc_r = FragmentRandomly(tree, 40, &rng);
  ASSERT_TRUE(doc_r.ok());
  auto doc = std::make_shared<FragmentedDocument>(std::move(doc_r).ValueOrDie());
  Cluster cluster(doc, 7);
  cluster.PlaceRootAndSpread();
  for (const char* q : {"//a[b/c]/d", "root//c[.//a or text() = \"x\"]",
                        "//*[a and not(b)]/c"}) {
    ExpectAllAgree(tree, doc, cluster, q);
  }
}

}  // namespace
}  // namespace paxml
