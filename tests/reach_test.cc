// Tests for the graph workload family (DESIGN.md §11): distributed
// reachability by partial evaluation over the same runtime that serves the
// XML algorithms.
//
//  * correctness — randomized digraphs under random partitionings agree
//    with single-site BFS ground truth on every query, in exactly one
//    delivery round however many fragments there are;
//  * determinism — sync, pooled and intra-site-parallel (site_threads = 4)
//    evaluations produce bit-identical RunStats;
//  * deployment — a four-process socket run (three real paxml_site peers
//    plus the client) reproduces SyncTransport's *exact* RunStats: the
//    acceptance bar of the workload-agnostic runtime;
//  * the workload seam — an XML-serving peer rejects a graph run with a
//    clean error, an unknown family's error enumerates the registered
//    ones, and the graph store round-trips through its on-disk format.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/reach.h"
#include "core/workload.h"
#include "fragment/fragmenter.h"
#include "fragment/storage.h"
#include "graph/digraph.h"
#include "graph/store.h"
#include "runtime/socket_transport.h"
#include "test_util.h"

namespace paxml {
namespace {

// ---- Spawning paxml_site peers (as in socket_transport_test.cc) -------------

std::string ExeDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  PAXML_CHECK(n > 0);
  buf[n] = '\0';
  std::string path(buf);
  return path.substr(0, path.rfind('/'));
}

std::string SiteBinary() {
  if (const char* env = std::getenv("PAXML_SITE_BIN")) return env;
  for (const std::string& candidate :
       {ExeDir() + "/tools/paxml_site", ExeDir() + "/../tools/paxml_site"}) {
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  PAXML_CHECK(false);  // build the tool_paxml_site target first
  return "";
}

std::string MakeTempDir() {
  std::string tmpl = "/tmp/paxml_reach_test_XXXXXX";
  PAXML_CHECK(::mkdtemp(tmpl.data()) != nullptr);
  return tmpl;
}

struct SiteProcess {
  pid_t pid = -1;
  int port = 0;
};

std::string PlacementString(const Cluster& cluster) {
  std::string out;
  for (size_t f = 0; f < cluster.fragment_count(); ++f) {
    if (!out.empty()) out += ',';
    out += std::to_string(cluster.site_of(static_cast<FragmentId>(f)));
  }
  return out;
}

SiteProcess SpawnSite(const std::string& data_dir, const Cluster& cluster,
                      SiteId site) {
  int out_pipe[2];
  PAXML_CHECK(::pipe(out_pipe) == 0);

  const std::string binary = SiteBinary();
  const std::string site_arg = std::to_string(site);
  const std::string sites_arg = std::to_string(cluster.site_count());
  const std::string placement = PlacementString(cluster);

  const pid_t pid = ::fork();
  PAXML_CHECK(pid >= 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(binary.c_str(), binary.c_str(), data_dir.c_str(), "--site",
            site_arg.c_str(), "--sites", sites_arg.c_str(), "--placement",
            placement.c_str(), "--port", "0", static_cast<char*>(nullptr));
    std::perror("execl paxml_site");
    ::_exit(127);
  }
  ::close(out_pipe[1]);

  std::string line;
  char c;
  while (line.find('\n') == std::string::npos) {
    const ssize_t n = ::read(out_pipe[0], &c, 1);
    if (n <= 0) break;
    line.push_back(c);
  }
  ::close(out_pipe[0]);
  SiteProcess proc;
  proc.pid = pid;
  std::sscanf(line.c_str(), "PAXML_SITE LISTENING %d", &proc.port);
  PAXML_CHECK(proc.port > 0);  // the site failed to start
  return proc;
}

void KillSite(SiteProcess& proc) {
  if (proc.pid <= 0) return;
  ::kill(proc.pid, SIGKILL);
  int status = 0;
  ::waitpid(proc.pid, &status, 0);
  proc.pid = -1;
}

/// One multi-process deployment over an already-saved data directory: one
/// paxml_site per non-query site, plus the endpoint map for the client.
class Deployment {
 public:
  Deployment(const std::string& dir, const Cluster& cluster) {
    for (size_t s = 0; s < cluster.site_count(); ++s) {
      const SiteId site = static_cast<SiteId>(s);
      if (site == cluster.query_site()) continue;
      sites_[site] = SpawnSite(dir, cluster, site);
      endpoints_[site] = "127.0.0.1:" + std::to_string(sites_[site].port);
    }
  }

  ~Deployment() {
    for (auto& [site, proc] : sites_) KillSite(proc);
  }

  const std::map<SiteId, std::string>& endpoints() const { return endpoints_; }

 private:
  std::map<SiteId, SiteProcess> sites_;
  std::map<SiteId, std::string> endpoints_;
};

// ---- Exact-equality helpers -------------------------------------------------

std::vector<int> Visits(const RunStats& s) {
  std::vector<int> v;
  for (const SiteStats& p : s.per_site) v.push_back(p.visits);
  return v;
}

void ExpectStatsEqual(const RunStats& got, const RunStats& want,
                      const std::string& label) {
  EXPECT_EQ(got.rounds, want.rounds) << label;
  EXPECT_EQ(Visits(got), Visits(want)) << label;
  EXPECT_EQ(got.total_messages, want.total_messages) << label;
  EXPECT_EQ(got.total_envelopes, want.total_envelopes) << label;
  EXPECT_EQ(got.total_bytes, want.total_bytes) << label;
  EXPECT_EQ(got.answer_bytes, want.answer_bytes) << label;
  EXPECT_EQ(got.data_bytes_shipped, want.data_bytes_shipped) << label;
  EXPECT_EQ(got.wire_bytes, want.wire_bytes) << label;
  EXPECT_EQ(got.edges, want.edges) << label;
  ASSERT_EQ(got.per_site.size(), want.per_site.size()) << label;
  for (size_t s = 0; s < want.per_site.size(); ++s) {
    EXPECT_EQ(got.per_site[s].bytes_sent, want.per_site[s].bytes_sent)
        << label << " site " << s;
    EXPECT_EQ(got.per_site[s].bytes_received, want.per_site[s].bytes_received)
        << label << " site " << s;
    EXPECT_EQ(got.per_site[s].messages_sent, want.per_site[s].messages_sent)
        << label << " site " << s;
    EXPECT_EQ(got.per_site[s].messages_received,
              want.per_site[s].messages_received)
        << label << " site " << s;
  }
}

// ---- Worlds -----------------------------------------------------------------

struct GraphWorld {
  Digraph graph;
  std::shared_ptr<const GraphFragmentStore> store;
  std::unique_ptr<Cluster> cluster;
};

GraphWorld MakeWorld(int32_t vertices, double degree, size_t fragments,
                     size_t sites, uint64_t seed) {
  GraphWorld w;
  w.graph = RandomDigraph(vertices, degree, seed);
  auto store = PartitionDigraph(w.graph, fragments, seed + 1);
  PAXML_CHECK(store.ok());
  w.store = std::move(store).ValueOrDie();
  ClusterOptions copts;
  copts.parallel_execution = false;
  w.cluster = std::make_unique<Cluster>(w.store, sites, copts);
  w.cluster->PlaceRootAndSpread();
  return w;
}

std::vector<GlobalNodeId> ExpectedAnswer(const GraphWorld& w,
                                         const ReachQuery& q) {
  if (!ReachesBFS(w.graph, q.source, q.target)) return {};
  return {GlobalNodeId{w.store->fragment_of(q.target), q.target}};
}

// ---- Correctness against single-site ground truth ---------------------------

// Random digraphs under random partitionings: every query agrees with BFS
// on the unpartitioned graph, and every evaluation takes exactly one
// delivery round with one visit per participating site — the paper's
// bounds carried to the reachability family.
TEST(ReachCorrectnessTest, RandomizedMatchesSingleSiteBFS) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    // Sparse-ish graphs keep both outcomes common; fragments > sites
    // exercises multi-fragment batching at a site.
    const int32_t n = 60 + static_cast<int32_t>(seed) * 17;
    GraphWorld w = MakeWorld(n, 1.6, /*fragments=*/5 + seed % 3,
                             /*sites=*/4, seed);
    Rng rng(seed * 977 + 11);
    for (int i = 0; i < 25; ++i) {
      ReachQuery q;
      q.source = static_cast<NodeId>(rng.NextBounded(n));
      q.target = static_cast<NodeId>(rng.NextBounded(n));
      auto r = EvaluateReachability(*w.cluster, q);
      ASSERT_TRUE(r.ok()) << r.status();
      const std::string label = "seed " + std::to_string(seed) + " " +
                                FormatReachQuery(q);
      EXPECT_EQ(r->answers, ExpectedAnswer(w, q)) << label;
      EXPECT_EQ(r->stats.rounds, 1) << label;
      for (int v : Visits(r->stats)) EXPECT_LE(v, 1) << label;
    }
  }
}

// The trivial and degenerate cases.
TEST(ReachCorrectnessTest, EdgeCases) {
  GraphWorld w = MakeWorld(20, 1.5, 4, 4, 42);
  // Self-reachability holds even with no self-loop.
  ReachQuery self{3, 3};
  auto r = EvaluateReachability(*w.cluster, self);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answers, ExpectedAnswer(w, self));
  ASSERT_EQ(r->answers.size(), 1u);

  // Out-of-range endpoints are rejected up front.
  auto bad = EvaluateReachability(*w.cluster, ReachQuery{0, 99});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReachCorrectnessTest, QueryTextRoundTrips) {
  const ReachQuery q{7, 123};
  auto parsed = ParseReachQuery(FormatReachQuery(q));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->source, q.source);
  EXPECT_EQ(parsed->target, q.target);
  EXPECT_FALSE(ParseReachQuery("reach 1").ok());
  EXPECT_FALSE(ParseReachQuery("reach 1 2 3").ok());
  EXPECT_FALSE(ParseReachQuery("//stock/code").ok());
}

// ---- Determinism: sync vs pooled vs intra-site parallel ---------------------

TEST(ReachDeterminismTest, SyncPooledAndThreadedAreBitIdentical) {
  GraphWorld w = MakeWorld(90, 1.8, 7, 4, 3);
  Rng rng(77);
  uint64_t split_pool_tasks = 0;
  for (int i = 0; i < 10; ++i) {
    ReachQuery q;
    q.source = static_cast<NodeId>(rng.NextBounded(90));
    q.target = static_cast<NodeId>(rng.NextBounded(90));
    const std::string label = FormatReachQuery(q);

    SyncTransport sync;
    auto s = EvaluateReachability(*w.cluster, q, &sync);

    PooledTransport pooled(4);
    auto p = EvaluateReachability(*w.cluster, q, &pooled);

    TransportOptions threaded_opts;
    threaded_opts.site_threads = 4;
    SyncTransport threaded(threaded_opts);
    auto t = EvaluateReachability(*w.cluster, q, &threaded);

    // Intra-fragment splitting forced on (threshold 1%): per-entry BFS
    // sub-items fan out, yet the dep/answer streams must re-encode
    // byte-identically (DESIGN.md §14).
    TransportOptions split_opts;
    split_opts.site_threads = 4;
    split_opts.split_threshold_pct = 1;
    SyncTransport split(split_opts);
    auto sp = EvaluateReachability(*w.cluster, q, &split);

    ASSERT_TRUE(s.ok()) << label << ": " << s.status();
    ASSERT_TRUE(p.ok()) << label << ": " << p.status();
    ASSERT_TRUE(t.ok()) << label << ": " << t.status();
    ASSERT_TRUE(sp.ok()) << label << ": " << sp.status();
    EXPECT_EQ(p->answers, s->answers) << label;
    EXPECT_EQ(t->answers, s->answers) << label;
    EXPECT_EQ(sp->answers, s->answers) << label;
    ExpectStatsEqual(p->stats, s->stats, "pooled|" + label);
    ExpectStatsEqual(t->stats, s->stats, "threads=4|" + label);
    ExpectStatsEqual(sp->stats, s->stats, "split|" + label);
    split_pool_tasks += sp->stats.pool_tasks;
  }
  // The split runs actually fanned out (multi-entry fragments exist in
  // this world), so the equality above is not vacuous.
  EXPECT_GT(split_pool_tasks, 0u);
}

// ---- The acceptance bar: four processes over sockets ------------------------

// A reachability query on a four-machine deployment (three paxml_site
// processes plus the client) reproduces SyncTransport's exact RunStats —
// the same guarantee the XML family makes, now workload-agnostic.
TEST(ReachSocketTest, FourProcessDeploymentReproducesSyncExactly) {
  GraphWorld w = MakeWorld(120, 1.7, 6, 4, 9);
  const std::string dir = MakeTempDir();
  ASSERT_TRUE(SaveGraph(*w.store, dir).ok());
  Deployment deployment(dir, *w.cluster);

  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    ReachQuery q;
    q.source = static_cast<NodeId>(rng.NextBounded(120));
    q.target = static_cast<NodeId>(rng.NextBounded(120));
    const std::string label = FormatReachQuery(q);

    auto sync = EvaluateReachability(*w.cluster, q);
    ASSERT_TRUE(sync.ok()) << label << ": " << sync.status();
    EXPECT_EQ(sync->answers, ExpectedAnswer(w, q)) << label;

    // (threads, split threshold %): serial, lane-parallel, and lane-
    // parallel with intra-fragment splitting forced on at the peers.
    for (auto [threads, split_pct] :
         {std::pair<size_t, uint64_t>{1, 0}, {4, 0}, {4, 1}}) {
      TransportOptions sopts;
      sopts.remote_endpoints = deployment.endpoints();
      sopts.site_threads = threads;
      sopts.split_threshold_pct = split_pct;
      SocketTransport socket(sopts);
      auto remote = EvaluateReachability(*w.cluster, q, &socket);
      const std::string tlabel = label + "|threads=" +
                                 std::to_string(threads) + "|split=" +
                                 std::to_string(split_pct);
      ASSERT_TRUE(remote.ok()) << tlabel << ": " << remote.status();
      EXPECT_EQ(remote->answers, sync->answers) << tlabel;
      ExpectStatsEqual(remote->stats, sync->stats, tlabel);
    }
  }
}

// Engine::Submit drives the graph family through the same session API as
// XPath — the query string's syntax is the only difference.
TEST(ReachSocketTest, EngineSubmitRoutesByWorkload) {
  GraphWorld w = MakeWorld(80, 1.8, 4, 4, 21);
  const std::string dir = MakeTempDir();
  ASSERT_TRUE(SaveGraph(*w.store, dir).ok());
  Deployment deployment(dir, *w.cluster);

  EngineConfig config;
  config.depth = 2;
  config.remote_endpoints = deployment.endpoints();
  Engine engine(*w.cluster, config);

  Rng rng(1);
  for (int i = 0; i < 4; ++i) {
    ReachQuery q;
    q.source = static_cast<NodeId>(rng.NextBounded(80));
    q.target = static_cast<NodeId>(rng.NextBounded(80));
    QueryHandle h = engine.Submit(FormatReachQuery(q));
    const QueryReport& report = h.Wait();
    ASSERT_TRUE(report.result.ok()) << report.result.status();
    auto baseline = EvaluateReachability(*w.cluster, q);
    ASSERT_TRUE(baseline.ok());
    EXPECT_EQ(report.result->answers, baseline->answers);
    ExpectStatsEqual(report.stats, baseline->stats, FormatReachQuery(q));
  }

  // An XPath string over graph data fails to parse as a reach query — the
  // data's family owns the query syntax.
  QueryHandle bad = engine.Submit("//stock/code");
  ASSERT_FALSE(bad.Wait().result.ok());
}

// ---- The workload seam ------------------------------------------------------

// A peer serving XML data rejects a graph run with a clean error naming
// both families, run-scoped (the connection survives the refusal).
TEST(ReachWorkloadSeamTest, XmlPeerRejectsGraphRun) {
  // A graph shaped like the clientele document's deployment: 5 fragments
  // on 4 sites, so the shape fingerprint matches and only the workload
  // kind differs.
  GraphWorld w = MakeWorld(50, 1.5, 5, 4, 13);

  Tree t = testing::BuildClienteleTree();
  auto doc_r = FragmentByCuts(t, testing::ClienteleCuts(t));
  PAXML_CHECK(doc_r.ok());
  FragmentedDocument doc = std::move(doc_r).ValueOrDie();
  ASSERT_EQ(doc.size(), w.store->fragment_count());
  const std::string dir = MakeTempDir();
  ASSERT_TRUE(SaveDocument(doc, dir).ok());
  Deployment deployment(dir, *w.cluster);  // peers load the XML directory

  TransportOptions sopts;
  sopts.remote_endpoints = deployment.endpoints();
  SocketTransport socket(sopts);
  auto r = EvaluateReachability(*w.cluster, ReachQuery{0, 10}, &socket);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNetworkError);
  EXPECT_NE(r.status().message().find("workload mismatch"), std::string::npos)
      << r.status();
}

TEST(ReachWorkloadSeamTest, UnknownFamilyErrorEnumeratesRegisteredOnes) {
  GraphWorld w = MakeWorld(10, 1.0, 2, 2, 1);
  RunSpec spec;
  spec.algorithm = "Mystery";
  spec.family = "tensor";
  auto r = MakeSiteProgram(*w.cluster, spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("\"graph\""), std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("\"xml\""), std::string::npos)
      << r.status();
}

// A graph RunSpec over an XML cluster (and vice versa) is refused before
// any family code runs.
TEST(ReachWorkloadSeamTest, FamilyMustMatchTheClustersData) {
  GraphWorld w = MakeWorld(10, 1.0, 2, 2, 1);
  RunSpec spec;
  spec.algorithm = "PaX2";
  spec.query = "//a";
  spec.family = "xml";
  auto r = MakeSiteProgram(*w.cluster, spec);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("workload mismatch"), std::string::npos)
      << r.status();
}

// ---- Store persistence ------------------------------------------------------

// SaveGraph/LoadGraph round-trip bit-identically: the loaded store's
// canonical inputs (owners and sorted edge list) equal the original's, so
// every derived fragment table does too — what lets a peer loading from
// disk reproduce the client's in-process frames byte for byte.
TEST(GraphStoreTest, SaveLoadRoundTripsExactly) {
  GraphWorld w = MakeWorld(70, 2.0, 5, 4, 31);
  const std::string dir = MakeTempDir();
  ASSERT_TRUE(SaveGraph(*w.store, dir).ok());
  EXPECT_TRUE(IsGraphStoreDir(dir));

  auto loaded_r = LoadGraph(dir);
  ASSERT_TRUE(loaded_r.ok()) << loaded_r.status();
  const GraphFragmentStore& loaded = **loaded_r;
  EXPECT_EQ(loaded.vertex_count(), w.store->vertex_count());
  EXPECT_EQ(loaded.edge_count(), w.store->edge_count());
  EXPECT_EQ(loaded.fragment_count(), w.store->fragment_count());
  EXPECT_EQ(loaded.owners(), w.store->owners());
  EXPECT_EQ(loaded.edges(), w.store->edges());
  for (size_t f = 0; f < loaded.fragment_count(); ++f) {
    const GraphFragment& a = loaded.fragment(static_cast<FragmentId>(f));
    const GraphFragment& b = w.store->fragment(static_cast<FragmentId>(f));
    EXPECT_EQ(a.vertices, b.vertices) << "fragment " << f;
    EXPECT_EQ(a.local_out, b.local_out) << "fragment " << f;
    EXPECT_EQ(a.cut_out, b.cut_out) << "fragment " << f;
    EXPECT_EQ(a.in_boundary, b.in_boundary) << "fragment " << f;
  }
  EXPECT_FALSE(IsGraphStoreDir("/nonexistent/path"));
}

// The shipped data is O(cut edges), independent of |V|: growing the graph
// without growing the cut must not grow the bytes. A ring partitioned
// into contiguous arcs has exactly one cut edge per fragment no matter how
// long the arcs are.
TEST(ReachCorrectnessTest, ShippedDataScalesWithCutNotVertices) {
  auto ring_world = [](int32_t n, size_t fragments) {
    GraphWorld w;
    w.graph.vertex_count = n;
    w.graph.out.resize(n);
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (int32_t v = 0; v < n; ++v) {
      w.graph.out[v].push_back((v + 1) % n);
      edges.push_back({v, (v + 1) % n});
    }
    std::vector<FragmentId> owner(n);
    for (int32_t v = 0; v < n; ++v) {
      owner[v] = static_cast<FragmentId>(
          std::min(fragments - 1, static_cast<size_t>(v) / (n / fragments)));
    }
    auto store = BuildGraphStore(n, owner, edges);
    PAXML_CHECK(store.ok());
    w.store = std::move(store).ValueOrDie();
    ClusterOptions copts;
    copts.parallel_execution = false;
    w.cluster = std::make_unique<Cluster>(w.store, fragments, copts);
    w.cluster->PlaceRootAndSpread();
    return w;
  };

  GraphWorld small = ring_world(40, 4);
  GraphWorld large = ring_world(400, 4);
  const ReachQuery sq{1, 21};    // wraps through every small arc
  const ReachQuery lq{1, 201};   // wraps through every large arc
  auto s = EvaluateReachability(*small.cluster, sq);
  auto l = EvaluateReachability(*large.cluster, lq);
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(l.ok()) << l.status();
  ASSERT_EQ(s->answers.size(), 1u);
  ASSERT_EQ(l->answers.size(), 1u);
  // Ten times the vertices, the same cut: bytes stay flat (a little varint
  // headroom for the wider vertex ids, nowhere near the 10x of shipping
  // vertices).
  EXPECT_LT(l->stats.total_bytes, 2 * s->stats.total_bytes);
  EXPECT_EQ(l->stats.rounds, 1);
}

}  // namespace
}  // namespace paxml
