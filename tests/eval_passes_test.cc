// Vector-level tests of the evaluation passes, reproducing the paper's
// worked examples (3.1-3.4): qualifier values at specific clientele nodes,
// residual formulas over virtual-node variables, and the z-variable stack
// tops recorded at virtual nodes.

#include <gtest/gtest.h>

#include "core/site_eval.h"
#include "core/vars.h"
#include "eval/qualifier_pass.h"
#include "eval/selection_pass.h"
#include "fragment/fragmenter.h"
#include "test_util.h"

namespace paxml {
namespace {

using testing::BuildClienteleTree;
using testing::ClienteleCuts;
using testing::FindOne;

/// Example 2.1's query, anchored at the root element.
constexpr const char* kExample21 =
    "clientele/client[country/text() = \"US\"]/"
    "broker[market/name/text() = \"NASDAQ\"]/name";

class PassesTest : public ::testing::Test {
 protected:
  PassesTest() : tree_(BuildClienteleTree()) {
    auto q = CompileXPath(kExample21, tree_.symbols());
    PAXML_CHECK(q.ok());
    query_ = std::make_unique<CompiledQuery>(std::move(q).ValueOrDie());
  }

  Tree tree_;
  std::unique_ptr<CompiledQuery> query_;
};

// ---- Example 3.3: qualifier truth at every client/broker (booleans) ----------

TEST_F(PassesTest, Example33QualifierValuesOnWholeTree) {
  BoolDomain domain;
  QualVectors<BoolDomain> vectors = RunQualifierPass(tree_, *query_, &domain);

  const int client_qual = query_->selection()[2].qual;  // [country = US]
  const int broker_qual = query_->selection()[3].qual;  // [market/name = NASDAQ]
  ASSERT_GE(client_qual, 0);
  ASSERT_GE(broker_qual, 0);

  auto qual_at = [&](const char* locator, int qual) {
    NodeId v = FindOne(tree_, locator);
    return domain.IsTrue(
        EvalQualAtNode(tree_, *query_, &domain, vectors, v, qual));
  };

  // First qualifier: true at the two US clients, false at Lisa (Canada).
  EXPECT_TRUE(qual_at("clientele/client[name=\"Anna\"]", client_qual));
  EXPECT_TRUE(qual_at("clientele/client[name=\"Kim\"]", client_qual));
  EXPECT_FALSE(qual_at("clientele/client[name=\"Lisa\"]", client_qual));

  // Second qualifier: true at brokers with a NASDAQ market.
  EXPECT_TRUE(qual_at("clientele/client[name=\"Anna\"]/broker", broker_qual));
  EXPECT_TRUE(qual_at("clientele/client[name=\"Kim\"]/broker", broker_qual));
  EXPECT_FALSE(qual_at("clientele/client[name=\"Lisa\"]/broker", broker_qual));
}

// ---- Examples 3.1/3.2: residual formulas over virtual-node variables ---------

class FragmentPassesTest : public PassesTest {
 protected:
  FragmentPassesTest() {
    auto doc = FragmentByCuts(tree_, ClienteleCuts(tree_));
    PAXML_CHECK(doc.ok());
    doc_ = std::make_unique<FragmentedDocument>(std::move(doc).ValueOrDie());
  }

  NodeId LocalNode(FragmentId f, const char* locator) {
    // Locate in the original tree, then map into the fragment.
    NodeId src = FindOne(tree_, locator);
    const Fragment& frag = doc_->fragment(f);
    for (NodeId v = 0; v < static_cast<NodeId>(frag.tree.size()); ++v) {
      if (frag.source_ids[static_cast<size_t>(v)] == src) return v;
    }
    PAXML_CHECK(false);
    return kNullNode;
  }

  std::unique_ptr<FragmentedDocument> doc_;
};

TEST_F(FragmentPassesTest, Example31ResidualsMentionVirtualChildVariables) {
  const Fragment& f0 = doc_->fragment(0);
  FragmentQualEval eval = RunFragmentQualifierStage(f0, *query_);
  FormulaDomain domain(eval.arena.get());

  const int client_qual = query_->selection()[2].qual;
  const int broker_qual = query_->selection()[3].qual;

  // Anna's client: the country qualifier resolves locally to TRUE (country
  // is inside F0) — the paper's QV_client entry q4 = 1.
  NodeId anna = LocalNode(0, "clientele/client[name=\"Anna\"]");
  Formula anna_qual = EvalQualAtNode(f0.tree, *query_, &domain, eval.vectors,
                                     anna, client_qual);
  EXPECT_EQ(anna_qual, kTrueFormula);

  // Kim's broker: the market qualifier depends on the virtual fragment 3
  // (Kim's NASDAQ market) — a residual over F3's variables, the paper's
  // "value of this qualifier depends on variable x8".
  NodeId kim_broker = LocalNode(0, "clientele/client[name=\"Kim\"]/broker");
  Formula kim_qual = EvalQualAtNode(f0.tree, *query_, &domain, eval.vectors,
                                    kim_broker, broker_qual);
  ASSERT_FALSE(eval.arena->IsConst(kim_qual));
  std::vector<VarId> vars = eval.arena->CollectVars(kim_qual);
  ASSERT_FALSE(vars.empty());
  for (VarId v : vars) {
    EXPECT_EQ(FragmentOfVar(v), 3) << VarName(v);
  }

  // Example 3.2: substituting the child fragment's actual root values
  // collapses the residual to TRUE (Kim's virtual market IS NASDAQ).
  const Fragment& f3 = doc_->fragment(3);
  FragmentQualEval f3_eval = RunFragmentQualifierStage(f3, *query_);
  const NodeId f3_root = f3.tree.root();
  Formula resolved = eval.arena->Substitute(
      kim_qual, [&](VarId v) -> std::optional<Formula> {
        const int e = static_cast<int>(IndexOfVar(v));
        // F3 is a leaf fragment: its residuals are constants; transfer is a
        // constant-to-constant mapping.
        Formula child_value = KindOfVar(v) == VarKind::kQV
                                  ? f3_eval.vectors.QV(f3_root, e)
                                  : f3_eval.vectors.QDV(f3_root, e);
        PAXML_CHECK(f3_eval.arena->IsConst(child_value));
        return child_value;
      });
  EXPECT_EQ(resolved, kTrueFormula);
}

TEST_F(FragmentPassesTest, LeafFragmentsHaveConstantResiduals) {
  // Fragments without virtual nodes (F2, F3, F4) produce variable-free
  // vectors — the property evalFT's bottom-up unification starts from.
  for (FragmentId f : {2, 3, 4}) {
    const Fragment& frag = doc_->fragment(f);
    ASSERT_TRUE(frag.tree.VirtualNodes().empty());
    FragmentQualEval eval = RunFragmentQualifierStage(frag, *query_);
    for (Formula v : eval.vectors.qv) EXPECT_TRUE(eval.arena->IsConst(v));
    for (Formula v : eval.vectors.qdv) EXPECT_TRUE(eval.arena->IsConst(v));
  }
}

// ---- Example 3.4: z variables and virtual stack tops ---------------------------

TEST_F(FragmentPassesTest, Example34StackInitAndVirtualTops) {
  // Selection over fragment F1 (Anna's broker) for the qualifier-free
  // variant client path: clientele/client/broker/name.
  auto q = CompileXPath("clientele/client/broker/name", tree_.symbols());
  ASSERT_TRUE(q.ok());
  const Fragment& f1 = doc_->fragment(1);

  FormulaArena arena;
  FormulaDomain domain(&arena);
  std::vector<Formula> init = VariableStackInit(*q, 1, &arena);
  // Entry 0 (document node) is constant false; entries 1..4 are z variables.
  ASSERT_EQ(init.size(), 5u);
  EXPECT_EQ(init[0], kFalseFormula);
  for (size_t i = 1; i < init.size(); ++i) {
    ASSERT_EQ(arena.kind(init[i]), FormulaKind::kVar);
    EXPECT_EQ(KindOfVar(arena.var(init[i])), VarKind::kSV);
    EXPECT_EQ(FragmentOfVar(arena.var(init[i])), 1);
    EXPECT_EQ(IndexOfVar(arena.var(init[i])), i);
  }

  SelectionOutput<FormulaDomain> out =
      RunSelectionPass(f1.tree, *q, &domain, init, {});

  // The paper's Example 3.4: SV_name = <0, 0, z1> — the name node is a
  // candidate whose residual is exactly the z variable of the 'client'
  // entry (our entry 2: root, clientele, client, broker, name).
  ASSERT_EQ(out.answers.size(), 0u);
  ASSERT_EQ(out.candidates.size(), 1u);
  const auto& [cand_node, cand_formula] = out.candidates[0];
  EXPECT_EQ(f1.tree.LabelName(cand_node), "name");
  ASSERT_EQ(arena.kind(cand_formula), FormulaKind::kVar);
  EXPECT_EQ(arena.var(cand_formula), MakeSVVar(1, 2));

  // One virtual node (F2): its recorded stack top is the broker's SV vector;
  // the broker entry (3) carries the same z variable.
  ASSERT_EQ(out.virtual_stack_tops.size(), 1u);
  const auto& [vnode, top] = out.virtual_stack_tops[0];
  EXPECT_EQ(f1.tree.fragment_ref(vnode), 2);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[3], arena.Var(MakeSVVar(1, 2)));  // broker matched under z2
  EXPECT_EQ(top[4], kFalseFormula);               // name entry dead at broker
}

// ---- Document-node vector construction ----------------------------------------

TEST(DocVectorTest, DescendantEntriesInheritRootContext) {
  auto symbols = std::make_shared<SymbolTable>();
  auto q = CompileXPath("//broker/name", symbols);
  ASSERT_TRUE(q.ok());
  BoolDomain domain;
  // Entries: root, //, broker, name.
  std::vector<uint8_t> vec = MakeDocVector(*q, &domain, domain.True());
  ASSERT_EQ(vec.size(), 4u);
  EXPECT_EQ(vec[0], 1);  // document node
  EXPECT_EQ(vec[1], 1);  // '//' closure contains the document node
  EXPECT_EQ(vec[2], 0);
  EXPECT_EQ(vec[3], 0);

  // A false root context (failed root qualifier) kills the closure too.
  std::vector<uint8_t> dead = MakeDocVector(*q, &domain, domain.False());
  EXPECT_EQ(dead[0], 0);
  EXPECT_EQ(dead[1], 0);
}

TEST(DocVectorTest, SelfFilterAfterLeadingDescendant) {
  auto symbols = std::make_shared<SymbolTable>();
  auto q = CompileXPath("//.[code]", symbols);
  ASSERT_TRUE(q.ok());
  BoolDomain domain;
  // Entries: root, //, .[code]; the self filter consults the doc-node
  // qualifier hook.
  int asked = -1;
  std::vector<uint8_t> vec =
      MakeDocVector(*q, &domain, domain.True(), [&](int qual_id) {
        asked = qual_id;
        return domain.False();
      });
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_GE(asked, 0);
  EXPECT_EQ(vec[2], 0);
}

// ---- Qualifier pass ops accounting ---------------------------------------------

TEST_F(PassesTest, OpsCounterMatchesNodeTimesEntries) {
  BoolDomain domain;
  uint64_t ops = 0;
  RunQualifierPass(tree_, *query_, &domain, {}, &ops);
  EXPECT_EQ(ops, tree_.size() * query_->entries().size());
}

}  // namespace
}  // namespace paxml
