// Differential testing against an independent reference evaluator.
//
// The distributed algorithms are tested against the centralized evaluator,
// but both share the compiled-vector passes — a semantic bug in the vector
// encoding would be invisible to that comparison. This file implements a
// *separate* evaluator with direct set semantics over the AST (no normal
// form, no vectors, no formulas; just node sets), and fuzzes the centralized
// evaluator against it.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/string_util.h"
#include "eval/centralized.h"
#include "test_util.h"
#include "xpath/parser.h"

namespace paxml {
namespace {

/// Context/node handle: kDocNode is the conceptual parent of the root.
constexpr NodeId kDocNode = -1;

using NodeSet = std::set<NodeId>;

class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(const Tree& tree) : tree_(tree) {}

  /// Nodes reachable from the document node via `path`.
  NodeSet Eval(const PathExpr& path) { return EvalPath(path, {kDocNode}); }

 private:
  NodeSet Children(NodeId v) const {
    NodeSet out;
    if (v == kDocNode) {
      if (!tree_.empty()) out.insert(tree_.root());
      return out;
    }
    for (NodeId c : tree_.children(v)) out.insert(c);
    return out;
  }

  /// Descendant-or-self closure.
  NodeSet Dos(const NodeSet& in) const {
    NodeSet out = in;
    std::vector<NodeId> work(in.begin(), in.end());
    while (!work.empty()) {
      NodeId v = work.back();
      work.pop_back();
      for (NodeId c : Children(v)) {
        if (out.insert(c).second) work.push_back(c);
      }
    }
    return out;
  }

  NodeSet EvalPath(const PathExpr& p, const NodeSet& context) {
    switch (p.kind) {
      case PathKind::kSelf:
        return context;
      case PathKind::kLabel: {
        const Symbol label = tree_.symbols()->Lookup(p.label);
        NodeSet out;
        for (NodeId v : context) {
          for (NodeId c : Children(v)) {
            if (tree_.IsElement(c) && tree_.label(c) == label) out.insert(c);
          }
        }
        return out;
      }
      case PathKind::kWildcard: {
        NodeSet out;
        for (NodeId v : context) {
          for (NodeId c : Children(v)) {
            if (tree_.IsElement(c)) out.insert(c);
          }
        }
        return out;
      }
      case PathKind::kChild:
        return EvalPath(*p.right, EvalPath(*p.left, context));
      case PathKind::kDescendant:
        return EvalPath(*p.right, Dos(EvalPath(*p.left, context)));
      case PathKind::kQualified: {
        NodeSet out;
        for (NodeId v : EvalPath(*p.left, context)) {
          if (v != kDocNode && EvalQual(*p.qual, v)) out.insert(v);
        }
        return out;
      }
    }
    return {};
  }

  bool HasTextChildEq(NodeId v, const std::string& s) const {
    if (v == kDocNode) return false;
    return tree_.HasTextChild(v, s);
  }

  bool HasTextChildCmp(NodeId v, CmpOp op, double num) const {
    if (v == kDocNode) return false;
    for (NodeId c : tree_.children(v)) {
      if (!tree_.IsText(c)) continue;
      auto parsed = ParseNumber(tree_.text(c));
      if (parsed && EvalCmp(op, *parsed, num)) return true;
    }
    return false;
  }

  bool EvalQual(const QualExpr& q, NodeId v) {
    switch (q.kind) {
      case QualKind::kPath:
        return !EvalPath(*q.path, {v}).empty();
      case QualKind::kTextEq: {
        for (NodeId w : EvalPath(*q.path, {v})) {
          if (HasTextChildEq(w, q.text)) return true;
        }
        return false;
      }
      case QualKind::kValCmp: {
        for (NodeId w : EvalPath(*q.path, {v})) {
          if (HasTextChildCmp(w, q.op, q.number)) return true;
        }
        return false;
      }
      case QualKind::kNot:
        return !EvalQual(*q.left, v);
      case QualKind::kAnd:
        return EvalQual(*q.left, v) && EvalQual(*q.right, v);
      case QualKind::kOr:
        return EvalQual(*q.left, v) || EvalQual(*q.right, v);
    }
    return false;
  }

  const Tree& tree_;
};

std::vector<NodeId> Reference(const Tree& tree, const std::string& query) {
  auto ast = ParseXPath(query);
  EXPECT_TRUE(ast.ok()) << query;
  ReferenceEvaluator ref(tree);
  NodeSet s = ref.Eval(**ast);
  s.erase(kDocNode);
  return std::vector<NodeId>(s.begin(), s.end());
}

std::vector<NodeId> Vectorized(const Tree& tree, const std::string& query) {
  auto r = EvaluateCentralized(tree, query);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status();
  return r.ok() ? r->answers : std::vector<NodeId>{};
}

// ---- Fixed-tree differential battery -------------------------------------------

TEST(ReferenceDiffTest, ClienteleBattery) {
  Tree tree = testing::BuildClienteleTree();
  const std::vector<std::string> queries = {
      "clientele/client/name",
      "clientele/client[country/text() = \"US\"]/broker/name",
      "//stock",
      "//stock/code",
      "//client//name",
      "//broker[//stock/code/text() = \"GOOG\"]/name",
      "//broker[market/name/text() = \"NASDAQ\" and "
      "not(market/name/text() = \"NYSE\")]/name",
      "//stock[buy/val() > 300 or qt/val() >= 90]/code",
      "clientele/*/broker/*",
      "//market[stock[code/text() = \"GOOG\"][buy/val() < 375]]/name",
      "clientele/client/broker/market/stock/qt",
      "//.[code/text() = \"IBM\"]",
      "//*[name]",
  };
  for (const std::string& q : queries) {
    EXPECT_EQ(Vectorized(tree, q), Reference(tree, q)) << q;
  }
}

// ---- Randomized differential fuzz ----------------------------------------------

struct FuzzCase {
  uint64_t seed;
};

class ReferenceFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ReferenceFuzzTest, VectorizedMatchesSetSemantics) {
  Rng rng(GetParam().seed * 7919 + 1);
  for (int round = 0; round < 4; ++round) {
    Tree tree = testing::RandomTree(&rng, 50 + rng.NextBounded(200));
    for (const std::string& q : testing::PropertyQueryBattery()) {
      // Leading '.' queries pin the root-qualifier convention, which the
      // reference (pure XPath document-node semantics) intentionally does
      // not replicate; covered by unit tests instead.
      if (q[0] == '.') continue;
      EXPECT_EQ(Vectorized(tree, q), Reference(tree, q))
          << q << " seed=" << GetParam().seed << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ReferenceFuzzTest,
    ::testing::Values(FuzzCase{101}, FuzzCase{202}, FuzzCase{303},
                      FuzzCase{404}, FuzzCase{505}, FuzzCase{606},
                      FuzzCase{707}, FuzzCase{808}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed_" + std::to_string(info.param.seed);
    });

// ---- Targeted descendant-axis semantics (the subtle cases) --------------------

TEST(ReferenceDiffTest, DescendantEdgeCases) {
  // a//.//b == a//b; a//.[q]//b includes the case where q holds at the a
  // node itself — the cases that forced the descendant-or-self aggregate in
  // the compiled encoding.
  TreeBuilder b(std::make_shared<SymbolTable>());
  b.Open("root");
  b.Open("a");  // a with marker child AND deep b
  b.Leaf("marker");
  b.Open("c").Open("b").Close().Close();
  b.Close();
  b.Open("a");  // a without marker; b deeper
  b.Open("c").Open("c").Open("b").Close().Close().Close();
  b.Close();
  b.Close();
  Tree tree = std::move(b).Finish();

  for (const std::string& q : {
           std::string("//a//b"),
           std::string("//a//.//b"),
           std::string("//a[.//b]"),
           std::string("root/a[marker]//b"),
           std::string("//a//.[c]//b"),
           std::string("//a//."),
       }) {
    EXPECT_EQ(Vectorized(tree, q), Reference(tree, q)) << q;
  }
}

}  // namespace
}  // namespace paxml
