#include <gtest/gtest.h>

#include "xpath/ast.h"
#include "xpath/lexer.h"
#include "xpath/normal_form.h"
#include "xpath/parser.h"
#include "xpath/query_plan.h"

namespace paxml {
namespace {

// ---- Lexer -------------------------------------------------------------------

TEST(LexerTest, TokenizesOperatorsAndNames) {
  auto r = LexXPath("//a/b[c='x' and d >= 2.5]");
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : *r) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kDoubleSlash, TokenKind::kName, TokenKind::kSlash,
                TokenKind::kName, TokenKind::kLBracket, TokenKind::kName,
                TokenKind::kEq, TokenKind::kString, TokenKind::kName,
                TokenKind::kName, TokenKind::kGe, TokenKind::kNumber,
                TokenKind::kRBracket, TokenKind::kEnd}));
}

TEST(LexerTest, DistinguishesDotFromNumber) {
  auto r = LexXPath(". .5 3.25");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kDot);
  EXPECT_EQ((*r)[1].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*r)[1].number, 0.5);
  EXPECT_DOUBLE_EQ((*r)[2].number, 3.25);
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(LexXPath("a & b").ok());
  EXPECT_FALSE(LexXPath("'unterminated").ok());
  EXPECT_FALSE(LexXPath("a # b").ok());
}

// ---- Parser ------------------------------------------------------------------

std::string Reparse(const std::string& q) {
  auto r = ParseXPath(q);
  EXPECT_TRUE(r.ok()) << q << ": " << r.status();
  if (!r.ok()) return "<error>";
  return ToString(**r);
}

TEST(ParserTest, PaperQueries) {
  // The four experiment queries of Fig. 7 and the motivating examples.
  EXPECT_EQ(Reparse("/sites/site/people/person"), "sites/site/people/person");
  EXPECT_EQ(Reparse("/sites/site/open_auctions//annotation"),
            "sites/site/open_auctions//annotation");
  EXPECT_EQ(Reparse("//broker[//stock/code/text() = \"goog\"]/name"),
            ".//broker[.//stock/code/text() = \"goog\"]/name");
  EXPECT_EQ(
      Reparse("client[country/text() = 'US']/broker[market/name/text() = "
              "'NASDAQ']/name"),
      "client[country/text() = \"US\"]/broker[market/name/text() = "
      "\"NASDAQ\"]/name");
}

TEST(ParserTest, LeadingDoubleSlashBecomesDescendantOfSelf) {
  auto r = ParseXPath("//broker");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, PathKind::kDescendant);
  EXPECT_EQ((*r)->left->kind, PathKind::kSelf);
}

TEST(ParserTest, ComparisonSugar) {
  // Fig. 7 style: person[profile/age > 20 and address/country = "US"].
  auto r = ParseXPath("person[profile/age > 20 and address/country = \"US\"]");
  ASSERT_TRUE(r.ok()) << r.status();
  const PathExpr& p = **r;
  ASSERT_EQ(p.kind, PathKind::kQualified);
  const QualExpr& q = *p.qual;
  ASSERT_EQ(q.kind, QualKind::kAnd);
  EXPECT_EQ(q.left->kind, QualKind::kValCmp);
  EXPECT_EQ(q.left->op, CmpOp::kGt);
  EXPECT_DOUBLE_EQ(q.left->number, 20);
  EXPECT_EQ(q.right->kind, QualKind::kTextEq);
  EXPECT_EQ(q.right->text, "US");
}

TEST(ParserTest, QualifierLeadingSlashIsRelative) {
  // The paper's Q3 writes [... and /address/country="US"] meaning a relative
  // path.
  auto r = ParseXPath("person[/address/country = \"US\"]/creditcard");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToString(**r),
            "person[address/country/text() = \"US\"]/creditcard");
}

TEST(ParserTest, BooleanOperatorsAndPrecedence) {
  auto r = ParseXPath("a[b or c and not(d)]");
  ASSERT_TRUE(r.ok()) << r.status();
  const QualExpr& q = *(*r)->qual;
  ASSERT_EQ(q.kind, QualKind::kOr);           // or binds loosest
  EXPECT_EQ(q.left->kind, QualKind::kPath);   // b
  ASSERT_EQ(q.right->kind, QualKind::kAnd);   // c and not(d)
  EXPECT_EQ(q.right->right->kind, QualKind::kNot);
}

TEST(ParserTest, AsciiOperatorAliases) {
  auto r = ParseXPath("a[b && !c || d]");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToString(**r), "a[b and not(c) or d]");
}

TEST(ParserTest, TextAndValOnContext) {
  auto r = ParseXPath("code[text() = \"GOOG\"]");
  ASSERT_TRUE(r.ok()) << r.status();
  auto r2 = ParseXPath("buy[val() >= 100]");
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(ToString(**r2), "buy[val() >= 100]");
}

TEST(ParserTest, NestedQualifiers) {
  auto r = ParseXPath("client[broker[market/name = \"TSE\"]]/name");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToString(**r),
            "client[broker[market/name/text() = \"TSE\"]]/name");
}

TEST(ParserTest, WildcardAndSelfSteps) {
  EXPECT_EQ(Reparse("*/b/."), "*/b/.");
  EXPECT_EQ(Reparse("a//*"), "a//*");
  EXPECT_EQ(Reparse("."), ".");
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("a[").ok());
  EXPECT_FALSE(ParseXPath("a]").ok());
  EXPECT_FALSE(ParseXPath("a[]").ok());
  EXPECT_FALSE(ParseXPath("a[text() =]").ok());
  EXPECT_FALSE(ParseXPath("a[val() > 'x']").ok());
  EXPECT_FALSE(ParseXPath("a b").ok());
  EXPECT_FALSE(ParseXPath("a[not(]").ok());
}

TEST(ParserTest, StandaloneQualifier) {
  auto r = ParseXPathQualifier("//stock/code/text() = \"GOOG\"");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)->kind, QualKind::kTextEq);
}

// ---- Normalizer ----------------------------------------------------------------

std::string NormStr(const std::string& q) {
  auto r = ParseXPath(q);
  EXPECT_TRUE(r.ok()) << q << ": " << r.status();
  if (!r.ok()) return "<error>";
  return ToString(Normalize(**r));
}

TEST(NormalizerTest, PaperExample21) {
  // Example 2.1: client[country/text()="us"]/broker[market/name/text() =
  // "nasdaq"]/name
  EXPECT_EQ(NormStr("client[country/text() = \"us\"]/broker[market/name/"
                    "text() = \"nasdaq\"]/name"),
            "client/.[country/.[text() = \"us\"]]/broker/"
            ".[market/name/.[text() = \"nasdaq\"]]/name");
}

TEST(NormalizerTest, MergesConsecutiveQualifiers) {
  // ε[q1]/ε[q2] -> ε[q1 and q2]
  EXPECT_EQ(NormStr("a[b][c]/d"), "a/.[b and c]/d");
  EXPECT_EQ(NormStr("a[b]/.[c]"), "a/.[b and c]");
}

TEST(NormalizerTest, DropsBareSelfSteps) {
  EXPECT_EQ(NormStr("a/./b"), "a/b");
  EXPECT_EQ(NormStr("./a"), "a");
  EXPECT_EQ(NormStr("a/."), "a");
  EXPECT_EQ(NormStr("."), ".");
}

TEST(NormalizerTest, TextTestBecomesTrailingSelfStep) {
  EXPECT_EQ(NormStr("a[b/text() = \"x\"]"), "a/.[b/.[text() = \"x\"]]");
  EXPECT_EQ(NormStr("a[text() = \"x\"]"), "a/.[.[text() = \"x\"]]");
  EXPECT_EQ(NormStr("a[b/val() < 3]"), "a/.[b/.[val() < 3]]");
}

TEST(NormalizerTest, PreservesDescendantSteps) {
  EXPECT_EQ(NormStr("//a"), "//a");
  EXPECT_EQ(NormStr("a//b//c"), "a//b//c");
  EXPECT_EQ(NormStr("a//.[b]"), "a//.[b]");
}

TEST(NormalizerTest, SelectionPathStrikesQualifiers) {
  auto r = ParseXPath("//broker[//stock/code/text() = \"goog\"]/name");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(SelectionPathString(Normalize(**r)), "//broker/name");

  auto r2 = ParseXPath("client[a]/broker[b]/name");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(SelectionPathString(Normalize(**r2)), "client/broker/name");
}

// ---- Compilation ---------------------------------------------------------------

TEST(CompileTest, Example21Vectors) {
  auto r = CompileXPath(
      "client[country/text() = \"US\"]/broker[market/name/text() = "
      "\"NASDAQ\"]/name",
      std::make_shared<SymbolTable>());
  ASSERT_TRUE(r.ok()) << r.status();
  const CompiledQuery& q = *r;
  // Selection: root + client + broker + name.
  ASSERT_EQ(q.selection_size(), 4u);
  EXPECT_EQ(q.selection()[0].kind, SelKind::kRoot);
  EXPECT_EQ(q.selection()[1].kind, SelKind::kLabel);
  EXPECT_GE(q.selection()[1].qual, 0);  // country qualifier attached
  EXPECT_GE(q.selection()[2].qual, 0);  // market qualifier attached
  EXPECT_EQ(q.selection()[3].qual, -1);
  EXPECT_TRUE(q.has_qualifiers());
  EXPECT_FALSE(q.selection_has_descendant());
  EXPECT_FALSE(q.IsBooleanQuery());
  // QVect entries exist for country, text-test, market path, name path.
  EXPECT_GE(q.entries().size(), 5u);
  // Topological order: rest/qual references point backwards.
  for (size_t i = 0; i < q.entries().size(); ++i) {
    const auto& e = q.entries()[i];
    if (e.rest >= 0) {
      EXPECT_LT(static_cast<size_t>(e.rest), i);
    }
  }
}

TEST(CompileTest, BooleanQuery) {
  auto r = CompileXPath(".[//stock/code/text() = \"GOOG\"]",
                        std::make_shared<SymbolTable>());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->IsBooleanQuery());
  EXPECT_GE(r->selection()[0].qual, 0);
}

TEST(CompileTest, QualifierFreeQueryHasNoEntries) {
  auto r = CompileXPath("/sites/site/people/person",
                        std::make_shared<SymbolTable>());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->has_qualifiers());
  EXPECT_TRUE(r->entries().empty());
  EXPECT_EQ(r->selection_size(), 5u);
}

TEST(CompileTest, DescendantSelectionEntries) {
  auto r = CompileXPath("/sites/site/open_auctions//annotation",
                        std::make_shared<SymbolTable>());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->selection_has_descendant());
  // root, sites, site, open_auctions, //, annotation
  ASSERT_EQ(r->selection_size(), 6u);
  EXPECT_EQ(r->selection()[4].kind, SelKind::kDescend);
  EXPECT_EQ(r->selection()[5].kind, SelKind::kLabel);
}

TEST(CompileTest, SharedSubqueriesAreDeduplicated) {
  auto r = CompileXPath("a[b/c and b/c]", std::make_shared<SymbolTable>());
  ASSERT_TRUE(r.ok());
  // The two identical atoms compile to the same entries; expect exactly the
  // entries for c and b/c.
  EXPECT_EQ(r->entries().size(), 2u);
}

TEST(CompileTest, CollapsesConsecutiveDescendants) {
  auto s1 = CompileXPath("a//b", std::make_shared<SymbolTable>());
  auto s2 = CompileXPath("a//.//b", std::make_shared<SymbolTable>());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->selection_size(), s2->selection_size());
}

TEST(CompileTest, DebugStringMentionsEverything) {
  auto r = CompileXPath("client[country/text() = \"US\"]/name",
                        std::make_shared<SymbolTable>());
  ASSERT_TRUE(r.ok());
  std::string dbg = r->DebugString();
  EXPECT_NE(dbg.find("QVect"), std::string::npos);
  EXPECT_NE(dbg.find("SVect"), std::string::npos);
  EXPECT_NE(dbg.find("country"), std::string::npos);
}

}  // namespace
}  // namespace paxml
